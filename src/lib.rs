//! # paragon — reproduction of *Implementation and Evaluation of
//! Prefetching in the Intel Paragon Parallel File System* (IPPS 1996)
//!
//! Facade crate: re-exports the workspace's public API in one namespace.
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! * [`sim`] — deterministic discrete-event kernel.
//! * [`disk`] / [`mesh`] / [`ufs`] — the hardware and UFS substrates.
//! * [`machine`] — machine assembly + the calibration constants.
//! * [`os`] — RPC fabric and Asynchronous Request Threads.
//! * [`pfs`] — the Parallel File System (striping, I/O modes, Fast Path).
//! * [`prefetch`] — **the paper's contribution**: the client-side
//!   prefetch engine.
//! * [`workload`] — synthetic SPMD workloads and the experiment driver.
//! * [`metrics`] — tables, ASCII figures, and result aggregation.
//! * [`profile`] — critical-path blame, Perfetto export, kernel self-profiling.

pub use paragon_core as prefetch;
pub use paragon_disk as disk;
pub use paragon_machine as machine;
pub use paragon_mesh as mesh;
pub use paragon_metrics as metrics;
pub use paragon_os as os;
pub use paragon_pfs as pfs;
pub use paragon_profile as profile;
pub use paragon_sim as sim;
pub use paragon_ufs as ufs;
pub use paragon_workload as workload;
