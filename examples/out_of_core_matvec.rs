//! Out-of-core matrix–vector multiply — the kind of SPMD scientific
//! workload the paper's introduction motivates.
//!
//! An `N × N` matrix of `f32` lives in one PFS file, row-major, striped
//! over the I/O nodes. Each of the 8 compute nodes owns every 8th block
//! of rows (M_RECORD's natural layout), reads its blocks collectively,
//! and multiplies them against **four** replicated right-hand-side
//! vectors while the block is resident (multiplying several RHS per pass
//! is the standard way out-of-core kernels amortize I/O). The per-block
//! math is real work the prototype overlaps with the next block's I/O —
//! and with 4 RHS the compute phase is comparable to the block's read
//! time, the paper's sweet spot.
//!
//! ```sh
//! cargo run --release --example out_of_core_matvec
//! ```

use std::rc::Rc;

use paragon::machine::{Machine, MachineConfig};
use paragon::pfs::{IoMode, OpenOptions, ParallelFs, StripeAttrs};
use paragon::prefetch::{PrefetchConfig, PrefetchingFile};
use paragon::sim::{Sim, SimDuration};

const N: usize = 2048; // matrix dimension
const ROWS_PER_BLOCK: usize = 32; // one M_RECORD record = 32 rows
const NODES: usize = 8;
const RHS: usize = 4; // right-hand sides multiplied per resident block

/// Matrix entry (i, j) — generated, not stored, so we can verify y.
fn a(i: usize, j: usize) -> f32 {
    ((i * 31 + j * 17) % 97) as f32 / 97.0
}

fn main() {
    let block_bytes = (ROWS_PER_BLOCK * N * 4) as u32;
    let file_bytes = (N * N * 4) as u64;
    println!(
        "out-of-core y = A·x: {N}x{N} f32 matrix ({} MB), {ROWS_PER_BLOCK}-row blocks, {NODES} nodes",
        file_bytes >> 20
    );

    for prefetch in [false, true] {
        let sim = Sim::new(99);
        let machine = Rc::new(Machine::new(&sim, MachineConfig::paper_testbed()));
        let pfs = ParallelFs::new(machine);
        let pfs2 = pfs.clone();
        let sim2 = sim.clone();
        let run = sim.spawn(async move {
            let file = pfs2
                .create("/pfs/matrix", StripeAttrs::across(8, 64 * 1024))
                .await
                .unwrap();
            // Lay the matrix out row-major: byte k of the file is byte
            // (k % 4) of entry (k/4/N, k/4%N), little-endian.
            pfs2.populate_with(file, file_bytes, |k| {
                let e = (k / 4) as usize;
                a(e / N, e % N).to_le_bytes()[(k % 4) as usize]
            })
            .await
            .unwrap();

            let x: Vec<Vec<f32>> = (0..RHS)
                .map(|v| (0..N).map(|j| 1.0 + ((j + v) % 5) as f32).collect())
                .collect();
            let t0 = sim2.now();
            let mut tasks = Vec::new();
            for rank in 0..NODES {
                let f = pfs2
                    .open(rank, NODES, file, IoMode::MRecord, OpenOptions::default())
                    .unwrap();
                let x = x.clone();
                let sim3 = sim2.clone();
                tasks.push(sim2.spawn(async move {
                    let reader = prefetch.then(|| {
                        PrefetchingFile::new(f.clone(), PrefetchConfig::paper_prototype())
                    });
                    let blocks = N / ROWS_PER_BLOCK / NODES;
                    let mut y = vec![0.0f32; RHS * ROWS_PER_BLOCK * blocks];
                    for b in 0..blocks {
                        let data = match &reader {
                            Some(pf) => pf.read(block_bytes).await.unwrap(),
                            None => f.read(block_bytes).await.unwrap(),
                        };
                        // The compute phase: 32 rows × N columns × 4 RHS
                        // of MACs. Charge it in virtual time as
                        // ~5 MFLOP/s-class i860 work: 2·32·N·4 ≈ 105 ms.
                        for r in 0..ROWS_PER_BLOCK {
                            for (v, xv) in x.iter().enumerate() {
                                let mut acc = 0.0f32;
                                for (j, xj) in xv.iter().enumerate() {
                                    let at = (r * N + j) * 4;
                                    let e =
                                        f32::from_le_bytes(data[at..at + 4].try_into().unwrap());
                                    acc += e * xj;
                                }
                                y[(b * ROWS_PER_BLOCK + r) * RHS + v] = acc;
                            }
                        }
                        sim3.sleep(SimDuration::from_millis(105)).await;
                    }
                    let stats = match reader {
                        Some(pf) => Some(pf.close().await),
                        None => None,
                    };
                    (rank, y, stats)
                }));
            }
            let mut results = Vec::new();
            for t in tasks {
                results.push(t.await);
            }
            (sim2.now().since(t0), results)
        });
        sim.run();
        let (elapsed, results) = run.try_take().expect("run finished");

        // Verify every node's slice of every y against the generator.
        let x: Vec<Vec<f32>> = (0..RHS)
            .map(|v| (0..N).map(|j| 1.0 + ((j + v) % 5) as f32).collect())
            .collect();
        let mut hits = 0;
        let mut total = 0;
        for (rank, y, stats) in &results {
            for (ri, chunk) in y.chunks(RHS).enumerate() {
                let bi = ri / ROWS_PER_BLOCK;
                let r = ri % ROWS_PER_BLOCK;
                let block_index = bi * NODES + rank; // M_RECORD interleave
                let i = block_index * ROWS_PER_BLOCK + r;
                for (v, &got) in chunk.iter().enumerate() {
                    let want: f32 = (0..N).map(|j| a(i, j) * x[v][j]).sum();
                    assert!(
                        (got - want).abs() < 1e-3,
                        "y{v}[{i}] mismatch: {got} vs {want}"
                    );
                }
            }
            if let Some(s) = stats {
                hits += s.hits();
                total += s.demand_reads();
            }
        }
        print!(
            "prefetch={prefetch:<5}  y = A·x verified; wall time {elapsed} \
             ({:.2} MB/s matrix bandwidth)",
            file_bytes as f64 / (1 << 20) as f64 / elapsed.as_secs_f64()
        );
        if prefetch {
            println!("  [prefetch hits {hits}/{total}]");
        } else {
            println!();
        }
    }
}
