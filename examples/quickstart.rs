//! Quickstart: build a Paragon, mount the PFS, read a striped file with
//! and without the prefetching prototype, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::rc::Rc;

use paragon::machine::{Machine, MachineConfig};
use paragon::pfs::{pattern_byte, IoMode, OpenOptions, ParallelFs, StripeAttrs};
use paragon::prefetch::{PrefetchConfig, PrefetchingFile};
use paragon::sim::{Sim, SimDuration};

const KB: u64 = 1024;
const REQUEST: u32 = 64 * 1024;
const FILE_SIZE: u64 = 8 * 1024 * KB; // 8 MB
const COMPUTE_DELAY_MS: u64 = 30;

fn main() {
    // Each run is one fresh simulated machine; same seed = same result.
    for prefetch in [false, true] {
        let sim = Sim::new(2024);
        let machine = Rc::new(Machine::new(&sim, MachineConfig::paper_testbed()));
        let pfs = ParallelFs::new(machine);

        let handle = {
            let pfs = pfs.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                // One file striped over all 8 I/O nodes in 64 KB units.
                let file = pfs
                    .create("/pfs/quickstart", StripeAttrs::across(8, 64 * KB))
                    .await
                    .unwrap();
                pfs.populate_with(file, FILE_SIZE, |i| pattern_byte(7, i))
                    .await
                    .unwrap();

                // A single node reads it sequentially with some compute
                // between reads (a "balanced" workload).
                let f = pfs
                    .open(0, 1, file, IoMode::MAsync, OpenOptions::default())
                    .unwrap();
                let reader = prefetch
                    .then(|| PrefetchingFile::new(f.clone(), PrefetchConfig::paper_prototype()));

                let t0 = sim2.now();
                let rounds = FILE_SIZE / REQUEST as u64;
                for _ in 0..rounds {
                    let data = match &reader {
                        Some(pf) => pf.read(REQUEST).await.unwrap(),
                        None => f.read(REQUEST).await.unwrap(),
                    };
                    assert_eq!(data.len(), REQUEST as usize);
                    // "Compute" on the block.
                    sim2.sleep(SimDuration::from_millis(COMPUTE_DELAY_MS)).await;
                }
                let elapsed = sim2.now().since(t0);
                let stats = match reader {
                    Some(pf) => Some(pf.close().await),
                    None => None,
                };
                (elapsed, stats)
            })
        };
        sim.run();
        let (elapsed, stats) = handle.try_take().expect("run finished");
        let mb = FILE_SIZE as f64 / (1 << 20) as f64;
        println!(
            "prefetch={prefetch:<5}  {mb:.0} MB in {elapsed}  ({:.2} MB/s)",
            mb / elapsed.as_secs_f64()
        );
        if let Some(s) = stats {
            println!(
                "                hits {} ({} ready / {} in-flight), misses {}, \
                 latency hidden {}",
                s.hits(),
                s.hits_ready,
                s.hits_inflight,
                s.misses,
                s.overlap_saved
            );
        }
    }
    println!("\nWith ~30 ms of compute per 64 KB block, the prototype overlaps");
    println!("almost every read with computation — the paper's headline effect.");
}
