//! A tour of the six PFS I/O modes (the paper's Figure 1).
//!
//! Four nodes share a 16-record file and each mode reads it once; the
//! example prints which record each node got and what the coordination
//! cost was, making the semantic differences concrete:
//!
//! * M_UNIX — atomic shared pointer: records go out in token-grant order.
//! * M_LOG — shared pointer, fetch-and-add: arrival order, overlapping.
//! * M_SYNC — shared pointer, node order, synchronizing collective.
//! * M_RECORD — per-node pointers over node-ordered records.
//! * M_GLOBAL — every node reads the same record; one physical I/O.
//! * M_ASYNC — uncoordinated per-node pointers.
//!
//! ```sh
//! cargo run --release --example modes_tour
//! ```

use std::rc::Rc;

use paragon::machine::{Machine, MachineConfig};
use paragon::pfs::{pattern_byte, pattern_slice, IoMode, OpenOptions, ParallelFs, StripeAttrs};
use paragon::sim::{Sim, SimDuration};

const NODES: usize = 4;
const RECORD: u32 = 64 * 1024;
const RECORDS: u64 = 16;

fn main() {
    for mode in IoMode::all() {
        let sim = Sim::new(5);
        let machine = Rc::new(Machine::new(&sim, MachineConfig::paper_testbed()));
        let pfs = ParallelFs::new(machine);
        let pfs2 = pfs.clone();
        let sim2 = sim.clone();
        let run = sim.spawn(async move {
            let file = pfs2
                .create("/pfs/tour", StripeAttrs::across(8, 64 * 1024))
                .await
                .unwrap();
            let size = RECORDS * RECORD as u64;
            pfs2.populate_with(file, size, |i| pattern_byte(1, i))
                .await
                .unwrap();
            let t0 = sim2.now();
            let rounds = match mode {
                IoMode::MGlobal => RECORDS, // everyone reads every record
                _ => RECORDS / NODES as u64,
            };
            let mut tasks = Vec::new();
            for rank in 0..NODES {
                let f = pfs2
                    .open(rank, NODES, file, mode, OpenOptions::default())
                    .unwrap();
                let sim3 = sim2.clone();
                tasks.push(sim2.spawn(async move {
                    let mut got = Vec::new();
                    for _ in 0..rounds {
                        let data = f.read(RECORD).await.unwrap();
                        // Identify which record these bytes are.
                        let rec = (0..RECORDS)
                            .find(|&r| data[..64] == pattern_slice(1, r * RECORD as u64, 64)[..])
                            .expect("bytes match a record");
                        got.push(rec);
                        // A little compute so arrival orders differ.
                        sim3.sleep(SimDuration::from_millis(3 + rank as u64)).await;
                    }
                    got
                }));
            }
            let mut per_node = Vec::new();
            for t in tasks {
                per_node.push(t.await);
            }
            (per_node, sim2.now().since(t0))
        });
        sim.run();
        let (per_node, elapsed) = run.try_take().expect("finished");

        println!("{mode} (mode {}):  elapsed {elapsed}", mode.number());
        for (rank, recs) in per_node.iter().enumerate() {
            println!("  node {rank} read records {recs:?}");
        }
        // Semantic checks, so the tour doubles as an executable spec.
        let all: Vec<u64> = per_node.iter().flatten().copied().collect();
        match mode {
            IoMode::MGlobal => {
                for recs in &per_node {
                    assert_eq!(*recs, (0..RECORDS).collect::<Vec<_>>());
                }
                println!("  -> every node saw the same data, one physical read each");
            }
            IoMode::MRecord => {
                for (rank, recs) in per_node.iter().enumerate() {
                    let want: Vec<u64> = (0..RECORDS / NODES as u64)
                        .map(|k| k * NODES as u64 + rank as u64)
                        .collect();
                    assert_eq!(*recs, want);
                }
                println!("  -> node-ordered record interleave, no coordination");
            }
            IoMode::MAsync => {
                // No coordination at all: every node's private pointer
                // starts at zero, so they all re-read the same prefix.
                for recs in &per_node {
                    assert_eq!(*recs, (0..RECORDS / NODES as u64).collect::<Vec<_>>());
                }
                println!("  -> uncoordinated pointers: all nodes re-read the front");
            }
            _ => {
                let mut sorted = all.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(sorted.len() as u64, RECORDS, "{mode}: records not disjoint");
                println!("  -> every record read exactly once via the shared pointer");
            }
        }
        println!();
    }
}
