//! Checkpoint/restart — the canonical HPC write-heavy I/O pattern.
//!
//! An 8-node iterative solver alternates compute phases with checkpoint
//! dumps of its (evolving) state into a PFS file, using the write-behind
//! engine so the dump overlaps the next compute phase. After a simulated
//! crash, the application restarts, reads the last checkpoint back with
//! the prefetch prototype, verifies it bit-for-bit, and resumes.
//!
//! ```sh
//! cargo run --release --example checkpoint_restart
//! ```

use std::rc::Rc;

use bytes::Bytes;
use paragon::machine::{Machine, MachineConfig};
use paragon::pfs::{IoMode, OpenOptions, ParallelFs, StripeAttrs};
use paragon::prefetch::{PrefetchConfig, PrefetchingFile, WriteBehindConfig, WriteBehindFile};
use paragon::sim::{Sim, SimDuration};

const NODES: usize = 8;
const STATE_PER_NODE: usize = 2 << 20; // 2 MB of solver state per node
const BLOCK: u32 = 64 * 1024;
const EPOCHS: u64 = 4;
const COMPUTE_PER_EPOCH_MS: u64 = 400;

/// Solver state byte i of `rank` at `epoch` (deterministic, so restart
/// can be verified without keeping the data around).
fn state_byte(rank: usize, epoch: u64, i: u64) -> u8 {
    (i.wrapping_mul(2654435761) ^ (rank as u64).wrapping_mul(40503) ^ epoch.wrapping_mul(9176))
        as u8
}

fn main() {
    let sim = Sim::new(2026);
    let machine = Rc::new(Machine::new(&sim, MachineConfig::paper_testbed()));
    let pfs = ParallelFs::new(machine);
    let sim2 = sim.clone();
    let run = sim.spawn(async move {
        let ckpt = pfs
            .create("/pfs/checkpoint", StripeAttrs::across(8, 64 * 1024))
            .await
            .unwrap();

        // ---- the run: compute, dump, compute, dump… -------------------
        let t0 = sim2.now();
        let mut tasks = Vec::new();
        for rank in 0..NODES {
            let f = pfs
                .open(rank, NODES, ckpt, IoMode::MRecord, OpenOptions::default())
                .unwrap();
            let sim3 = sim2.clone();
            tasks.push(sim2.spawn(async move {
                let blocks = STATE_PER_NODE as u64 / BLOCK as u64;
                let mut last_epoch = 0;
                for epoch in 0..EPOCHS {
                    // Compute phase.
                    sim3.sleep(SimDuration::from_millis(COMPUTE_PER_EPOCH_MS))
                        .await;
                    // Checkpoint dump, overlapped via write-behind. Each
                    // epoch overwrites the previous checkpoint (M_RECORD
                    // layout), so we rewind the record pointer first.
                    f.rewind().await.unwrap();
                    let wb = WriteBehindFile::new(f.clone(), WriteBehindConfig::prototype());
                    for b in 0..blocks {
                        let data: Vec<u8> = (0..BLOCK as u64)
                            .map(|i| state_byte(rank, epoch, b * BLOCK as u64 + i))
                            .collect();
                        wb.write(Bytes::from(data)).await.unwrap();
                    }
                    wb.flush().await.unwrap();
                    last_epoch = epoch;
                }
                last_epoch
            }));
        }
        for t in tasks {
            assert_eq!(t.await, EPOCHS - 1);
        }
        let run_time = sim2.now().since(t0);

        // ---- the crash & restart: read the checkpoint back ------------
        let t1 = sim2.now();
        let mut tasks = Vec::new();
        for rank in 0..NODES {
            let f = pfs
                .open(rank, NODES, ckpt, IoMode::MRecord, OpenOptions::default())
                .unwrap();
            tasks.push(sim2.spawn(async move {
                let pf = PrefetchingFile::new(f, PrefetchConfig::paper_prototype());
                let blocks = STATE_PER_NODE as u64 / BLOCK as u64;
                let mut intact = true;
                for b in 0..blocks {
                    let data = pf.read(BLOCK).await.unwrap();
                    for (i, &byte) in data.iter().enumerate() {
                        let want = state_byte(rank, EPOCHS - 1, b * BLOCK as u64 + i as u64);
                        intact &= byte == want;
                    }
                }
                let stats = pf.close().await;
                (intact, stats.hits())
            }));
        }
        let mut intact = true;
        let mut hits = 0;
        for t in tasks {
            let (ok, h) = t.await;
            intact &= ok;
            hits += h;
        }
        let restart_time = sim2.now().since(t1);
        (run_time, restart_time, intact, hits)
    });
    sim.run();
    let (run_time, restart_time, intact, hits) = run.try_take().expect("finished");

    let state_mb = (NODES * STATE_PER_NODE) as f64 / (1 << 20) as f64;
    println!("checkpointed {state_mb:.0} MB x {EPOCHS} epochs in {run_time}");
    println!(
        "restart read {state_mb:.0} MB in {restart_time} \
         ({:.2} MB/s, {hits} prefetch hits)",
        state_mb / restart_time.as_secs_f64()
    );
    assert!(intact, "checkpoint corrupted!");
    println!(
        "restored state verified bit-for-bit against epoch {}",
        EPOCHS - 1
    );
}
