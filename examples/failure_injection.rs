//! Failure injection: a hot-spotted I/O node.
//!
//! One member disk of one RAID array degrades to 5× its nominal service
//! time mid-run (a failing drive, a rebuild, a noisy neighbour). Because
//! every large request declusters over all I/O nodes, a single slow array
//! gates *every* collective read — and prefetching can hide part of the
//! degradation whenever there is computation to overlap.
//!
//! ```sh
//! cargo run --release --example failure_injection
//! ```

use std::rc::Rc;

use paragon::machine::{Machine, MachineConfig};
use paragon::pfs::{pattern_byte, IoMode, OpenOptions, ParallelFs, StripeAttrs};
use paragon::prefetch::{PrefetchConfig, PrefetchingFile};
use paragon::sim::{Sim, SimDuration};

const NODES: usize = 8;
const REQUEST: u32 = 64 * 1024;
const FILE: u64 = 32 << 20;
const DELAY: SimDuration = SimDuration::from_millis(40);

fn run_case(hotspot: bool, prefetch: bool) -> (f64, u64) {
    let sim = Sim::new(31);
    let machine = Rc::new(Machine::new(&sim, MachineConfig::paper_testbed()));
    if hotspot {
        // Member 1 of I/O node 3's array is failing.
        machine.raid(3).set_member_slowdown(1, 5.0);
    }
    let pfs = ParallelFs::new(machine);
    let pfs2 = pfs.clone();
    let sim2 = sim.clone();
    let run = sim.spawn(async move {
        let file = pfs2
            .create("/pfs/hot", StripeAttrs::across(8, 64 * 1024))
            .await
            .unwrap();
        pfs2.populate_with(file, FILE, |i| pattern_byte(3, i))
            .await
            .unwrap();
        let t0 = sim2.now();
        let rounds = FILE / (REQUEST as u64 * NODES as u64);
        let mut tasks = Vec::new();
        for rank in 0..NODES {
            let f = pfs2
                .open(rank, NODES, file, IoMode::MRecord, OpenOptions::default())
                .unwrap();
            let sim3 = sim2.clone();
            tasks.push(sim2.spawn(async move {
                let reader = prefetch
                    .then(|| PrefetchingFile::new(f.clone(), PrefetchConfig::paper_prototype()));
                let mut hits = 0;
                for _ in 0..rounds {
                    match &reader {
                        Some(pf) => {
                            pf.read(REQUEST).await.unwrap();
                        }
                        None => {
                            f.read(REQUEST).await.unwrap();
                        }
                    }
                    sim3.sleep(DELAY).await;
                }
                if let Some(pf) = reader {
                    hits = pf.close().await.hits();
                }
                hits
            }));
        }
        let mut hits = 0;
        for t in tasks {
            hits += t.await;
        }
        (sim2.now().since(t0), hits)
    });
    sim.run();
    let (elapsed, hits) = run.try_take().expect("finished");
    (FILE as f64 / (1 << 20) as f64 / elapsed.as_secs_f64(), hits)
}

fn main() {
    println!("Balanced M_RECORD workload, 64 KB requests, 40 ms compute per read;");
    println!("hot spot = one RAID member at I/O node 3 running 5x slow.\n");
    println!("{:<22} {:>16} {:>16}", "", "no prefetch", "prefetch");
    for hotspot in [false, true] {
        let (bw_np, _) = run_case(hotspot, false);
        let (bw_pf, hits) = run_case(hotspot, true);
        println!(
            "{:<22} {:>11.2} MB/s {:>11.2} MB/s   (hits {hits})",
            if hotspot {
                "degraded (hot spot)"
            } else {
                "healthy"
            },
            bw_np,
            bw_pf,
        );
    }
    println!(
        "\nThe hot spot gates every declustered read; prefetching still buys\n\
         its overlap on top of whatever the slowest array allows."
    );
}
