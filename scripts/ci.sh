#!/usr/bin/env bash
# The repo's quality gate: everything a change must pass before the
# experiment tables are worth regenerating. Hermetic — no network, no
# external tools beyond the Rust toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== paragon-lint"
# Workspace invariant checker (crates/lint), first so a rule violation
# fails the gate before the expensive build/test stages run: D1
# deterministic containers, D2 no ambient nondeterminism, P1
# panic-freedom on the I/O path, C1/C2 shard safety (shared mutable
# state and host channels confined to the sanctioned parallel kernel),
# X1 protocol/trace exhaustiveness, W1 waiver hygiene, W2 stale-waiver
# detection. Exits nonzero on any finding; waivers need
# `// paragon-lint: allow(RULE) — <reason>`.
cargo run -q -p paragon-lint --release

echo "=== cargo build --release"
cargo build --release

echo "=== cargo test -q"
cargo test -q

echo "=== fault-injection suite"
cargo test -q --test failure_injection
cargo test -q -p paragon-workload
cargo test -q -p paragon-sim fault

echo "=== rebuild-storm smoke"
# Crash 1 of 16 I/O nodes under RF=2 replication mid-run: the foreground
# must complete with zero client-visible read errors, the replica
# failover/read counters must be nonzero, and the rebuild queue must
# drain to exactly zero before the simulation ends.
cargo test -q --release --test failure_injection rebuild_storm_smoke

echo "=== parallel"
# Parallel-kernel equivalence gate: every EXT-matrix config, an
# instrumented run, and a crash+rebuild run must be byte-identical at
# --workers 1 vs --workers 4 on four forced shard worlds, and the
# 1024x128 full machine (auto-sharded onto four worlds) must reproduce
# its committed trace-hash/elapsed golden. The worker count maps worlds
# to host threads and nothing else; see DESIGN.md section 11.
cargo test -q --release --test parallel_equivalence
cargo test -q --release --test parallel_equivalence full_machine_1024x128 -- --ignored

echo "=== tsan"
# ThreadSanitizer over the parallel-equivalence suite (scripts/
# sanitize.sh): checks the kernel's no-data-races-by-construction claim
# against real interleavings. Needs nightly + rust-src; skips loudly
# (exit 0, reason printed) when the toolchain isn't present, so the
# hermetic CI container still passes.
bash scripts/sanitize.sh

echo "=== metrics"
# Perf-regression gate: re-run the telemetry-instrumented default
# workload and compare the bottleneck report's scalars (utilizations,
# bandwidth, Little's-law ratio, ...) against the committed baseline
# within per-metric tolerance bands. Regenerate the baseline with
# `paragonctl metrics run --seed 42` after an intentional perf change.
cargo run -q -p paragon-bench --release --bin paragonctl -- metrics check --seed 42

echo "=== bench"
# Engine-throughput gate: measure simulated-I/O bytes per host second on
# the EXT-SCALING reread shape (host-timed, reread-differenced so
# populate/driver constants cancel) and compare against the committed
# bench.* scalar. One-sided floor at 25% of baseline — only a large
# engine slowdown fails; host-speed variance is absorbed by the band.
# Regenerate with `paragonctl metrics run --bench --seed 42`.
cargo run -q -p paragon-bench --release --bin paragonctl -- metrics check --bench --seed 42

echo "=== profile"
# Profiler acceptance gate: the critical-path blame report must be
# byte-identical across host worker counts, its nine-leg integer
# accounting exact on every EXT-matrix config (including a seeded
# replica-failover run whose blame report is pinned as a golden), the
# Perfetto export byte-stable against tests/goldens/, and the kernel
# self-profile must leave the trace hash untouched. Regenerate goldens
# after an intentional trace-schema change with
# `PARAGON_BLESS=1 cargo test --test profile_goldens`.
cargo test -q --release --test profile_goldens
cargo test -q -p paragon-profile

echo "=== cargo fmt --check"
cargo fmt --check

echo "=== cargo clippy -D warnings"
# The I/O-path crates (disk, os, pfs, mesh, ufs) and paragon-core
# additionally carry a crate-level deny(clippy::unwrap_used,
# clippy::expect_used) for non-test code — the I/O path must propagate
# errors, not panic — which this lint run enforces.
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all green"
