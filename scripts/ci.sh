#!/usr/bin/env bash
# The repo's quality gate: everything a change must pass before the
# experiment tables are worth regenerating. Hermetic — no network, no
# external tools beyond the Rust toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo build --release"
cargo build --release

echo "=== cargo test -q"
cargo test -q

echo "=== cargo fmt --check"
cargo fmt --check

echo "=== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all green"
