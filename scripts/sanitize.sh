#!/usr/bin/env bash
# ThreadSanitizer gate for the parallel kernel.
#
# Runs tests/parallel_equivalence.rs under `-Zsanitizer=thread`, which
# needs a nightly toolchain with the rust-src component (the sanitizer
# runtime requires rebuilding std via -Zbuild-std). The sharded kernel's
# correctness argument is "no data races by construction" (worlds only
# touch shared state at barrier-fenced epoch edges); tsan checks that
# claim against the real thread interleavings instead of trusting it.
#
# Toolchains are environment, not code: when no nightly (or rustup, or
# rust-src) is available the gate SKIPS — loudly, with the reason — so
# hermetic CI containers still pass while developer machines with a
# nightly get the full check. Exit 0 on skip, nonzero on a real failure.
set -euo pipefail
cd "$(dirname "$0")/.."

skip() {
    echo "sanitize: SKIP — $1"
    echo "sanitize: install with: rustup toolchain install nightly && rustup component add rust-src --toolchain nightly"
    exit 0
}

command -v rustup >/dev/null 2>&1 || skip "rustup not found"
rustup toolchain list 2>/dev/null | grep -q '^nightly' || skip "no nightly toolchain installed"
rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src.*(installed)' \
    || skip "nightly lacks the rust-src component (needed for -Zbuild-std)"

host=$(rustc -vV | sed -n 's/^host: //p')
[ -n "$host" ] || skip "cannot determine host target triple"

echo "sanitize: ThreadSanitizer on tests/parallel_equivalence ($host)"
# TSAN_OPTIONS: fail hard on any report; suppress nothing.
RUSTFLAGS="-Zsanitizer=thread" \
TSAN_OPTIONS="halt_on_error=1" \
    cargo +nightly test -Zbuild-std --target "$host" \
    --test parallel_equivalence -- --test-threads=1

echo "sanitize: clean"
