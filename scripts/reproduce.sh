#!/usr/bin/env bash
# Regenerate every table and figure of the paper plus the extension
# studies. Outputs land in results/ (JSON records) and results/logs/
# (rendered tables and ASCII figures). Takes a few minutes in release.
set -euo pipefail
cd "$(dirname "$0")/.."

BINARIES=(
    fig2_io_modes
    table1_iobound
    table2_access_times
    fig4_balanced
    fig5_balanced_large
    table3_stripe_units
    table4_stripe_groups
    ext_scaling
    ext_patterns
    ext_depth_ablation
    ext_ablation
    ext_writes
    ext_double_buffering
    ext_scsi16
)

# Preflight: don't regenerate tables from a tree that fails the gate
# (build, tests, the paragon-lint invariant checker, fmt, clippy) —
# numbers from a nondeterministic or panicky tree are not reproductions.
./scripts/ci.sh

cargo build --release -p paragon-bench
mkdir -p results/logs
for bin in "${BINARIES[@]}"; do
    echo "=== $bin"
    cargo run --release -q -p paragon-bench --bin "$bin" \
        > "results/logs/$bin.txt" 2> "results/logs/$bin.err"
    echo "    -> results/logs/$bin.txt"
done
echo "All experiments regenerated. Compare against EXPERIMENTS.md."
