/root/repo/target/release/examples/quickstart-7bc8dd128afc203d.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7bc8dd128afc203d: examples/quickstart.rs

examples/quickstart.rs:
