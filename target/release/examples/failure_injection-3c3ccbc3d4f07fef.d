/root/repo/target/release/examples/failure_injection-3c3ccbc3d4f07fef.d: examples/failure_injection.rs

/root/repo/target/release/examples/failure_injection-3c3ccbc3d4f07fef: examples/failure_injection.rs

examples/failure_injection.rs:
