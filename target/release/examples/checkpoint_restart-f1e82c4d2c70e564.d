/root/repo/target/release/examples/checkpoint_restart-f1e82c4d2c70e564.d: examples/checkpoint_restart.rs

/root/repo/target/release/examples/checkpoint_restart-f1e82c4d2c70e564: examples/checkpoint_restart.rs

examples/checkpoint_restart.rs:
