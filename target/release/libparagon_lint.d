/root/repo/target/release/libparagon_lint.rlib: /root/repo/crates/lint/src/lib.rs /root/repo/crates/lint/src/rules.rs /root/repo/crates/lint/src/strip.rs /root/repo/crates/lint/src/x1.rs
