/root/repo/target/release/deps/ext_patterns-eefe5c17d8e58e34.d: crates/bench/src/bin/ext_patterns.rs

/root/repo/target/release/deps/ext_patterns-eefe5c17d8e58e34: crates/bench/src/bin/ext_patterns.rs

crates/bench/src/bin/ext_patterns.rs:
