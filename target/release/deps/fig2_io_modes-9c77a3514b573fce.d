/root/repo/target/release/deps/fig2_io_modes-9c77a3514b573fce.d: crates/bench/src/bin/fig2_io_modes.rs

/root/repo/target/release/deps/fig2_io_modes-9c77a3514b573fce: crates/bench/src/bin/fig2_io_modes.rs

crates/bench/src/bin/fig2_io_modes.rs:
