/root/repo/target/release/deps/ext_writes-120d20fd1f7337de.d: crates/bench/src/bin/ext_writes.rs

/root/repo/target/release/deps/ext_writes-120d20fd1f7337de: crates/bench/src/bin/ext_writes.rs

crates/bench/src/bin/ext_writes.rs:
