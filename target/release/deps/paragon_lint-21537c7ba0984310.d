/root/repo/target/release/deps/paragon_lint-21537c7ba0984310.d: crates/lint/src/lib.rs crates/lint/src/rules.rs crates/lint/src/strip.rs crates/lint/src/x1.rs

/root/repo/target/release/deps/libparagon_lint-21537c7ba0984310.rlib: crates/lint/src/lib.rs crates/lint/src/rules.rs crates/lint/src/strip.rs crates/lint/src/x1.rs

/root/repo/target/release/deps/libparagon_lint-21537c7ba0984310.rmeta: crates/lint/src/lib.rs crates/lint/src/rules.rs crates/lint/src/strip.rs crates/lint/src/x1.rs

crates/lint/src/lib.rs:
crates/lint/src/rules.rs:
crates/lint/src/strip.rs:
crates/lint/src/x1.rs:
