/root/repo/target/release/deps/ext_scaling-08e6331047796175.d: crates/bench/src/bin/ext_scaling.rs

/root/repo/target/release/deps/ext_scaling-08e6331047796175: crates/bench/src/bin/ext_scaling.rs

crates/bench/src/bin/ext_scaling.rs:
