/root/repo/target/release/deps/fig5_balanced_large-1ca425f1d41483c5.d: crates/bench/src/bin/fig5_balanced_large.rs

/root/repo/target/release/deps/fig5_balanced_large-1ca425f1d41483c5: crates/bench/src/bin/fig5_balanced_large.rs

crates/bench/src/bin/fig5_balanced_large.rs:
