/root/repo/target/release/deps/paragon_os-3bccbb9256ff1e9f.d: crates/os/src/lib.rs crates/os/src/art.rs crates/os/src/rpc.rs

/root/repo/target/release/deps/libparagon_os-3bccbb9256ff1e9f.rlib: crates/os/src/lib.rs crates/os/src/art.rs crates/os/src/rpc.rs

/root/repo/target/release/deps/libparagon_os-3bccbb9256ff1e9f.rmeta: crates/os/src/lib.rs crates/os/src/art.rs crates/os/src/rpc.rs

crates/os/src/lib.rs:
crates/os/src/art.rs:
crates/os/src/rpc.rs:
