/root/repo/target/release/deps/microbench-97f962cdc4bece7c.d: crates/bench/benches/microbench.rs

/root/repo/target/release/deps/microbench-97f962cdc4bece7c: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
