/root/repo/target/release/deps/ext_depth_ablation-065b6dd2d350752e.d: crates/bench/src/bin/ext_depth_ablation.rs

/root/repo/target/release/deps/ext_depth_ablation-065b6dd2d350752e: crates/bench/src/bin/ext_depth_ablation.rs

crates/bench/src/bin/ext_depth_ablation.rs:
