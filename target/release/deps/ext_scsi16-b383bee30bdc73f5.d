/root/repo/target/release/deps/ext_scsi16-b383bee30bdc73f5.d: crates/bench/src/bin/ext_scsi16.rs

/root/repo/target/release/deps/ext_scsi16-b383bee30bdc73f5: crates/bench/src/bin/ext_scsi16.rs

crates/bench/src/bin/ext_scsi16.rs:
