/root/repo/target/release/deps/table2_access_times-703a17aac829effb.d: crates/bench/src/bin/table2_access_times.rs

/root/repo/target/release/deps/table2_access_times-703a17aac829effb: crates/bench/src/bin/table2_access_times.rs

crates/bench/src/bin/table2_access_times.rs:
