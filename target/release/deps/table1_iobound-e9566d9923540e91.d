/root/repo/target/release/deps/table1_iobound-e9566d9923540e91.d: crates/bench/src/bin/table1_iobound.rs

/root/repo/target/release/deps/table1_iobound-e9566d9923540e91: crates/bench/src/bin/table1_iobound.rs

crates/bench/src/bin/table1_iobound.rs:
