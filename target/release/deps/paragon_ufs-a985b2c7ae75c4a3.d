/root/repo/target/release/deps/paragon_ufs-a985b2c7ae75c4a3.d: crates/ufs/src/lib.rs crates/ufs/src/alloc.rs crates/ufs/src/cache.rs crates/ufs/src/fs.rs crates/ufs/src/inode.rs

/root/repo/target/release/deps/libparagon_ufs-a985b2c7ae75c4a3.rlib: crates/ufs/src/lib.rs crates/ufs/src/alloc.rs crates/ufs/src/cache.rs crates/ufs/src/fs.rs crates/ufs/src/inode.rs

/root/repo/target/release/deps/libparagon_ufs-a985b2c7ae75c4a3.rmeta: crates/ufs/src/lib.rs crates/ufs/src/alloc.rs crates/ufs/src/cache.rs crates/ufs/src/fs.rs crates/ufs/src/inode.rs

crates/ufs/src/lib.rs:
crates/ufs/src/alloc.rs:
crates/ufs/src/cache.rs:
crates/ufs/src/fs.rs:
crates/ufs/src/inode.rs:
