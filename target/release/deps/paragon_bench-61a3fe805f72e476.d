/root/repo/target/release/deps/paragon_bench-61a3fe805f72e476.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/release/deps/libparagon_bench-61a3fe805f72e476.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/release/deps/libparagon_bench-61a3fe805f72e476.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
