/root/repo/target/release/deps/paragonctl-700b6a4fd88d214d.d: crates/bench/src/bin/paragonctl.rs

/root/repo/target/release/deps/paragonctl-700b6a4fd88d214d: crates/bench/src/bin/paragonctl.rs

crates/bench/src/bin/paragonctl.rs:
