/root/repo/target/release/deps/paragon_core-d341f0c18b374718.d: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/engine.rs crates/core/src/predictor.rs crates/core/src/stats.rs crates/core/src/writeback.rs

/root/repo/target/release/deps/libparagon_core-d341f0c18b374718.rlib: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/engine.rs crates/core/src/predictor.rs crates/core/src/stats.rs crates/core/src/writeback.rs

/root/repo/target/release/deps/libparagon_core-d341f0c18b374718.rmeta: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/engine.rs crates/core/src/predictor.rs crates/core/src/stats.rs crates/core/src/writeback.rs

crates/core/src/lib.rs:
crates/core/src/buffer.rs:
crates/core/src/engine.rs:
crates/core/src/predictor.rs:
crates/core/src/stats.rs:
crates/core/src/writeback.rs:
