/root/repo/target/release/deps/paragon-fc86916d16898e5f.d: src/lib.rs

/root/repo/target/release/deps/libparagon-fc86916d16898e5f.rlib: src/lib.rs

/root/repo/target/release/deps/libparagon-fc86916d16898e5f.rmeta: src/lib.rs

src/lib.rs:
