/root/repo/target/release/deps/table4_stripe_groups-87b200aa50fdfc8c.d: crates/bench/src/bin/table4_stripe_groups.rs

/root/repo/target/release/deps/table4_stripe_groups-87b200aa50fdfc8c: crates/bench/src/bin/table4_stripe_groups.rs

crates/bench/src/bin/table4_stripe_groups.rs:
