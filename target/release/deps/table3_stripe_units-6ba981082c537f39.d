/root/repo/target/release/deps/table3_stripe_units-6ba981082c537f39.d: crates/bench/src/bin/table3_stripe_units.rs

/root/repo/target/release/deps/table3_stripe_units-6ba981082c537f39: crates/bench/src/bin/table3_stripe_units.rs

crates/bench/src/bin/table3_stripe_units.rs:
