/root/repo/target/release/deps/ext_double_buffering-bdec3f16ffc4a2ac.d: crates/bench/src/bin/ext_double_buffering.rs

/root/repo/target/release/deps/ext_double_buffering-bdec3f16ffc4a2ac: crates/bench/src/bin/ext_double_buffering.rs

crates/bench/src/bin/ext_double_buffering.rs:
