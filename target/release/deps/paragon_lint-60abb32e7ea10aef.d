/root/repo/target/release/deps/paragon_lint-60abb32e7ea10aef.d: crates/lint/src/main.rs

/root/repo/target/release/deps/paragon_lint-60abb32e7ea10aef: crates/lint/src/main.rs

crates/lint/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
