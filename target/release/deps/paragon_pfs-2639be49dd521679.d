/root/repo/target/release/deps/paragon_pfs-2639be49dd521679.d: crates/pfs/src/lib.rs crates/pfs/src/client.rs crates/pfs/src/fs.rs crates/pfs/src/meta.rs crates/pfs/src/modes.rs crates/pfs/src/pointer.rs crates/pfs/src/proto.rs crates/pfs/src/server.rs crates/pfs/src/stripe.rs

/root/repo/target/release/deps/libparagon_pfs-2639be49dd521679.rlib: crates/pfs/src/lib.rs crates/pfs/src/client.rs crates/pfs/src/fs.rs crates/pfs/src/meta.rs crates/pfs/src/modes.rs crates/pfs/src/pointer.rs crates/pfs/src/proto.rs crates/pfs/src/server.rs crates/pfs/src/stripe.rs

/root/repo/target/release/deps/libparagon_pfs-2639be49dd521679.rmeta: crates/pfs/src/lib.rs crates/pfs/src/client.rs crates/pfs/src/fs.rs crates/pfs/src/meta.rs crates/pfs/src/modes.rs crates/pfs/src/pointer.rs crates/pfs/src/proto.rs crates/pfs/src/server.rs crates/pfs/src/stripe.rs

crates/pfs/src/lib.rs:
crates/pfs/src/client.rs:
crates/pfs/src/fs.rs:
crates/pfs/src/meta.rs:
crates/pfs/src/modes.rs:
crates/pfs/src/pointer.rs:
crates/pfs/src/proto.rs:
crates/pfs/src/server.rs:
crates/pfs/src/stripe.rs:
