/root/repo/target/release/deps/paragon_disk-64b20860d4b4b196.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/params.rs crates/disk/src/raid.rs crates/disk/src/store.rs

/root/repo/target/release/deps/libparagon_disk-64b20860d4b4b196.rlib: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/params.rs crates/disk/src/raid.rs crates/disk/src/store.rs

/root/repo/target/release/deps/libparagon_disk-64b20860d4b4b196.rmeta: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/params.rs crates/disk/src/raid.rs crates/disk/src/store.rs

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/params.rs:
crates/disk/src/raid.rs:
crates/disk/src/store.rs:
