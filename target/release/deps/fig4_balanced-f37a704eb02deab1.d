/root/repo/target/release/deps/fig4_balanced-f37a704eb02deab1.d: crates/bench/src/bin/fig4_balanced.rs

/root/repo/target/release/deps/fig4_balanced-f37a704eb02deab1: crates/bench/src/bin/fig4_balanced.rs

crates/bench/src/bin/fig4_balanced.rs:
