/root/repo/target/release/deps/paragon_workload-442e9ed40c50d304.d: crates/workload/src/lib.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/result.rs crates/workload/src/spans.rs

/root/repo/target/release/deps/libparagon_workload-442e9ed40c50d304.rlib: crates/workload/src/lib.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/result.rs crates/workload/src/spans.rs

/root/repo/target/release/deps/libparagon_workload-442e9ed40c50d304.rmeta: crates/workload/src/lib.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/result.rs crates/workload/src/spans.rs

crates/workload/src/lib.rs:
crates/workload/src/config.rs:
crates/workload/src/driver.rs:
crates/workload/src/result.rs:
crates/workload/src/spans.rs:
