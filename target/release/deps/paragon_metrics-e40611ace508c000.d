/root/repo/target/release/deps/paragon_metrics-e40611ace508c000.d: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/hist.rs crates/metrics/src/json.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

/root/repo/target/release/deps/libparagon_metrics-e40611ace508c000.rlib: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/hist.rs crates/metrics/src/json.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

/root/repo/target/release/deps/libparagon_metrics-e40611ace508c000.rmeta: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/hist.rs crates/metrics/src/json.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/chart.rs:
crates/metrics/src/hist.rs:
crates/metrics/src/json.rs:
crates/metrics/src/record.rs:
crates/metrics/src/table.rs:
