/root/repo/target/release/deps/paragon_machine-d1f286f3ef1cc2b7.d: crates/machine/src/lib.rs crates/machine/src/calib.rs crates/machine/src/machine.rs

/root/repo/target/release/deps/libparagon_machine-d1f286f3ef1cc2b7.rlib: crates/machine/src/lib.rs crates/machine/src/calib.rs crates/machine/src/machine.rs

/root/repo/target/release/deps/libparagon_machine-d1f286f3ef1cc2b7.rmeta: crates/machine/src/lib.rs crates/machine/src/calib.rs crates/machine/src/machine.rs

crates/machine/src/lib.rs:
crates/machine/src/calib.rs:
crates/machine/src/machine.rs:
