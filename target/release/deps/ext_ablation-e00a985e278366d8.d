/root/repo/target/release/deps/ext_ablation-e00a985e278366d8.d: crates/bench/src/bin/ext_ablation.rs

/root/repo/target/release/deps/ext_ablation-e00a985e278366d8: crates/bench/src/bin/ext_ablation.rs

crates/bench/src/bin/ext_ablation.rs:
