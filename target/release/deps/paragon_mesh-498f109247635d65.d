/root/repo/target/release/deps/paragon_mesh-498f109247635d65.d: crates/mesh/src/lib.rs crates/mesh/src/net.rs crates/mesh/src/topology.rs

/root/repo/target/release/deps/libparagon_mesh-498f109247635d65.rlib: crates/mesh/src/lib.rs crates/mesh/src/net.rs crates/mesh/src/topology.rs

/root/repo/target/release/deps/libparagon_mesh-498f109247635d65.rmeta: crates/mesh/src/lib.rs crates/mesh/src/net.rs crates/mesh/src/topology.rs

crates/mesh/src/lib.rs:
crates/mesh/src/net.rs:
crates/mesh/src/topology.rs:
