/root/repo/target/release/deps/bytes-9539bd87877e6624.d: crates/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-9539bd87877e6624.rlib: crates/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-9539bd87877e6624.rmeta: crates/bytes/src/lib.rs

crates/bytes/src/lib.rs:
