/root/repo/target/debug/libbytes.rlib: /root/repo/crates/bytes/src/lib.rs
