/root/repo/target/debug/examples/modes_tour-449d50a36fb98f3c.d: examples/modes_tour.rs Cargo.toml

/root/repo/target/debug/examples/libmodes_tour-449d50a36fb98f3c.rmeta: examples/modes_tour.rs Cargo.toml

examples/modes_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
