/root/repo/target/debug/examples/out_of_core_matvec-dd6a13bf415926c6.d: examples/out_of_core_matvec.rs

/root/repo/target/debug/examples/out_of_core_matvec-dd6a13bf415926c6: examples/out_of_core_matvec.rs

examples/out_of_core_matvec.rs:
