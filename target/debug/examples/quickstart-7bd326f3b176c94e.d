/root/repo/target/debug/examples/quickstart-7bd326f3b176c94e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7bd326f3b176c94e: examples/quickstart.rs

examples/quickstart.rs:
