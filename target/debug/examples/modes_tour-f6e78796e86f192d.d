/root/repo/target/debug/examples/modes_tour-f6e78796e86f192d.d: examples/modes_tour.rs

/root/repo/target/debug/examples/modes_tour-f6e78796e86f192d: examples/modes_tour.rs

examples/modes_tour.rs:
