/root/repo/target/debug/examples/out_of_core_matvec-5824f97454d722fa.d: examples/out_of_core_matvec.rs Cargo.toml

/root/repo/target/debug/examples/libout_of_core_matvec-5824f97454d722fa.rmeta: examples/out_of_core_matvec.rs Cargo.toml

examples/out_of_core_matvec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
