/root/repo/target/debug/examples/failure_injection-1e730d30ed766a38.d: examples/failure_injection.rs

/root/repo/target/debug/examples/failure_injection-1e730d30ed766a38: examples/failure_injection.rs

examples/failure_injection.rs:
