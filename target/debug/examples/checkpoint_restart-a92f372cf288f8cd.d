/root/repo/target/debug/examples/checkpoint_restart-a92f372cf288f8cd.d: examples/checkpoint_restart.rs

/root/repo/target/debug/examples/checkpoint_restart-a92f372cf288f8cd: examples/checkpoint_restart.rs

examples/checkpoint_restart.rs:
