/root/repo/target/debug/deps/paragon_metrics-37e1ee97dbae32d6.d: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/hist.rs crates/metrics/src/json.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

/root/repo/target/debug/deps/libparagon_metrics-37e1ee97dbae32d6.rlib: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/hist.rs crates/metrics/src/json.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

/root/repo/target/debug/deps/libparagon_metrics-37e1ee97dbae32d6.rmeta: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/hist.rs crates/metrics/src/json.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/chart.rs:
crates/metrics/src/hist.rs:
crates/metrics/src/json.rs:
crates/metrics/src/record.rs:
crates/metrics/src/table.rs:
