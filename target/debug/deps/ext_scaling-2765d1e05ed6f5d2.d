/root/repo/target/debug/deps/ext_scaling-2765d1e05ed6f5d2.d: crates/bench/src/bin/ext_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libext_scaling-2765d1e05ed6f5d2.rmeta: crates/bench/src/bin/ext_scaling.rs Cargo.toml

crates/bench/src/bin/ext_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
