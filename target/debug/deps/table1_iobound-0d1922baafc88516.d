/root/repo/target/debug/deps/table1_iobound-0d1922baafc88516.d: crates/bench/src/bin/table1_iobound.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_iobound-0d1922baafc88516.rmeta: crates/bench/src/bin/table1_iobound.rs Cargo.toml

crates/bench/src/bin/table1_iobound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
