/root/repo/target/debug/deps/determinism-0e5514b7ead6f242.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-0e5514b7ead6f242: tests/determinism.rs

tests/determinism.rs:
