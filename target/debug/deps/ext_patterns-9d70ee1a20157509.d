/root/repo/target/debug/deps/ext_patterns-9d70ee1a20157509.d: crates/bench/src/bin/ext_patterns.rs

/root/repo/target/debug/deps/ext_patterns-9d70ee1a20157509: crates/bench/src/bin/ext_patterns.rs

crates/bench/src/bin/ext_patterns.rs:
