/root/repo/target/debug/deps/stripe_props-de16f7ba690fb9c7.d: crates/pfs/tests/stripe_props.rs

/root/repo/target/debug/deps/stripe_props-de16f7ba690fb9c7: crates/pfs/tests/stripe_props.rs

crates/pfs/tests/stripe_props.rs:
