/root/repo/target/debug/deps/bytes-f3a79dae41061e0f.d: crates/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-f3a79dae41061e0f.rmeta: crates/bytes/src/lib.rs Cargo.toml

crates/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
