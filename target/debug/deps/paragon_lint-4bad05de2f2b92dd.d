/root/repo/target/debug/deps/paragon_lint-4bad05de2f2b92dd.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/paragon_lint-4bad05de2f2b92dd: crates/lint/src/main.rs

crates/lint/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
