/root/repo/target/debug/deps/paragon_bench-ae2242313b0e040c.d: crates/bench/src/lib.rs crates/bench/src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_bench-ae2242313b0e040c.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
