/root/repo/target/debug/deps/ext_depth_ablation-86c29c97ccebf17e.d: crates/bench/src/bin/ext_depth_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libext_depth_ablation-86c29c97ccebf17e.rmeta: crates/bench/src/bin/ext_depth_ablation.rs Cargo.toml

crates/bench/src/bin/ext_depth_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
