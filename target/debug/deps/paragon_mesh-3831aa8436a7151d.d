/root/repo/target/debug/deps/paragon_mesh-3831aa8436a7151d.d: crates/mesh/src/lib.rs crates/mesh/src/net.rs crates/mesh/src/topology.rs

/root/repo/target/debug/deps/paragon_mesh-3831aa8436a7151d: crates/mesh/src/lib.rs crates/mesh/src/net.rs crates/mesh/src/topology.rs

crates/mesh/src/lib.rs:
crates/mesh/src/net.rs:
crates/mesh/src/topology.rs:
