/root/repo/target/debug/deps/ext_scsi16-4e31773cf0a53117.d: crates/bench/src/bin/ext_scsi16.rs

/root/repo/target/debug/deps/ext_scsi16-4e31773cf0a53117: crates/bench/src/bin/ext_scsi16.rs

crates/bench/src/bin/ext_scsi16.rs:
