/root/repo/target/debug/deps/data_integrity-e800900a96bc2da5.d: tests/data_integrity.rs Cargo.toml

/root/repo/target/debug/deps/libdata_integrity-e800900a96bc2da5.rmeta: tests/data_integrity.rs Cargo.toml

tests/data_integrity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
