/root/repo/target/debug/deps/ext_double_buffering-7a3f03222b30f6f5.d: crates/bench/src/bin/ext_double_buffering.rs Cargo.toml

/root/repo/target/debug/deps/libext_double_buffering-7a3f03222b30f6f5.rmeta: crates/bench/src/bin/ext_double_buffering.rs Cargo.toml

crates/bench/src/bin/ext_double_buffering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
