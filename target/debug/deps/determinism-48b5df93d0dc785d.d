/root/repo/target/debug/deps/determinism-48b5df93d0dc785d.d: crates/sim/tests/determinism.rs

/root/repo/target/debug/deps/determinism-48b5df93d0dc785d: crates/sim/tests/determinism.rs

crates/sim/tests/determinism.rs:
