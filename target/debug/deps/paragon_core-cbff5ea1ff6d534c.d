/root/repo/target/debug/deps/paragon_core-cbff5ea1ff6d534c.d: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/engine.rs crates/core/src/predictor.rs crates/core/src/stats.rs crates/core/src/writeback.rs

/root/repo/target/debug/deps/libparagon_core-cbff5ea1ff6d534c.rlib: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/engine.rs crates/core/src/predictor.rs crates/core/src/stats.rs crates/core/src/writeback.rs

/root/repo/target/debug/deps/libparagon_core-cbff5ea1ff6d534c.rmeta: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/engine.rs crates/core/src/predictor.rs crates/core/src/stats.rs crates/core/src/writeback.rs

crates/core/src/lib.rs:
crates/core/src/buffer.rs:
crates/core/src/engine.rs:
crates/core/src/predictor.rs:
crates/core/src/stats.rs:
crates/core/src/writeback.rs:
