/root/repo/target/debug/deps/write_modes-40f12f01a1f3698d.d: crates/pfs/tests/write_modes.rs

/root/repo/target/debug/deps/write_modes-40f12f01a1f3698d: crates/pfs/tests/write_modes.rs

crates/pfs/tests/write_modes.rs:
