/root/repo/target/debug/deps/paragon_ufs-ea16836b88bca932.d: crates/ufs/src/lib.rs crates/ufs/src/alloc.rs crates/ufs/src/cache.rs crates/ufs/src/fs.rs crates/ufs/src/inode.rs

/root/repo/target/debug/deps/libparagon_ufs-ea16836b88bca932.rlib: crates/ufs/src/lib.rs crates/ufs/src/alloc.rs crates/ufs/src/cache.rs crates/ufs/src/fs.rs crates/ufs/src/inode.rs

/root/repo/target/debug/deps/libparagon_ufs-ea16836b88bca932.rmeta: crates/ufs/src/lib.rs crates/ufs/src/alloc.rs crates/ufs/src/cache.rs crates/ufs/src/fs.rs crates/ufs/src/inode.rs

crates/ufs/src/lib.rs:
crates/ufs/src/alloc.rs:
crates/ufs/src/cache.rs:
crates/ufs/src/fs.rs:
crates/ufs/src/inode.rs:
