/root/repo/target/debug/deps/fig5_balanced_large-65badbce60dac683.d: crates/bench/src/bin/fig5_balanced_large.rs

/root/repo/target/debug/deps/fig5_balanced_large-65badbce60dac683: crates/bench/src/bin/fig5_balanced_large.rs

crates/bench/src/bin/fig5_balanced_large.rs:
