/root/repo/target/debug/deps/fig4_balanced-a103e3e918b73def.d: crates/bench/src/bin/fig4_balanced.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_balanced-a103e3e918b73def.rmeta: crates/bench/src/bin/fig4_balanced.rs Cargo.toml

crates/bench/src/bin/fig4_balanced.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
