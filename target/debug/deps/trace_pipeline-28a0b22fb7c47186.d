/root/repo/target/debug/deps/trace_pipeline-28a0b22fb7c47186.d: tests/trace_pipeline.rs

/root/repo/target/debug/deps/trace_pipeline-28a0b22fb7c47186: tests/trace_pipeline.rs

tests/trace_pipeline.rs:
