/root/repo/target/debug/deps/ext_writes-8cb2f6eefd4993b0.d: crates/bench/src/bin/ext_writes.rs Cargo.toml

/root/repo/target/debug/deps/libext_writes-8cb2f6eefd4993b0.rmeta: crates/bench/src/bin/ext_writes.rs Cargo.toml

crates/bench/src/bin/ext_writes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
