/root/repo/target/debug/deps/data_integrity-3f2b3020a80d6803.d: tests/data_integrity.rs

/root/repo/target/debug/deps/data_integrity-3f2b3020a80d6803: tests/data_integrity.rs

tests/data_integrity.rs:
