/root/repo/target/debug/deps/ext_ablation-395ee3db8eff3b5e.d: crates/bench/src/bin/ext_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libext_ablation-395ee3db8eff3b5e.rmeta: crates/bench/src/bin/ext_ablation.rs Cargo.toml

crates/bench/src/bin/ext_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
