/root/repo/target/debug/deps/fig2_io_modes-12ef54fa61f3d487.d: crates/bench/src/bin/fig2_io_modes.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_io_modes-12ef54fa61f3d487.rmeta: crates/bench/src/bin/fig2_io_modes.rs Cargo.toml

crates/bench/src/bin/fig2_io_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
