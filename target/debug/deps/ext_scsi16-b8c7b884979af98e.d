/root/repo/target/debug/deps/ext_scsi16-b8c7b884979af98e.d: crates/bench/src/bin/ext_scsi16.rs Cargo.toml

/root/repo/target/debug/deps/libext_scsi16-b8c7b884979af98e.rmeta: crates/bench/src/bin/ext_scsi16.rs Cargo.toml

crates/bench/src/bin/ext_scsi16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
