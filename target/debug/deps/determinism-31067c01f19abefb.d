/root/repo/target/debug/deps/determinism-31067c01f19abefb.d: crates/sim/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-31067c01f19abefb.rmeta: crates/sim/tests/determinism.rs Cargo.toml

crates/sim/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
