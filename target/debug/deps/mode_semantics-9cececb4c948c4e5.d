/root/repo/target/debug/deps/mode_semantics-9cececb4c948c4e5.d: crates/pfs/tests/mode_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libmode_semantics-9cececb4c948c4e5.rmeta: crates/pfs/tests/mode_semantics.rs Cargo.toml

crates/pfs/tests/mode_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
