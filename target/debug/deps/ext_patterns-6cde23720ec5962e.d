/root/repo/target/debug/deps/ext_patterns-6cde23720ec5962e.d: crates/bench/src/bin/ext_patterns.rs

/root/repo/target/debug/deps/ext_patterns-6cde23720ec5962e: crates/bench/src/bin/ext_patterns.rs

crates/bench/src/bin/ext_patterns.rs:
