/root/repo/target/debug/deps/bytes-5667fe4d0ed48597.d: crates/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-5667fe4d0ed48597: crates/bytes/src/lib.rs

crates/bytes/src/lib.rs:
