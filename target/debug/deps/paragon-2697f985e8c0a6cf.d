/root/repo/target/debug/deps/paragon-2697f985e8c0a6cf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparagon-2697f985e8c0a6cf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
