/root/repo/target/debug/deps/ext_ablation-57b3f956243b3598.d: crates/bench/src/bin/ext_ablation.rs

/root/repo/target/debug/deps/ext_ablation-57b3f956243b3598: crates/bench/src/bin/ext_ablation.rs

crates/bench/src/bin/ext_ablation.rs:
