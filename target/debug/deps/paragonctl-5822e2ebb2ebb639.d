/root/repo/target/debug/deps/paragonctl-5822e2ebb2ebb639.d: crates/bench/src/bin/paragonctl.rs Cargo.toml

/root/repo/target/debug/deps/libparagonctl-5822e2ebb2ebb639.rmeta: crates/bench/src/bin/paragonctl.rs Cargo.toml

crates/bench/src/bin/paragonctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
