/root/repo/target/debug/deps/paragon_disk-085da21d2ee4ca5d.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/params.rs crates/disk/src/raid.rs crates/disk/src/store.rs

/root/repo/target/debug/deps/paragon_disk-085da21d2ee4ca5d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/params.rs crates/disk/src/raid.rs crates/disk/src/store.rs

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/params.rs:
crates/disk/src/raid.rs:
crates/disk/src/store.rs:
