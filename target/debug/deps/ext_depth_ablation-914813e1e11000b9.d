/root/repo/target/debug/deps/ext_depth_ablation-914813e1e11000b9.d: crates/bench/src/bin/ext_depth_ablation.rs

/root/repo/target/debug/deps/ext_depth_ablation-914813e1e11000b9: crates/bench/src/bin/ext_depth_ablation.rs

crates/bench/src/bin/ext_depth_ablation.rs:
