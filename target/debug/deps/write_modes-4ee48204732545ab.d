/root/repo/target/debug/deps/write_modes-4ee48204732545ab.d: crates/pfs/tests/write_modes.rs Cargo.toml

/root/repo/target/debug/deps/libwrite_modes-4ee48204732545ab.rmeta: crates/pfs/tests/write_modes.rs Cargo.toml

crates/pfs/tests/write_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
