/root/repo/target/debug/deps/paragon_bench-3c574cdb996950e4.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libparagon_bench-3c574cdb996950e4.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libparagon_bench-3c574cdb996950e4.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
