/root/repo/target/debug/deps/paper_experiments-80bd82b7f9dc34df.d: crates/bench/benches/paper_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_experiments-80bd82b7f9dc34df.rmeta: crates/bench/benches/paper_experiments.rs Cargo.toml

crates/bench/benches/paper_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
