/root/repo/target/debug/deps/paragon-41a76b3283c742bd.d: src/lib.rs

/root/repo/target/debug/deps/paragon-41a76b3283c742bd: src/lib.rs

src/lib.rs:
