/root/repo/target/debug/deps/table1_iobound-f7c1e68f667b4c3a.d: crates/bench/src/bin/table1_iobound.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_iobound-f7c1e68f667b4c3a.rmeta: crates/bench/src/bin/table1_iobound.rs Cargo.toml

crates/bench/src/bin/table1_iobound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
