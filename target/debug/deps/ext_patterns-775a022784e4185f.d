/root/repo/target/debug/deps/ext_patterns-775a022784e4185f.d: crates/bench/src/bin/ext_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libext_patterns-775a022784e4185f.rmeta: crates/bench/src/bin/ext_patterns.rs Cargo.toml

crates/bench/src/bin/ext_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
