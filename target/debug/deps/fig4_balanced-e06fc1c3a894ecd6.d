/root/repo/target/debug/deps/fig4_balanced-e06fc1c3a894ecd6.d: crates/bench/src/bin/fig4_balanced.rs

/root/repo/target/debug/deps/fig4_balanced-e06fc1c3a894ecd6: crates/bench/src/bin/fig4_balanced.rs

crates/bench/src/bin/fig4_balanced.rs:
