/root/repo/target/debug/deps/paragon_metrics-a5a43f764b26746b.d: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/hist.rs crates/metrics/src/json.rs crates/metrics/src/record.rs crates/metrics/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_metrics-a5a43f764b26746b.rmeta: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/hist.rs crates/metrics/src/json.rs crates/metrics/src/record.rs crates/metrics/src/table.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/chart.rs:
crates/metrics/src/hist.rs:
crates/metrics/src/json.rs:
crates/metrics/src/record.rs:
crates/metrics/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
