/root/repo/target/debug/deps/ext_writes-c7356ef73ffe4fe8.d: crates/bench/src/bin/ext_writes.rs Cargo.toml

/root/repo/target/debug/deps/libext_writes-c7356ef73ffe4fe8.rmeta: crates/bench/src/bin/ext_writes.rs Cargo.toml

crates/bench/src/bin/ext_writes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
