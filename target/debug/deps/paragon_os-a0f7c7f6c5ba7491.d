/root/repo/target/debug/deps/paragon_os-a0f7c7f6c5ba7491.d: crates/os/src/lib.rs crates/os/src/art.rs crates/os/src/rpc.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_os-a0f7c7f6c5ba7491.rmeta: crates/os/src/lib.rs crates/os/src/art.rs crates/os/src/rpc.rs Cargo.toml

crates/os/src/lib.rs:
crates/os/src/art.rs:
crates/os/src/rpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
