/root/repo/target/debug/deps/paragon_os-10979f7531c57a6e.d: crates/os/src/lib.rs crates/os/src/art.rs crates/os/src/rpc.rs

/root/repo/target/debug/deps/libparagon_os-10979f7531c57a6e.rlib: crates/os/src/lib.rs crates/os/src/art.rs crates/os/src/rpc.rs

/root/repo/target/debug/deps/libparagon_os-10979f7531c57a6e.rmeta: crates/os/src/lib.rs crates/os/src/art.rs crates/os/src/rpc.rs

crates/os/src/lib.rs:
crates/os/src/art.rs:
crates/os/src/rpc.rs:
