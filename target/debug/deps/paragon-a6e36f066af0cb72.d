/root/repo/target/debug/deps/paragon-a6e36f066af0cb72.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparagon-a6e36f066af0cb72.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
