/root/repo/target/debug/deps/paragon-84a6135ecd253d21.d: src/lib.rs

/root/repo/target/debug/deps/libparagon-84a6135ecd253d21.rlib: src/lib.rs

/root/repo/target/debug/deps/libparagon-84a6135ecd253d21.rmeta: src/lib.rs

src/lib.rs:
