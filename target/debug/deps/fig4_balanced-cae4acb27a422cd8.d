/root/repo/target/debug/deps/fig4_balanced-cae4acb27a422cd8.d: crates/bench/src/bin/fig4_balanced.rs

/root/repo/target/debug/deps/fig4_balanced-cae4acb27a422cd8: crates/bench/src/bin/fig4_balanced.rs

crates/bench/src/bin/fig4_balanced.rs:
