/root/repo/target/debug/deps/ext_depth_ablation-a0f5a6dda351754d.d: crates/bench/src/bin/ext_depth_ablation.rs

/root/repo/target/debug/deps/ext_depth_ablation-a0f5a6dda351754d: crates/bench/src/bin/ext_depth_ablation.rs

crates/bench/src/bin/ext_depth_ablation.rs:
