/root/repo/target/debug/deps/paragon_disk-a7162ba25e9cea27.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/params.rs crates/disk/src/raid.rs crates/disk/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_disk-a7162ba25e9cea27.rmeta: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/params.rs crates/disk/src/raid.rs crates/disk/src/store.rs Cargo.toml

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/params.rs:
crates/disk/src/raid.rs:
crates/disk/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
