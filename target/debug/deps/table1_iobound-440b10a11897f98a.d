/root/repo/target/debug/deps/table1_iobound-440b10a11897f98a.d: crates/bench/src/bin/table1_iobound.rs

/root/repo/target/debug/deps/table1_iobound-440b10a11897f98a: crates/bench/src/bin/table1_iobound.rs

crates/bench/src/bin/table1_iobound.rs:
