/root/repo/target/debug/deps/paragon_mesh-306b341c34164dd9.d: crates/mesh/src/lib.rs crates/mesh/src/net.rs crates/mesh/src/topology.rs

/root/repo/target/debug/deps/libparagon_mesh-306b341c34164dd9.rlib: crates/mesh/src/lib.rs crates/mesh/src/net.rs crates/mesh/src/topology.rs

/root/repo/target/debug/deps/libparagon_mesh-306b341c34164dd9.rmeta: crates/mesh/src/lib.rs crates/mesh/src/net.rs crates/mesh/src/topology.rs

crates/mesh/src/lib.rs:
crates/mesh/src/net.rs:
crates/mesh/src/topology.rs:
