/root/repo/target/debug/deps/microbench-31a66f72f476495b.d: crates/bench/benches/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libmicrobench-31a66f72f476495b.rmeta: crates/bench/benches/microbench.rs Cargo.toml

crates/bench/benches/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
