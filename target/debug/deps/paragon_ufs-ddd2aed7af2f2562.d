/root/repo/target/debug/deps/paragon_ufs-ddd2aed7af2f2562.d: crates/ufs/src/lib.rs crates/ufs/src/alloc.rs crates/ufs/src/cache.rs crates/ufs/src/fs.rs crates/ufs/src/inode.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_ufs-ddd2aed7af2f2562.rmeta: crates/ufs/src/lib.rs crates/ufs/src/alloc.rs crates/ufs/src/cache.rs crates/ufs/src/fs.rs crates/ufs/src/inode.rs Cargo.toml

crates/ufs/src/lib.rs:
crates/ufs/src/alloc.rs:
crates/ufs/src/cache.rs:
crates/ufs/src/fs.rs:
crates/ufs/src/inode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
