/root/repo/target/debug/deps/rpc_stress-2fd8bd9cecc596c9.d: crates/os/tests/rpc_stress.rs

/root/repo/target/debug/deps/rpc_stress-2fd8bd9cecc596c9: crates/os/tests/rpc_stress.rs

crates/os/tests/rpc_stress.rs:
