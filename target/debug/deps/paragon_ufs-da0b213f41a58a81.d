/root/repo/target/debug/deps/paragon_ufs-da0b213f41a58a81.d: crates/ufs/src/lib.rs crates/ufs/src/alloc.rs crates/ufs/src/cache.rs crates/ufs/src/fs.rs crates/ufs/src/inode.rs

/root/repo/target/debug/deps/paragon_ufs-da0b213f41a58a81: crates/ufs/src/lib.rs crates/ufs/src/alloc.rs crates/ufs/src/cache.rs crates/ufs/src/fs.rs crates/ufs/src/inode.rs

crates/ufs/src/lib.rs:
crates/ufs/src/alloc.rs:
crates/ufs/src/cache.rs:
crates/ufs/src/fs.rs:
crates/ufs/src/inode.rs:
