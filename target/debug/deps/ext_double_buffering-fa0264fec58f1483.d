/root/repo/target/debug/deps/ext_double_buffering-fa0264fec58f1483.d: crates/bench/src/bin/ext_double_buffering.rs

/root/repo/target/debug/deps/ext_double_buffering-fa0264fec58f1483: crates/bench/src/bin/ext_double_buffering.rs

crates/bench/src/bin/ext_double_buffering.rs:
