/root/repo/target/debug/deps/table4_stripe_groups-c94770760f48cb14.d: crates/bench/src/bin/table4_stripe_groups.rs

/root/repo/target/debug/deps/table4_stripe_groups-c94770760f48cb14: crates/bench/src/bin/table4_stripe_groups.rs

crates/bench/src/bin/table4_stripe_groups.rs:
