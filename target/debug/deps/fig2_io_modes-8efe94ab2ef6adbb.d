/root/repo/target/debug/deps/fig2_io_modes-8efe94ab2ef6adbb.d: crates/bench/src/bin/fig2_io_modes.rs

/root/repo/target/debug/deps/fig2_io_modes-8efe94ab2ef6adbb: crates/bench/src/bin/fig2_io_modes.rs

crates/bench/src/bin/fig2_io_modes.rs:
