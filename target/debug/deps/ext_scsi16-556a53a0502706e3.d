/root/repo/target/debug/deps/ext_scsi16-556a53a0502706e3.d: crates/bench/src/bin/ext_scsi16.rs Cargo.toml

/root/repo/target/debug/deps/libext_scsi16-556a53a0502706e3.rmeta: crates/bench/src/bin/ext_scsi16.rs Cargo.toml

crates/bench/src/bin/ext_scsi16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
