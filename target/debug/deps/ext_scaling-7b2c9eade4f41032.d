/root/repo/target/debug/deps/ext_scaling-7b2c9eade4f41032.d: crates/bench/src/bin/ext_scaling.rs

/root/repo/target/debug/deps/ext_scaling-7b2c9eade4f41032: crates/bench/src/bin/ext_scaling.rs

crates/bench/src/bin/ext_scaling.rs:
