/root/repo/target/debug/deps/stripe_props-2265313e4b6982b1.d: crates/pfs/tests/stripe_props.rs Cargo.toml

/root/repo/target/debug/deps/libstripe_props-2265313e4b6982b1.rmeta: crates/pfs/tests/stripe_props.rs Cargo.toml

crates/pfs/tests/stripe_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
