/root/repo/target/debug/deps/paragon_workload-a8b3866e9572e99c.d: crates/workload/src/lib.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/result.rs crates/workload/src/spans.rs

/root/repo/target/debug/deps/paragon_workload-a8b3866e9572e99c: crates/workload/src/lib.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/result.rs crates/workload/src/spans.rs

crates/workload/src/lib.rs:
crates/workload/src/config.rs:
crates/workload/src/driver.rs:
crates/workload/src/result.rs:
crates/workload/src/spans.rs:
