/root/repo/target/debug/deps/paragon_ufs-fa16434232666dff.d: crates/ufs/src/lib.rs crates/ufs/src/alloc.rs crates/ufs/src/cache.rs crates/ufs/src/fs.rs crates/ufs/src/inode.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_ufs-fa16434232666dff.rmeta: crates/ufs/src/lib.rs crates/ufs/src/alloc.rs crates/ufs/src/cache.rs crates/ufs/src/fs.rs crates/ufs/src/inode.rs Cargo.toml

crates/ufs/src/lib.rs:
crates/ufs/src/alloc.rs:
crates/ufs/src/cache.rs:
crates/ufs/src/fs.rs:
crates/ufs/src/inode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
