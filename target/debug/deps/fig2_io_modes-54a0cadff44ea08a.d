/root/repo/target/debug/deps/fig2_io_modes-54a0cadff44ea08a.d: crates/bench/src/bin/fig2_io_modes.rs

/root/repo/target/debug/deps/fig2_io_modes-54a0cadff44ea08a: crates/bench/src/bin/fig2_io_modes.rs

crates/bench/src/bin/fig2_io_modes.rs:
