/root/repo/target/debug/deps/fixtures-ccdd43053ecf0cad.d: crates/lint/tests/fixtures.rs Cargo.toml

/root/repo/target/debug/deps/libfixtures-ccdd43053ecf0cad.rmeta: crates/lint/tests/fixtures.rs Cargo.toml

crates/lint/tests/fixtures.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
