/root/repo/target/debug/deps/table1_iobound-636891ff173c1064.d: crates/bench/src/bin/table1_iobound.rs

/root/repo/target/debug/deps/table1_iobound-636891ff173c1064: crates/bench/src/bin/table1_iobound.rs

crates/bench/src/bin/table1_iobound.rs:
