/root/repo/target/debug/deps/table3_stripe_units-d7401f306ba8f44d.d: crates/bench/src/bin/table3_stripe_units.rs

/root/repo/target/debug/deps/table3_stripe_units-d7401f306ba8f44d: crates/bench/src/bin/table3_stripe_units.rs

crates/bench/src/bin/table3_stripe_units.rs:
