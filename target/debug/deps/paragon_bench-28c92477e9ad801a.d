/root/repo/target/debug/deps/paragon_bench-28c92477e9ad801a.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/paragon_bench-28c92477e9ad801a: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
