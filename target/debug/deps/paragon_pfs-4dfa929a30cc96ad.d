/root/repo/target/debug/deps/paragon_pfs-4dfa929a30cc96ad.d: crates/pfs/src/lib.rs crates/pfs/src/client.rs crates/pfs/src/fs.rs crates/pfs/src/meta.rs crates/pfs/src/modes.rs crates/pfs/src/pointer.rs crates/pfs/src/proto.rs crates/pfs/src/server.rs crates/pfs/src/stripe.rs

/root/repo/target/debug/deps/libparagon_pfs-4dfa929a30cc96ad.rlib: crates/pfs/src/lib.rs crates/pfs/src/client.rs crates/pfs/src/fs.rs crates/pfs/src/meta.rs crates/pfs/src/modes.rs crates/pfs/src/pointer.rs crates/pfs/src/proto.rs crates/pfs/src/server.rs crates/pfs/src/stripe.rs

/root/repo/target/debug/deps/libparagon_pfs-4dfa929a30cc96ad.rmeta: crates/pfs/src/lib.rs crates/pfs/src/client.rs crates/pfs/src/fs.rs crates/pfs/src/meta.rs crates/pfs/src/modes.rs crates/pfs/src/pointer.rs crates/pfs/src/proto.rs crates/pfs/src/server.rs crates/pfs/src/stripe.rs

crates/pfs/src/lib.rs:
crates/pfs/src/client.rs:
crates/pfs/src/fs.rs:
crates/pfs/src/meta.rs:
crates/pfs/src/modes.rs:
crates/pfs/src/pointer.rs:
crates/pfs/src/proto.rs:
crates/pfs/src/server.rs:
crates/pfs/src/stripe.rs:
