/root/repo/target/debug/deps/props-66522800e98be7d5.d: crates/disk/tests/props.rs

/root/repo/target/debug/deps/props-66522800e98be7d5: crates/disk/tests/props.rs

crates/disk/tests/props.rs:
