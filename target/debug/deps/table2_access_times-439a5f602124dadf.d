/root/repo/target/debug/deps/table2_access_times-439a5f602124dadf.d: crates/bench/src/bin/table2_access_times.rs

/root/repo/target/debug/deps/table2_access_times-439a5f602124dadf: crates/bench/src/bin/table2_access_times.rs

crates/bench/src/bin/table2_access_times.rs:
