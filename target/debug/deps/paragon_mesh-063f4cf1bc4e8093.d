/root/repo/target/debug/deps/paragon_mesh-063f4cf1bc4e8093.d: crates/mesh/src/lib.rs crates/mesh/src/net.rs crates/mesh/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_mesh-063f4cf1bc4e8093.rmeta: crates/mesh/src/lib.rs crates/mesh/src/net.rs crates/mesh/src/topology.rs Cargo.toml

crates/mesh/src/lib.rs:
crates/mesh/src/net.rs:
crates/mesh/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
