/root/repo/target/debug/deps/paragon_machine-849602472ab36d89.d: crates/machine/src/lib.rs crates/machine/src/calib.rs crates/machine/src/machine.rs

/root/repo/target/debug/deps/paragon_machine-849602472ab36d89: crates/machine/src/lib.rs crates/machine/src/calib.rs crates/machine/src/machine.rs

crates/machine/src/lib.rs:
crates/machine/src/calib.rs:
crates/machine/src/machine.rs:
