/root/repo/target/debug/deps/paragon_pfs-c27e87dd10771d7e.d: crates/pfs/src/lib.rs crates/pfs/src/client.rs crates/pfs/src/fs.rs crates/pfs/src/meta.rs crates/pfs/src/modes.rs crates/pfs/src/pointer.rs crates/pfs/src/proto.rs crates/pfs/src/server.rs crates/pfs/src/stripe.rs

/root/repo/target/debug/deps/paragon_pfs-c27e87dd10771d7e: crates/pfs/src/lib.rs crates/pfs/src/client.rs crates/pfs/src/fs.rs crates/pfs/src/meta.rs crates/pfs/src/modes.rs crates/pfs/src/pointer.rs crates/pfs/src/proto.rs crates/pfs/src/server.rs crates/pfs/src/stripe.rs

crates/pfs/src/lib.rs:
crates/pfs/src/client.rs:
crates/pfs/src/fs.rs:
crates/pfs/src/meta.rs:
crates/pfs/src/modes.rs:
crates/pfs/src/pointer.rs:
crates/pfs/src/proto.rs:
crates/pfs/src/server.rs:
crates/pfs/src/stripe.rs:
