/root/repo/target/debug/deps/paragon_os-d79840f480433032.d: crates/os/src/lib.rs crates/os/src/art.rs crates/os/src/rpc.rs

/root/repo/target/debug/deps/paragon_os-d79840f480433032: crates/os/src/lib.rs crates/os/src/art.rs crates/os/src/rpc.rs

crates/os/src/lib.rs:
crates/os/src/art.rs:
crates/os/src/rpc.rs:
