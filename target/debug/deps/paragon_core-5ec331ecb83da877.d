/root/repo/target/debug/deps/paragon_core-5ec331ecb83da877.d: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/engine.rs crates/core/src/predictor.rs crates/core/src/stats.rs crates/core/src/writeback.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_core-5ec331ecb83da877.rmeta: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/engine.rs crates/core/src/predictor.rs crates/core/src/stats.rs crates/core/src/writeback.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/buffer.rs:
crates/core/src/engine.rs:
crates/core/src/predictor.rs:
crates/core/src/stats.rs:
crates/core/src/writeback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
