/root/repo/target/debug/deps/paragon_lint-b135b54a6cd72b41.d: crates/lint/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_lint-b135b54a6cd72b41.rmeta: crates/lint/src/main.rs Cargo.toml

crates/lint/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
