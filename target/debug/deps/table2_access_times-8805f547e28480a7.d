/root/repo/target/debug/deps/table2_access_times-8805f547e28480a7.d: crates/bench/src/bin/table2_access_times.rs

/root/repo/target/debug/deps/table2_access_times-8805f547e28480a7: crates/bench/src/bin/table2_access_times.rs

crates/bench/src/bin/table2_access_times.rs:
