/root/repo/target/debug/deps/props-d613efe20f0d8599.d: crates/disk/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-d613efe20f0d8599.rmeta: crates/disk/tests/props.rs Cargo.toml

crates/disk/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
