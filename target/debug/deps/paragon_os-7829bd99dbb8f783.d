/root/repo/target/debug/deps/paragon_os-7829bd99dbb8f783.d: crates/os/src/lib.rs crates/os/src/art.rs crates/os/src/rpc.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_os-7829bd99dbb8f783.rmeta: crates/os/src/lib.rs crates/os/src/art.rs crates/os/src/rpc.rs Cargo.toml

crates/os/src/lib.rs:
crates/os/src/art.rs:
crates/os/src/rpc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
