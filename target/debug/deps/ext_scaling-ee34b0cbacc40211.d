/root/repo/target/debug/deps/ext_scaling-ee34b0cbacc40211.d: crates/bench/src/bin/ext_scaling.rs

/root/repo/target/debug/deps/ext_scaling-ee34b0cbacc40211: crates/bench/src/bin/ext_scaling.rs

crates/bench/src/bin/ext_scaling.rs:
