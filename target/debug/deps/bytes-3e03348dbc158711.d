/root/repo/target/debug/deps/bytes-3e03348dbc158711.d: crates/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-3e03348dbc158711.rlib: crates/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-3e03348dbc158711.rmeta: crates/bytes/src/lib.rs

crates/bytes/src/lib.rs:
