/root/repo/target/debug/deps/paragon_workload-9e426057172cf03d.d: crates/workload/src/lib.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/result.rs crates/workload/src/spans.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_workload-9e426057172cf03d.rmeta: crates/workload/src/lib.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/result.rs crates/workload/src/spans.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/config.rs:
crates/workload/src/driver.rs:
crates/workload/src/result.rs:
crates/workload/src/spans.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
