/root/repo/target/debug/deps/props-f71d356014f5b376.d: crates/ufs/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-f71d356014f5b376.rmeta: crates/ufs/tests/props.rs Cargo.toml

crates/ufs/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
