/root/repo/target/debug/deps/paragon_sim-729270eb8ef3705e.d: crates/sim/src/lib.rs crates/sim/src/executor.rs crates/sim/src/fault.rs crates/sim/src/kernel.rs crates/sim/src/rng.rs crates/sim/src/sync/mod.rs crates/sim/src/sync/barrier.rs crates/sim/src/sync/channel.rs crates/sim/src/sync/oneshot.rs crates/sim/src/sync/semaphore.rs crates/sim/src/sync/signal.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_sim-729270eb8ef3705e.rmeta: crates/sim/src/lib.rs crates/sim/src/executor.rs crates/sim/src/fault.rs crates/sim/src/kernel.rs crates/sim/src/rng.rs crates/sim/src/sync/mod.rs crates/sim/src/sync/barrier.rs crates/sim/src/sync/channel.rs crates/sim/src/sync/oneshot.rs crates/sim/src/sync/semaphore.rs crates/sim/src/sync/signal.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/executor.rs:
crates/sim/src/fault.rs:
crates/sim/src/kernel.rs:
crates/sim/src/rng.rs:
crates/sim/src/sync/mod.rs:
crates/sim/src/sync/barrier.rs:
crates/sim/src/sync/channel.rs:
crates/sim/src/sync/oneshot.rs:
crates/sim/src/sync/semaphore.rs:
crates/sim/src/sync/signal.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
