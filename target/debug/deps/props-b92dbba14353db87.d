/root/repo/target/debug/deps/props-b92dbba14353db87.d: crates/mesh/tests/props.rs

/root/repo/target/debug/deps/props-b92dbba14353db87: crates/mesh/tests/props.rs

crates/mesh/tests/props.rs:
