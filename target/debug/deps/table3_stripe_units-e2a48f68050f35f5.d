/root/repo/target/debug/deps/table3_stripe_units-e2a48f68050f35f5.d: crates/bench/src/bin/table3_stripe_units.rs

/root/repo/target/debug/deps/table3_stripe_units-e2a48f68050f35f5: crates/bench/src/bin/table3_stripe_units.rs

crates/bench/src/bin/table3_stripe_units.rs:
