/root/repo/target/debug/deps/ext_ablation-10a8f4d393654c3e.d: crates/bench/src/bin/ext_ablation.rs

/root/repo/target/debug/deps/ext_ablation-10a8f4d393654c3e: crates/bench/src/bin/ext_ablation.rs

crates/bench/src/bin/ext_ablation.rs:
