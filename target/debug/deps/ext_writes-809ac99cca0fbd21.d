/root/repo/target/debug/deps/ext_writes-809ac99cca0fbd21.d: crates/bench/src/bin/ext_writes.rs

/root/repo/target/debug/deps/ext_writes-809ac99cca0fbd21: crates/bench/src/bin/ext_writes.rs

crates/bench/src/bin/ext_writes.rs:
