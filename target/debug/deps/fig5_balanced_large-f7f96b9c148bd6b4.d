/root/repo/target/debug/deps/fig5_balanced_large-f7f96b9c148bd6b4.d: crates/bench/src/bin/fig5_balanced_large.rs

/root/repo/target/debug/deps/fig5_balanced_large-f7f96b9c148bd6b4: crates/bench/src/bin/fig5_balanced_large.rs

crates/bench/src/bin/fig5_balanced_large.rs:
