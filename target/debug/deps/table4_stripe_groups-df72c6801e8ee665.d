/root/repo/target/debug/deps/table4_stripe_groups-df72c6801e8ee665.d: crates/bench/src/bin/table4_stripe_groups.rs

/root/repo/target/debug/deps/table4_stripe_groups-df72c6801e8ee665: crates/bench/src/bin/table4_stripe_groups.rs

crates/bench/src/bin/table4_stripe_groups.rs:
