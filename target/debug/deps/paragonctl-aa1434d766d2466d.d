/root/repo/target/debug/deps/paragonctl-aa1434d766d2466d.d: crates/bench/src/bin/paragonctl.rs

/root/repo/target/debug/deps/paragonctl-aa1434d766d2466d: crates/bench/src/bin/paragonctl.rs

crates/bench/src/bin/paragonctl.rs:
