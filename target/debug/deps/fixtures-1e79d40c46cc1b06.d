/root/repo/target/debug/deps/fixtures-1e79d40c46cc1b06.d: crates/lint/tests/fixtures.rs

/root/repo/target/debug/deps/fixtures-1e79d40c46cc1b06: crates/lint/tests/fixtures.rs

crates/lint/tests/fixtures.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
