/root/repo/target/debug/deps/prop_equivalence-6450c07b9dfdafe4.d: tests/prop_equivalence.rs

/root/repo/target/debug/deps/prop_equivalence-6450c07b9dfdafe4: tests/prop_equivalence.rs

tests/prop_equivalence.rs:
