/root/repo/target/debug/deps/paragon_metrics-09b41e950426666a.d: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/hist.rs crates/metrics/src/json.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

/root/repo/target/debug/deps/paragon_metrics-09b41e950426666a: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/hist.rs crates/metrics/src/json.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/chart.rs:
crates/metrics/src/hist.rs:
crates/metrics/src/json.rs:
crates/metrics/src/record.rs:
crates/metrics/src/table.rs:
