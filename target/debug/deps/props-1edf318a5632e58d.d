/root/repo/target/debug/deps/props-1edf318a5632e58d.d: crates/ufs/tests/props.rs

/root/repo/target/debug/deps/props-1edf318a5632e58d: crates/ufs/tests/props.rs

crates/ufs/tests/props.rs:
