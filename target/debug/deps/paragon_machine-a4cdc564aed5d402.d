/root/repo/target/debug/deps/paragon_machine-a4cdc564aed5d402.d: crates/machine/src/lib.rs crates/machine/src/calib.rs crates/machine/src/machine.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_machine-a4cdc564aed5d402.rmeta: crates/machine/src/lib.rs crates/machine/src/calib.rs crates/machine/src/machine.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/calib.rs:
crates/machine/src/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
