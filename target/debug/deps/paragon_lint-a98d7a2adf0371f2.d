/root/repo/target/debug/deps/paragon_lint-a98d7a2adf0371f2.d: crates/lint/src/lib.rs crates/lint/src/rules.rs crates/lint/src/strip.rs crates/lint/src/x1.rs

/root/repo/target/debug/deps/libparagon_lint-a98d7a2adf0371f2.rlib: crates/lint/src/lib.rs crates/lint/src/rules.rs crates/lint/src/strip.rs crates/lint/src/x1.rs

/root/repo/target/debug/deps/libparagon_lint-a98d7a2adf0371f2.rmeta: crates/lint/src/lib.rs crates/lint/src/rules.rs crates/lint/src/strip.rs crates/lint/src/x1.rs

crates/lint/src/lib.rs:
crates/lint/src/rules.rs:
crates/lint/src/strip.rs:
crates/lint/src/x1.rs:
