/root/repo/target/debug/deps/mode_semantics-0af84d294651c21e.d: crates/pfs/tests/mode_semantics.rs

/root/repo/target/debug/deps/mode_semantics-0af84d294651c21e: crates/pfs/tests/mode_semantics.rs

crates/pfs/tests/mode_semantics.rs:
