/root/repo/target/debug/deps/ext_patterns-b19cbc5e8973d5bd.d: crates/bench/src/bin/ext_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libext_patterns-b19cbc5e8973d5bd.rmeta: crates/bench/src/bin/ext_patterns.rs Cargo.toml

crates/bench/src/bin/ext_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
