/root/repo/target/debug/deps/paragon_pfs-9cb8040ff605ae97.d: crates/pfs/src/lib.rs crates/pfs/src/client.rs crates/pfs/src/fs.rs crates/pfs/src/meta.rs crates/pfs/src/modes.rs crates/pfs/src/pointer.rs crates/pfs/src/proto.rs crates/pfs/src/server.rs crates/pfs/src/stripe.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_pfs-9cb8040ff605ae97.rmeta: crates/pfs/src/lib.rs crates/pfs/src/client.rs crates/pfs/src/fs.rs crates/pfs/src/meta.rs crates/pfs/src/modes.rs crates/pfs/src/pointer.rs crates/pfs/src/proto.rs crates/pfs/src/server.rs crates/pfs/src/stripe.rs Cargo.toml

crates/pfs/src/lib.rs:
crates/pfs/src/client.rs:
crates/pfs/src/fs.rs:
crates/pfs/src/meta.rs:
crates/pfs/src/modes.rs:
crates/pfs/src/pointer.rs:
crates/pfs/src/proto.rs:
crates/pfs/src/server.rs:
crates/pfs/src/stripe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
