/root/repo/target/debug/deps/ext_double_buffering-7dee830f09228b16.d: crates/bench/src/bin/ext_double_buffering.rs Cargo.toml

/root/repo/target/debug/deps/libext_double_buffering-7dee830f09228b16.rmeta: crates/bench/src/bin/ext_double_buffering.rs Cargo.toml

crates/bench/src/bin/ext_double_buffering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
