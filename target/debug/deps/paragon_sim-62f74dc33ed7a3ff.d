/root/repo/target/debug/deps/paragon_sim-62f74dc33ed7a3ff.d: crates/sim/src/lib.rs crates/sim/src/executor.rs crates/sim/src/fault.rs crates/sim/src/kernel.rs crates/sim/src/rng.rs crates/sim/src/sync/mod.rs crates/sim/src/sync/barrier.rs crates/sim/src/sync/channel.rs crates/sim/src/sync/oneshot.rs crates/sim/src/sync/semaphore.rs crates/sim/src/sync/signal.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/paragon_sim-62f74dc33ed7a3ff: crates/sim/src/lib.rs crates/sim/src/executor.rs crates/sim/src/fault.rs crates/sim/src/kernel.rs crates/sim/src/rng.rs crates/sim/src/sync/mod.rs crates/sim/src/sync/barrier.rs crates/sim/src/sync/channel.rs crates/sim/src/sync/oneshot.rs crates/sim/src/sync/semaphore.rs crates/sim/src/sync/signal.rs crates/sim/src/task.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/executor.rs:
crates/sim/src/fault.rs:
crates/sim/src/kernel.rs:
crates/sim/src/rng.rs:
crates/sim/src/sync/mod.rs:
crates/sim/src/sync/barrier.rs:
crates/sim/src/sync/channel.rs:
crates/sim/src/sync/oneshot.rs:
crates/sim/src/sync/semaphore.rs:
crates/sim/src/sync/signal.rs:
crates/sim/src/task.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
