/root/repo/target/debug/deps/paragon_machine-05d6f54d723ba0ae.d: crates/machine/src/lib.rs crates/machine/src/calib.rs crates/machine/src/machine.rs

/root/repo/target/debug/deps/libparagon_machine-05d6f54d723ba0ae.rlib: crates/machine/src/lib.rs crates/machine/src/calib.rs crates/machine/src/machine.rs

/root/repo/target/debug/deps/libparagon_machine-05d6f54d723ba0ae.rmeta: crates/machine/src/lib.rs crates/machine/src/calib.rs crates/machine/src/machine.rs

crates/machine/src/lib.rs:
crates/machine/src/calib.rs:
crates/machine/src/machine.rs:
