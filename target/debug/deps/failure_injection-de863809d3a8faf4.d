/root/repo/target/debug/deps/failure_injection-de863809d3a8faf4.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-de863809d3a8faf4: tests/failure_injection.rs

tests/failure_injection.rs:
