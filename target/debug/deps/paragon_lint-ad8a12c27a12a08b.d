/root/repo/target/debug/deps/paragon_lint-ad8a12c27a12a08b.d: crates/lint/src/lib.rs crates/lint/src/rules.rs crates/lint/src/strip.rs crates/lint/src/x1.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_lint-ad8a12c27a12a08b.rmeta: crates/lint/src/lib.rs crates/lint/src/rules.rs crates/lint/src/strip.rs crates/lint/src/x1.rs Cargo.toml

crates/lint/src/lib.rs:
crates/lint/src/rules.rs:
crates/lint/src/strip.rs:
crates/lint/src/x1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
