/root/repo/target/debug/deps/table2_access_times-f3daa2b61da05a60.d: crates/bench/src/bin/table2_access_times.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_access_times-f3daa2b61da05a60.rmeta: crates/bench/src/bin/table2_access_times.rs Cargo.toml

crates/bench/src/bin/table2_access_times.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
