/root/repo/target/debug/deps/paragon_disk-beb1b0d1379bfdc2.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/params.rs crates/disk/src/raid.rs crates/disk/src/store.rs

/root/repo/target/debug/deps/libparagon_disk-beb1b0d1379bfdc2.rlib: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/params.rs crates/disk/src/raid.rs crates/disk/src/store.rs

/root/repo/target/debug/deps/libparagon_disk-beb1b0d1379bfdc2.rmeta: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/params.rs crates/disk/src/raid.rs crates/disk/src/store.rs

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/params.rs:
crates/disk/src/raid.rs:
crates/disk/src/store.rs:
