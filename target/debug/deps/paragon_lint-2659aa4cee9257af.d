/root/repo/target/debug/deps/paragon_lint-2659aa4cee9257af.d: crates/lint/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libparagon_lint-2659aa4cee9257af.rmeta: crates/lint/src/main.rs Cargo.toml

crates/lint/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
