/root/repo/target/debug/deps/table3_stripe_units-1c25e3b1c77a24fc.d: crates/bench/src/bin/table3_stripe_units.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_stripe_units-1c25e3b1c77a24fc.rmeta: crates/bench/src/bin/table3_stripe_units.rs Cargo.toml

crates/bench/src/bin/table3_stripe_units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
