/root/repo/target/debug/deps/paragon_core-9d91e209b565a2df.d: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/engine.rs crates/core/src/predictor.rs crates/core/src/stats.rs crates/core/src/writeback.rs

/root/repo/target/debug/deps/paragon_core-9d91e209b565a2df: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/engine.rs crates/core/src/predictor.rs crates/core/src/stats.rs crates/core/src/writeback.rs

crates/core/src/lib.rs:
crates/core/src/buffer.rs:
crates/core/src/engine.rs:
crates/core/src/predictor.rs:
crates/core/src/stats.rs:
crates/core/src/writeback.rs:
