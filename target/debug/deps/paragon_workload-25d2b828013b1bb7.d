/root/repo/target/debug/deps/paragon_workload-25d2b828013b1bb7.d: crates/workload/src/lib.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/result.rs crates/workload/src/spans.rs

/root/repo/target/debug/deps/libparagon_workload-25d2b828013b1bb7.rlib: crates/workload/src/lib.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/result.rs crates/workload/src/spans.rs

/root/repo/target/debug/deps/libparagon_workload-25d2b828013b1bb7.rmeta: crates/workload/src/lib.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/result.rs crates/workload/src/spans.rs

crates/workload/src/lib.rs:
crates/workload/src/config.rs:
crates/workload/src/driver.rs:
crates/workload/src/result.rs:
crates/workload/src/spans.rs:
