/root/repo/target/debug/deps/ext_scsi16-31d1fe93334ed28b.d: crates/bench/src/bin/ext_scsi16.rs

/root/repo/target/debug/deps/ext_scsi16-31d1fe93334ed28b: crates/bench/src/bin/ext_scsi16.rs

crates/bench/src/bin/ext_scsi16.rs:
