/root/repo/target/debug/deps/props-574708c3a847e506.d: crates/mesh/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-574708c3a847e506.rmeta: crates/mesh/tests/props.rs Cargo.toml

crates/mesh/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
