/root/repo/target/debug/deps/rpc_stress-2678a9cd7dc85ba2.d: crates/os/tests/rpc_stress.rs Cargo.toml

/root/repo/target/debug/deps/librpc_stress-2678a9cd7dc85ba2.rmeta: crates/os/tests/rpc_stress.rs Cargo.toml

crates/os/tests/rpc_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
