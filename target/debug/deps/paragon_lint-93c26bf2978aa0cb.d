/root/repo/target/debug/deps/paragon_lint-93c26bf2978aa0cb.d: crates/lint/src/lib.rs crates/lint/src/rules.rs crates/lint/src/strip.rs crates/lint/src/x1.rs

/root/repo/target/debug/deps/paragon_lint-93c26bf2978aa0cb: crates/lint/src/lib.rs crates/lint/src/rules.rs crates/lint/src/strip.rs crates/lint/src/x1.rs

crates/lint/src/lib.rs:
crates/lint/src/rules.rs:
crates/lint/src/strip.rs:
crates/lint/src/x1.rs:
