/root/repo/target/debug/deps/fig5_balanced_large-ec93e064175ead15.d: crates/bench/src/bin/fig5_balanced_large.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_balanced_large-ec93e064175ead15.rmeta: crates/bench/src/bin/fig5_balanced_large.rs Cargo.toml

crates/bench/src/bin/fig5_balanced_large.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
