/root/repo/target/debug/deps/fig2_io_modes-fd0f835ff5219cbd.d: crates/bench/src/bin/fig2_io_modes.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_io_modes-fd0f835ff5219cbd.rmeta: crates/bench/src/bin/fig2_io_modes.rs Cargo.toml

crates/bench/src/bin/fig2_io_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
