/root/repo/target/debug/deps/ext_writes-90e112703bfa359d.d: crates/bench/src/bin/ext_writes.rs

/root/repo/target/debug/deps/ext_writes-90e112703bfa359d: crates/bench/src/bin/ext_writes.rs

crates/bench/src/bin/ext_writes.rs:
