/root/repo/target/debug/deps/paragonctl-6a9ab168614dd680.d: crates/bench/src/bin/paragonctl.rs

/root/repo/target/debug/deps/paragonctl-6a9ab168614dd680: crates/bench/src/bin/paragonctl.rs

crates/bench/src/bin/paragonctl.rs:
