/root/repo/target/debug/deps/table4_stripe_groups-5e070693499838e8.d: crates/bench/src/bin/table4_stripe_groups.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_stripe_groups-5e070693499838e8.rmeta: crates/bench/src/bin/table4_stripe_groups.rs Cargo.toml

crates/bench/src/bin/table4_stripe_groups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
