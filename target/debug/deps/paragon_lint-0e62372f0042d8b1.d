/root/repo/target/debug/deps/paragon_lint-0e62372f0042d8b1.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/paragon_lint-0e62372f0042d8b1: crates/lint/src/main.rs

crates/lint/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
