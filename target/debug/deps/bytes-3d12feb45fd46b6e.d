/root/repo/target/debug/deps/bytes-3d12feb45fd46b6e.d: crates/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-3d12feb45fd46b6e.rmeta: crates/bytes/src/lib.rs Cargo.toml

crates/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
