/root/repo/target/debug/deps/ext_depth_ablation-d7d5241bfad9006c.d: crates/bench/src/bin/ext_depth_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libext_depth_ablation-d7d5241bfad9006c.rmeta: crates/bench/src/bin/ext_depth_ablation.rs Cargo.toml

crates/bench/src/bin/ext_depth_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
