/root/repo/target/debug/deps/ext_double_buffering-629d9a5536cd8cd2.d: crates/bench/src/bin/ext_double_buffering.rs

/root/repo/target/debug/deps/ext_double_buffering-629d9a5536cd8cd2: crates/bench/src/bin/ext_double_buffering.rs

crates/bench/src/bin/ext_double_buffering.rs:
