/root/repo/target/debug/deps/paper_shapes-f10b56dc018c8656.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-f10b56dc018c8656: tests/paper_shapes.rs

tests/paper_shapes.rs:
