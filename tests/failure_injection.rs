//! Failure injection at the integration level: degraded hardware must
//! slow the system down, never corrupt it, and stay deterministic.

use std::rc::Rc;

use paragon::machine::{Machine, MachineConfig};
use paragon::pfs::{pattern_byte, pattern_slice, IoMode, OpenOptions, ParallelFs, StripeAttrs};
use paragon::prefetch::{PrefetchConfig, PrefetchingFile};
use paragon::sim::{Sim, SimDuration};

const KB: u64 = 1024;

/// Run 4 nodes reading a shared M_RECORD file with one RAID member of
/// I/O node 1 slowed by `factor`; returns (elapsed, data_ok, hits).
fn run_with_hotspot(factor: f64, prefetch: bool, seed: u64) -> (SimDuration, bool, u64) {
    let sim = Sim::new(seed);
    let machine = Rc::new(Machine::new(&sim, MachineConfig::paper_testbed()));
    if factor != 1.0 {
        machine.raid(1).set_member_slowdown(0, factor);
    }
    let pfs = ParallelFs::new(machine);
    let sim2 = sim.clone();
    let h = sim.spawn(async move {
        let id = pfs
            .create("/pfs/hot", StripeAttrs::across(8, 64 * KB))
            .await
            .unwrap();
        pfs.populate_with(id, 4 << 20, |i| pattern_byte(seed, i))
            .await
            .unwrap();
        let t0 = sim2.now();
        let mut tasks = Vec::new();
        for rank in 0..4usize {
            let f = pfs
                .open(rank, 4, id, IoMode::MRecord, OpenOptions::default())
                .unwrap();
            let sim3 = sim2.clone();
            tasks.push(sim2.spawn(async move {
                let reader = prefetch
                    .then(|| PrefetchingFile::new(f.clone(), PrefetchConfig::paper_prototype()));
                let mut ok = true;
                let mut hits = 0;
                for k in 0..16u64 {
                    let data = match &reader {
                        Some(pf) => pf.read(64 * 1024).await.unwrap(),
                        None => f.read(64 * 1024).await.unwrap(),
                    };
                    let at = (k * 4 + rank as u64) * 64 * KB;
                    ok &= data == pattern_slice(seed, at, 64 * 1024);
                    sim3.sleep(SimDuration::from_millis(20)).await;
                }
                if let Some(pf) = reader {
                    hits = pf.close().await.hits();
                }
                (ok, hits)
            }));
        }
        let mut ok = true;
        let mut hits = 0;
        for t in tasks {
            let (o, h) = t.await;
            ok &= o;
            hits += h;
        }
        (sim2.now().since(t0), ok, hits)
    });
    sim.run();
    h.try_take().expect("run finished")
}

#[test]
fn hotspot_slows_but_never_corrupts() {
    let (healthy, ok_h, _) = run_with_hotspot(1.0, false, 31);
    let (degraded, ok_d, _) = run_with_hotspot(8.0, false, 31);
    assert!(ok_h && ok_d, "hot spot corrupted data");
    assert!(
        degraded > healthy,
        "an 8x slower member must slow the collective: {healthy} !< {degraded}"
    );
}

#[test]
fn prefetching_stays_correct_under_degradation() {
    let (_, ok, hits) = run_with_hotspot(8.0, true, 32);
    assert!(ok, "prefetching corrupted data under a hot spot");
    assert!(hits > 0, "prefetching disengaged under a hot spot");
}

#[test]
fn degraded_runs_are_still_deterministic() {
    let a = run_with_hotspot(5.0, true, 33);
    let b = run_with_hotspot(5.0, true, 33);
    assert_eq!(a.0, b.0);
    assert_eq!(a.2, b.2);
}

#[test]
fn prefetch_buffer_pressure_wastes_but_never_corrupts() {
    // A one-slot prefetch list under a depth-4 pipeline: three of every
    // four prefetches are evicted unused. Data must stay exact.
    let sim = Sim::new(34);
    let machine = Rc::new(Machine::new(&sim, MachineConfig::tiny_instant(1, 2)));
    let pfs = ParallelFs::new(machine);
    let h = sim.spawn(async move {
        let id = pfs
            .create("/pfs/pressure", StripeAttrs::across(2, 16 * KB))
            .await
            .unwrap();
        pfs.populate_with(id, 2 << 20, |i| pattern_byte(9, i))
            .await
            .unwrap();
        let f = pfs
            .open(0, 1, id, IoMode::MAsync, OpenOptions::default())
            .unwrap();
        let mut cfg = PrefetchConfig::with_depth(4);
        cfg.max_buffers = 1;
        let pf = PrefetchingFile::new(f, cfg);
        let mut ok = true;
        for k in 0..16u64 {
            let data = pf.read(32 * 1024).await.unwrap();
            ok &= data == pattern_slice(9, k * 32 * KB, 32 * 1024);
        }
        let stats = pf.close().await;
        (ok, stats)
    });
    sim.run();
    let (ok, stats) = h.try_take().expect("finished");
    assert!(ok);
    assert!(stats.wasted > 0, "pressure must evict buffers: {stats:?}");
    // Evicting the pipeline cannot break correctness, only efficiency.
    assert_eq!(stats.demand_reads(), 16);
}

/// 2 nodes reading a shared M_RECORD file while I/O node 0 is crashed
/// for a window that starts mid-stream; returns (elapsed, data_ok).
fn run_with_ion_crash(seed: u64) -> (SimDuration, bool) {
    let sim = Sim::new(seed);
    let machine = Rc::new(Machine::new(&sim, MachineConfig::tiny_instant(2, 2)));
    let faults = sim.faults();
    faults.protect_node(machine.service_node().0 as u16);
    let crash = machine.io_node(0).0 as u16;
    let pfs = ParallelFs::new(machine);
    let sim2 = sim.clone();
    let h = sim.spawn(async move {
        let id = pfs
            .create("/pfs/crash", StripeAttrs::across(2, 16 * KB))
            .await
            .unwrap();
        pfs.populate_with(id, 1 << 20, |i| pattern_byte(seed, i))
            .await
            .unwrap();
        // Crash I/O node 0 for 30 virtual seconds starting now: requests
        // and replies to it vanish. The client's per-attempt deadline
        // (60 s on the instant calibration) outlasts the window, so the
        // first retry of every swallowed leg lands after the restart.
        let t0 = sim2.now();
        faults.crash_node(crash, t0, t0 + SimDuration::from_secs(30));
        faults.arm();
        let mut tasks = Vec::new();
        for rank in 0..2usize {
            let f = pfs
                .open(rank, 2, id, IoMode::MRecord, OpenOptions::default())
                .unwrap();
            tasks.push(sim2.spawn(async move {
                let mut ok = true;
                for k in 0..16u64 {
                    let data = f.read(32 * 1024).await.unwrap();
                    let at = (k * 2 + rank as u64) * 32 * KB;
                    ok &= data == pattern_slice(seed, at, 32 * 1024);
                }
                ok
            }));
        }
        let mut ok = true;
        for t in tasks {
            ok &= t.await;
        }
        (sim2.now().since(t0), ok)
    });
    sim.run();
    h.try_take().expect("run finished")
}

#[test]
fn mid_stream_ion_crash_recovers_with_correct_data() {
    let (elapsed, ok) = run_with_ion_crash(35);
    assert!(ok, "reads returned wrong data after the crash window");
    // Recovery is not free: at least one full attempt deadline was paid
    // waiting out a swallowed request before its retry landed.
    assert!(
        elapsed >= SimDuration::from_secs(60),
        "crash window never bit: elapsed {elapsed}"
    );
}

#[test]
fn ion_crash_recovery_is_deterministic() {
    let a = run_with_ion_crash(36);
    let b = run_with_ion_crash(36);
    assert!(a.1 && b.1);
    assert_eq!(a.0, b.0, "same-seed crash runs must match exactly");
}

// ---------------------------------------------------------------------
// Cross-I/O-node replication: RF=2 mounts must mask a mid-stream crash
// with replica failover while a token-bucket-throttled rebuild restores
// the lost copies under the foreground load.
// ---------------------------------------------------------------------

use paragon::machine::Calibration;
use paragon::pfs::Redundancy;
use paragon::sim::EventKind;
use paragon::workload::{run, AccessPattern, ExperimentConfig, FaultSpec, StripeLayout};

/// RF=2 M_RECORD workload on a 4+4 shape. The per-attempt RPC deadline
/// is shortened so the *first* read against a crashed node (the one that
/// discovers the crash and demotes the replica) pays a quarter second of
/// virtual time instead of the stock calibration's 10 s — while staying
/// comfortably above the healthy tail latency (~53 ms on this shape), so
/// no live request ever times out spuriously.
fn replicated_cfg(seed: u64) -> ExperimentConfig {
    let mut calib = Calibration::paragon_1995();
    calib.rpc_attempt_timeout = SimDuration::from_millis(250);
    ExperimentConfig {
        seed,
        compute_nodes: 4,
        io_nodes: 4,
        calib,
        mode: IoMode::MRecord,
        fast_path: true,
        stripe_unit: 64 * KB,
        layout: StripeLayout::Across { factor: 4 },
        request_size: 64 * 1024,
        file_size: 8 << 20,
        delay: SimDuration::ZERO,
        prefetch: None,
        access: AccessPattern::ModeDriven,
        separate_files: false,
        verify_data: true,
        trace_cap: 0,
        faults: FaultSpec::default(),
        redundancy: Redundancy::Replicated { rf: 2 },
        metrics_cadence: None,
        shards: None,
        workers: 1,
    }
}

/// Crash I/O node 1 just after the measured phase starts, for a window
/// that outlasts the foreground reads — the node is simply *gone* as far
/// as the workload is concerned.
fn crash_mid_stream(mut cfg: ExperimentConfig) -> ExperimentConfig {
    cfg.faults.ion_crash = Some((1, SimDuration::from_millis(50), SimDuration::from_secs(30)));
    cfg
}

#[test]
fn replicated_mount_masks_an_ion_crash() {
    // Two spare I/O nodes beyond the stripe group: replica placement
    // prefers them, so the crashed member's failover traffic lands on
    // otherwise-idle capacity instead of doubling a group neighbour's
    // load (which would cap degraded throughput at ~50% by itself).
    let widen = |mut c: ExperimentConfig| {
        c.io_nodes = 6;
        c
    };
    let healthy = run(&widen(replicated_cfg(40)));
    assert_eq!(healthy.read_errors, 0);
    assert_eq!(healthy.verify_failures, 0);
    assert!(healthy.rebuild.is_none(), "no crash, no rebuild");

    let crashed = run(&widen(crash_mid_stream(replicated_cfg(40))));
    // The whole point of RF=2: the crash is invisible to the application.
    assert_eq!(
        crashed.read_errors, 0,
        "replica failover must mask the crash"
    );
    assert_eq!(crashed.verify_failures, 0, "failover returned wrong bytes");
    assert!(
        crashed.replica_failovers > 0,
        "crash window never bit: no read ever abandoned the dead primary"
    );
    assert!(
        crashed.replica_reads > 0,
        "no read was served by a surviving replica"
    );
    // Online re-replication ran to completion within the run.
    let rb = crashed
        .rebuild
        .expect("a crash on a replicated mount must trigger re-replication");
    assert!(
        rb.slots_copied > 0,
        "rebuild found no under-replicated slots"
    );
    assert!(rb.bytes_copied > 0);
    assert_eq!(
        crashed.rebuild_pending, 0,
        "rebuild queue must drain to exactly zero"
    );
    // Degraded-mode cost bound: foreground bandwidth under failover plus
    // the concurrent rebuild keeps at least half the healthy baseline.
    let keep = crashed.bandwidth_mb_s() / healthy.bandwidth_mb_s();
    assert!(
        keep >= 0.5,
        "foreground kept only {:.0}% of healthy bandwidth during rebuild",
        keep * 100.0
    );
}

#[test]
fn replicated_crash_and_rebuild_are_deterministic() {
    let traced = || {
        let mut c = crash_mid_stream(replicated_cfg(41));
        c.trace_cap = 400_000;
        c
    };
    let a = run(&traced());
    let b = run(&traced());
    assert!(
        a.replica_failovers > 0 && a.rebuild.is_some(),
        "crash plus rebuild never happened; the test is vacuous"
    );
    assert_eq!(
        a.trace_hash, b.trace_hash,
        "same-seed replicated crash runs must be byte-identical"
    );
    assert_eq!(a.trace, b.trace, "event streams diverged");
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.replica_failovers, b.replica_failovers);
    assert_eq!(a.replica_reads, b.replica_reads);
    assert_eq!(a.rebuild, b.rebuild);
    assert_eq!(a.rebuild_pending, b.rebuild_pending);
}

#[test]
fn rebuild_trace_vocabulary_is_well_formed() {
    // The recovery events must tell a coherent story: one RebuildStart,
    // one RebuildCopy per re-replicated slot (bracketed by start/done),
    // one RebuildDone carrying the slot count, and one FaultNodeRecovered
    // for the crashed node once its window is over.
    let mut cfg = crash_mid_stream(replicated_cfg(42));
    cfg.trace_cap = 400_000;
    let r = run(&cfg);
    let rb = r.rebuild.expect("rebuild must have run");

    let of = |k: EventKind| -> Vec<&paragon::sim::TraceEvent> {
        r.trace.iter().filter(|e| e.kind == k).collect()
    };
    let starts = of(EventKind::RebuildStart);
    let copies = of(EventKind::RebuildCopy);
    let dones = of(EventKind::RebuildDone);
    assert_eq!(starts.len(), 1, "exactly one rebuild pass");
    assert_eq!(dones.len(), 1);
    assert_eq!(copies.len() as u64, rb.slots_copied);
    assert!(copies.iter().all(|c| c.time >= starts[0].time));
    assert!(copies.iter().all(|c| c.time <= dones[0].time));
    assert_eq!(
        dones[0].a, rb.slots_copied,
        "RebuildDone carries the slot count"
    );

    let recovered = of(EventKind::FaultNodeRecovered);
    assert_eq!(recovered.len(), 1, "the crashed node returns exactly once");
    assert!(
        recovered[0].b > 0,
        "FaultNodeRecovered must carry the measured degraded window"
    );
    assert!(
        !of(EventKind::ReplicaFailover).is_empty(),
        "no failover event despite a crash window"
    );
}

#[test]
fn replica_failover_read_emits_the_golden_trace() {
    // Minimal pinned scenario: one reader, three I/O nodes, RF=2, the
    // primary of slot 0 crashed. The read must be served by the surviving
    // copy and emit exactly one ReplicaFailover naming (slot 0 → ion 1).
    let sim = Sim::new(43);
    sim.tracer().arm(100_000);
    let machine = Rc::new(Machine::new(&sim, MachineConfig::tiny_instant(1, 3)));
    let faults = sim.faults();
    faults.protect_node(machine.service_node().0 as u16);
    let crash = machine.io_node(0).0 as u16;
    let pfs = ParallelFs::new_with_redundancy(machine, Redundancy::Replicated { rf: 2 });
    let sim2 = sim.clone();
    let h = sim.spawn(async move {
        let id = pfs
            .create("/pfs/golden", StripeAttrs::across(3, 16 * KB))
            .await
            .unwrap();
        pfs.populate_with(id, 96 * KB, |i| pattern_byte(43, i))
            .await
            .unwrap();
        let now = sim2.now();
        faults.crash_node(crash, now, now + SimDuration::from_secs(1_000_000));
        faults.arm();
        let f = pfs
            .open(0, 1, id, IoMode::MUnix, OpenOptions::default())
            .unwrap();
        let data = f.read(16 * 1024).await.unwrap();
        data == pattern_slice(43, 0, 16 * 1024)
    });
    sim.run();
    assert!(
        h.try_take().expect("run finished"),
        "failover read returned wrong bytes"
    );
    let golden: Vec<(EventKind, u64, u64)> = sim
        .tracer()
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::ReplicaFailover)
        .map(|e| (e.kind, e.a, e.b))
        .collect();
    assert_eq!(
        golden,
        vec![(EventKind::ReplicaFailover, 0, 1)],
        "slot 0's read must abandon crashed ion 0 for the copy on ion 1"
    );
}

/// Rebuild-storm smoke (also run as a CI stage): crash 1 of 16 I/O nodes
/// under RF=2 and make sure the foreground completes cleanly while the
/// storm of re-replication copies drains behind it.
#[test]
fn rebuild_storm_smoke_sixteen_ions() {
    let mut cfg = replicated_cfg(44);
    cfg.compute_nodes = 8;
    cfg.io_nodes = 16;
    cfg.layout = StripeLayout::Across { factor: 16 };
    cfg.file_size = 16 << 20;
    cfg.faults.ion_crash = Some((3, SimDuration::from_millis(20), SimDuration::from_secs(60)));
    let r = run(&cfg);
    assert_eq!(r.read_errors, 0, "foreground saw a read error");
    assert_eq!(r.verify_failures, 0, "foreground saw corrupt data");
    assert!(
        r.replica_failovers > 0 && r.replica_reads > 0,
        "replica counters must be nonzero under a crash: {} failovers / {} reads",
        r.replica_failovers,
        r.replica_reads
    );
    let rb = r.rebuild.expect("storm must trigger re-replication");
    assert!(rb.slots_copied > 0 && rb.bytes_copied > 0);
    assert_eq!(r.rebuild_pending, 0, "rebuild queue did not drain");
}
