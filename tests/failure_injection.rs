//! Failure injection at the integration level: degraded hardware must
//! slow the system down, never corrupt it, and stay deterministic.

use std::rc::Rc;

use paragon::machine::{Machine, MachineConfig};
use paragon::pfs::{pattern_byte, pattern_slice, IoMode, OpenOptions, ParallelFs, StripeAttrs};
use paragon::prefetch::{PrefetchConfig, PrefetchingFile};
use paragon::sim::{Sim, SimDuration};

const KB: u64 = 1024;

/// Run 4 nodes reading a shared M_RECORD file with one RAID member of
/// I/O node 1 slowed by `factor`; returns (elapsed, data_ok, hits).
fn run_with_hotspot(factor: f64, prefetch: bool, seed: u64) -> (SimDuration, bool, u64) {
    let sim = Sim::new(seed);
    let machine = Rc::new(Machine::new(&sim, MachineConfig::paper_testbed()));
    if factor != 1.0 {
        machine.raid(1).set_member_slowdown(0, factor);
    }
    let pfs = ParallelFs::new(machine);
    let sim2 = sim.clone();
    let h = sim.spawn(async move {
        let id = pfs
            .create("/pfs/hot", StripeAttrs::across(8, 64 * KB))
            .await
            .unwrap();
        pfs.populate_with(id, 4 << 20, |i| pattern_byte(seed, i))
            .await
            .unwrap();
        let t0 = sim2.now();
        let mut tasks = Vec::new();
        for rank in 0..4usize {
            let f = pfs
                .open(rank, 4, id, IoMode::MRecord, OpenOptions::default())
                .unwrap();
            let sim3 = sim2.clone();
            tasks.push(sim2.spawn(async move {
                let reader = prefetch
                    .then(|| PrefetchingFile::new(f.clone(), PrefetchConfig::paper_prototype()));
                let mut ok = true;
                let mut hits = 0;
                for k in 0..16u64 {
                    let data = match &reader {
                        Some(pf) => pf.read(64 * 1024).await.unwrap(),
                        None => f.read(64 * 1024).await.unwrap(),
                    };
                    let at = (k * 4 + rank as u64) * 64 * KB;
                    ok &= data == pattern_slice(seed, at, 64 * 1024);
                    sim3.sleep(SimDuration::from_millis(20)).await;
                }
                if let Some(pf) = reader {
                    hits = pf.close().await.hits();
                }
                (ok, hits)
            }));
        }
        let mut ok = true;
        let mut hits = 0;
        for t in tasks {
            let (o, h) = t.await;
            ok &= o;
            hits += h;
        }
        (sim2.now().since(t0), ok, hits)
    });
    sim.run();
    h.try_take().expect("run finished")
}

#[test]
fn hotspot_slows_but_never_corrupts() {
    let (healthy, ok_h, _) = run_with_hotspot(1.0, false, 31);
    let (degraded, ok_d, _) = run_with_hotspot(8.0, false, 31);
    assert!(ok_h && ok_d, "hot spot corrupted data");
    assert!(
        degraded > healthy,
        "an 8x slower member must slow the collective: {healthy} !< {degraded}"
    );
}

#[test]
fn prefetching_stays_correct_under_degradation() {
    let (_, ok, hits) = run_with_hotspot(8.0, true, 32);
    assert!(ok, "prefetching corrupted data under a hot spot");
    assert!(hits > 0, "prefetching disengaged under a hot spot");
}

#[test]
fn degraded_runs_are_still_deterministic() {
    let a = run_with_hotspot(5.0, true, 33);
    let b = run_with_hotspot(5.0, true, 33);
    assert_eq!(a.0, b.0);
    assert_eq!(a.2, b.2);
}

#[test]
fn prefetch_buffer_pressure_wastes_but_never_corrupts() {
    // A one-slot prefetch list under a depth-4 pipeline: three of every
    // four prefetches are evicted unused. Data must stay exact.
    let sim = Sim::new(34);
    let machine = Rc::new(Machine::new(&sim, MachineConfig::tiny_instant(1, 2)));
    let pfs = ParallelFs::new(machine);
    let h = sim.spawn(async move {
        let id = pfs
            .create("/pfs/pressure", StripeAttrs::across(2, 16 * KB))
            .await
            .unwrap();
        pfs.populate_with(id, 2 << 20, |i| pattern_byte(9, i))
            .await
            .unwrap();
        let f = pfs
            .open(0, 1, id, IoMode::MAsync, OpenOptions::default())
            .unwrap();
        let mut cfg = PrefetchConfig::with_depth(4);
        cfg.max_buffers = 1;
        let pf = PrefetchingFile::new(f, cfg);
        let mut ok = true;
        for k in 0..16u64 {
            let data = pf.read(32 * 1024).await.unwrap();
            ok &= data == pattern_slice(9, k * 32 * KB, 32 * 1024);
        }
        let stats = pf.close().await;
        (ok, stats)
    });
    sim.run();
    let (ok, stats) = h.try_take().expect("finished");
    assert!(ok);
    assert!(stats.wasted > 0, "pressure must evict buffers: {stats:?}");
    // Evicting the pipeline cannot break correctness, only efficiency.
    assert_eq!(stats.demand_reads(), 16);
}

/// 2 nodes reading a shared M_RECORD file while I/O node 0 is crashed
/// for a window that starts mid-stream; returns (elapsed, data_ok).
fn run_with_ion_crash(seed: u64) -> (SimDuration, bool) {
    let sim = Sim::new(seed);
    let machine = Rc::new(Machine::new(&sim, MachineConfig::tiny_instant(2, 2)));
    let faults = sim.faults();
    faults.protect_node(machine.service_node().0 as u16);
    let crash = machine.io_node(0).0 as u16;
    let pfs = ParallelFs::new(machine);
    let sim2 = sim.clone();
    let h = sim.spawn(async move {
        let id = pfs
            .create("/pfs/crash", StripeAttrs::across(2, 16 * KB))
            .await
            .unwrap();
        pfs.populate_with(id, 1 << 20, |i| pattern_byte(seed, i))
            .await
            .unwrap();
        // Crash I/O node 0 for 30 virtual seconds starting now: requests
        // and replies to it vanish. The client's per-attempt deadline
        // (60 s on the instant calibration) outlasts the window, so the
        // first retry of every swallowed leg lands after the restart.
        let t0 = sim2.now();
        faults.crash_node(crash, t0, t0 + SimDuration::from_secs(30));
        faults.arm();
        let mut tasks = Vec::new();
        for rank in 0..2usize {
            let f = pfs
                .open(rank, 2, id, IoMode::MRecord, OpenOptions::default())
                .unwrap();
            tasks.push(sim2.spawn(async move {
                let mut ok = true;
                for k in 0..16u64 {
                    let data = f.read(32 * 1024).await.unwrap();
                    let at = (k * 2 + rank as u64) * 32 * KB;
                    ok &= data == pattern_slice(seed, at, 32 * 1024);
                }
                ok
            }));
        }
        let mut ok = true;
        for t in tasks {
            ok &= t.await;
        }
        (sim2.now().since(t0), ok)
    });
    sim.run();
    h.try_take().expect("run finished")
}

#[test]
fn mid_stream_ion_crash_recovers_with_correct_data() {
    let (elapsed, ok) = run_with_ion_crash(35);
    assert!(ok, "reads returned wrong data after the crash window");
    // Recovery is not free: at least one full attempt deadline was paid
    // waiting out a swallowed request before its retry landed.
    assert!(
        elapsed >= SimDuration::from_secs(60),
        "crash window never bit: elapsed {elapsed}"
    );
}

#[test]
fn ion_crash_recovery_is_deterministic() {
    let a = run_with_ion_crash(36);
    let b = run_with_ion_crash(36);
    assert!(a.1 && b.1);
    assert_eq!(a.0, b.0, "same-seed crash runs must match exactly");
}
