//! The paper's qualitative findings, asserted as tests. These run the
//! real 1995 calibration on reduced file sizes, so every claim the
//! experiment binaries print is also enforced by `cargo test`.

use paragon::pfs::IoMode;
use paragon::sim::SimDuration;
use paragon::workload::{run, ExperimentConfig, StripeLayout};

/// The paper's testbed with a smaller file (2 MB/node) so debug-mode
/// tests stay fast.
fn testbed(request: u32) -> ExperimentConfig {
    ExperimentConfig::paper_iobound(request, 2)
}

#[test]
fn iobound_prefetching_gives_no_significant_benefit() {
    // Table 1: no computation to overlap ⇒ bandwidths comparable, with a
    // slight penalty from the buffer copy and issue overhead.
    for sz in [64 * 1024u32, 256 * 1024] {
        let no_pf = run(&testbed(sz));
        let pf = run(&testbed(sz).with_prefetch());
        let ratio = pf.bandwidth_mb_s() / no_pf.bandwidth_mb_s();
        assert!(
            (0.85..=1.05).contains(&ratio),
            "{} KB: I/O-bound prefetch ratio {ratio} out of band",
            sz / 1024
        );
        assert!(ratio <= 1.01, "prefetching must not win without overlap");
    }
}

#[test]
fn iobound_hits_are_inflight_not_ready() {
    // "The prefetch request ... does not have a significant head start":
    // the hits exist but the data is still in flight when demanded.
    let pf = run(&testbed(64 * 1024).with_prefetch());
    assert!(pf.prefetch.hits_inflight > 0);
    assert!(pf.prefetch.hits_inflight > 10 * pf.prefetch.hits_ready.max(1));
}

#[test]
fn balanced_workload_prefetching_wins_when_delay_matches_read_time() {
    // Figures 4: at 64 KB the read costs ~40 ms; a 25 ms compute phase
    // overlaps almost fully.
    let mut cfg = testbed(64 * 1024);
    cfg.delay = SimDuration::from_millis(25);
    let no_pf = run(&cfg);
    let pf = run(&cfg.clone().with_prefetch());
    let gain = pf.bandwidth_mb_s() / no_pf.bandwidth_mb_s();
    assert!(
        gain > 1.25,
        "expected a significant balanced win, got {gain}"
    );
    // With delay < T the hit is typically still in flight — "even if at
    // the time of a read request the data is not available ... if most of
    // the read is already done, the performance benefits can be
    // tremendous".
    assert!(pf.prefetch.hits_inflight > 0);

    // Once the delay exceeds the read time, the prefetch completes inside
    // the compute phase and the hits arrive *ready*.
    let mut cfg = testbed(64 * 1024);
    cfg.delay = SimDuration::from_millis(60);
    let pf = run(&cfg.with_prefetch());
    assert!(pf.prefetch.hits_ready > pf.prefetch.hits_inflight);
}

#[test]
fn large_requests_see_no_overlap_from_small_delays() {
    // Figure 5: T(1024 KB) ≈ 0.45 s dwarfs a 0.1 s delay.
    let mut cfg = testbed(1024 * 1024);
    cfg.delay = SimDuration::from_millis(100);
    let no_pf = run(&cfg);
    let pf = run(&cfg.clone().with_prefetch());
    let gain = pf.bandwidth_mb_s() / no_pf.bandwidth_mb_s();
    assert!(
        (0.85..1.15).contains(&gain),
        "no significant gain expected at 1024 KB with 0.1 s delay, got {gain}"
    );
}

#[test]
fn read_access_time_grows_with_request_size() {
    // Table 2, including the 0.45 s anchor at 1024 KB.
    let mut last = SimDuration::ZERO;
    for sz in [64 * 1024u32, 256 * 1024, 1024 * 1024] {
        let r = run(&testbed(sz));
        let t = r.read_time_mean();
        assert!(t > last, "access time must grow with request size");
        last = t;
    }
    let t = last.as_secs_f64();
    assert!(
        (0.3..0.6).contains(&t),
        "1024 KB access time {t:.3}s misses the paper's ~0.45 s anchor"
    );
}

#[test]
fn striping_across_eight_beats_eight_ways_on_one() {
    // Table 4.
    let wide = run(&testbed(256 * 1024).with_prefetch());
    let mut narrow_cfg = testbed(256 * 1024).with_prefetch();
    narrow_cfg.layout = StripeLayout::WaysOnOne { ways: 8, ion: 0 };
    let narrow = run(&narrow_cfg);
    let speedup = wide.bandwidth_mb_s() / narrow.bandwidth_mb_s();
    assert!(
        speedup > 2.0,
        "8-node stripe group should win big: {speedup}"
    );
}

#[test]
fn mode_ordering_matches_figure_2() {
    let bw = |mode: IoMode| {
        let mut cfg = testbed(64 * 1024);
        cfg.mode = mode;
        run(&cfg).bandwidth_mb_s()
    };
    let unix = bw(IoMode::MUnix);
    let sync = bw(IoMode::MSync);
    let log = bw(IoMode::MLog);
    let record = bw(IoMode::MRecord);
    let r#async = bw(IoMode::MAsync);
    assert!(unix < sync, "M_UNIX serializes: {unix} !< {sync}");
    assert!(sync < record, "M_SYNC coordinates: {sync} !< {record}");
    assert!(
        log < record,
        "M_LOG pays the pointer server: {log} !< {record}"
    );
    assert!(
        record <= r#async * 1.01,
        "M_RECORD bookkeeping: {record} !<= {async}"
    );
}

#[test]
fn prefetch_benefits_are_evenly_distributed() {
    // "The prefetching benefits should be equally distributed amongst the
    // processors in order to see an overall benefit."
    let mut cfg = testbed(64 * 1024);
    cfg.delay = SimDuration::from_millis(25);
    let pf = run(&cfg.with_prefetch());
    assert!(
        pf.node_imbalance() < 0.15,
        "per-node bandwidths spread too wide: {:?}",
        pf.per_node_bandwidths()
    );
}

#[test]
fn full_machine_512x64_smoke_is_deterministic_and_bounded() {
    // Paper §5 future work, scaled to a full 512-node Paragon with 64
    // I/O nodes (the 8:1 oversubscription the EXT-SCALING sweep tops out
    // at). A small per-node file (128 KB) bounds memory and keeps the
    // debug-mode run inside a tight wall-clock budget — the point is
    // that the calendar-queue/slab-executor engine turns over a
    // half-thousand-task event population briskly, and that the run is
    // byte-reproducible at full machine scale.
    let started = std::time::Instant::now();
    let mut cfg =
        ExperimentConfig::paper_balanced(64 * 1024, SimDuration::from_millis(25)).with_prefetch();
    cfg.compute_nodes = 512;
    cfg.io_nodes = 64;
    cfg.layout = StripeLayout::Across { factor: 64 };
    cfg.file_size = 512 * 128 * 1024;
    let r = run(&cfg);
    assert_eq!(r.total_bytes, 512 * 128 * 1024);
    assert_eq!(r.per_node.len(), 512);
    assert!(r.per_node.iter().all(|n| n.reads == 2));
    assert_eq!(r.verify_failures, 0);
    assert_eq!(r.read_errors, 0);
    // Committed golden: the prefetch hit summary, the simulated elapsed
    // time, and the event-trace hash of the whole run. Any scheduler or
    // protocol change that perturbs the event stream at full scale shows
    // up here first; the hit counters pin the oversubscribed-shape
    // behavior the EXT-SCALING sweep reports (one prefetch per node
    // lands, the second read of each 2-read script hits).
    assert_eq!(
        (
            r.prefetch.issued,
            r.prefetch.hits_ready,
            r.prefetch.hits_inflight
        ),
        GOLDEN_512X64.0,
        "prefetch summary"
    );
    assert_eq!(r.elapsed, SimDuration::from_nanos(GOLDEN_512X64.1));
    assert_eq!(
        r.trace_hash, GOLDEN_512X64.2,
        "trace hash {:#x}",
        r.trace_hash
    );
    // Wall-clock budget (generous: debug builds on slow CI hosts). The
    // release-mode engine does this shape in well under a second.
    let budget = std::time::Duration::from_secs(120);
    let spent = started.elapsed();
    assert!(spent < budget, "512x64 smoke took {spent:?}");
}

/// `((prefetches issued, ready hits, in-flight hits), elapsed simulated
/// ns, trace hash)` for the 512×64 smoke shape. Regenerate by running
/// the test and copying the values it prints on mismatch.
const GOLDEN_512X64: ((u64, u64, u64), u64, u64) =
    ((512, 0, 512), 475_957_416, 0x7e91_f634_c304_7ab5);

#[test]
fn prefetching_hides_latency_it_claims_to_hide() {
    // The engine's overlap accounting must be consistent: latency hidden
    // can never exceed (issued prefetches × max single read time).
    let mut cfg = testbed(64 * 1024);
    cfg.delay = SimDuration::from_millis(25);
    let pf = run(&cfg.with_prefetch());
    let max_read = pf.per_node.iter().map(|n| n.read_time_max).max().unwrap();
    let bound = max_read * pf.prefetch.issued.max(1);
    assert!(pf.prefetch.overlap_saved > SimDuration::ZERO);
    assert!(pf.prefetch.overlap_saved < bound);
}
