//! Cross-layer flight-recorder tests: the trace a run records must be
//! causally ordered across every layer, reproducible bit-for-bit under
//! the same seed, and rich enough to reconstruct the paper's Table-2
//! access-time decomposition from the events alone.

use std::rc::Rc;

use paragon::machine::{Calibration, Machine, MachineConfig};
use paragon::pfs::{pattern_byte, IoMode, OpenOptions, ParallelFs, StripeAttrs};
use paragon::prefetch::{PrefetchConfig, PrefetchingFile};
use paragon::sim::{export_json, hash_events, EventKind, Sim, TraceEvent};
use paragon::workload::{read_spans, run, ExperimentConfig, SpanKind};

const KB: u64 = 1024;

/// One M_RECORD read with prefetching on, on a 1-compute / 2-I/O-node
/// machine with the 1995 calibration, fully traced.
fn golden_trace() -> Vec<TraceEvent> {
    let sim = Sim::new(11);
    sim.tracer().arm(1 << 16);
    let machine = Rc::new(Machine::new(
        &sim,
        MachineConfig {
            compute_nodes: 1,
            io_nodes: 2,
            calib: Calibration::paragon_1995(),
        },
    ));
    let pfs = ParallelFs::new(machine);
    let h = sim.spawn(async move {
        let id = pfs
            .create("/pfs/golden", StripeAttrs::across(2, 64 * KB))
            .await
            .unwrap();
        pfs.populate_with(id, 512 * KB, |i| pattern_byte(13, i))
            .await
            .unwrap();
        let f = pfs
            .open(0, 1, id, IoMode::MRecord, OpenOptions::default())
            .unwrap();
        let pf = PrefetchingFile::new(f, PrefetchConfig::paper_prototype());
        // A single-stripe-unit request: one server, one causal chain.
        pf.read(16 * 1024).await.unwrap();
        pf.close().await
    });
    sim.run();
    h.try_take().expect("golden read completed");
    sim.tracer().events()
}

/// Index of the first event of `kind` for request `req`.
fn pos(events: &[TraceEvent], req: u64, kind: EventKind) -> usize {
    events
        .iter()
        .position(|e| e.req == req && e.kind == kind)
        .unwrap_or_else(|| panic!("no {kind:?} for req {req}"))
}

#[test]
fn golden_read_events_are_causally_ordered_across_layers() {
    let events = golden_trace();
    // The demand read is the request that both missed the prefetch list
    // and completed a read.
    let demand = events
        .iter()
        .find(|e| e.kind == EventKind::PrefetchMiss)
        .expect("first read misses")
        .req;
    assert!(
        events
            .iter()
            .any(|e| e.req == demand && e.kind == EventKind::ReadDone),
        "demand read completed under the same request id"
    );
    // Client → mesh → server → disk → server → mesh → client, each
    // boundary strictly after the previous one in the recording.
    let chain = [
        EventKind::PrefetchMiss,
        EventKind::ReadStart,
        EventKind::NetTx,
        EventKind::NetRx,
        EventKind::ServeStart,
        EventKind::DiskStart,
        EventKind::DiskDone,
        EventKind::ServeDone,
        EventKind::ReadDone,
    ];
    let positions: Vec<usize> = chain.iter().map(|&k| pos(&events, demand, k)).collect();
    for (w, pair) in positions.windows(2).enumerate() {
        assert!(
            pair[0] < pair[1],
            "{:?} (at {}) must precede {:?} (at {})",
            chain[w],
            pair[0],
            chain[w + 1],
            pair[1]
        );
    }
    // The reply leg: a second NetRx lands after the server finishes.
    let serve_done = pos(&events, demand, EventKind::ServeDone);
    assert!(
        events
            .iter()
            .enumerate()
            .any(|(i, e)| i > serve_done && e.req == demand && e.kind == EventKind::NetRx),
        "reply message delivered back to the client"
    );
    // The prefetch the engine issued rides the ART under its own id.
    let pf_req = events
        .iter()
        .find(|e| e.kind == EventKind::PrefetchIssue)
        .expect("engine issued a prefetch")
        .req;
    assert_ne!(pf_req, demand, "prefetch gets its own request id");
    assert!(
        pos(&events, pf_req, EventKind::PrefetchIssue) < pos(&events, pf_req, EventKind::ArtSubmit),
        "prefetch is issued before it is handed to an ART"
    );
}

/// Table-1 I/O-bound workload with the recorder armed.
fn traced_table1() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_iobound(64 * 1024, 1).with_prefetch();
    cfg.trace_cap = 1 << 20;
    cfg
}

#[test]
fn same_seed_table1_runs_export_byte_identical_traces() {
    let a = run(&traced_table1());
    let b = run(&traced_table1());
    assert!(!a.trace.is_empty(), "recorder was armed");
    assert_eq!(hash_events(&a.trace), hash_events(&b.trace));
    assert_eq!(export_json(&a.trace), export_json(&b.trace));
    // A different seed must not reproduce the recording.
    let mut other = traced_table1();
    other.seed += 1;
    let c = run(&other);
    assert_ne!(hash_events(&a.trace), hash_events(&c.trace));
}

#[test]
fn trace_derived_decomposition_matches_measured_latency() {
    // No prefetching: every application read is a traced demand span, so
    // the trace-derived end-to-end times must agree with the driver's
    // own measurement.
    let mut cfg = ExperimentConfig::paper_iobound(64 * 1024, 1);
    cfg.trace_cap = 1 << 20;
    let r = run(&cfg);
    let spans: Vec<_> = read_spans(&r.trace)
        .into_iter()
        .filter(|s| s.kind != SpanKind::Prefetch)
        .collect();
    assert!(!spans.is_empty(), "demand reads were reconstructed");
    // Phases partition each span exactly — the decomposition never
    // loses or invents time.
    for s in &spans {
        assert_eq!(s.request + s.service + s.disk + s.reply, s.total());
        assert!(s.disk.as_secs_f64() > 0.0, "I/O-bound reads touch disk");
    }
    // And the reconstructed mean matches the driver's measured mean
    // access time to within 1%.
    let trace_mean =
        spans.iter().map(|s| s.total().as_secs_f64()).sum::<f64>() / spans.len() as f64;
    let measured = r.read_time_mean().as_secs_f64();
    let rel = (trace_mean - measured).abs() / measured;
    assert!(
        rel < 0.01,
        "trace mean {trace_mean:.6}s vs measured {measured:.6}s (rel {rel:.4})"
    );
}
