//! Config matrix shared by the determinism and parallel-equivalence
//! suites: one named config per EXT axis, frozen so both suites pin the
//! same behaviours.
#![allow(dead_code)] // each test binary uses its own subset

use paragon::machine::Calibration;
use paragon::pfs::{IoMode, Redundancy};
use paragon::sim::SimDuration;
use paragon::workload::{AccessPattern, ExperimentConfig, FaultSpec, StripeLayout};

/// The suites' small 4×2 shape: 4 MB shared file, 64 KB requests,
/// 5 ms think time.
pub fn cfg(seed: u64, mode: IoMode) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        compute_nodes: 4,
        io_nodes: 2,
        calib: Calibration::paragon_1995(),
        mode,
        fast_path: true,
        stripe_unit: 64 * 1024,
        layout: StripeLayout::Across { factor: 2 },
        request_size: 64 * 1024,
        file_size: 4 << 20,
        delay: SimDuration::from_millis(5),
        prefetch: None,
        access: AccessPattern::ModeDriven,
        separate_files: false,
        verify_data: false,
        trace_cap: 0,
        faults: FaultSpec::default(),
        redundancy: Redundancy::None,
        metrics_cadence: None,
        shards: None,
        workers: 1,
    }
}

/// One named config per EXT axis: every mode, every access pattern,
/// prefetch on/off, both stripe layouts, the buffered mount, fault
/// injection, and a larger scaling shape.
pub fn ext_matrix() -> Vec<(&'static str, ExperimentConfig)> {
    let mut m = vec![
        ("mrecord", cfg(11, IoMode::MRecord)),
        ("mrecord-pf", cfg(11, IoMode::MRecord).with_prefetch()),
        ("munix", cfg(12, IoMode::MUnix)),
        ("msync", cfg(13, IoMode::MSync)),
        ("mlog", cfg(14, IoMode::MLog)),
        ("masync-pf", cfg(15, IoMode::MAsync).with_prefetch()),
        ("mglobal-pf", cfg(16, IoMode::MGlobal).with_prefetch()),
    ];
    let mut c = cfg(17, IoMode::MAsync).with_prefetch();
    c.access = AccessPattern::Random;
    m.push(("random-pf", c));
    let mut c = cfg(18, IoMode::MAsync).with_prefetch();
    c.access = AccessPattern::Strided { stride: 256 * 1024 };
    m.push(("strided-pf", c));
    let mut c = cfg(19, IoMode::MAsync).with_prefetch();
    c.access = AccessPattern::Reread { passes: 2 };
    c.fast_path = false;
    m.push(("reread-buffered-pf", c));
    let mut c = cfg(20, IoMode::MRecord).with_prefetch();
    c.layout = StripeLayout::WaysOnOne { ways: 2, ion: 0 };
    m.push(("ways-on-one-pf", c));
    let mut c = cfg(21, IoMode::MRecord).with_prefetch();
    c.faults = FaultSpec {
        disk_error_pm: 20,
        mesh_drop_pm: 5,
        mesh_dup_pm: 5,
        mesh_delay_pm: 10,
        mesh_delay: SimDuration::from_micros(300),
        ..FaultSpec::default()
    };
    c.verify_data = true;
    m.push(("faulted-verified-pf", c));
    let mut c = cfg(22, IoMode::MRecord).with_prefetch();
    c.compute_nodes = 8;
    c.io_nodes = 4;
    c.delay = SimDuration::from_millis(25);
    m.push(("scaling-8x4-pf", c));
    m
}
