//! The parallel kernel is an equivalence, not an approximation: at a
//! fixed shard count, the merged result is a pure function of
//! `(seed, config)` — the host-thread count maps worlds to threads and
//! nothing else. Every EXT-matrix config (all six I/O modes, every
//! access pattern, prefetch, both stripe layouts, the buffered mount,
//! mesh/disk fault injection) plus a faults-armed crash-and-rebuild run
//! must produce byte-identical traces, metrics, and per-node results at
//! `--workers 1` and `--workers 4` when forced onto four shard worlds.

mod common;

use common::{cfg, ext_matrix};
use paragon::machine::Calibration;
use paragon::pfs::{IoMode, Redundancy};
use paragon::sim::SimDuration;
use paragon::workload::{run, ExperimentConfig, RunResult, StripeLayout};

/// Force `c` onto four shard worlds with the recorder armed, driven by
/// `workers` host threads.
fn sharded(mut c: ExperimentConfig, workers: usize) -> ExperimentConfig {
    c.shards = Some(4);
    c.workers = workers;
    if c.trace_cap == 0 {
        c.trace_cap = 200_000;
    }
    c
}

/// Byte-level comparison of two runs of the same sharded config.
fn assert_equivalent(name: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.trace_hash, b.trace_hash, "{name}: trace hash diverged");
    assert_eq!(a.trace, b.trace, "{name}: recorded event streams diverged");
    assert_eq!(a.elapsed, b.elapsed, "{name}: simulated time diverged");
    assert_eq!(a.total_bytes, b.total_bytes, "{name}: bytes diverged");
    assert_eq!(a.read_errors, b.read_errors, "{name}: read errors diverged");
    assert_eq!(
        a.verify_failures, b.verify_failures,
        "{name}: verification diverged"
    );
    assert_eq!(a.per_node.len(), b.per_node.len(), "{name}");
    for (na, nb) in a.per_node.iter().zip(&b.per_node) {
        assert_eq!(na.rank, nb.rank, "{name}: rank order diverged");
        assert_eq!(na.reads, nb.reads, "{name}: rank {} reads", na.rank);
        assert_eq!(na.bytes, nb.bytes, "{name}: rank {} bytes", na.rank);
        assert_eq!(
            na.read_time_total, nb.read_time_total,
            "{name}: rank {} timing",
            na.rank
        );
    }
    assert_eq!(
        a.prefetch.hits(),
        b.prefetch.hits(),
        "{name}: prefetch hits diverged"
    );
    assert_eq!(a.prefetch.wasted, b.prefetch.wasted, "{name}");
    assert_eq!(
        a.fault.disk_transients, b.fault.disk_transients,
        "{name}: injected disk faults diverged"
    );
    assert_eq!(
        a.fault.mesh_dropped, b.fault.mesh_dropped,
        "{name}: injected mesh faults diverged"
    );
    assert_eq!(a.disk.requests, b.disk.requests, "{name}: disk requests");
    assert_eq!(
        a.disk.max_queue_depth, b.disk.max_queue_depth,
        "{name}: disk queue depth"
    );
    assert_eq!(a.metrics, b.metrics, "{name}: metrics snapshot diverged");
}

#[test]
fn every_ext_config_is_worker_invariant_on_four_shards() {
    for (name, base) in ext_matrix() {
        let a = run(&sharded(base.clone(), 1));
        let b = run(&sharded(base, 4));
        assert_equivalent(name, &a, &b);
        assert!(!a.trace.is_empty(), "{name}: recorder never fired");
    }
}

#[test]
fn instrumented_run_is_worker_invariant() {
    // The telemetry sampler ticks per world and the merged snapshot
    // (pointwise-summed gauges, summed counters, rebuilt histograms)
    // must not see the thread count either.
    let mut c = cfg(31, IoMode::MRecord).with_prefetch();
    c.metrics_cadence = Some(SimDuration::from_millis(5));
    let a = run(&sharded(c.clone(), 1));
    let b = run(&sharded(c, 4));
    assert_equivalent("instrumented", &a, &b);
    let m = a.metrics.expect("sampler armed but no snapshot");
    assert!(!m.times_ns.is_empty(), "merged snapshot lost its timeline");
    assert!(
        m.hists.contains_key("read.time_s"),
        "merged snapshot lost the access-time histogram"
    );
}

/// Frozen trace hash and simulated time of the 1024×128 full-machine
/// smoke below, captured at the tier's introduction. The shape
/// auto-shards onto four worlds, so this pins the *merged* parallel
/// kernel output: a mismatch means the shard cut, epoch schedule, or
/// merge reordered something — not that the golden needs regenerating.
const GOLDEN_1024X128: (u64, u64) = (0xa80c32023a1eb70e, 3_754_046_001);

#[test]
#[ignore = "full-machine smoke; run in release by scripts/ci.sh === parallel"]
fn full_machine_1024x128_pins_the_merged_golden() {
    let mut c = cfg(42, IoMode::MRecord);
    c.compute_nodes = 1024;
    c.io_nodes = 128;
    c.layout = StripeLayout::Across { factor: 128 };
    c.file_size = 1024 << 20; // 1 MB per compute node
    c.delay = SimDuration::from_millis(25);
    c.workers = 0; // all host cores; cannot affect the bytes
    assert_eq!(
        c.resolved_shards(),
        4,
        "1024 CNs must auto-shard onto four worlds"
    );
    let r = run(&c);
    assert_eq!(r.total_bytes, 1 << 30, "coverage lost across the cut");
    assert_eq!(r.verify_failures, 0);
    assert_eq!(r.read_errors, 0);
    assert_eq!(r.per_node.len(), 1024);
    let (hash, elapsed_ns) = GOLDEN_1024X128;
    assert_eq!(
        r.trace_hash, hash,
        "merged trace hash diverged (got {:#018x})",
        r.trace_hash
    );
    assert_eq!(
        r.elapsed,
        SimDuration::from_nanos(elapsed_ns),
        "simulated time diverged (got {} ns)",
        r.elapsed.as_nanos()
    );
}

#[test]
fn crash_and_rebuild_are_worker_invariant() {
    // The hardest case: an I/O-node crash under RF=2 replication with
    // the recovery coordinator re-replicating *across the shard cut*
    // (each target I/O node lives in a different world than the
    // coordinator) while foreground reads fail over. Still byte-equal.
    let mut calib = Calibration::paragon_1995();
    calib.rpc_attempt_timeout = SimDuration::from_millis(250);
    let mut c = cfg(44, IoMode::MRecord);
    c.calib = calib;
    c.io_nodes = 4;
    c.layout = StripeLayout::Across { factor: 4 };
    c.file_size = 8 << 20;
    c.delay = SimDuration::ZERO;
    c.verify_data = true;
    c.redundancy = Redundancy::Replicated { rf: 2 };
    c.faults.ion_crash = Some((1, SimDuration::from_millis(50), SimDuration::from_secs(30)));
    let a = run(&sharded(c.clone(), 1));
    let b = run(&sharded(c, 4));
    assert_equivalent("crash-rebuild", &a, &b);
    // And the run must exercise what it claims to: failover masked the
    // crash, the rebuild actually copied data, and the queue drained.
    assert_eq!(a.read_errors, 0, "replica failover must mask the crash");
    assert_eq!(a.verify_failures, 0, "failover returned wrong bytes");
    assert!(a.replica_failovers > 0, "crash window never bit");
    let (ra, rb) = (
        a.rebuild.expect("no rebuild ran"),
        b.rebuild.expect("no rebuild ran"),
    );
    assert_eq!(ra.slots_copied, rb.slots_copied);
    assert_eq!(ra.bytes_copied, rb.bytes_copied);
    assert!(ra.slots_copied > 0 && ra.bytes_copied > 0);
    assert_eq!(a.rebuild_pending, 0, "rebuild queue did not drain");
    assert_eq!(b.rebuild_pending, 0);
}
