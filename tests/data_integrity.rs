//! End-to-end data integrity: every byte an application reads must be the
//! byte that was written, through striping, all six I/O modes, Fast Path
//! and buffered servers, and the prefetch engine.

use paragon::machine::Calibration;
use paragon::pfs::{IoMode, Redundancy};
use paragon::sim::SimDuration;
use paragon::workload::{run, AccessPattern, ExperimentConfig, FaultSpec, StripeLayout};

fn base(mode: IoMode) -> ExperimentConfig {
    ExperimentConfig {
        seed: 11,
        compute_nodes: 4,
        io_nodes: 3,
        calib: Calibration::instant(),
        mode,
        fast_path: true,
        stripe_unit: 16 * 1024,
        layout: StripeLayout::Across { factor: 3 },
        request_size: 32 * 1024,
        file_size: 2 << 20,
        delay: SimDuration::ZERO,
        prefetch: None,
        access: AccessPattern::ModeDriven,
        separate_files: false,
        verify_data: true,
        trace_cap: 0,
        faults: FaultSpec::default(),
        redundancy: Redundancy::None,
        metrics_cadence: None,
        shards: None,
        workers: 1,
    }
}

#[test]
fn every_mode_delivers_correct_bytes() {
    for mode in IoMode::all() {
        let r = run(&base(mode));
        assert_eq!(r.verify_failures, 0, "corruption under {mode}");
        assert!(r.total_bytes > 0);
    }
}

#[test]
fn prefetching_never_changes_the_data() {
    for mode in [IoMode::MRecord, IoMode::MAsync, IoMode::MGlobal] {
        let r = run(&base(mode).with_prefetch());
        assert_eq!(r.verify_failures, 0, "prefetch corruption under {mode}");
        assert!(
            r.prefetch.hits() > 0,
            "prefetching never engaged under {mode}"
        );
    }
}

#[test]
fn buffered_servers_deliver_correct_bytes() {
    let mut cfg = base(IoMode::MRecord);
    cfg.fast_path = false;
    let r = run(&cfg);
    assert_eq!(r.verify_failures, 0);
}

#[test]
fn realistic_calibration_delivers_correct_bytes() {
    let mut cfg = base(IoMode::MRecord).with_prefetch();
    cfg.calib = Calibration::paragon_1995();
    cfg.stripe_unit = 64 * 1024;
    cfg.request_size = 64 * 1024;
    let r = run(&cfg);
    assert_eq!(r.verify_failures, 0);
}

#[test]
fn odd_request_and_stripe_sizes_stay_correct() {
    // Unaligned everything: 24 KB requests over 10 KB stripe units.
    let mut cfg = base(IoMode::MRecord);
    cfg.stripe_unit = 10 * 1024;
    cfg.request_size = 24 * 1024;
    cfg.file_size = 24 * 1024 * 4 * 8; // 8 rounds
    let r = run(&cfg);
    assert_eq!(r.verify_failures, 0);
    // The servers must have noticed the partial blocks.
    let pf = run(&{
        let mut c = cfg.clone();
        c = c.with_prefetch();
        c
    });
    assert_eq!(pf.verify_failures, 0);
}

#[test]
fn strided_and_random_patterns_stay_correct_with_prefetch() {
    for access in [
        AccessPattern::Strided { stride: 96 * 1024 },
        AccessPattern::Random,
        AccessPattern::Reread { passes: 2 },
    ] {
        let mut cfg = base(IoMode::MAsync).with_prefetch();
        cfg.access = access;
        let r = run(&cfg);
        assert_eq!(r.verify_failures, 0, "corruption under {access:?}");
    }
}

#[test]
fn separate_files_have_independent_content() {
    let mut cfg = base(IoMode::MAsync);
    cfg.separate_files = true;
    cfg.file_size = 512 * 1024;
    let r = run(&cfg);
    assert_eq!(r.verify_failures, 0);
    assert_eq!(r.total_bytes, 4 * 512 * 1024);
}
