//! The reproduction's central safety property, tested property-style:
//! **enabling prefetching never changes the bytes an application reads**,
//! for arbitrary access scripts, stripe shapes, and machine sizes.

use std::rc::Rc;

use paragon::machine::{Machine, MachineConfig};
use paragon::pfs::{pattern_byte, IoMode, OpenOptions, ParallelFs, StripeAttrs};
use paragon::prefetch::{PrefetchConfig, PrefetchingFile};
use paragon::sim::{Rng, Sim};

/// One node's access script: a list of read sizes (mode-driven offsets).
#[derive(Debug, Clone)]
struct Script {
    mode: IoMode,
    nprocs: usize,
    stripe_unit: u64,
    io_nodes: usize,
    reads: Vec<u32>,
    depth: u32,
}

fn random_script(rng: &mut Rng) -> Script {
    let mode = [IoMode::MRecord, IoMode::MAsync, IoMode::MGlobal][rng.range_usize(0..3)];
    let stripe_unit = [4096u64, 10_000, 65_536][rng.range_usize(0..3)];
    Script {
        mode,
        nprocs: rng.range_usize(1..5),
        stripe_unit,
        io_nodes: rng.range_usize(1..4),
        reads: (0..rng.range_usize(1..12))
            .map(|_| rng.range_u64(1..40_000) as u32)
            .collect(),
        depth: rng.range_u64(1..4) as u32,
    }
}

/// Run one node's script and return the concatenated bytes it read.
fn run_script(s: &Script, prefetch: bool) -> Vec<u8> {
    // M_RECORD requires equal request sizes: collapse to the first size.
    let reads: Vec<u32> = if s.mode.requires_equal_sizes() {
        vec![s.reads[0]; s.reads.len()]
    } else {
        s.reads.clone()
    };
    // Size the file so every mode-driven offset is in range.
    let max_read = *reads.iter().max().unwrap() as u64;
    let file_size = (reads.len() as u64 + 2) * max_read * s.nprocs as u64;

    let sim = Sim::new(77);
    let machine = Rc::new(Machine::new(
        &sim,
        MachineConfig::tiny_instant(s.nprocs, s.io_nodes),
    ));
    let pfs = ParallelFs::new(machine);
    let s2 = s.clone();
    let h = sim.spawn(async move {
        let attrs = StripeAttrs::across(s2.io_nodes, s2.stripe_unit);
        let file = pfs.create("/pfs/prop", attrs).await.unwrap();
        pfs.populate_with(file, file_size, |i| pattern_byte(13, i))
            .await
            .unwrap();
        // Exercise rank nprocs-1 (the interesting stride for M_RECORD).
        let f = pfs
            .open(
                s2.nprocs - 1,
                s2.nprocs,
                file,
                s2.mode,
                OpenOptions::default(),
            )
            .unwrap();
        let mut out = Vec::new();
        if prefetch {
            let mut cfg = PrefetchConfig::with_depth(s2.depth);
            cfg.copy_bw = 1e12;
            let pf = PrefetchingFile::new(f, cfg);
            for len in &reads {
                out.extend_from_slice(&pf.read(*len).await.unwrap());
            }
            pf.close().await;
        } else {
            for len in &reads {
                out.extend_from_slice(&f.read(*len).await.unwrap());
            }
        }
        out
    });
    sim.run();
    h.try_take().expect("script completed")
}

/// The kernel's future event list, tested property-style against the
/// obvious reference: the calendar queue must be observably identical to
/// a binary heap keyed on `(time, seq)` — same peeks, same pops, same
/// cancels, same lengths — across arbitrary interleavings of clustered,
/// far-future, and below-frontier pushes that drive its resize, frontier
/// lap, and direct-search fallback paths.
mod calendar_vs_heap {
    use paragon::sim::{CalendarQueue, Rng, SimTime};
    use std::cmp::Reverse;
    use std::collections::{BTreeMap, BinaryHeap};

    /// Reference model: a min binary heap over `(time, seq)` with a side
    /// map for payloads; cancellation is lazy deletion at the head.
    #[derive(Default)]
    struct RefHeap {
        heap: BinaryHeap<Reverse<(u64, u64)>>,
        live: BTreeMap<(u64, u64), u64>,
    }

    impl RefHeap {
        fn push(&mut self, t: u64, seq: u64, item: u64) {
            self.heap.push(Reverse((t, seq)));
            self.live.insert((t, seq), item);
        }
        fn settle(&mut self) {
            while let Some(Reverse(k)) = self.heap.peek() {
                if self.live.contains_key(k) {
                    break;
                }
                self.heap.pop();
            }
        }
        fn peek(&mut self) -> Option<(u64, u64)> {
            self.settle();
            self.heap.peek().map(|Reverse(k)| *k)
        }
        fn pop(&mut self) -> Option<(u64, u64, u64)> {
            self.settle();
            let Reverse(k) = self.heap.pop()?;
            let item = self.live.remove(&k).expect("settled head is live");
            Some((k.0, k.1, item))
        }
        fn cancel(&mut self, t: u64, seq: u64) -> Option<u64> {
            self.live.remove(&(t, seq))
        }
        fn random_live_key(&self, rng: &mut Rng) -> Option<(u64, u64)> {
            if self.live.is_empty() {
                return None;
            }
            let n = rng.range_usize(0..self.live.len());
            self.live.keys().nth(n).copied()
        }
    }

    #[test]
    fn calendar_queue_matches_binary_heap_reference() {
        let mut rng = Rng::seed_from_u64(0xca1e);
        let n_cases = if cfg!(feature = "heavy-tests") {
            64
        } else {
            16
        };
        for case in 0..n_cases {
            let mut cal = CalendarQueue::new();
            let mut reference = RefHeap::default();
            let mut seq = 0u64;
            // Pushes cluster around the last popped time so the drain
            // frontier keeps chasing live buckets.
            let mut now = 0u64;
            for op in 0..800 {
                match rng.range_usize(0..12) {
                    // Clustered pushes; quantizing to a coarse grid makes
                    // equal timestamps common, exercising the FIFO seq
                    // tie-break within one bucket.
                    0..=4 => {
                        let mut t = now + rng.range_u64(0..2_000_000);
                        if rng.gen_bool(0.5) {
                            t = t / 500_000 * 500_000;
                        }
                        cal.push(SimTime::from_nanos(t), seq, seq);
                        reference.push(t, seq, seq);
                        seq += 1;
                    }
                    // Far-future push: more than a whole bucket lap away,
                    // forcing the direct-search fallback and a resize
                    // retune on the next rebuild.
                    5 => {
                        let t = now + 4_000_000_000_000 + rng.range_u64(0..1_000_000);
                        cal.push(SimTime::from_nanos(t), seq, seq);
                        reference.push(t, seq, seq);
                        seq += 1;
                    }
                    // Below-frontier push (timestamps may sit behind the
                    // frontier after a far-future pop).
                    6 => {
                        let t = now / 2;
                        cal.push(SimTime::from_nanos(t), seq, seq);
                        reference.push(t, seq, seq);
                        seq += 1;
                    }
                    7..=9 => {
                        let got = cal.pop().map(|(t, s, v)| (t.as_nanos(), s, v));
                        let want = reference.pop();
                        assert_eq!(got, want, "case {case} op {op}: pop diverged");
                        if let Some((t, _, _)) = got {
                            now = t;
                        }
                    }
                    10 => {
                        let got = cal.peek().map(|(t, s)| (t.as_nanos(), s));
                        assert_eq!(got, reference.peek(), "case {case} op {op}: peek diverged");
                    }
                    // Cancel: half the time an existing key, half a key
                    // that was never scheduled (or already popped).
                    _ => {
                        let (t, s) = if rng.gen_bool(0.5) {
                            reference.random_live_key(&mut rng).unwrap_or((1, u64::MAX))
                        } else {
                            (now + rng.range_u64(0..1000), u64::MAX - seq)
                        };
                        assert_eq!(
                            cal.cancel(SimTime::from_nanos(t), s),
                            reference.cancel(t, s),
                            "case {case} op {op}: cancel diverged"
                        );
                    }
                }
                assert_eq!(cal.len(), reference.live.len());
                assert_eq!(cal.is_empty(), reference.live.is_empty());
            }
            // Drain both to empty: total order must match exactly (this
            // sweeps every surviving entry through shrink rebuilds too).
            loop {
                let got = cal.pop().map(|(t, s, v)| (t.as_nanos(), s, v));
                let want = reference.pop();
                assert_eq!(got, want, "case {case}: drain diverged");
                if got.is_none() {
                    break;
                }
            }
        }
    }
}

#[test]
fn prefetching_is_invisible_to_the_application() {
    let mut rng = Rng::seed_from_u64(0xe9a1);
    let n_cases = if cfg!(feature = "heavy-tests") {
        192
    } else {
        24
    };
    for _ in 0..n_cases {
        let s = random_script(&mut rng);
        let plain = run_script(&s, false);
        let prefetched = run_script(&s, true);
        assert_eq!(plain, prefetched, "prefetching changed data: {s:?}");
    }
}
