//! The reproduction's central safety property, tested property-style:
//! **enabling prefetching never changes the bytes an application reads**,
//! for arbitrary access scripts, stripe shapes, and machine sizes.

use std::rc::Rc;

use proptest::prelude::*;

use paragon::machine::{Machine, MachineConfig};
use paragon::pfs::{pattern_byte, IoMode, OpenOptions, ParallelFs, StripeAttrs};
use paragon::prefetch::{PrefetchConfig, PrefetchingFile};
use paragon::sim::Sim;

/// One node's access script: a list of read sizes (mode-driven offsets).
#[derive(Debug, Clone)]
struct Script {
    mode: IoMode,
    nprocs: usize,
    stripe_unit: u64,
    io_nodes: usize,
    reads: Vec<u32>,
    depth: u32,
}

fn scripts() -> impl Strategy<Value = Script> {
    (
        prop_oneof![
            Just(IoMode::MRecord),
            Just(IoMode::MAsync),
            Just(IoMode::MGlobal)
        ],
        1usize..5,
        prop_oneof![Just(4096u64), Just(10_000), Just(65_536)],
        1usize..4,
        prop::collection::vec(1u32..40_000, 1..12),
        1u32..4,
    )
        .prop_map(|(mode, nprocs, stripe_unit, io_nodes, reads, depth)| Script {
            mode,
            nprocs,
            stripe_unit,
            io_nodes,
            reads,
            depth,
        })
}

/// Run one node's script and return the concatenated bytes it read.
fn run_script(s: &Script, prefetch: bool) -> Vec<u8> {
    // M_RECORD requires equal request sizes: collapse to the first size.
    let reads: Vec<u32> = if s.mode.requires_equal_sizes() {
        vec![s.reads[0]; s.reads.len()]
    } else {
        s.reads.clone()
    };
    // Size the file so every mode-driven offset is in range.
    let max_read = *reads.iter().max().unwrap() as u64;
    let file_size = (reads.len() as u64 + 2) * max_read * s.nprocs as u64;

    let sim = Sim::new(77);
    let machine = Rc::new(Machine::new(
        &sim,
        MachineConfig::tiny_instant(s.nprocs, s.io_nodes),
    ));
    let pfs = ParallelFs::new(machine);
    let s2 = s.clone();
    let h = sim.spawn(async move {
        let attrs = StripeAttrs::across(s2.io_nodes, s2.stripe_unit);
        let file = pfs.create("/pfs/prop", attrs).await.unwrap();
        pfs.populate_with(file, file_size, |i| pattern_byte(13, i))
            .await
            .unwrap();
        // Exercise rank nprocs-1 (the interesting stride for M_RECORD).
        let f = pfs
            .open(
                s2.nprocs - 1,
                s2.nprocs,
                file,
                s2.mode,
                OpenOptions::default(),
            )
            .unwrap();
        let mut out = Vec::new();
        if prefetch {
            let mut cfg = PrefetchConfig::with_depth(s2.depth);
            cfg.copy_bw = 1e12;
            let pf = PrefetchingFile::new(f, cfg);
            for len in &reads {
                out.extend_from_slice(&pf.read(*len).await.unwrap());
            }
            pf.close().await;
        } else {
            for len in &reads {
                out.extend_from_slice(&f.read(*len).await.unwrap());
            }
        }
        out
    });
    sim.run();
    h.try_take().expect("script completed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prefetching_is_invisible_to_the_application(s in scripts()) {
        let plain = run_script(&s, false);
        let prefetched = run_script(&s, true);
        prop_assert_eq!(plain, prefetched, "prefetching changed data: {:?}", s);
    }
}
