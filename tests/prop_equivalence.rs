//! The reproduction's central safety property, tested property-style:
//! **enabling prefetching never changes the bytes an application reads**,
//! for arbitrary access scripts, stripe shapes, and machine sizes.

use std::rc::Rc;

use paragon::machine::{Machine, MachineConfig};
use paragon::pfs::{pattern_byte, IoMode, OpenOptions, ParallelFs, StripeAttrs};
use paragon::prefetch::{PrefetchConfig, PrefetchingFile};
use paragon::sim::{Rng, Sim};

/// One node's access script: a list of read sizes (mode-driven offsets).
#[derive(Debug, Clone)]
struct Script {
    mode: IoMode,
    nprocs: usize,
    stripe_unit: u64,
    io_nodes: usize,
    reads: Vec<u32>,
    depth: u32,
}

fn random_script(rng: &mut Rng) -> Script {
    let mode = [IoMode::MRecord, IoMode::MAsync, IoMode::MGlobal][rng.range_usize(0..3)];
    let stripe_unit = [4096u64, 10_000, 65_536][rng.range_usize(0..3)];
    Script {
        mode,
        nprocs: rng.range_usize(1..5),
        stripe_unit,
        io_nodes: rng.range_usize(1..4),
        reads: (0..rng.range_usize(1..12))
            .map(|_| rng.range_u64(1..40_000) as u32)
            .collect(),
        depth: rng.range_u64(1..4) as u32,
    }
}

/// Run one node's script and return the concatenated bytes it read.
fn run_script(s: &Script, prefetch: bool) -> Vec<u8> {
    // M_RECORD requires equal request sizes: collapse to the first size.
    let reads: Vec<u32> = if s.mode.requires_equal_sizes() {
        vec![s.reads[0]; s.reads.len()]
    } else {
        s.reads.clone()
    };
    // Size the file so every mode-driven offset is in range.
    let max_read = *reads.iter().max().unwrap() as u64;
    let file_size = (reads.len() as u64 + 2) * max_read * s.nprocs as u64;

    let sim = Sim::new(77);
    let machine = Rc::new(Machine::new(
        &sim,
        MachineConfig::tiny_instant(s.nprocs, s.io_nodes),
    ));
    let pfs = ParallelFs::new(machine);
    let s2 = s.clone();
    let h = sim.spawn(async move {
        let attrs = StripeAttrs::across(s2.io_nodes, s2.stripe_unit);
        let file = pfs.create("/pfs/prop", attrs).await.unwrap();
        pfs.populate_with(file, file_size, |i| pattern_byte(13, i))
            .await
            .unwrap();
        // Exercise rank nprocs-1 (the interesting stride for M_RECORD).
        let f = pfs
            .open(
                s2.nprocs - 1,
                s2.nprocs,
                file,
                s2.mode,
                OpenOptions::default(),
            )
            .unwrap();
        let mut out = Vec::new();
        if prefetch {
            let mut cfg = PrefetchConfig::with_depth(s2.depth);
            cfg.copy_bw = 1e12;
            let pf = PrefetchingFile::new(f, cfg);
            for len in &reads {
                out.extend_from_slice(&pf.read(*len).await.unwrap());
            }
            pf.close().await;
        } else {
            for len in &reads {
                out.extend_from_slice(&f.read(*len).await.unwrap());
            }
        }
        out
    });
    sim.run();
    h.try_take().expect("script completed")
}

#[test]
fn prefetching_is_invisible_to_the_application() {
    let mut rng = Rng::seed_from_u64(0xe9a1);
    let n_cases = if cfg!(feature = "heavy-tests") {
        192
    } else {
        24
    };
    for _ in 0..n_cases {
        let s = random_script(&mut rng);
        let plain = run_script(&s, false);
        let prefetched = run_script(&s, true);
        assert_eq!(plain, prefetched, "prefetching changed data: {s:?}");
    }
}
