//! Reproducibility: a `(seed, config)` pair fully determines a run — the
//! event-trace hash, the bandwidths, the prefetch counters, everything.
//! This is what makes the experiment tables regenerable bit-for-bit.

mod common;

use common::{cfg, ext_matrix};
use paragon::pfs::IoMode;
use paragon::sim::SimDuration;
use paragon::workload::{run, AccessPattern, FaultSpec};

/// Trace hashes of the EXT matrix captured from the *seed* scheduler (the
/// `BinaryHeap` kernel + `BTreeMap` executor at commit 65113e2). The
/// calendar-queue/slab engine must pop every event in the identical
/// `(time, seq)` order, so these hashes are frozen: a mismatch means the
/// scheduler reordered something, not that the goldens need regenerating.
const SEED_SCHEDULER_GOLDENS: &[(&str, u64)] = &[
    ("mrecord", 0x01792f033b8531d4),
    ("mrecord-pf", 0xeb377a239bebea41),
    ("munix", 0x847fc12c4cc463f0),
    ("msync", 0x97f34e90e4c61ae7),
    ("mlog", 0xd0c1a0260d94ef9a),
    ("masync-pf", 0x1e5a60d27dd6f77d),
    ("mglobal-pf", 0x4f8f3ca8bfedaa6a),
    ("random-pf", 0x33d25d187a5bf712),
    ("strided-pf", 0x400071833569d341),
    ("reread-buffered-pf", 0xe0d9f9d147f50dd2),
    ("ways-on-one-pf", 0x4152b98bb7d5a3a3),
    ("faulted-verified-pf", 0xf237b18eccd5117a),
    ("scaling-8x4-pf", 0x73e8fcc3e4a9a1bd),
];

#[test]
fn fast_path_engine_matches_seed_scheduler_byte_for_byte() {
    let matrix = ext_matrix();
    assert_eq!(matrix.len(), SEED_SCHEDULER_GOLDENS.len());
    for ((name, cfg), (gname, golden)) in matrix.into_iter().zip(SEED_SCHEDULER_GOLDENS) {
        assert_eq!(name, *gname);
        let r = run(&cfg);
        assert_eq!(
            r.trace_hash, *golden,
            "{name}: event order diverged from the seed scheduler"
        );
    }
}

#[test]
fn identical_configs_reproduce_exactly() {
    for mode in [IoMode::MRecord, IoMode::MUnix, IoMode::MGlobal] {
        let a = run(&cfg(42, mode));
        let b = run(&cfg(42, mode));
        assert_eq!(a.trace_hash, b.trace_hash, "{mode} trace diverged");
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.total_bytes, b.total_bytes);
        for (na, nb) in a.per_node.iter().zip(&b.per_node) {
            assert_eq!(na.read_time_total, nb.read_time_total);
        }
    }
}

#[test]
fn prefetch_counters_reproduce_exactly() {
    let a = run(&cfg(7, IoMode::MRecord).with_prefetch());
    let b = run(&cfg(7, IoMode::MRecord).with_prefetch());
    assert_eq!(a.trace_hash, b.trace_hash);
    assert_eq!(a.prefetch.hits_ready, b.prefetch.hits_ready);
    assert_eq!(a.prefetch.hits_inflight, b.prefetch.hits_inflight);
    assert_eq!(a.prefetch.overlap_saved, b.prefetch.overlap_saved);
}

#[test]
fn faulted_runs_reproduce_exactly() {
    // The fault plan draws from the same master seed as everything else,
    // so a run with disk errors, mesh chaos, and retries is just as
    // reproducible as a clean one — including every recovery action.
    let faulted = |seed| {
        let mut c = cfg(seed, IoMode::MRecord).with_prefetch();
        c.faults = FaultSpec {
            disk_error_pm: 20,
            mesh_drop_pm: 5,
            mesh_dup_pm: 5,
            mesh_delay_pm: 10,
            mesh_delay: SimDuration::from_micros(300),
            ..FaultSpec::default()
        };
        c.trace_cap = 200_000;
        c
    };
    let a = run(&faulted(1234));
    let b = run(&faulted(1234));
    assert!(
        a.fault.disk_transients
            + a.fault.mesh_dropped
            + a.fault.mesh_duplicated
            + a.fault.mesh_delayed
            > 0,
        "fault plan never fired; the test is vacuous"
    );
    assert_eq!(a.trace_hash, b.trace_hash, "faulted trace diverged");
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.fault.disk_transients, b.fault.disk_transients);
    assert_eq!(a.fault.mesh_dropped, b.fault.mesh_dropped);
    assert_eq!(a.prefetch.faults, b.prefetch.faults);
}

#[test]
fn different_seeds_diverge_under_realistic_calibration() {
    // Seek jitter and server-time jitter draw from the seed, so two seeds
    // must produce different (but internally consistent) traces.
    let a = run(&cfg(1, IoMode::MRecord));
    let b = run(&cfg(2, IoMode::MRecord));
    assert_ne!(a.trace_hash, b.trace_hash);
    // Yet the results must be close: jitter is noise, not behaviour.
    let ratio = a.bandwidth_mb_s() / b.bandwidth_mb_s();
    assert!(
        (0.8..1.25).contains(&ratio),
        "seeds changed behaviour, not just noise: {ratio}"
    );
}

#[test]
fn random_access_pattern_is_seeded() {
    let mut c = cfg(9, IoMode::MAsync);
    c.access = AccessPattern::Random;
    let a = run(&c);
    let b = run(&c);
    assert_eq!(a.trace_hash, b.trace_hash);
}
