//! Reproducibility: a `(seed, config)` pair fully determines a run — the
//! event-trace hash, the bandwidths, the prefetch counters, everything.
//! This is what makes the experiment tables regenerable bit-for-bit.

use paragon::machine::Calibration;
use paragon::pfs::{IoMode, Redundancy};
use paragon::sim::SimDuration;
use paragon::workload::{run, AccessPattern, ExperimentConfig, FaultSpec, StripeLayout};

fn cfg(seed: u64, mode: IoMode) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        compute_nodes: 4,
        io_nodes: 2,
        calib: Calibration::paragon_1995(),
        mode,
        fast_path: true,
        stripe_unit: 64 * 1024,
        layout: StripeLayout::Across { factor: 2 },
        request_size: 64 * 1024,
        file_size: 4 << 20,
        delay: SimDuration::from_millis(5),
        prefetch: None,
        access: AccessPattern::ModeDriven,
        separate_files: false,
        verify_data: false,
        trace_cap: 0,
        faults: FaultSpec::default(),
        redundancy: Redundancy::None,
        metrics_cadence: None,
    }
}

/// One named config per EXT axis: every mode, every access pattern,
/// prefetch on/off, both stripe layouts, the buffered mount, fault
/// injection, and a larger scaling shape.
fn ext_matrix() -> Vec<(&'static str, ExperimentConfig)> {
    let mut m = vec![
        ("mrecord", cfg(11, IoMode::MRecord)),
        ("mrecord-pf", cfg(11, IoMode::MRecord).with_prefetch()),
        ("munix", cfg(12, IoMode::MUnix)),
        ("msync", cfg(13, IoMode::MSync)),
        ("mlog", cfg(14, IoMode::MLog)),
        ("masync-pf", cfg(15, IoMode::MAsync).with_prefetch()),
        ("mglobal-pf", cfg(16, IoMode::MGlobal).with_prefetch()),
    ];
    let mut c = cfg(17, IoMode::MAsync).with_prefetch();
    c.access = AccessPattern::Random;
    m.push(("random-pf", c));
    let mut c = cfg(18, IoMode::MAsync).with_prefetch();
    c.access = AccessPattern::Strided { stride: 256 * 1024 };
    m.push(("strided-pf", c));
    let mut c = cfg(19, IoMode::MAsync).with_prefetch();
    c.access = AccessPattern::Reread { passes: 2 };
    c.fast_path = false;
    m.push(("reread-buffered-pf", c));
    let mut c = cfg(20, IoMode::MRecord).with_prefetch();
    c.layout = StripeLayout::WaysOnOne { ways: 2, ion: 0 };
    m.push(("ways-on-one-pf", c));
    let mut c = cfg(21, IoMode::MRecord).with_prefetch();
    c.faults = FaultSpec {
        disk_error_pm: 20,
        mesh_drop_pm: 5,
        mesh_dup_pm: 5,
        mesh_delay_pm: 10,
        mesh_delay: SimDuration::from_micros(300),
        ..FaultSpec::default()
    };
    c.verify_data = true;
    m.push(("faulted-verified-pf", c));
    let mut c = cfg(22, IoMode::MRecord).with_prefetch();
    c.compute_nodes = 8;
    c.io_nodes = 4;
    c.delay = SimDuration::from_millis(25);
    m.push(("scaling-8x4-pf", c));
    m
}

/// Trace hashes of the EXT matrix captured from the *seed* scheduler (the
/// `BinaryHeap` kernel + `BTreeMap` executor at commit 65113e2). The
/// calendar-queue/slab engine must pop every event in the identical
/// `(time, seq)` order, so these hashes are frozen: a mismatch means the
/// scheduler reordered something, not that the goldens need regenerating.
const SEED_SCHEDULER_GOLDENS: &[(&str, u64)] = &[
    ("mrecord", 0x01792f033b8531d4),
    ("mrecord-pf", 0xeb377a239bebea41),
    ("munix", 0x847fc12c4cc463f0),
    ("msync", 0x97f34e90e4c61ae7),
    ("mlog", 0xd0c1a0260d94ef9a),
    ("masync-pf", 0x1e5a60d27dd6f77d),
    ("mglobal-pf", 0x4f8f3ca8bfedaa6a),
    ("random-pf", 0x33d25d187a5bf712),
    ("strided-pf", 0x400071833569d341),
    ("reread-buffered-pf", 0xe0d9f9d147f50dd2),
    ("ways-on-one-pf", 0x4152b98bb7d5a3a3),
    ("faulted-verified-pf", 0xf237b18eccd5117a),
    ("scaling-8x4-pf", 0x73e8fcc3e4a9a1bd),
];

#[test]
fn fast_path_engine_matches_seed_scheduler_byte_for_byte() {
    let matrix = ext_matrix();
    assert_eq!(matrix.len(), SEED_SCHEDULER_GOLDENS.len());
    for ((name, cfg), (gname, golden)) in matrix.into_iter().zip(SEED_SCHEDULER_GOLDENS) {
        assert_eq!(name, *gname);
        let r = run(&cfg);
        assert_eq!(
            r.trace_hash, *golden,
            "{name}: event order diverged from the seed scheduler"
        );
    }
}

#[test]
fn identical_configs_reproduce_exactly() {
    for mode in [IoMode::MRecord, IoMode::MUnix, IoMode::MGlobal] {
        let a = run(&cfg(42, mode));
        let b = run(&cfg(42, mode));
        assert_eq!(a.trace_hash, b.trace_hash, "{mode} trace diverged");
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.total_bytes, b.total_bytes);
        for (na, nb) in a.per_node.iter().zip(&b.per_node) {
            assert_eq!(na.read_time_total, nb.read_time_total);
        }
    }
}

#[test]
fn prefetch_counters_reproduce_exactly() {
    let a = run(&cfg(7, IoMode::MRecord).with_prefetch());
    let b = run(&cfg(7, IoMode::MRecord).with_prefetch());
    assert_eq!(a.trace_hash, b.trace_hash);
    assert_eq!(a.prefetch.hits_ready, b.prefetch.hits_ready);
    assert_eq!(a.prefetch.hits_inflight, b.prefetch.hits_inflight);
    assert_eq!(a.prefetch.overlap_saved, b.prefetch.overlap_saved);
}

#[test]
fn faulted_runs_reproduce_exactly() {
    // The fault plan draws from the same master seed as everything else,
    // so a run with disk errors, mesh chaos, and retries is just as
    // reproducible as a clean one — including every recovery action.
    let faulted = |seed| {
        let mut c = cfg(seed, IoMode::MRecord).with_prefetch();
        c.faults = FaultSpec {
            disk_error_pm: 20,
            mesh_drop_pm: 5,
            mesh_dup_pm: 5,
            mesh_delay_pm: 10,
            mesh_delay: SimDuration::from_micros(300),
            ..FaultSpec::default()
        };
        c.trace_cap = 200_000;
        c
    };
    let a = run(&faulted(1234));
    let b = run(&faulted(1234));
    assert!(
        a.fault.disk_transients
            + a.fault.mesh_dropped
            + a.fault.mesh_duplicated
            + a.fault.mesh_delayed
            > 0,
        "fault plan never fired; the test is vacuous"
    );
    assert_eq!(a.trace_hash, b.trace_hash, "faulted trace diverged");
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.fault.disk_transients, b.fault.disk_transients);
    assert_eq!(a.fault.mesh_dropped, b.fault.mesh_dropped);
    assert_eq!(a.prefetch.faults, b.prefetch.faults);
}

#[test]
fn different_seeds_diverge_under_realistic_calibration() {
    // Seek jitter and server-time jitter draw from the seed, so two seeds
    // must produce different (but internally consistent) traces.
    let a = run(&cfg(1, IoMode::MRecord));
    let b = run(&cfg(2, IoMode::MRecord));
    assert_ne!(a.trace_hash, b.trace_hash);
    // Yet the results must be close: jitter is noise, not behaviour.
    let ratio = a.bandwidth_mb_s() / b.bandwidth_mb_s();
    assert!(
        (0.8..1.25).contains(&ratio),
        "seeds changed behaviour, not just noise: {ratio}"
    );
}

#[test]
fn random_access_pattern_is_seeded() {
    let mut c = cfg(9, IoMode::MAsync);
    c.access = AccessPattern::Random;
    let a = run(&c);
    let b = run(&c);
    assert_eq!(a.trace_hash, b.trace_hash);
}
