//! Reproducibility: a `(seed, config)` pair fully determines a run — the
//! event-trace hash, the bandwidths, the prefetch counters, everything.
//! This is what makes the experiment tables regenerable bit-for-bit.

use paragon::machine::Calibration;
use paragon::pfs::IoMode;
use paragon::sim::SimDuration;
use paragon::workload::{run, AccessPattern, ExperimentConfig, FaultSpec, StripeLayout};

fn cfg(seed: u64, mode: IoMode) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        compute_nodes: 4,
        io_nodes: 2,
        calib: Calibration::paragon_1995(),
        mode,
        fast_path: true,
        stripe_unit: 64 * 1024,
        layout: StripeLayout::Across { factor: 2 },
        request_size: 64 * 1024,
        file_size: 4 << 20,
        delay: SimDuration::from_millis(5),
        prefetch: None,
        access: AccessPattern::ModeDriven,
        separate_files: false,
        verify_data: false,
        trace_cap: 0,
        faults: FaultSpec::default(),
        metrics_cadence: None,
    }
}

#[test]
fn identical_configs_reproduce_exactly() {
    for mode in [IoMode::MRecord, IoMode::MUnix, IoMode::MGlobal] {
        let a = run(&cfg(42, mode));
        let b = run(&cfg(42, mode));
        assert_eq!(a.trace_hash, b.trace_hash, "{mode} trace diverged");
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.total_bytes, b.total_bytes);
        for (na, nb) in a.per_node.iter().zip(&b.per_node) {
            assert_eq!(na.read_time_total, nb.read_time_total);
        }
    }
}

#[test]
fn prefetch_counters_reproduce_exactly() {
    let a = run(&cfg(7, IoMode::MRecord).with_prefetch());
    let b = run(&cfg(7, IoMode::MRecord).with_prefetch());
    assert_eq!(a.trace_hash, b.trace_hash);
    assert_eq!(a.prefetch.hits_ready, b.prefetch.hits_ready);
    assert_eq!(a.prefetch.hits_inflight, b.prefetch.hits_inflight);
    assert_eq!(a.prefetch.overlap_saved, b.prefetch.overlap_saved);
}

#[test]
fn faulted_runs_reproduce_exactly() {
    // The fault plan draws from the same master seed as everything else,
    // so a run with disk errors, mesh chaos, and retries is just as
    // reproducible as a clean one — including every recovery action.
    let faulted = |seed| {
        let mut c = cfg(seed, IoMode::MRecord).with_prefetch();
        c.faults = FaultSpec {
            disk_error_pm: 20,
            mesh_drop_pm: 5,
            mesh_dup_pm: 5,
            mesh_delay_pm: 10,
            mesh_delay: SimDuration::from_micros(300),
            ..FaultSpec::default()
        };
        c.trace_cap = 200_000;
        c
    };
    let a = run(&faulted(1234));
    let b = run(&faulted(1234));
    assert!(
        a.fault.disk_transients
            + a.fault.mesh_dropped
            + a.fault.mesh_duplicated
            + a.fault.mesh_delayed
            > 0,
        "fault plan never fired; the test is vacuous"
    );
    assert_eq!(a.trace_hash, b.trace_hash, "faulted trace diverged");
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.fault.disk_transients, b.fault.disk_transients);
    assert_eq!(a.fault.mesh_dropped, b.fault.mesh_dropped);
    assert_eq!(a.prefetch.faults, b.prefetch.faults);
}

#[test]
fn different_seeds_diverge_under_realistic_calibration() {
    // Seek jitter and server-time jitter draw from the seed, so two seeds
    // must produce different (but internally consistent) traces.
    let a = run(&cfg(1, IoMode::MRecord));
    let b = run(&cfg(2, IoMode::MRecord));
    assert_ne!(a.trace_hash, b.trace_hash);
    // Yet the results must be close: jitter is noise, not behaviour.
    let ratio = a.bandwidth_mb_s() / b.bandwidth_mb_s();
    assert!(
        (0.8..1.25).contains(&ratio),
        "seeds changed behaviour, not just noise: {ratio}"
    );
}

#[test]
fn random_access_pattern_is_seeded() {
    let mut c = cfg(9, IoMode::MAsync);
    c.access = AccessPattern::Random;
    let a = run(&c);
    let b = run(&c);
    assert_eq!(a.trace_hash, b.trace_hash);
}
