//! Profiler acceptance suite: the critical-path blame report must be a
//! pure function of `(seed, config)` — byte-identical at any host worker
//! count — its integer accounting must be exact on every EXT-matrix
//! config, the Perfetto export is pinned byte-for-byte against a
//! committed golden, and the kernel self-profile must observe without
//! perturbing (same trace hash profiled and unprofiled).
//!
//! Regenerate the goldens after an intentional trace-schema change with
//! `PARAGON_BLESS=1 cargo test --test profile_goldens`.

mod common;

use common::{cfg, ext_matrix};
use paragon::machine::Calibration;
use paragon::pfs::{IoMode, Redundancy};
use paragon::profile::{critical_paths, export_perfetto, render_critical_path};
use paragon::sim::SimDuration;
use paragon::workload::{
    run, run_profiled, AccessPattern, ExperimentConfig, FaultSpec, StripeLayout,
};

/// Compare `actual` against the committed golden at `rel` (repo-root
/// relative); `PARAGON_BLESS=1` rewrites the golden instead.
fn golden(rel: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    if std::env::var_os("PARAGON_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {rel} ({e}); regenerate with PARAGON_BLESS=1"));
    assert_eq!(
        actual, want,
        "{rel} drifted; if the change is intentional, regenerate with PARAGON_BLESS=1"
    );
}

/// Force `c` onto four shard worlds with the recorder armed.
fn sharded(mut c: ExperimentConfig, workers: usize) -> ExperimentConfig {
    c.shards = Some(4);
    c.workers = workers;
    if c.trace_cap == 0 {
        c.trace_cap = 200_000;
    }
    c
}

/// RF=2 M_RECORD shape with I/O node 1 crashed mid-stream, mirroring
/// the failure-injection suite: every foreground read that hits the
/// dead primary must fail over to a surviving replica.
fn failover_cfg(seed: u64) -> ExperimentConfig {
    let mut calib = Calibration::paragon_1995();
    calib.rpc_attempt_timeout = SimDuration::from_millis(250);
    ExperimentConfig {
        seed,
        compute_nodes: 4,
        io_nodes: 6,
        calib,
        mode: IoMode::MRecord,
        fast_path: true,
        stripe_unit: 64 * 1024,
        layout: StripeLayout::Across { factor: 4 },
        request_size: 64 * 1024,
        file_size: 8 << 20,
        delay: SimDuration::ZERO,
        prefetch: None,
        access: AccessPattern::ModeDriven,
        separate_files: false,
        verify_data: true,
        trace_cap: 500_000,
        faults: FaultSpec {
            ion_crash: Some((1, SimDuration::from_millis(50), SimDuration::from_secs(30))),
            ..FaultSpec::default()
        },
        redundancy: Redundancy::Replicated { rf: 2 },
        metrics_cadence: None,
        shards: None,
        workers: 1,
    }
}

/// The acceptance bar from the issue: the blame report is byte-identical
/// across host worker counts on the same sharded plan.
#[test]
fn critical_path_blame_is_worker_count_invariant() {
    let one = run(&sharded(cfg(11, IoMode::MRecord), 1));
    let two = run(&sharded(cfg(11, IoMode::MRecord), 2));
    assert_eq!(one.trace_hash, two.trace_hash, "traces diverged first");
    let a = render_critical_path(&one.trace, 5);
    let b = render_critical_path(&two.trace, 5);
    assert_eq!(a, b, "blame report must not depend on --workers");
    assert!(a.contains("critical-path blame over"));
}

/// Exact integer accounting on the whole EXT matrix: for every config,
/// every completed read's nine legs sum to its end-to-end latency to
/// the nanosecond, and the disk overlap never goes negative (u64 makes
/// that structural, but a saturating bug would show up as a huge value).
#[test]
fn blame_sums_exactly_across_the_ext_matrix() {
    for (name, mut c) in ext_matrix() {
        c.trace_cap = 200_000;
        let r = run(&c);
        let paths = critical_paths(&r.trace);
        assert!(!paths.is_empty(), "{name}: no completed reads in trace");
        for p in &paths {
            assert_eq!(
                p.legs.iter().sum::<u64>(),
                p.total_ns(),
                "{name}: req {} legs do not sum to the span",
                p.req
            );
            assert!(
                p.overlap_hidden_ns < SimDuration::from_secs(3600).as_nanos(),
                "{name}: req {} absurd hidden overlap {}",
                p.req,
                p.overlap_hidden_ns
            );
        }
    }
}

/// A mid-stream I/O-node crash with replica failover must still yield
/// exactly one well-formed DAG per request — retries absorbed, not
/// orphaned — and the seeded run's blame report is pinned as a golden.
#[test]
fn failover_run_yields_one_dag_per_request_and_a_pinned_blame_report() {
    let r = run(&failover_cfg(40));
    assert_eq!(r.read_errors, 0, "failover must mask the crash");
    assert!(r.replica_failovers > 0, "crash window never bit");

    let paths = critical_paths(&r.trace);
    assert!(!paths.is_empty());
    for w in paths.windows(2) {
        assert!(w[0].req < w[1].req, "duplicate DAG for req {}", w[1].req);
    }
    let faulted: Vec<_> = paths.iter().filter(|p| p.faults > 0).collect();
    assert!(
        !faulted.is_empty(),
        "no request path observed the failover events"
    );
    for p in &paths {
        assert_eq!(
            p.legs.iter().sum::<u64>(),
            p.total_ns(),
            "req {}: a failed-over span must still account exactly",
            p.req
        );
    }

    golden(
        "tests/goldens/failover_critical_path.txt",
        &render_critical_path(&r.trace, 3),
    );
}

/// The Chrome-trace export is pinned byte-for-byte: any drift in event
/// placement, track naming, or counter sampling shows up as a diff.
#[test]
fn perfetto_export_matches_the_pinned_golden() {
    let mut c = cfg(11, IoMode::MRecord);
    c.file_size = 512 * 1024;
    c.trace_cap = 200_000;
    c.metrics_cadence = Some(SimDuration::from_millis(20));
    let r = run(&c);
    let json = export_perfetto(&r.trace, r.metrics.as_ref());
    assert!(json.starts_with('{') && json.ends_with("]}\n"));
    golden("tests/goldens/perfetto_mrecord.json", &json);
}

/// Self-profiling must observe, never perturb: the profiled run's trace
/// hash equals the unprofiled run's, and the profile itself is sane.
#[test]
fn kernel_self_profile_observes_without_perturbing() {
    let c = sharded(cfg(11, IoMode::MRecord), 2);
    let plain = run(&c);
    let (profiled, prof) = run_profiled(&c);
    assert_eq!(
        plain.trace_hash, profiled.trace_hash,
        "profiling changed the simulation"
    );
    assert_eq!(plain.elapsed, profiled.elapsed);
    assert_eq!(prof.shards, 4);
    assert_eq!(prof.workers, 2);
    assert!(prof.epochs() > 0, "sharded run must cross epochs");
    assert!(prof.total_events() > 0);
    let stall = prof.barrier_stall_frac();
    assert!(
        (0.0..=1.0).contains(&stall),
        "stall frac {stall} out of range"
    );

    // The serial driver reports a degenerate single-shard profile.
    let (_, serial) = run_profiled(&cfg(11, IoMode::MRecord));
    assert_eq!(serial.shards, 1);
    assert_eq!(serial.workers, 1);
    assert!(serial.total_events() > 0);
    assert_eq!(serial.cross_shard_frames(), 0, "one world, no frames");
}
