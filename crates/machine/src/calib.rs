//! Calibration constants for the simulated Paragon.
//!
//! Every timing number in the reproduction lives here, so the whole model
//! can be audited (and re-calibrated) in one place. The headline target is
//! Table 2 of the paper: with 8 compute nodes collectively reading a shared
//! file over 8 I/O nodes (64 KB blocks, stripe factor 8), a 1024 KB
//! per-node request must cost ≈ 0.45 s, a 64 KB request ≈ 0.03–0.06 s, and
//! aggregate M_RECORD bandwidth must land in the paper's 2–20 MB/s band.
//!
//! Provenance of the values:
//!
//! * **Disks** — circa-1995 SCSI RAID-3 per I/O node: ~2.3 MB/s sustained
//!   logical reads (3 members × 0.78 MB/s media rate, fitted to the
//!   Table 2 anchor), 9 ms average seeks, 4500 RPM, 8-segment controller
//!   read cache, N-step SCAN queueing. The paper's SCSI-8 cards cap each
//!   I/O node well below the mesh rate, which is why the mesh never
//!   bottlenecks.
//! * **Mesh** — 175 MB/s links, 40 ns/hop routers (Paragon data sheet);
//!   ~60 µs OSF/1 software overhead per side.
//! * **Software** — ~300 µs client syscall, ~150 µs ART dispatch, ~1 ms
//!   PFS server per-request processing: the production-OS overheads the
//!   paper stresses are present in its prototype.
//! * **Copies** — ~45 MB/s i860 memcpy; the prefetch-hit copy and the
//!   buffered-read copy both pay it.

use paragon_disk::{DiskParams, SchedPolicy};
use paragon_mesh::MeshParams;
use paragon_sim::SimDuration;
use paragon_ufs::UfsParams;

/// Complete timing calibration of one simulated machine.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Per-member disk timing.
    pub disk: DiskParams,
    /// Disk queue discipline.
    pub sched: SchedPolicy,
    /// Member spindles per I/O-node RAID array.
    pub raid_members: usize,
    /// RAID interleave in bytes.
    pub raid_interleave: u64,
    /// Add a parity member to every array so reads can reconstruct
    /// around one dead data member (degraded mode) at the cost of the
    /// extra spindle and read-modify-write parity updates.
    pub raid_parity: bool,
    /// Mesh timing.
    pub mesh: MeshParams,
    /// File-system block size (the PFS transfer unit), bytes.
    pub fs_block: u64,
    /// UFS partition size per I/O node, in fs blocks.
    pub ufs_capacity_blocks: u64,
    /// UFS buffer-cache capacity in blocks (used only when PFS buffering
    /// is enabled; Fast Path bypasses it).
    pub ufs_cache_blocks: usize,
    /// I/O-node memory copy bandwidth (cache → transfer buffer), bytes/s.
    pub ion_copy_bw: f64,
    /// Compute-node memory copy bandwidth (prefetch buffer → user buffer),
    /// bytes/s.
    pub cn_copy_bw: f64,
    /// Client-side system call overhead per PFS call.
    pub syscall: SimDuration,
    /// ART setup cost (allocate request structure, enqueue on active list).
    pub art_setup: SimDuration,
    /// ART dispatch cost (thread begins processing a queued request).
    pub art_dispatch: SimDuration,
    /// Maximum concurrently-posting ARTs per node.
    pub max_arts: usize,
    /// PFS server per-request processing cost at the I/O node.
    pub server_request: SimDuration,
    /// PFS server thread-pool size per I/O node (requests beyond this
    /// queue; small stripe units fan one client read into many server
    /// requests, and this is where their per-piece overheads aggregate).
    pub server_threads: usize,
    /// Extra server cost when a request is not block-aligned (temporary
    /// buffer management for partial blocks).
    pub partial_block_penalty: SimDuration,
    /// Pointer-server cost per shared-file-pointer operation.
    pub pointer_op: SimDuration,
    /// Client-side bookkeeping for node-ordered record accounting
    /// (M_RECORD pays this; M_ASYNC does not).
    pub record_bookkeeping: SimDuration,
    /// Per-request shared-file consistency check at the server (all shared
    /// modes pay it; separate files do not).
    pub shared_file_check: SimDuration,
    /// UFS metadata operation cost.
    pub metadata_op: SimDuration,
    /// Client deadline per data-transfer RPC attempt (positioned reads
    /// and writes — the idempotent legs). Generous next to a healthy
    /// worst-case leg so it only fires under injected faults.
    pub rpc_attempt_timeout: SimDuration,
    /// Extra attempts after a failed data-transfer RPC.
    pub rpc_retries: u32,
    /// Linear backoff base between data-transfer RPC attempts.
    pub rpc_backoff: SimDuration,
}

impl Calibration {
    /// The paper's testbed: 8+8 Paragon, SCSI-8 RAID arrays, 64 KB blocks.
    pub fn paragon_1995() -> Self {
        Calibration {
            // scsi_1995 with the media rate trimmed so an 8-node 1024 KB
            // collective read costs ≈ 0.45 s (Table 2's headline number).
            disk: DiskParams {
                transfer_bw: 0.78e6,
                ..DiskParams::scsi_1995()
            },
            // The RAID controller sorts its queue: near-offset requests
            // arriving out of order (adjacent records from different
            // compute nodes) are served in disk order, not arrival order.
            sched: SchedPolicy::Elevator,
            raid_members: 3,
            raid_interleave: 8 * 1024,
            raid_parity: false,
            mesh: MeshParams::paragon(),
            fs_block: 64 * 1024,
            ufs_capacity_blocks: 16 * 1024, // 1 GB per I/O node
            ufs_cache_blocks: 128,          // 8 MB
            ion_copy_bw: 60e6,
            cn_copy_bw: 45e6,
            syscall: SimDuration::from_micros(300),
            art_setup: SimDuration::from_micros(150),
            art_dispatch: SimDuration::from_micros(150),
            max_arts: 8,
            server_request: SimDuration::from_micros(1_000),
            server_threads: 2,
            partial_block_penalty: SimDuration::from_micros(2_000),
            // The pointer server is one OS process: operations serialize,
            // and each costs about a millisecond of server-side work —
            // this is what separates the shared-pointer modes from
            // M_RECORD/M_ASYNC in Figure 2.
            pointer_op: SimDuration::from_micros(5_000),
            record_bookkeeping: SimDuration::from_micros(50),
            shared_file_check: SimDuration::from_micros(1_500),
            metadata_op: SimDuration::from_micros(500),
            // A healthy 1 MB leg costs well under a second; 10 s only
            // trips when a fault has eaten the request or the reply.
            rpc_attempt_timeout: SimDuration::from_secs(10),
            rpc_retries: 3,
            rpc_backoff: SimDuration::from_millis(100),
        }
    }

    /// The SCSI-16 upgrade the paper mentions ("effectively quadruples
    /// the bandwidth available on each I/O node"): twice the members on
    /// a wide bus, each sustaining twice the media rate — same software
    /// stack, same overheads, 4x the array bandwidth.
    pub fn paragon_scsi16() -> Self {
        let base = Self::paragon_1995();
        Calibration {
            disk: DiskParams {
                transfer_bw: base.disk.transfer_bw * 2.0,
                ..base.disk
            },
            raid_members: base.raid_members * 2,
            ..base
        }
    }

    /// A fast, overhead-free machine for unit tests of protocol logic,
    /// where only ordering and data integrity matter.
    pub fn instant() -> Self {
        Calibration {
            disk: DiskParams::ideal(1e9),
            sched: SchedPolicy::Fifo,
            raid_members: 1,
            raid_interleave: 64 * 1024,
            raid_parity: false,
            mesh: MeshParams::instant(),
            fs_block: 64 * 1024,
            ufs_capacity_blocks: 16 * 1024,
            ufs_cache_blocks: 128,
            ion_copy_bw: 1e12,
            cn_copy_bw: 1e12,
            syscall: SimDuration::ZERO,
            art_setup: SimDuration::ZERO,
            art_dispatch: SimDuration::ZERO,
            max_arts: 64,
            server_request: SimDuration::ZERO,
            server_threads: 1024,
            partial_block_penalty: SimDuration::ZERO,
            pointer_op: SimDuration::ZERO,
            record_bookkeeping: SimDuration::ZERO,
            shared_file_check: SimDuration::ZERO,
            metadata_op: SimDuration::ZERO,
            rpc_attempt_timeout: SimDuration::from_secs(60),
            rpc_retries: 3,
            rpc_backoff: SimDuration::from_millis(1),
        }
    }

    /// UFS parameters implied by this calibration.
    pub fn ufs_params(&self) -> UfsParams {
        UfsParams {
            block_size: self.fs_block,
            capacity_blocks: self.ufs_capacity_blocks,
            cache_blocks: self.ufs_cache_blocks,
            copy_bw: self.ion_copy_bw,
            metadata_op: self.metadata_op,
        }
    }

    /// Sustained logical read bandwidth of one I/O node's array, bytes/s
    /// (media only; overheads come on top).
    pub fn raid_media_bw(&self) -> f64 {
        self.disk.transfer_bw * self.raid_members as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paragon_calibration_is_self_consistent() {
        let c = Calibration::paragon_1995();
        // SCSI-8 class: one I/O node sustains roughly 3–4 MB/s.
        let bw = c.raid_media_bw();
        assert!((2.0e6..5e6).contains(&bw), "RAID bw {bw} out of era range");
        // The mesh must never be the bottleneck next to the disks.
        assert!(c.mesh.link_bw > 10.0 * bw);
        // Partial blocks must cost more than aligned requests.
        assert!(c.partial_block_penalty > c.server_request);
    }

    #[test]
    fn scsi16_quadruples_the_array_bandwidth() {
        let old = Calibration::paragon_1995();
        let new = Calibration::paragon_scsi16();
        let ratio = new.raid_media_bw() / old.raid_media_bw();
        assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
        // Software costs are unchanged: the upgrade is hardware-only.
        assert_eq!(new.syscall, old.syscall);
        assert_eq!(new.server_request, old.server_request);
    }

    #[test]
    fn instant_calibration_has_no_overheads() {
        let c = Calibration::instant();
        assert!(c.syscall.is_zero());
        assert!(c.server_request.is_zero());
        assert!(c.art_setup.is_zero());
    }

    #[test]
    fn ufs_params_inherit_block_size() {
        let c = Calibration::paragon_1995();
        assert_eq!(c.ufs_params().block_size, c.fs_block);
        assert_eq!(c.ufs_params().copy_bw, c.ion_copy_bw);
    }
}
