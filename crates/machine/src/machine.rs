//! Machine assembly: one simulated Paragon.
//!
//! Builds the hardware a run needs — mesh topology with node placement,
//! one RAID array + UFS per I/O node — and hands out typed handles. Node
//! placement is row-major: compute nodes first (the compute partition),
//! then I/O nodes (in the Paragon these sat on the mesh edge; the exact
//! placement only shifts hop counts by a few 40 ns units, which is noise
//! next to millisecond disks), then one service node hosting the shared
//! file-pointer server.

use paragon_disk::RaidArray;
use paragon_mesh::{NodeId, Topology};
use paragon_sim::Sim;
use paragon_ufs::Ufs;

use crate::calib::Calibration;

/// What to build.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of compute nodes (application processes, one per node).
    pub compute_nodes: usize,
    /// Number of I/O nodes (one RAID + UFS each).
    pub io_nodes: usize,
    /// Timing calibration.
    pub calib: Calibration,
}

impl MachineConfig {
    /// The paper's testbed: 8 compute + 8 I/O nodes, 1995 calibration.
    pub fn paper_testbed() -> Self {
        MachineConfig {
            compute_nodes: 8,
            io_nodes: 8,
            calib: Calibration::paragon_1995(),
        }
    }

    /// A tiny instant machine for protocol unit tests.
    pub fn tiny_instant(compute_nodes: usize, io_nodes: usize) -> Self {
        MachineConfig {
            compute_nodes,
            io_nodes,
            calib: Calibration::instant(),
        }
    }
}

/// Role of a mesh node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Runs application code.
    Compute(usize),
    /// Runs a PFS server over its local UFS.
    Io(usize),
    /// Runs system services (the pointer server).
    Service,
}

/// An assembled machine.
pub struct Machine {
    sim: Sim,
    topo: Topology,
    config: MachineConfig,
    raids: Vec<RaidArray>,
    ufs: Vec<Ufs>,
}

impl Machine {
    /// Build the machine on `sim`.
    pub fn new(sim: &Sim, config: MachineConfig) -> Self {
        assert!(config.compute_nodes > 0, "need at least one compute node");
        assert!(config.io_nodes > 0, "need at least one I/O node");
        let total = config.compute_nodes + config.io_nodes + 1;
        let topo = Topology::for_nodes(total);
        let mut raids = Vec::with_capacity(config.io_nodes);
        let mut ufs = Vec::with_capacity(config.io_nodes);
        // Give every spindle (including any parity member) a
        // flight-recorder lane of its own; arrays occupy consecutive
        // lane ranges in I/O-node order.
        let mut track_base = 0u16;
        for i in 0..config.io_nodes {
            let raid = RaidArray::new_with_parity(
                sim,
                config.calib.disk.clone(),
                config.calib.sched,
                config.calib.raid_members,
                config.calib.raid_interleave,
                config.calib.raid_parity,
                &format!("ion{i}"),
            );
            raid.set_tracks(track_base);
            track_base += raid.spindles() as u16;
            ufs.push(Ufs::new(sim, raid.clone(), config.calib.ufs_params()));
            raids.push(raid);
        }
        Machine {
            sim: sim.clone(),
            topo,
            config,
            raids,
            ufs,
        }
    }

    /// The simulation world this machine lives in.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Mesh shape (includes any padding nodes the rectangle needs).
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The machine's calibration.
    pub fn calib(&self) -> &Calibration {
        &self.config.calib
    }

    /// Number of compute nodes.
    pub fn compute_nodes(&self) -> usize {
        self.config.compute_nodes
    }

    /// Number of I/O nodes.
    pub fn io_nodes(&self) -> usize {
        self.config.io_nodes
    }

    /// Mesh id of compute node `rank`.
    pub fn compute_node(&self, rank: usize) -> NodeId {
        assert!(rank < self.config.compute_nodes, "rank {rank} out of range");
        NodeId(rank)
    }

    /// Mesh id of I/O node `index`.
    pub fn io_node(&self, index: usize) -> NodeId {
        assert!(
            index < self.config.io_nodes,
            "I/O node {index} out of range"
        );
        NodeId(self.config.compute_nodes + index)
    }

    /// Mesh id of the service node.
    pub fn service_node(&self) -> NodeId {
        NodeId(self.config.compute_nodes + self.config.io_nodes)
    }

    /// Role of a mesh node, if it has one (padding nodes have none).
    pub fn role(&self, node: NodeId) -> Option<NodeRole> {
        let cn = self.config.compute_nodes;
        let ion = self.config.io_nodes;
        match node.0 {
            i if i < cn => Some(NodeRole::Compute(i)),
            i if i < cn + ion => Some(NodeRole::Io(i - cn)),
            i if i == cn + ion => Some(NodeRole::Service),
            _ => None,
        }
    }

    /// The UFS mounted on I/O node `index`.
    pub fn ufs(&self, index: usize) -> &Ufs {
        &self.ufs[index]
    }

    /// The RAID array of I/O node `index`.
    pub fn raid(&self, index: usize) -> &RaidArray {
        &self.raids[index]
    }

    /// All UFS instances, I/O-node order.
    pub fn all_ufs(&self) -> &[Ufs] {
        &self.ufs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_has_expected_shape() {
        let sim = Sim::new(1);
        let m = Machine::new(&sim, MachineConfig::paper_testbed());
        assert_eq!(m.compute_nodes(), 8);
        assert_eq!(m.io_nodes(), 8);
        assert!(m.topology().nodes() >= 17);
        assert_eq!(m.role(m.compute_node(0)), Some(NodeRole::Compute(0)));
        assert_eq!(m.role(m.io_node(7)), Some(NodeRole::Io(7)));
        assert_eq!(m.role(m.service_node()), Some(NodeRole::Service));
    }

    #[test]
    fn node_ids_are_disjoint() {
        let sim = Sim::new(1);
        let m = Machine::new(&sim, MachineConfig::tiny_instant(3, 2));
        let mut ids: Vec<usize> = (0..3).map(|r| m.compute_node(r).0).collect();
        ids.extend((0..2).map(|i| m.io_node(i).0));
        ids.push(m.service_node().0);
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn each_io_node_gets_its_own_ufs() {
        let sim = Sim::new(1);
        let m = Machine::new(&sim, MachineConfig::tiny_instant(2, 3));
        assert_eq!(m.all_ufs().len(), 3);
        // Creating a file on one UFS must not affect another.
        let a = m.ufs(0).clone();
        let b = m.ufs(1).clone();
        let h = sim.spawn(async move {
            a.create("x").await.unwrap();
            b.lookup("x").is_none()
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_panics() {
        let sim = Sim::new(1);
        let m = Machine::new(&sim, MachineConfig::tiny_instant(2, 2));
        m.compute_node(2);
    }
}
