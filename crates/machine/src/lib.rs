//! # paragon-machine — machine assembly and calibration
//!
//! Puts the hardware together: a [`Machine`] owns the mesh topology with
//! compute/I-O/service node placement and one RAID array + UFS per I/O
//! node. Every timing constant of the reproduction lives in
//! [`Calibration`], documented with its provenance, so the simulation can
//! be audited and re-calibrated in one place.

mod calib;
mod machine;

pub use calib::Calibration;
pub use machine::{Machine, MachineConfig, NodeRole};
