//! SARIF 2.1.0 output for CI code-scanning annotations.
//!
//! The shape is the minimal static-analysis profile most code-scanning
//! UIs accept: one run, a driver with the full rule table (so every
//! `ruleId` a result references is declared), and one result per
//! finding with a physical location. Serialization is hand-rolled like
//! the JSON writer — the workspace is hermetic, so no serde — and the
//! output is byte-stable for a given finding list (golden-file tested).

use crate::rules::Finding;

/// The rule table shared by SARIF output and docs: `(id, short
/// description)`.
pub const RULE_TABLE: &[(&str, &str)] = &[
    (
        "D1",
        "No randomly-seeded containers (HashMap/HashSet) in sim-visible code",
    ),
    (
        "D2",
        "No wall-clock, ambient entropy, or host threads outside sanctioned modules",
    ),
    (
        "P1",
        "No panicking constructs on the I/O path; faults become protocol errors",
    ),
    (
        "C1",
        "No thread-shareable mutable state outside the sanctioned parallel kernel",
    ),
    (
        "C2",
        "Cross-shard handoff only via the typed frame-channel/epoch-barrier API",
    ),
    (
        "X1",
        "Cross-file exhaustiveness: protocol, trace, metric, and redundancy vocabularies",
    ),
    (
        "W1",
        "Waivers must name known rules and carry a justification",
    ),
    (
        "W2",
        "Waivers must be live: a waiver whose rule never fires is stale",
    ),
];

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize findings as a SARIF 2.1.0 log (stable layout: two-space
/// indent, results in input order).
pub fn findings_to_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"paragon-lint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md#8-static-analysis--invariants\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in RULE_TABLE.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            esc(id),
            esc(desc),
            if i + 1 < RULE_TABLE.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", esc(f.rule)));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            esc(&f.msg)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{\"uri\": \"{}\"}},\n",
            esc(&f.file)
        ));
        out.push_str(&format!(
            "                \"region\": {{\"startLine\": {}}}\n",
            f.line
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str(&format!(
            "        }}{}\n",
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log_is_valid_and_declares_every_rule() {
        let s = findings_to_sarif(&[]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"results\": [\n      ]"));
        for (id, _) in RULE_TABLE {
            assert!(
                s.contains(&format!("\"id\": \"{id}\"")),
                "missing rule {id}"
            );
        }
    }

    #[test]
    fn results_carry_rule_file_and_line() {
        let f = vec![Finding {
            rule: "D1",
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            msg: "a \"quoted\" message".into(),
        }];
        let s = findings_to_sarif(&f);
        assert!(s.contains("\"ruleId\": \"D1\""));
        assert!(s.contains("\"uri\": \"crates/x/src/lib.rs\""));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("a \\\"quoted\\\" message"));
    }
}
