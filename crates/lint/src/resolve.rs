//! Workspace symbol resolution.
//!
//! The per-file lexer cannot see that `use std::collections::HashMap as
//! Map;` smuggles a banned container in under a new name, or that a
//! local `struct Instant` has nothing to do with the wall clock. This
//! pass closes both gaps with a deliberately small model:
//!
//! * **Use-declarations** — every `use` in a file (including `as`
//!   aliases, nested `{...}` groups, and `self` group members) becomes
//!   a `name → target path` binding. A binding whose target resolves to
//!   a banned item makes the bound name scannable; a binding to a
//!   non-banned target *rebinds* the name, so bare occurrences of it
//!   are no longer evidence of the std item.
//! * **Re-exports** — `pub use` bindings are collected per crate into
//!   an export table keyed by the crate's Cargo ident (`paragon-sim` →
//!   `paragon_sim`). Resolution follows chains through that table
//!   (depth-limited, cycle-guarded), so `pub use std::collections::
//!   HashMap as FastMap;` in one crate is caught at every `use
//!   other_crate::FastMap;` site.
//! * **Local defines** — `struct`/`enum`/`trait`/`type`/`union`/`fn`/
//!   `mod`/`macro_rules!` names declared in a file shadow the banned
//!   vocabulary for bare occurrences in that file. A `std::`-qualified
//!   occurrence still flags: shadowing hides a name, not the item.
//!
//! Out of model (documented limits, all conservative in the quiet
//! direction for resolved paths and in the strict direction for bare
//! tokens): glob imports, `let`-bindings, method calls, macro-generated
//! code, and `crate`/`self`/`super`-relative paths, which are treated
//! as crate-local and never banned.

use std::collections::{BTreeMap, BTreeSet};

use crate::concurrency::C1_SYNC_TYPES;
use crate::strip::FileView;

/// One `use` binding: `name` is the identifier in scope, `target` the
/// path it was bound to, as written (one segment per element).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseBinding {
    pub name: String,
    pub target: Vec<String>,
    pub is_pub: bool,
    /// 1-based first/last source line of the declaration.
    pub span: (usize, usize),
}

/// Per-file symbol table: use-bindings plus locally defined names.
#[derive(Debug, Default, Clone)]
pub struct FileSymbols {
    pub uses: Vec<UseBinding>,
    pub defines: BTreeSet<String>,
}

impl FileSymbols {
    pub fn binding(&self, name: &str) -> Option<&UseBinding> {
        self.uses.iter().find(|b| b.name == name)
    }
}

/// Workspace-wide re-export table: crate ident → exported name →
/// target path as written at the `pub use` site.
#[derive(Debug, Default, Clone)]
pub struct Workspace {
    pub exports: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

impl Workspace {
    /// Record every `pub use` binding of `syms` as an export of
    /// `crate_ident`.
    pub fn add_exports(&mut self, crate_ident: &str, syms: &FileSymbols) {
        for b in syms.uses.iter().filter(|b| b.is_pub) {
            self.exports
                .entry(crate_ident.to_string())
                .or_default()
                .insert(b.name.clone(), b.target.clone());
        }
    }

    /// Follow `path` (as written in `crate_ident`) to an absolute path
    /// rooted at `std`/`core`/`alloc`/`rand`, chasing workspace
    /// re-export chains. `None` when the path leaves the model —
    /// crate-relative roots, unknown roots, non-re-exported items —
    /// which callers must treat as "not a banned item".
    pub fn canonicalize(&self, crate_ident: &str, path: &[String]) -> Option<Vec<String>> {
        let mut cur: Vec<String> = path.to_vec();
        if cur.first().is_some_and(|r| r == "crate") && !crate_ident.is_empty() {
            cur[0] = crate_ident.to_string();
        }
        for _ in 0..8 {
            let root = cur.first()?.as_str();
            match root {
                "std" | "core" | "alloc" | "rand" => return Some(cur),
                r if self.exports.contains_key(r) => {
                    if cur.len() < 2 {
                        return None;
                    }
                    let last = cur.last()?.clone();
                    match self.exports[r].get(&last) {
                        Some(t) if *t != cur => cur = t.clone(),
                        _ => return None,
                    }
                }
                _ => return None,
            }
        }
        None
    }

    /// Does `path`, written in `crate_ident`, resolve to a banned item?
    /// Returns the rule id and the canonical path.
    pub fn banned(
        &self,
        crate_ident: &str,
        path: &[String],
    ) -> Option<(&'static str, Vec<String>)> {
        let canon = self.canonicalize(crate_ident, path)?;
        banned_path(&canon).map(|rule| (rule, canon))
    }
}

/// The banned-item registry over canonical absolute paths. Returns the
/// rule the item falls under.
pub fn banned_path(path: &[String]) -> Option<&'static str> {
    let segs: Vec<&str> = path.iter().map(|s| s.as_str()).collect();
    let (&root, &last) = (segs.first()?, segs.last()?);
    if root == "rand" {
        return (last == "thread_rng").then_some("D2");
    }
    if !matches!(root, "std" | "core" | "alloc") {
        return None;
    }
    if segs.contains(&"collections") && matches!(last, "HashMap" | "HashSet") {
        return Some("D1");
    }
    if segs.get(1) == Some(&"time") && matches!(last, "Instant" | "SystemTime") {
        return Some("D2");
    }
    if segs.get(1) == Some(&"thread") {
        return Some("D2");
    }
    if segs.get(1) == Some(&"sync") {
        if segs.get(2) == Some(&"mpsc") {
            return Some("C2");
        }
        if segs.get(2) == Some(&"atomic") || last.starts_with("Atomic") {
            return Some("C1");
        }
        if C1_SYNC_TYPES.contains(&last) {
            return Some("C1");
        }
    }
    None
}

/// Parse a stripped file into its symbol table. Declarations inside
/// `#[cfg(test)]` regions are skipped: test-only symbols must neither
/// shadow nor incriminate non-test code.
pub fn parse_file(v: &FileView) -> FileSymbols {
    let chars: Vec<char> = v.code.chars().collect();
    let mut line_of = Vec::with_capacity(chars.len());
    let mut ln = 1usize;
    for &c in &chars {
        line_of.push(ln);
        if c == '\n' {
            ln += 1;
        }
    }

    let mut syms = FileSymbols {
        uses: Vec::new(),
        defines: parse_defines(v),
    };

    let mut i = 0;
    while i + 3 <= chars.len() {
        let kw =
            chars[i] == 'u' && chars.get(i + 1) == Some(&'s') && chars.get(i + 2) == Some(&'e');
        let pre_ok = i == 0 || !is_ident(chars[i - 1]);
        let post_ok = chars.get(i + 3).is_none_or(|c| c.is_whitespace());
        if !(kw && pre_ok && post_ok) {
            i += 1;
            continue;
        }
        if v.is_test(line_of[i]) {
            i += 3;
            continue;
        }
        let is_pub = pub_precedes(&chars, i);
        let start = i + 3;
        let mut end = start;
        while end < chars.len() && chars[end] != ';' {
            end += 1;
        }
        let decl: String = chars[start..end].iter().collect();
        let first_line = line_of[i];
        let last_line = line_of[end.min(chars.len() - 1)];
        let t = toks(&decl);
        let mut pos = 0;
        let mut found = Vec::new();
        parse_tree(&t, &mut pos, &[], &mut found);
        for (target, name) in found {
            let Some(name) = name else { continue };
            if name == "_" || target.is_empty() {
                continue;
            }
            syms.uses.push(UseBinding {
                name,
                target,
                is_pub,
                span: (first_line, last_line),
            });
        }
        i = end + 1;
    }
    syms
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Does `pub` (possibly `pub(crate)`/`pub(in ...)`) immediately precede
/// the keyword at `chars[i]`?
fn pub_precedes(chars: &[char], i: usize) -> bool {
    let mut k = i;
    while k > 0 && chars[k - 1].is_whitespace() {
        k -= 1;
    }
    if k > 0 && chars[k - 1] == ')' {
        let mut depth = 1usize;
        k -= 1;
        while k > 0 && depth > 0 {
            k -= 1;
            match chars[k] {
                '(' => depth -= 1,
                ')' => depth += 1,
                _ => {}
            }
        }
        while k > 0 && chars[k - 1].is_whitespace() {
            k -= 1;
        }
    }
    k >= 3 && chars[k - 3..k] == ['p', 'u', 'b'] && (k == 3 || !is_ident(chars[k - 4]))
}

#[derive(Debug, PartialEq)]
enum Tok {
    Ident(String),
    PathSep,
    Open,
    Close,
    Comma,
    Star,
}

fn toks(s: &str) -> Vec<Tok> {
    let cs: Vec<char> = s.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < cs.len() {
        let c = cs[i];
        if is_ident(c) {
            let mut j = i;
            while j < cs.len() && is_ident(cs[j]) {
                j += 1;
            }
            out.push(Tok::Ident(cs[i..j].iter().collect()));
            i = j;
        } else if c == ':' && cs.get(i + 1) == Some(&':') {
            out.push(Tok::PathSep);
            i += 2;
        } else {
            match c {
                '{' => out.push(Tok::Open),
                '}' => out.push(Tok::Close),
                ',' => out.push(Tok::Comma),
                '*' => out.push(Tok::Star),
                _ => {}
            }
            i += 1;
        }
    }
    out
}

/// Recursive descent over a use-tree, producing `(path, bound name)`
/// pairs. Globs bind nothing (out of model).
fn parse_tree(
    t: &[Tok],
    pos: &mut usize,
    prefix: &[String],
    out: &mut Vec<(Vec<String>, Option<String>)>,
) {
    match t.get(*pos) {
        Some(Tok::Open) => {
            *pos += 1;
            while !matches!(t.get(*pos), Some(Tok::Close) | None) {
                if matches!(t.get(*pos), Some(Tok::Comma)) {
                    *pos += 1;
                    continue;
                }
                parse_tree(t, pos, prefix, out);
            }
            if matches!(t.get(*pos), Some(Tok::Close)) {
                *pos += 1;
            }
        }
        Some(Tok::Star) => {
            *pos += 1;
        }
        Some(Tok::Ident(_)) => {
            let mut path = prefix.to_vec();
            while let Some(Tok::Ident(id)) = t.get(*pos) {
                path.push(id.clone());
                *pos += 1;
                match t.get(*pos) {
                    Some(Tok::PathSep) => {
                        *pos += 1;
                        if matches!(t.get(*pos), Some(Tok::Open) | Some(Tok::Star)) {
                            parse_tree(t, pos, &path, out);
                            return;
                        }
                    }
                    _ => break,
                }
            }
            let mut alias = None;
            if matches!(t.get(*pos), Some(Tok::Ident(a)) if a == "as") {
                *pos += 1;
                if let Some(Tok::Ident(b)) = t.get(*pos) {
                    alias = Some(b.clone());
                    *pos += 1;
                }
            }
            if path.len() > prefix.len() {
                if path.last().is_some_and(|s| s == "self") {
                    path.pop();
                }
                if !path.is_empty() {
                    let name = alias.or_else(|| path.last().cloned());
                    out.push((path, name));
                }
            }
        }
        Some(_) => {
            *pos += 1;
        }
        None => {}
    }
}

const DEF_KEYWORDS: &[&str] = &["struct", "enum", "trait", "union", "type", "fn", "mod"];

/// Names defined by items in non-test code of this file.
fn parse_defines(v: &FileView) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (idx, line) in v.code.lines().enumerate() {
        if v.test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let cs: Vec<char> = line.chars().collect();
        for kw in DEF_KEYWORDS.iter().copied().chain(["macro_rules!"]) {
            let needle: Vec<char> = kw.chars().collect();
            let mut from = 0;
            while from + needle.len() <= cs.len() {
                if cs[from..from + needle.len()] != needle[..] {
                    from += 1;
                    continue;
                }
                let s = from;
                let e = from + needle.len();
                from = e;
                let pre_ok = s == 0 || !is_ident(cs[s - 1]);
                let post_ok = cs.get(e).is_none_or(|c| !is_ident(*c));
                if !pre_ok || (!post_ok && !kw.ends_with('!')) {
                    continue;
                }
                let mut j = e;
                while j < cs.len() && cs[j].is_whitespace() {
                    j += 1;
                }
                let mut k = j;
                while k < cs.len() && is_ident(cs[k]) {
                    k += 1;
                }
                if k > j {
                    out.insert(cs[j..k].iter().collect());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip::view;

    fn uses(src: &str) -> Vec<(String, Vec<String>, bool)> {
        parse_file(&view(src))
            .uses
            .into_iter()
            .map(|b| (b.name, b.target, b.is_pub))
            .collect()
    }

    fn path(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn plain_alias_and_group_bindings() {
        let got = uses(
            "use std::collections::HashMap as Map;\n\
             use std::time::{Instant, SystemTime as Wall};\n\
             pub use std::sync::mpsc::{self as chan, Receiver};\n",
        );
        assert_eq!(
            got,
            vec![
                (
                    "Map".into(),
                    path(&["std", "collections", "HashMap"]),
                    false
                ),
                ("Instant".into(), path(&["std", "time", "Instant"]), false),
                ("Wall".into(), path(&["std", "time", "SystemTime"]), false),
                ("chan".into(), path(&["std", "sync", "mpsc"]), true),
                (
                    "Receiver".into(),
                    path(&["std", "sync", "mpsc", "Receiver"]),
                    true
                ),
            ]
        );
    }

    #[test]
    fn nested_groups_globs_and_underscore() {
        let got = uses("use std::{collections::{HashMap, HashSet}, io::*};\nuse a::B as _;\n");
        assert_eq!(
            got,
            vec![
                (
                    "HashMap".into(),
                    path(&["std", "collections", "HashMap"]),
                    false
                ),
                (
                    "HashSet".into(),
                    path(&["std", "collections", "HashSet"]),
                    false
                ),
            ]
        );
    }

    #[test]
    fn multiline_group_spans_are_recorded() {
        let s = "pub(crate) use std::sync::{\n    Mutex,\n    RwLock,\n};\n";
        let f = parse_file(&view(s));
        assert_eq!(f.uses.len(), 2);
        assert!(f.uses.iter().all(|b| b.is_pub));
        assert!(f.uses.iter().all(|b| b.span == (1, 4)));
    }

    #[test]
    fn defines_capture_items_but_not_test_items() {
        let s = "struct Instant(u64);\nenum Barrier { A }\nfn thread_rng() {}\nmod epoch;\n\
                 #[cfg(test)]\nmod tests {\n    struct SystemTime;\n}\n";
        let d = parse_file(&view(s)).defines;
        for n in ["Instant", "Barrier", "thread_rng", "epoch"] {
            assert!(d.contains(n), "missing {n}: {d:?}");
        }
        assert!(!d.contains("SystemTime"), "test-only define leaked: {d:?}");
    }

    #[test]
    fn export_chains_resolve_through_crates() {
        let mut ws = Workspace::default();
        let shim = parse_file(&view("pub use std::collections::HashMap as FastMap;\n"));
        ws.add_exports("paragon_shim", &shim);
        let hop = parse_file(&view("pub use paragon_shim::FastMap as Fast2;\n"));
        ws.add_exports("paragon_hop", &hop);

        let (rule, canon) = ws
            .banned("paragon_x", &path(&["paragon_shim", "FastMap"]))
            .expect("one-hop re-export resolves");
        assert_eq!(rule, "D1");
        assert_eq!(canon, path(&["std", "collections", "HashMap"]));
        let (rule, _) = ws
            .banned("paragon_x", &path(&["paragon_hop", "Fast2"]))
            .expect("two-hop re-export resolves");
        assert_eq!(rule, "D1");
        // Non-exported items and relative roots stay out of model.
        assert!(ws
            .banned("paragon_x", &path(&["paragon_shim", "Other"]))
            .is_none());
        assert!(ws
            .banned("paragon_x", &path(&["self", "sync", "Barrier"]))
            .is_none());
        assert!(ws.banned("paragon_x", &path(&["super", "Mutex"])).is_none());
    }

    #[test]
    fn crate_root_resolves_through_own_exports() {
        let mut ws = Workspace::default();
        let f = parse_file(&view("pub use std::time::Instant as Tick;\n"));
        ws.add_exports("paragon_me", &f);
        let (rule, _) = ws
            .banned("paragon_me", &path(&["crate", "Tick"]))
            .expect("crate-rooted path maps to own ident");
        assert_eq!(rule, "D2");
    }

    #[test]
    fn cycles_are_cut() {
        let mut ws = Workspace::default();
        let a = parse_file(&view("pub use paragon_b::Thing;\n"));
        ws.add_exports("paragon_a", &a);
        let b = parse_file(&view("pub use paragon_a::Thing;\n"));
        ws.add_exports("paragon_b", &b);
        assert!(ws
            .banned("paragon_x", &path(&["paragon_a", "Thing"]))
            .is_none());
    }

    #[test]
    fn banned_registry_covers_the_rule_surface() {
        let cases: &[(&[&str], Option<&str>)] = &[
            (&["std", "collections", "HashMap"], Some("D1")),
            (&["std", "collections", "hash_map", "HashMap"], Some("D1")),
            (&["std", "collections", "BTreeMap"], None),
            (&["std", "time", "Instant"], Some("D2")),
            (&["std", "time", "Duration"], None),
            (&["std", "thread"], Some("D2")),
            (&["std", "thread", "spawn"], Some("D2")),
            (&["rand", "thread_rng"], Some("D2")),
            (&["std", "sync", "Mutex"], Some("C1")),
            (&["std", "sync", "OnceLock"], Some("C1")),
            (&["std", "sync", "atomic", "AtomicU64"], Some("C1")),
            (&["std", "sync", "atomic", "Ordering"], Some("C1")),
            (&["std", "sync", "Arc"], None),
            (&["std", "sync", "mpsc"], Some("C2")),
            (&["std", "sync", "mpsc", "channel"], Some("C2")),
            (&["std", "cell", "RefCell"], None),
        ];
        for (p, want) in cases {
            assert_eq!(banned_path(&path(p)), *want, "path {p:?}");
        }
    }
}
