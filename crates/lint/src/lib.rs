//! `paragon-lint` — workspace invariant checker.
//!
//! The paper's tables (IPPS'96 Tables 2–4) are reproduced from flight-
//! recorder traces of same-seed simulation runs. That only works while
//! a few families of invariants hold, and this crate enforces them as
//! named, machine-checkable rules:
//!
//! * **D1** — no `HashMap`/`HashSet` in sim-visible code: their seeded
//!   iteration order would make same-seed runs diverge.
//! * **D2** — no wall-clock or ambient nondeterminism (`Instant`,
//!   `SystemTime`, `thread_rng`) outside the `paragon-sim` kernel; and
//!   no host threads (`thread::spawn`, `std::thread`) *anywhere*,
//!   the sim included, except the sanctioned `crates/sim/src/parallel.rs`
//!   module whose uses carry W1-justified waivers.
//! * **P1** — no `panic!`/`unwrap`/`expect`/`unreachable!`/unchecked
//!   indexing in non-test code of the I/O-path crates (disk, os, pfs,
//!   mesh, ufs): injected faults must surface as protocol errors.
//! * **C1** — no thread-shareable mutable state (`static mut`,
//!   `thread_local!`, `std::sync` locks/atomics, `Arc`-wrapped interior
//!   mutability) outside the sanctioned parallel kernel
//!   (`crates/sim/src/parallel.rs`) and its merge path
//!   (`crates/workload/src/shard.rs`).
//! * **C2** — no host channel construction (`std::sync::mpsc`) outside
//!   those same modules: cross-shard handoff goes through the typed
//!   frame-channel/epoch-barrier API.
//! * **X1** — cross-file exhaustiveness: every protocol request variant
//!   has a handler arm, a trace mapping, and a `PfsError` channel; every
//!   `EventKind` is in `ALL`, emitted somewhere, and named in
//!   `workload/spans.rs`; every `Redundancy` mode is dispatched on
//!   outside its declaration; every telemetry metric name is registered
//!   or recorded.
//! * **W1** — waiver hygiene: `// paragon-lint: allow(<rule>) — <why>`
//!   must carry a justification.
//! * **W2** — waiver liveness: a waiver whose rule no longer fires on
//!   the lines it covers is itself a finding, so the waiver ledger
//!   cannot rot.
//!
//! D1/D2/C1/C2 are resolution-aware (see [`resolve`]): `use`
//! aliases and cross-crate `pub use` re-export chains of banned items
//! are caught; locally defined types shadow banned names.
//!
//! Test code (`#[cfg(test)]` regions, `tests/`, `benches/`) is exempt
//! from the per-file rules.

pub mod concurrency;
pub mod resolve;
pub mod rules;
pub mod sarif;
pub mod strip;
pub mod x1;

pub use rules::{lint_file, lint_file_in, FileCfg, Finding};
pub use sarif::findings_to_sarif;

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose non-test code falls under P1 (the I/O path).
pub const P1_CRATES: &[&str] = &["disk", "os", "pfs", "mesh", "ufs"];

/// Files allowed to keep `HashMap`/`HashSet` (none today; additions
/// need a rationale in DESIGN.md).
pub const D1_ALLOW: &[&str] = &[];

/// The sanctioned shared-state modules: the parallel kernel itself and
/// the merge path that folds world results. C1/C2 are off here — the
/// point of the rules is to fence everything else off from what only
/// these two files may do.
pub const C_SANCTIONED: &[&str] = &["crates/sim/src/parallel.rs", "crates/workload/src/shard.rs"];

/// Derive which rules apply to a workspace-relative path.
pub fn cfg_for(rel: &str) -> FileCfg {
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let exempt = rel
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples");
    let sanctioned = C_SANCTIONED.contains(&rel);
    FileCfg {
        d1: !exempt && !D1_ALLOW.contains(&rel),
        d2: !exempt && crate_name != "sim",
        // The thread ban has no crate-level exemption: even the sim
        // kernel may not touch host threads, except the one sanctioned
        // parallel-kernel module — and that file silences the rule with
        // per-site W1-justified waivers, so every use carries its
        // soundness argument in the source.
        threads: !exempt,
        p1: !exempt && P1_CRATES.contains(&crate_name),
        c1: !exempt && !sanctioned,
        c2: !exempt && !sanctioned,
    }
}

/// Directory names the workspace scan must never descend into: build
/// output and experiment results can contain `.rs` files (fixtures,
/// build-script output) that are not workspace sources.
const SKIP_DIRS: &[&str] = &["target", "results"];

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// The Cargo package ident (`-` mapped to `_`) of the crate at `dir`,
/// falling back to the directory name.
fn crate_ident(dir: &Path) -> String {
    let fallback = dir
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("")
        .to_string();
    let Ok(manifest) = std::fs::read_to_string(dir.join("Cargo.toml")) else {
        return fallback.replace('-', "_");
    };
    manifest
        .lines()
        .find_map(|l| {
            let l = l.trim();
            let rest = l.strip_prefix("name")?.trim_start().strip_prefix('=')?;
            Some(rest.trim().trim_matches('"').replace('-', "_"))
        })
        .unwrap_or(fallback)
        .replace('-', "_")
}

/// Collect `crates/*/src/**/*.rs` under `root` as `rel path → source`,
/// skipping `target/` and `results/` explicitly. Exposed so tests can
/// assert the skip behavior on synthetic workspaces.
pub fn workspace_sources(root: &Path) -> io::Result<BTreeMap<String, String>> {
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.join("src").is_dir())
        .collect();
    crate_dirs.sort();
    for c in &crate_dirs {
        collect_rs(&c.join("src"), &mut files)?;
    }
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    for p in &files {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        sources.insert(rel, std::fs::read_to_string(p)?);
    }
    Ok(sources)
}

/// Crate dir name of a workspace-relative source path.
fn crate_dir_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

/// Build the cross-crate re-export table from every file's `pub use`
/// declarations.
pub fn build_workspace(root: &Path, sources: &BTreeMap<String, String>) -> resolve::Workspace {
    let mut idents: BTreeMap<String, String> = BTreeMap::new();
    let mut ws = resolve::Workspace::default();
    for (rel, src) in sources {
        let dir = crate_dir_of(rel);
        let ident = idents
            .entry(dir.to_string())
            .or_insert_with(|| crate_ident(&root.join("crates").join(dir)))
            .clone();
        let syms = resolve::parse_file(&strip::view(src));
        ws.add_exports(&ident, &syms);
    }
    ws
}

/// Scan `crates/*/src/**/*.rs` under `root` and run every rule.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let sources = workspace_sources(root)?;
    let ws = build_workspace(root, &sources);
    let mut idents: BTreeMap<String, String> = BTreeMap::new();
    let mut findings = Vec::new();
    for (rel, src) in &sources {
        let dir = crate_dir_of(rel);
        let ident = idents
            .entry(dir.to_string())
            .or_insert_with(|| crate_ident(&root.join("crates").join(dir)))
            .clone();
        findings.extend(lint_file_in(rel, src, cfg_for(rel), &ws, &ident));
    }
    findings.extend(x1_workspace(&sources));
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

const PROTO: &str = "crates/pfs/src/proto.rs";
const SERVER: &str = "crates/pfs/src/server.rs";
const PFS_FS: &str = "crates/pfs/src/fs.rs";
const POINTER: &str = "crates/pfs/src/pointer.rs";
const TRACE: &str = "crates/sim/src/trace.rs";
const SPANS: &str = "crates/workload/src/spans.rs";
const TELEMETRY: &str = "crates/workload/src/telemetry.rs";
const REDUNDANCY: &str = "crates/pfs/src/redundancy.rs";
const PROFILE: &str = "crates/profile/src/lib.rs";

/// Run X1 against the real workspace file set.
fn x1_workspace(sources: &BTreeMap<String, String>) -> Vec<Finding> {
    let mut anchors = Vec::new();
    for path in [
        PROTO, SERVER, PFS_FS, POINTER, TRACE, SPANS, TELEMETRY, REDUNDANCY, PROFILE,
    ] {
        match sources.get(path) {
            Some(src) => anchors.push(x1::prep(path, src)),
            None => {
                return vec![Finding {
                    rule: "X1",
                    file: path.to_string(),
                    line: 1,
                    msg: "anchor file missing from workspace scan".into(),
                }]
            }
        }
    }
    let emitters: Vec<x1::Src> = sources
        .iter()
        .filter(|(rel, _)| {
            // trace.rs declares kinds and spans.rs consumes them; the
            // bench CLI, the profiler, and this crate also only
            // consume. None of them count as emission evidence.
            *rel != TRACE
                && *rel != SPANS
                && *rel != PROTO
                && !rel.starts_with("crates/bench/")
                && !rel.starts_with("crates/profile/")
                && !rel.starts_with("crates/lint/")
        })
        .map(|(rel, src)| x1::prep(rel, src))
        .collect();
    let [proto, server, pfs_fs, pointer, trace, spans, telemetry, redundancy, profile] =
        &anchors[..]
    else {
        unreachable!("anchors holds exactly nine entries");
    };
    let mut findings = x1::check_x1(proto, &[server, pfs_fs], pointer, trace, spans, &emitters);
    // Metric-name vocabulary: users are every scanned source except the
    // declaring file itself (its non-module code is searched separately
    // inside the check) and this crate — notably the workload driver and
    // the bench CLI are legitimate places to record a metric.
    let metric_users: Vec<x1::Src> = sources
        .iter()
        .filter(|(rel, _)| *rel != TELEMETRY && !rel.starts_with("crates/lint/"))
        .map(|(rel, src)| x1::prep(rel, src))
        .collect();
    let metric_users: Vec<&x1::Src> = metric_users.iter().collect();
    findings.extend(x1::check_x1_metric_names(telemetry, &metric_users));
    // The profiler's `bench.kernel.*` scalar vocabulary follows the same
    // contract: every name declared in its `names` module must be
    // exported or gated somewhere else in the workspace (the bench CLI
    // exports them, the telemetry gate classifies the stall fraction).
    let profile_users: Vec<x1::Src> = sources
        .iter()
        .filter(|(rel, _)| *rel != PROFILE && !rel.starts_with("crates/lint/"))
        .map(|(rel, src)| x1::prep(rel, src))
        .collect();
    let profile_users: Vec<&x1::Src> = profile_users.iter().collect();
    findings.extend(x1::check_x1_metric_names(profile, &profile_users));
    // Redundancy-mode exhaustiveness: every mount-level redundancy mode
    // must be dispatched on somewhere outside its declaring file (the
    // experiment driver and the CLI are the expected sites).
    let redundancy_users: Vec<x1::Src> = sources
        .iter()
        .filter(|(rel, _)| *rel != REDUNDANCY && !rel.starts_with("crates/lint/"))
        .map(|(rel, src)| x1::prep(rel, src))
        .collect();
    let redundancy_users: Vec<&x1::Src> = redundancy_users.iter().collect();
    findings.extend(x1::check_x1_redundancy(redundancy, &redundancy_users));
    findings
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize findings as a JSON array (stable field order).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"msg\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.msg)
        ));
    }
    out.push(']');
    out
}
