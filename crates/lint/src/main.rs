//! `paragon-lint` binary: scan the workspace, print findings, exit
//! nonzero when any rule fires. `--json` emits a machine-readable
//! array; `--sarif` emits a SARIF 2.1.0 log for code-scanning UIs.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let json = std::env::args().any(|a| a == "--json");
    let sarif = std::env::args().any(|a| a == "--sarif");
    // The binary lives at crates/lint; the workspace root is two up.
    let root = match Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2) {
        Some(r) => r,
        None => {
            eprintln!("paragon-lint: cannot locate workspace root");
            return ExitCode::FAILURE;
        }
    };
    let findings = match paragon_lint::lint_workspace(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("paragon-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if sarif {
        print!("{}", paragon_lint::findings_to_sarif(&findings));
    } else if json {
        println!("{}", paragon_lint::findings_to_json(&findings));
    } else if findings.is_empty() {
        println!("paragon-lint: clean (rules D1, D2, P1, C1, C2, X1, W1, W2)");
    } else {
        for f in &findings {
            println!("{} {}:{} — {}", f.rule, f.file, f.line, f.msg);
        }
        println!("paragon-lint: {} finding(s)", findings.len());
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
