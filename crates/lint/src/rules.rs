//! Per-file rules: D1 (deterministic containers), D2 (no ambient
//! nondeterminism), P1 (panic-freedom on the I/O path), W1 (waiver
//! hygiene), plus the waiver parser that can silence any of them.

use crate::strip::{view, FileView};

/// One lint finding. `line` is 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub msg: String,
}

impl Finding {
    fn new(rule: &'static str, file: &str, line: usize, msg: String) -> Self {
        Finding {
            rule,
            file: file.to_string(),
            line,
            msg,
        }
    }
}

/// Rule ids a waiver may name.
pub const KNOWN_RULES: &[&str] = &["D1", "D2", "P1", "X1"];

/// Which rule families apply to a file. The caller derives this from the
/// path; fixture tests construct it directly.
#[derive(Debug, Clone, Copy)]
pub struct FileCfg {
    /// D1: ban `HashMap`/`HashSet` (sim-visible iteration order).
    pub d1: bool,
    /// D2: ban wall-clock / ambient nondeterminism.
    pub d2: bool,
    /// D2 thread ban: `thread::spawn` / `std::thread` are banned in
    /// *every* crate, the sim included — host threads may only be
    /// touched by the sanctioned parallel-kernel module
    /// (`crates/sim/src/parallel.rs`), which carries explicit
    /// W1-justified waivers rather than a config exemption.
    pub threads: bool,
    /// P1: ban panicking constructs (I/O-path crates only).
    pub p1: bool,
}

impl FileCfg {
    pub fn all() -> Self {
        FileCfg {
            d1: true,
            d2: true,
            threads: true,
            p1: true,
        }
    }
}

/// A parsed `// paragon-lint: allow(<rules>) — <reason>` waiver.
///
/// A waiver on a line that also carries code covers that line only; a
/// waiver on a line of its own covers the rest of its enclosing brace
/// block. The justification after the dash is mandatory (W1).
struct Waiver {
    rules: Vec<String>,
    first: usize,
    last: usize,
}

const WAIVER_TAG: &str = "paragon-lint:";

/// Extract the waiver directive from `raw`, if the line carries one.
///
/// A directive must *open* the line's comment (`// paragon-lint: ...`),
/// so prose or string literals that merely mention the syntax do not
/// parse as waivers. `comment_col` is where the stripper saw this
/// line's `//` comment begin.
fn directive(raw: &str, comment_col: Option<usize>) -> Option<String> {
    let col = comment_col?;
    let text: String = raw
        .chars()
        .skip(col)
        .skip_while(|c| *c == '/')
        .collect::<String>()
        .trim_start_matches('!')
        .trim_start()
        .to_string();
    text.strip_prefix(WAIVER_TAG)
        .map(|rest| rest.trim_start().to_string())
}

fn parse_waivers(file: &str, src: &str, v: &FileView) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    let n_lines = v.test.len();
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let Some(body) = directive(raw, v.comment_col_at(line)) else {
            continue;
        };
        let Some(after) = body.strip_prefix("allow(") else {
            findings.push(Finding::new(
                "W1",
                file,
                line,
                "malformed waiver: expected `paragon-lint: allow(<rules>) — <reason>`".into(),
            ));
            continue;
        };
        let Some(close) = after.find(')') else {
            findings.push(Finding::new(
                "W1",
                file,
                line,
                "malformed waiver: missing ')' after allow(".into(),
            ));
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            findings.push(Finding::new(
                "W1",
                file,
                line,
                "waiver names no rules".into(),
            ));
            continue;
        }
        for r in &rules {
            if !KNOWN_RULES.contains(&r.as_str()) {
                findings.push(Finding::new(
                    "W1",
                    file,
                    line,
                    format!(
                        "waiver names unknown rule `{r}` (known: {})",
                        KNOWN_RULES.join(", ")
                    ),
                ));
            }
        }
        // Mandatory justification: a dash separator followed by prose.
        let rest = after[close + 1..].trim();
        let reason = ["—", "--", "-"]
            .iter()
            .find_map(|sep| rest.strip_prefix(sep))
            .map(str::trim)
            .unwrap_or("");
        if reason.len() < 8 {
            findings.push(Finding::new(
                "W1",
                file,
                line,
                "waiver lacks a justification (`// paragon-lint: allow(RULE) — why this is sound`)"
                    .into(),
            ));
            continue;
        }
        // Scope: own-line waivers cover the rest of the enclosing block.
        let code_line = v.line(line);
        let own_line = code_line.trim().is_empty();
        let last = if own_line {
            // Advance while the next line still starts inside the block;
            // the closing-brace line starts at depth `d0`, so it is the
            // last line covered.
            let d0 = v.depth_at(line);
            let mut l = line;
            while l < n_lines && v.depth_at(l + 1) >= d0 {
                l += 1;
            }
            l
        } else {
            line
        };
        waivers.push(Waiver {
            rules,
            first: line,
            last,
        });
    }
    (waivers, findings)
}

fn waived(waivers: &[Waiver], rule: &str, line: usize) -> bool {
    waivers
        .iter()
        .any(|w| line >= w.first && line <= w.last && w.rules.iter().any(|r| r == rule))
}

/// Does `hay` contain `word` bounded by non-identifier chars?
fn has_word(hay: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(at) = hay[from..].find(word) {
        let s = from + at;
        let e = s + word.len();
        let pre = hay[..s].chars().next_back();
        let post = hay[e..].chars().next();
        let pre_ok = pre.is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let post_ok = post.is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if pre_ok && post_ok {
            return true;
        }
        from = e;
    }
    false
}

/// P1 slice-index heuristic: flag `expr[index]` where `index` is a plain
/// identifier or field path (`slot`, `p.member`, `src.0`). Those indexes
/// are typically request- or wire-derived, exactly where an out-of-range
/// value must become a protocol error, not a crash. Ranges (`buf[a..b]`),
/// integer literals (`v[0]`), and compound expressions (`v[i + 1]`,
/// `v[i as usize]`) are loop/invariant-shaped and are not flagged.
fn index_findings(code_line: &str) -> Vec<String> {
    let chars: Vec<char> = code_line.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] != '[' {
            i += 1;
            continue;
        }
        // Preceding significant char must end an indexable expression.
        let mut p = i;
        while p > 0 && chars[p - 1] == ' ' {
            p -= 1;
        }
        let prev = if p > 0 { Some(chars[p - 1]) } else { None };
        let indexable =
            matches!(prev, Some(c) if c.is_alphanumeric() || c == '_' || c == ')' || c == ']');
        // Find the matching `]` on this line.
        let mut depth = 1;
        let mut j = i + 1;
        while j < chars.len() && depth > 0 {
            match chars[j] {
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if depth != 0 {
            break; // index spans lines; out of scope for the heuristic
        }
        let inner: String = chars[i + 1..j - 1].iter().collect();
        i = j;
        if !indexable {
            continue;
        }
        let inner = inner.trim();
        if inner.is_empty() || inner.contains("..") {
            continue;
        }
        if inner.chars().all(|c| c.is_ascii_digit() || c == '_') {
            continue;
        }
        let is_path = inner.split('.').all(|seg| {
            !seg.is_empty()
                && (seg.chars().all(|c| c.is_ascii_digit())
                    || (seg
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                        && seg.chars().all(|c| c.is_alphanumeric() || c == '_')))
        });
        if is_path {
            out.push(inner.to_string());
        }
    }
    out
}

const D2_WORDS: &[&str] = &["Instant", "SystemTime", "thread_rng"];
const P1_MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];

/// Run D1/D2/P1/W1 over one file. `src` is the raw source text.
pub fn lint_file(file: &str, src: &str, cfg: FileCfg) -> Vec<Finding> {
    let v = view(src);
    let (waivers, mut findings) = parse_waivers(file, src, &v);

    for (idx, code_line) in v.code.lines().enumerate() {
        let line = idx + 1;
        if v.is_test(line) {
            continue;
        }
        if cfg.d1 {
            for word in ["HashMap", "HashSet"] {
                if has_word(code_line, word) && !waived(&waivers, "D1", line) {
                    findings.push(Finding::new(
                        "D1",
                        file,
                        line,
                        format!(
                            "`{word}` in sim-visible code: iteration order is randomly seeded; \
                             use `BTreeMap`/`BTreeSet` so same-seed runs stay byte-identical"
                        ),
                    ));
                }
            }
        }
        if cfg.d2 {
            for word in D2_WORDS {
                if has_word(code_line, word) && !waived(&waivers, "D2", line) {
                    findings.push(Finding::new(
                        "D2",
                        file,
                        line,
                        format!(
                            "`{word}` outside the sim kernel: wall-clock/ambient entropy breaks \
                             same-seed reproducibility; use SimTime / seeded rng streams"
                        ),
                    ));
                }
            }
        }
        if cfg.threads
            && (code_line.contains("thread::spawn") || has_word(code_line, "std::thread"))
            && !waived(&waivers, "D2", line)
        {
            findings.push(Finding::new(
                "D2",
                file,
                line,
                "host threads (`thread::spawn` / `std::thread`): OS scheduling order is \
                 nondeterministic; spawn sim tasks on the executor, or route host \
                 parallelism through the sanctioned `sim::parallel` module"
                    .into(),
            ));
        }
        if cfg.p1 {
            for mac in P1_MACROS {
                if code_line.contains(mac) && !waived(&waivers, "P1", line) {
                    findings.push(Finding::new(
                        "P1",
                        file,
                        line,
                        format!(
                            "`{mac}` on the I/O path: faults must surface as protocol errors \
                             (PfsError/DiskError/RpcError), not process aborts"
                        ),
                    ));
                }
            }
            for call in [".unwrap()", ".expect("] {
                if code_line.contains(call) && !waived(&waivers, "P1", line) {
                    findings.push(Finding::new(
                        "P1",
                        file,
                        line,
                        format!("`{call}` on the I/O path: propagate the error instead"),
                    ));
                }
            }
            if !waived(&waivers, "P1", line) {
                for idx_expr in index_findings(code_line) {
                    findings.push(Finding::new(
                        "P1",
                        file,
                        line,
                        format!(
                            "unchecked slice index `[{idx_expr}]`: use `.get({idx_expr})` and \
                             map None to an error (or waive with the bounds invariant)"
                        ),
                    ));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_boundaries() {
        assert!(has_word("use std::collections::HashMap;", "HashMap"));
        assert!(!has_word("struct MyHashMapLike;", "HashMap"));
        assert!(!has_word("InstantReplay", "Instant"));
    }

    #[test]
    fn index_heuristic_shapes() {
        assert_eq!(index_findings("let d = self.ids[ion];"), vec!["ion"]);
        assert_eq!(index_findings("per[p.member].push(x)"), vec!["p.member"]);
        assert_eq!(index_findings("t[src.0]"), vec!["src.0"]);
        assert!(index_findings("buf[a..b].copy_from_slice(&x[c..d])").is_empty());
        assert!(index_findings("v[0] + v[i + 1] + v[i as usize]").is_empty());
        assert!(index_findings("#[derive(Clone)]").is_empty());
        assert!(index_findings("vec![0u8; 4]").is_empty());
        assert!(index_findings("let x: [u8; 4] = y;").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(lint_file("x.rs", src, FileCfg::all()).is_empty());
    }

    #[test]
    fn waiver_silences_and_w1_fires() {
        let ok = "use std::collections::HashMap; // paragon-lint: allow(D1) — host-only tool state, never sim-visible\n";
        assert!(lint_file("x.rs", ok, FileCfg::all()).is_empty());
        let bare = "use std::collections::HashMap; // paragon-lint: allow(D1)\n";
        let f = lint_file("x.rs", bare, FileCfg::all());
        assert!(f.iter().any(|f| f.rule == "W1"));
        assert!(
            f.iter().any(|f| f.rule == "D1"),
            "unjustified waiver must not silence"
        );
    }

    #[test]
    fn thread_ban_applies_even_where_d2_is_off() {
        // The sim crate is exempt from the wall-clock D2 words but NOT
        // from the thread ban: a sharded kernel that raced the host
        // scheduler would silently break byte-identity.
        let sim_cfg = FileCfg {
            d1: true,
            d2: false,
            threads: true,
            p1: false,
        };
        let spawn = "let h = std::thread::spawn(move || world.run());\n";
        let f = lint_file("crates/sim/src/executor.rs", spawn, sim_cfg);
        assert_eq!(f.iter().filter(|f| f.rule == "D2").count(), 1);
        let import = "use std::thread;\n";
        let f = lint_file("crates/sim/src/executor.rs", import, sim_cfg);
        assert_eq!(f.iter().filter(|f| f.rule == "D2").count(), 1);
        // `Instant` stays allowed under this cfg (d2 off) — the ban is
        // its own dimension.
        let inst = "let t = Instant::now();\n";
        assert!(lint_file("crates/sim/src/executor.rs", inst, sim_cfg).is_empty());
    }

    #[test]
    fn thread_ban_is_waiverable_with_justification() {
        let ok = "// paragon-lint: allow(D2) — epoch barrier: worlds only interact at deterministic merge points\n\
                  let h = std::thread::spawn(run);\n";
        // Own-line waiver covers the rest of the block.
        assert!(lint_file("crates/sim/src/parallel.rs", ok, FileCfg::all()).is_empty());
        let bare = "let h = std::thread::spawn(run); // paragon-lint: allow(D2)\n";
        let f = lint_file("crates/sim/src/parallel.rs", bare, FileCfg::all());
        assert!(f.iter().any(|f| f.rule == "W1"));
        assert!(
            f.iter().any(|f| f.rule == "D2"),
            "unjustified waiver must not silence the thread ban"
        );
    }

    #[test]
    fn block_scope_waiver() {
        let src = "fn f(v: &[u32], pos: usize) -> u32 {\n    \
                   // paragon-lint: allow(P1) — pos comes from binary_search, in bounds\n    \
                   v[pos]\n}\nfn g(v: &[u32], pos: usize) -> u32 {\n    v[pos]\n}\n";
        let f = lint_file("x.rs", src, FileCfg::all());
        assert_eq!(f.iter().filter(|f| f.rule == "P1").count(), 1);
        assert_eq!(f.iter().find(|f| f.rule == "P1").map(|f| f.line), Some(6));
    }
}
