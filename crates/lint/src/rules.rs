//! Per-file rules: D1 (deterministic containers), D2 (no ambient
//! nondeterminism), P1 (panic-freedom on the I/O path), C1/C2 (shard
//! safety), W1 (waiver hygiene), W2 (stale-waiver detection), plus the
//! waiver parser that can silence the scanned rules.
//!
//! D1/D2/C1/C2 are *resolution-aware*: the scan consults the per-file
//! symbol table ([`crate::resolve`]) so `use std::collections::HashMap
//! as Map;` is caught at every `Map` site, while a local `struct
//! Instant` stops bare `Instant` tokens from flagging (a
//! `std::`-qualified occurrence still does).

use std::collections::BTreeSet;

use crate::concurrency;
use crate::resolve::{self, FileSymbols, Workspace};
use crate::strip::{view, FileView};

/// One lint finding. `line` is 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub msg: String,
}

impl Finding {
    fn new(rule: &'static str, file: &str, line: usize, msg: String) -> Self {
        Finding {
            rule,
            file: file.to_string(),
            line,
            msg,
        }
    }
}

/// Rule ids a waiver may name. (W1/W2 police the waivers themselves and
/// cannot be waived; X1 findings are cross-file, so a line-scoped
/// waiver naming it can never be live and W2 will flag it.)
pub const KNOWN_RULES: &[&str] = &["D1", "D2", "P1", "C1", "C2", "X1"];

/// Which rule families apply to a file. The caller derives this from the
/// path; fixture tests construct it directly.
#[derive(Debug, Clone, Copy)]
pub struct FileCfg {
    /// D1: ban `HashMap`/`HashSet` (sim-visible iteration order).
    pub d1: bool,
    /// D2: ban wall-clock / ambient nondeterminism.
    pub d2: bool,
    /// D2 thread ban: `thread::spawn` / `std::thread` are banned in
    /// *every* crate, the sim included — host threads may only be
    /// touched by the sanctioned parallel-kernel module
    /// (`crates/sim/src/parallel.rs`), which carries explicit
    /// W1-justified waivers rather than a config exemption.
    pub threads: bool,
    /// P1: ban panicking constructs (I/O-path crates only).
    pub p1: bool,
    /// C1: ban thread-shareable mutable state (everywhere except the
    /// sanctioned parallel kernel + merge path).
    pub c1: bool,
    /// C2: ban host channel construction (same sanctioned modules).
    pub c2: bool,
}

impl FileCfg {
    pub fn all() -> Self {
        FileCfg {
            d1: true,
            d2: true,
            threads: true,
            p1: true,
            c1: true,
            c2: true,
        }
    }
}

/// A parsed `// paragon-lint: allow(<rules>) — <reason>` waiver.
///
/// A waiver on a line that also carries code covers that line only; a
/// waiver on a line of its own covers the rest of its enclosing brace
/// block. The justification after the dash is mandatory (W1), and
/// `used` tracks — per named rule — whether the waiver suppressed
/// anything, so W2 can flag the stale ones.
struct Waiver {
    rules: Vec<String>,
    first: usize,
    last: usize,
    used: Vec<bool>,
    in_test: bool,
}

const WAIVER_TAG: &str = "paragon-lint:";

/// Extract the waiver directive from `raw`, if the line carries one.
///
/// A directive must *open* the line's comment (`// paragon-lint: ...`),
/// so prose or string literals that merely mention the syntax do not
/// parse as waivers. `comment_col` is where the stripper saw this
/// line's `//` comment begin.
fn directive(raw: &str, comment_col: Option<usize>) -> Option<String> {
    let col = comment_col?;
    let text: String = raw
        .chars()
        .skip(col)
        .skip_while(|c| *c == '/')
        .collect::<String>()
        .trim_start_matches('!')
        .trim_start()
        .to_string();
    text.strip_prefix(WAIVER_TAG)
        .map(|rest| rest.trim_start().to_string())
}

fn parse_waivers(file: &str, src: &str, v: &FileView) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    let n_lines = v.test.len();
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let Some(body) = directive(raw, v.comment_col_at(line)) else {
            continue;
        };
        let Some(after) = body.strip_prefix("allow(") else {
            findings.push(Finding::new(
                "W1",
                file,
                line,
                "malformed waiver: expected `paragon-lint: allow(<rules>) — <reason>`".into(),
            ));
            continue;
        };
        let Some(close) = after.find(')') else {
            findings.push(Finding::new(
                "W1",
                file,
                line,
                "malformed waiver: missing ')' after allow(".into(),
            ));
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            findings.push(Finding::new(
                "W1",
                file,
                line,
                "waiver names no rules".into(),
            ));
            continue;
        }
        let mut unknown = false;
        for r in &rules {
            if !KNOWN_RULES.contains(&r.as_str()) {
                unknown = true;
                findings.push(Finding::new(
                    "W1",
                    file,
                    line,
                    format!(
                        "waiver names unknown rule `{r}` (known: {})",
                        KNOWN_RULES.join(", ")
                    ),
                ));
            }
        }
        if unknown {
            // A malformed waiver must not silence anything (and must not
            // count as a registered waiver for W2 either).
            continue;
        }
        // Mandatory justification: a dash separator followed by prose.
        let rest = after[close + 1..].trim();
        let reason = ["—", "--", "-"]
            .iter()
            .find_map(|sep| rest.strip_prefix(sep))
            .map(str::trim)
            .unwrap_or("");
        if reason.len() < 8 {
            findings.push(Finding::new(
                "W1",
                file,
                line,
                "waiver lacks a justification (`// paragon-lint: allow(RULE) — why this is sound`)"
                    .into(),
            ));
            continue;
        }
        // Scope: own-line waivers cover the rest of the enclosing block.
        let code_line = v.line(line);
        let own_line = code_line.trim().is_empty();
        let last = if own_line {
            // Advance while the next line still starts inside the block;
            // the closing-brace line starts at depth `d0`, so it is the
            // last line covered.
            let d0 = v.depth_at(line);
            let mut l = line;
            while l < n_lines && v.depth_at(l + 1) >= d0 {
                l += 1;
            }
            l
        } else {
            line
        };
        let used = vec![false; rules.len()];
        waivers.push(Waiver {
            rules,
            first: line,
            last,
            used,
            in_test: v.is_test(line),
        });
    }
    (waivers, findings)
}

/// Would any registered waiver cover `rule` at `line`? Marks every
/// covering waiver's rule slot as used (for W2) and returns whether the
/// finding is silenced.
fn try_waive(waivers: &mut [Waiver], rule: &str, line: usize) -> bool {
    let mut hit = false;
    for w in waivers.iter_mut() {
        if line < w.first || line > w.last {
            continue;
        }
        for (i, r) in w.rules.iter().enumerate() {
            if r == rule {
                w.used[i] = true;
                hit = true;
            }
        }
    }
    hit
}

/// Does `hay` contain `word` bounded by non-identifier chars?
fn has_word(hay: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(at) = hay[from..].find(word) {
        let s = from + at;
        let e = s + word.len();
        let pre = hay[..s].chars().next_back();
        let post = hay[e..].chars().next();
        let pre_ok = pre.is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let post_ok = post.is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if pre_ok && post_ok {
            return true;
        }
        from = e;
    }
    false
}

/// Char columns at which `word` occurs in `chars` with identifier
/// boundaries.
fn word_cols(chars: &[char], word: &str) -> Vec<usize> {
    let w: Vec<char> = word.chars().collect();
    let mut out = Vec::new();
    if w.is_empty() || chars.len() < w.len() {
        return out;
    }
    for s in 0..=chars.len() - w.len() {
        if chars[s..s + w.len()] != w[..] {
            continue;
        }
        let pre_ok = s == 0 || !(chars[s - 1].is_alphanumeric() || chars[s - 1] == '_');
        let post = chars.get(s + w.len());
        let post_ok = post.is_none_or(|c| !c.is_alphanumeric() && *c != '_');
        if pre_ok && post_ok {
            out.push(s);
        }
    }
    out
}

/// Identifier path segments immediately preceding the token at char
/// column `col`: for `a::b::WORD`, returns `["a", "b"]`.
fn leading_path(chars: &[char], col: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let mut k = col;
    loop {
        if k < 2 || !(chars[k - 1] == ':' && chars[k - 2] == ':') {
            break;
        }
        k -= 2;
        let end = k;
        while k > 0 && (chars[k - 1].is_alphanumeric() || chars[k - 1] == '_') {
            k -= 1;
        }
        if k == end {
            break;
        }
        segs.push(chars[k..end].iter().collect());
    }
    segs.reverse();
    segs
}

/// Should a bare/qualified occurrence of banned-vocabulary `word` at
/// `col` flag? Fully `std::`-qualified occurrences always do (shadowing
/// hides a name, not the item); `crate`/`self`/`super`-relative paths
/// never do; other qualifier roots resolve through the symbol table.
fn classify(
    chars: &[char],
    col: usize,
    word: &str,
    shadow: &BTreeSet<String>,
    syms: &FileSymbols,
    ws: &Workspace,
    crate_ident: &str,
) -> bool {
    let quals = leading_path(chars, col);
    if quals.is_empty() {
        return !shadow.contains(word);
    }
    match quals[0].as_str() {
        "std" | "core" | "alloc" => true,
        "crate" | "self" | "super" => false,
        root => {
            if let Some(b) = syms.binding(root) {
                let mut full = b.target.clone();
                full.extend(quals[1..].iter().cloned());
                full.push(word.to_string());
                return ws.banned(crate_ident, &full).is_some();
            }
            if syms.defines.contains(root) {
                return false;
            }
            if ws.exports.contains_key(root) {
                let mut full = quals.clone();
                full.push(word.to_string());
                return ws.banned(crate_ident, &full).is_some();
            }
            // Unknown root: keep the lexer's strictness — an unresolved
            // qualifier is not evidence of innocence.
            !shadow.contains(word)
        }
    }
}

/// P1 slice-index heuristic: flag `expr[index]` where `index` is a plain
/// identifier or field path (`slot`, `p.member`, `src.0`). Those indexes
/// are typically request- or wire-derived, exactly where an out-of-range
/// value must become a protocol error, not a crash. Ranges (`buf[a..b]`),
/// integer literals (`v[0]`), and compound expressions (`v[i + 1]`,
/// `v[i as usize]`) are loop/invariant-shaped and are not flagged.
fn index_findings(code_line: &str) -> Vec<String> {
    let chars: Vec<char> = code_line.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] != '[' {
            i += 1;
            continue;
        }
        // Preceding significant char must end an indexable expression.
        let mut p = i;
        while p > 0 && chars[p - 1] == ' ' {
            p -= 1;
        }
        let prev = if p > 0 { Some(chars[p - 1]) } else { None };
        let indexable =
            matches!(prev, Some(c) if c.is_alphanumeric() || c == '_' || c == ')' || c == ']');
        // Find the matching `]` on this line.
        let mut depth = 1;
        let mut j = i + 1;
        while j < chars.len() && depth > 0 {
            match chars[j] {
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if depth != 0 {
            break; // index spans lines; out of scope for the heuristic
        }
        let inner: String = chars[i + 1..j - 1].iter().collect();
        i = j;
        if !indexable {
            continue;
        }
        let inner = inner.trim();
        if inner.is_empty() || inner.contains("..") {
            continue;
        }
        if inner.chars().all(|c| c.is_ascii_digit() || c == '_') {
            continue;
        }
        let is_path = inner.split('.').all(|seg| {
            !seg.is_empty()
                && (seg.chars().all(|c| c.is_ascii_digit())
                    || (seg
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphabetic() || c == '_')
                        && seg.chars().all(|c| c.is_alphanumeric() || c == '_')))
        });
        if is_path {
            out.push(inner.to_string());
        }
    }
    out
}

const D2_WORDS: &[&str] = &["Instant", "SystemTime", "thread_rng"];
const P1_MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];

/// Every token the base word scans can produce, for deciding whether an
/// import-site finding would duplicate one.
fn is_base_word(name: &str) -> bool {
    matches!(name, "HashMap" | "HashSet")
        || D2_WORDS.contains(&name)
        || concurrency::C1_WORDS.contains(&name)
        || concurrency::C2_WORDS.contains(&name)
        // The atomic scan already sees every `Atomic*` token, so an
        // un-aliased atomic import must not get a second, duplicate
        // alias check.
        || (name.starts_with("Atomic") && name.chars().nth(6).is_some_and(|c| c.is_ascii_uppercase()))
}

/// Is `rule` (for an item canonicalizing to `canon`) active under `cfg`?
/// `std::thread` is special: it rides the thread-ban dimension, which
/// stays on even where the D2 wall-clock words are off.
fn rule_enabled(cfg: &FileCfg, rule: &str, canon: &[String]) -> bool {
    match rule {
        "D1" => cfg.d1,
        "D2" if canon.get(1).is_some_and(|s| s == "thread") => cfg.threads,
        "D2" => cfg.d2,
        "P1" => cfg.p1,
        "C1" => cfg.c1,
        "C2" => cfg.c2,
        _ => false,
    }
}

fn base_msg(rule: &'static str, word: &str) -> String {
    match rule {
        "D1" => format!(
            "`{word}` in sim-visible code: iteration order is randomly seeded; \
             use `BTreeMap`/`BTreeSet` so same-seed runs stay byte-identical"
        ),
        "D2" => format!(
            "`{word}` outside the sim kernel: wall-clock/ambient entropy breaks \
             same-seed reproducibility; use SimTime / seeded rng streams"
        ),
        "C1" => concurrency::c1_msg(word),
        "C2" => concurrency::c2_msg(word),
        _ => format!("`{word}` is banned"),
    }
}

fn short_why(rule: &str) -> &'static str {
    match rule {
        "D1" => "iteration order is randomly seeded; use `BTreeMap`/`BTreeSet`",
        "D2" => "wall-clock/ambient entropy breaks same-seed reproducibility",
        "C1" => "thread-shareable mutable state is confined to the sanctioned parallel kernel",
        "C2" => "cross-shard handoff must use the typed frame-channel/epoch-barrier API",
        _ => "banned item",
    }
}

/// A word the line scan looks for. `resolved` marks alias checks whose
/// target is already known-banned; base checks go through [`classify`].
struct Check {
    word: String,
    rule: &'static str,
    msg: String,
    skip_span: Option<(usize, usize)>,
    resolved: bool,
}

/// Run the per-file rules with an empty workspace model (fixture entry
/// point; real scans go through [`lint_file_in`]).
pub fn lint_file(file: &str, src: &str, cfg: FileCfg) -> Vec<Finding> {
    lint_file_in(file, src, cfg, &Workspace::default(), "")
}

/// Run D1/D2/P1/C1/C2/W1/W2 over one file. `src` is the raw source
/// text; `ws`/`crate_ident` supply the workspace resolution context.
pub fn lint_file_in(
    file: &str,
    src: &str,
    cfg: FileCfg,
    ws: &Workspace,
    crate_ident: &str,
) -> Vec<Finding> {
    let v = view(src);
    let syms = resolve::parse_file(&v);
    let (mut waivers, mut findings) = parse_waivers(file, src, &v);

    // Partition use-bindings: banned targets become scannable names,
    // everything else rebinds (shadows) its name.
    let mut banned_bindings: Vec<(&resolve::UseBinding, &'static str, Vec<String>)> = Vec::new();
    let mut shadow: BTreeSet<String> = syms.defines.clone();
    for b in &syms.uses {
        match ws.banned(crate_ident, &b.target) {
            Some((rule, canon)) => banned_bindings.push((b, rule, canon)),
            None => {
                shadow.insert(b.name.clone());
            }
        }
    }
    for (b, _, _) in &banned_bindings {
        shadow.remove(&b.name);
    }

    fn base(word: &str, rule: &'static str) -> Check {
        Check {
            word: word.to_string(),
            rule,
            msg: base_msg(rule, word),
            skip_span: None,
            resolved: false,
        }
    }
    let mut checks: Vec<Check> = Vec::new();
    if cfg.d1 {
        checks.extend(["HashMap", "HashSet"].map(|w| base(w, "D1")));
    }
    if cfg.d2 {
        checks.extend(D2_WORDS.iter().map(|w| base(w, "D2")));
    }
    if cfg.c1 {
        checks.extend(concurrency::C1_WORDS.iter().map(|w| base(w, "C1")));
    }
    if cfg.c2 {
        checks.extend(concurrency::C2_WORDS.iter().map(|w| base(w, "C2")));
    }
    for (b, rule, canon) in &banned_bindings {
        if !rule_enabled(&cfg, rule, canon) || is_base_word(&b.name) {
            continue;
        }
        // `use std::thread;` keeps its historical handling via the
        // dedicated thread line check below.
        if b.name == "thread" {
            continue;
        }
        let canon_s = canon.join("::");
        checks.push(Check {
            word: b.name.clone(),
            rule,
            msg: format!(
                "`{}` resolves to banned `{canon_s}` via use-declaration: {}",
                b.name,
                short_why(rule)
            ),
            skip_span: Some(b.span),
            resolved: true,
        });
    }

    for (idx, code_line) in v.code.lines().enumerate() {
        let line = idx + 1;
        if v.is_test(line) {
            continue;
        }
        let chars: Vec<char> = code_line.chars().collect();
        for ck in &checks {
            if ck.skip_span.is_some_and(|(a, b)| line >= a && line <= b) {
                continue;
            }
            let hit = word_cols(&chars, &ck.word).into_iter().any(|col| {
                ck.resolved || classify(&chars, col, &ck.word, &shadow, &syms, ws, crate_ident)
            });
            if hit && !try_waive(&mut waivers, ck.rule, line) {
                findings.push(Finding::new(ck.rule, file, line, ck.msg.clone()));
            }
        }
        if cfg.c1 {
            let atomic_hit = concurrency::atomic_tokens(code_line)
                .into_iter()
                .find(|tok| {
                    word_cols(&chars, tok)
                        .into_iter()
                        .any(|col| classify(&chars, col, tok, &shadow, &syms, ws, crate_ident))
                });
            if let Some(tok) = atomic_hit {
                if !try_waive(&mut waivers, "C1", line) {
                    findings.push(Finding::new("C1", file, line, concurrency::c1_msg(&tok)));
                }
            }
            for (_what, msg) in concurrency::c1_line_extras(code_line) {
                if !try_waive(&mut waivers, "C1", line) {
                    findings.push(Finding::new("C1", file, line, msg));
                }
            }
        }
        if cfg.threads
            && (code_line.contains("thread::spawn") || has_word(code_line, "std::thread"))
            && !try_waive(&mut waivers, "D2", line)
        {
            findings.push(Finding::new(
                "D2",
                file,
                line,
                "host threads (`thread::spawn` / `std::thread`): OS scheduling order is \
                 nondeterministic; spawn sim tasks on the executor, or route host \
                 parallelism through the sanctioned `sim::parallel` module"
                    .into(),
            ));
        }
        if cfg.p1 {
            for mac in P1_MACROS {
                if code_line.contains(mac) && !try_waive(&mut waivers, "P1", line) {
                    findings.push(Finding::new(
                        "P1",
                        file,
                        line,
                        format!(
                            "`{mac}` on the I/O path: faults must surface as protocol errors \
                             (PfsError/DiskError/RpcError), not process aborts"
                        ),
                    ));
                }
            }
            for call in [".unwrap()", ".expect("] {
                if code_line.contains(call) && !try_waive(&mut waivers, "P1", line) {
                    findings.push(Finding::new(
                        "P1",
                        file,
                        line,
                        format!("`{call}` on the I/O path: propagate the error instead"),
                    ));
                }
            }
            if !index_findings(code_line).is_empty() && !try_waive(&mut waivers, "P1", line) {
                for idx_expr in index_findings(code_line) {
                    findings.push(Finding::new(
                        "P1",
                        file,
                        line,
                        format!(
                            "unchecked slice index `[{idx_expr}]`: use `.get({idx_expr})` and \
                             map None to an error (or waive with the bounds invariant)"
                        ),
                    ));
                }
            }
        }
    }

    // Import-site findings for banned bindings the token scans could
    // not see (re-exported names, module imports): skipped when a
    // same-rule finding already landed inside the declaration's span.
    for (b, rule, canon) in &banned_bindings {
        if !rule_enabled(&cfg, rule, canon) || v.is_test(b.span.0) {
            continue;
        }
        let covered = findings
            .iter()
            .any(|f| f.rule == *rule && f.line >= b.span.0 && f.line <= b.span.1);
        if covered || try_waive(&mut waivers, rule, b.span.0) {
            continue;
        }
        findings.push(Finding::new(
            rule,
            file,
            b.span.0,
            format!(
                "`use` binds `{}` to banned `{}`: {}",
                b.name,
                canon.join("::"),
                short_why(rule)
            ),
        ));
    }

    // W2: every registered waiver must have suppressed something for
    // every rule it names, or the ledger has rotted.
    for w in &waivers {
        if w.in_test {
            continue;
        }
        for (i, r) in w.rules.iter().enumerate() {
            if !w.used[i] {
                findings.push(Finding::new(
                    "W2",
                    file,
                    w.first,
                    format!(
                        "stale waiver: `{r}` does not fire on the line(s) this waiver covers — \
                         delete the waiver or restore the invariant it documents"
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_boundaries() {
        assert!(has_word("use std::collections::HashMap;", "HashMap"));
        assert!(!has_word("struct MyHashMapLike;", "HashMap"));
        assert!(!has_word("InstantReplay", "Instant"));
    }

    #[test]
    fn leading_path_walks_qualifiers() {
        let line: Vec<char> = "let t = std::time::Instant::now();".chars().collect();
        let col = "let t = std::time::".chars().count();
        assert_eq!(leading_path(&line, col), ["std", "time"]);
        let line: Vec<char> = "Instant::now()".chars().collect();
        assert!(leading_path(&line, 0).is_empty());
    }

    #[test]
    fn index_heuristic_shapes() {
        assert_eq!(index_findings("let d = self.ids[ion];"), vec!["ion"]);
        assert_eq!(index_findings("per[p.member].push(x)"), vec!["p.member"]);
        assert_eq!(index_findings("t[src.0]"), vec!["src.0"]);
        assert!(index_findings("buf[a..b].copy_from_slice(&x[c..d])").is_empty());
        assert!(index_findings("v[0] + v[i + 1] + v[i as usize]").is_empty());
        assert!(index_findings("#[derive(Clone)]").is_empty());
        assert!(index_findings("vec![0u8; 4]").is_empty());
        assert!(index_findings("let x: [u8; 4] = y;").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(lint_file("x.rs", src, FileCfg::all()).is_empty());
    }

    #[test]
    fn waiver_silences_and_w1_fires() {
        let ok = "use std::collections::HashMap; // paragon-lint: allow(D1) — host-only tool state, never sim-visible\n";
        assert!(lint_file("x.rs", ok, FileCfg::all()).is_empty());
        let bare = "use std::collections::HashMap; // paragon-lint: allow(D1)\n";
        let f = lint_file("x.rs", bare, FileCfg::all());
        assert!(f.iter().any(|f| f.rule == "W1"));
        assert!(
            f.iter().any(|f| f.rule == "D1"),
            "unjustified waiver must not silence"
        );
    }

    #[test]
    fn thread_ban_applies_even_where_d2_is_off() {
        // The sim crate is exempt from the wall-clock D2 words but NOT
        // from the thread ban: a sharded kernel that raced the host
        // scheduler would silently break byte-identity.
        let sim_cfg = FileCfg {
            d1: true,
            d2: false,
            threads: true,
            p1: false,
            c1: true,
            c2: true,
        };
        let spawn = "let h = std::thread::spawn(move || world.run());\n";
        let f = lint_file("crates/sim/src/executor.rs", spawn, sim_cfg);
        assert_eq!(f.iter().filter(|f| f.rule == "D2").count(), 1);
        let import = "use std::thread;\n";
        let f = lint_file("crates/sim/src/executor.rs", import, sim_cfg);
        assert_eq!(f.iter().filter(|f| f.rule == "D2").count(), 1);
        // `Instant` stays allowed under this cfg (d2 off) — the ban is
        // its own dimension.
        let inst = "let t = Instant::now();\n";
        assert!(lint_file("crates/sim/src/executor.rs", inst, sim_cfg).is_empty());
    }

    #[test]
    fn thread_ban_is_waiverable_with_justification() {
        let ok = "// paragon-lint: allow(D2) — epoch barrier: worlds only interact at deterministic merge points\n\
                  let h = std::thread::spawn(run);\n";
        // Own-line waiver covers the rest of the block.
        assert!(lint_file("crates/sim/src/parallel.rs", ok, FileCfg::all()).is_empty());
        let bare = "let h = std::thread::spawn(run); // paragon-lint: allow(D2)\n";
        let f = lint_file("crates/sim/src/parallel.rs", bare, FileCfg::all());
        assert!(f.iter().any(|f| f.rule == "W1"));
        assert!(
            f.iter().any(|f| f.rule == "D2"),
            "unjustified waiver must not silence the thread ban"
        );
    }

    #[test]
    fn block_scope_waiver() {
        let src = "fn f(v: &[u32], pos: usize) -> u32 {\n    \
                   // paragon-lint: allow(P1) — pos comes from binary_search, in bounds\n    \
                   v[pos]\n}\nfn g(v: &[u32], pos: usize) -> u32 {\n    v[pos]\n}\n";
        let f = lint_file("x.rs", src, FileCfg::all());
        assert_eq!(f.iter().filter(|f| f.rule == "P1").count(), 1);
        assert_eq!(f.iter().find(|f| f.rule == "P1").map(|f| f.line), Some(6));
    }

    #[test]
    fn alias_import_is_caught_and_local_shadow_is_not() {
        let src =
            "use std::collections::HashMap as Map;\nfn f() { let m = Map::new(); let _ = m; }\n";
        let f = lint_file("x.rs", src, FileCfg::all());
        assert_eq!(
            f.iter().map(|f| (f.rule, f.line)).collect::<Vec<_>>(),
            [("D1", 1), ("D1", 2)]
        );
        assert!(
            f[1].msg.contains("std::collections::HashMap"),
            "{}",
            f[1].msg
        );

        let shadowed = "struct Instant(u64);\nfn f() -> Instant { Instant(3) }\n";
        assert!(lint_file("x.rs", shadowed, FileCfg::all()).is_empty());
        let qualified = "struct Instant(u64);\nfn f() -> u128 { std::time::Instant::now().elapsed().as_nanos() }\n";
        let f = lint_file("x.rs", qualified, FileCfg::all());
        assert_eq!(
            f.iter().map(|f| (f.rule, f.line)).collect::<Vec<_>>(),
            [("D2", 2)],
            "std-qualified use must pierce the local shadow"
        );
    }

    #[test]
    fn crate_relative_paths_are_never_banned() {
        let src = "fn f() { let b = crate::sync::Barrier::new(2); let _ = b; }\n";
        assert!(lint_file("x.rs", src, FileCfg::all()).is_empty());
    }

    #[test]
    fn stale_waiver_is_a_w2_finding() {
        let live = "use std::collections::HashMap; // paragon-lint: allow(D1) — host-side cache, never sim-visible\n";
        assert!(lint_file("x.rs", live, FileCfg::all()).is_empty());
        let stale = "fn f(v: &[u32]) -> usize {\n    \
                     // paragon-lint: allow(P1) — index checked by caller contract\n    \
                     v.len()\n}\n";
        let f = lint_file("x.rs", stale, FileCfg::all());
        assert_eq!(
            f.iter().map(|f| (f.rule, f.line)).collect::<Vec<_>>(),
            [("W2", 2)]
        );
        assert!(f[0].msg.contains("stale waiver"), "{}", f[0].msg);
    }

    #[test]
    fn multi_rule_waiver_tracks_each_rule_separately() {
        let src = "use std::collections::HashMap; // paragon-lint: allow(D1, C1) — host-side tool state only\n";
        let f = lint_file("x.rs", src, FileCfg::all());
        assert_eq!(
            f.iter().map(|f| (f.rule, f.line)).collect::<Vec<_>>(),
            [("W2", 1)],
            "D1 is live but the C1 half is stale"
        );
        let both = "use std::collections::HashMap; use std::sync::Mutex; // paragon-lint: allow(D1, C1) — host-side tool state only\n";
        assert!(lint_file("x.rs", both, FileCfg::all()).is_empty());
    }
}
