//! C1/C2 — statically fence the parallel kernel.
//!
//! The sharded kernel's byte-identity proof (tests/parallel_equivalence)
//! rests on worlds being *isolated*: they may only interact through the
//! epoch-barrier frame channel in `crates/sim/src/parallel.rs`, merged
//! by the sanctioned path in `crates/workload/src/shard.rs`. Any other
//! shared mutable state or host channel is a place where thread
//! scheduling could leak into simulation results.
//!
//! * **C1** bans thread-shareable mutable state outside the sanctioned
//!   modules: `static mut`, `thread_local!`, the `std::sync` locking
//!   and once-init primitives (`Mutex`, `RwLock`, `Condvar`, `Barrier`,
//!   `Once`, `OnceLock`, `LazyLock`), all `std::sync::atomic` types,
//!   and `Arc`-wrapped interior mutability (`Arc<RefCell<_>>` and kin).
//!   Plain `Cell`/`RefCell`/`Rc` stay legal: they are `!Sync`, so the
//!   compiler already confines them to one world — they are the
//!   *approved* single-world interior-mutability idiom.
//! * **C2** bans host channel construction (`std::sync::mpsc`) outside
//!   the sanctioned modules: cross-shard handoff must use the typed
//!   frame-channel/epoch-barrier API (`ShardCtx` outboxes + injectors).

/// `std::sync` items under C1 (import-resolved; `Arc`/`Weak` are legal
/// because an `Arc` of a `!Sync` or immutable payload is just sharing).
pub const C1_SYNC_TYPES: &[&str] = &[
    "Mutex", "RwLock", "Condvar", "Barrier", "Once", "OnceLock", "LazyLock",
];

/// The token-scanned subset of C1 names. Bare `Once` is import-detected
/// only: as a token it collides with ordinary vocabulary.
pub const C1_WORDS: &[&str] = &[
    "Mutex", "RwLock", "Condvar", "Barrier", "OnceLock", "LazyLock",
];

/// Token-scanned C2 names.
pub const C2_WORDS: &[&str] = &["mpsc"];

pub fn c1_msg(what: &str) -> String {
    format!(
        "`{what}` is thread-shareable mutable state: worlds may only interact through the \
         epoch-barrier frame channel (`sim::parallel`); keep state world-local (`Rc`/`RefCell`) \
         or route it through the sanctioned merge path"
    )
}

pub fn c2_msg(what: &str) -> String {
    format!(
        "`{what}` builds a host channel: cross-shard handoff must use the typed \
         frame-channel/epoch-barrier API (`ShardCtx` outboxes + shard injectors), \
         where merge order is deterministic"
    )
}

/// Line-level C1 shapes that are not plain banned-name tokens:
/// `static mut`, `thread_local!`, and `Arc`-wrapped interior
/// mutability. Returns `(what, msg)` per hit.
pub fn c1_line_extras(code_line: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if find_word(code_line, "static mut").is_some() {
        out.push((
            "static mut".to_string(),
            "`static mut` is process-global mutable state: worlds sharing it race and \
             break byte-identity; thread state through the world context instead"
                .to_string(),
        ));
    }
    if let Some(at) = find_word(code_line, "thread_local") {
        let after_bang = code_line
            .chars()
            .skip(at + "thread_local".len())
            .find(|c| !c.is_whitespace())
            == Some('!');
        if after_bang {
            out.push((
                "thread_local!".to_string(),
                "`thread_local!` pins state to host threads: the world-to-thread mapping \
                 must never affect simulation state; hold the state in the world or node \
                 context instead"
                    .to_string(),
            ));
        }
    }
    if let Some(pat) = arc_interior(code_line) {
        out.push((
            pat.to_string(),
            format!(
                "`{pat}...` smuggles unsynchronized shared mutable state behind a \
                 thread-shareable handle: use `Rc` within a world, or the frame channel \
                 across worlds"
            ),
        ));
    }
    out
}

/// Detect `Arc` directly wrapping an interior-mutability cell, in type
/// position (`Arc<RefCell<T>>`) or constructor position
/// (`Arc::new(RefCell::new(..))`). Whitespace-insensitive.
fn arc_interior(code_line: &str) -> Option<&'static str> {
    let squished: String = code_line.chars().filter(|c| !c.is_whitespace()).collect();
    for pat in [
        "Arc<Cell<",
        "Arc<RefCell<",
        "Arc<UnsafeCell<",
        "Arc::new(Cell::new",
        "Arc::new(RefCell::new",
        "Arc::new(UnsafeCell::new",
    ] {
        let mut from = 0;
        while let Some(at) = squished[from..].find(pat) {
            let s = from + at;
            let pre = squished[..s].chars().next_back();
            if pre.is_none_or(|c| !c.is_alphanumeric() && c != '_') {
                return Some(pat);
            }
            from = s + pat.len();
        }
    }
    None
}

/// Identifier tokens on `code_line` that look like `std::sync::atomic`
/// types: `Atomic` followed by an uppercase tail (`AtomicU64`,
/// `AtomicBool`, ...). Returns the token text per occurrence site.
pub fn atomic_tokens(code_line: &str) -> Vec<String> {
    let cs: Vec<char> = code_line.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < cs.len() {
        if !(cs[i].is_alphabetic() || cs[i] == '_') {
            i += 1;
            continue;
        }
        let s = i;
        while i < cs.len() && (cs[i].is_alphanumeric() || cs[i] == '_') {
            i += 1;
        }
        let tok: String = cs[s..i].iter().collect();
        let boundary_ok = s == 0 || !(cs[s - 1].is_alphanumeric() || cs[s - 1] == '_');
        if boundary_ok
            && tok.starts_with("Atomic")
            && tok.chars().nth(6).is_some_and(|c| c.is_ascii_uppercase())
        {
            out.push(tok);
        }
    }
    out
}

/// Char column of `word` in `hay` with identifier boundaries, or None.
fn find_word(hay: &str, word: &str) -> Option<usize> {
    let h: Vec<char> = hay.chars().collect();
    let w: Vec<char> = word.chars().collect();
    if w.is_empty() || h.len() < w.len() {
        return None;
    }
    for s in 0..=h.len() - w.len() {
        if h[s..s + w.len()] != w[..] {
            continue;
        }
        let pre_ok = s == 0 || !(h[s - 1].is_alphanumeric() || h[s - 1] == '_');
        let post = h.get(s + w.len());
        let post_ok = post.is_none_or(|c| !c.is_alphanumeric() && *c != '_');
        if pre_ok && post_ok {
            return Some(s);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extras_fire_on_each_shape() {
        let hits = |s: &str| {
            c1_line_extras(s)
                .into_iter()
                .map(|(w, _)| w)
                .collect::<Vec<_>>()
        };
        assert_eq!(hits("static mut COUNTER: u64 = 0;"), ["static mut"]);
        assert_eq!(
            hits("thread_local! { static X: u8 = 0; }"),
            ["thread_local!"]
        );
        assert_eq!(hits("thread_local ! { }"), ["thread_local!"]);
        assert_eq!(hits("let s: Arc<RefCell<Vec<u8>>> = x;"), ["Arc<RefCell<"]);
        assert_eq!(
            hits("let s = Arc::new( RefCell::new(0) );"),
            ["Arc::new(RefCell::new"]
        );
        assert!(hits("let s = Rc::new(RefCell::new(0));").is_empty());
        assert!(hits("let s: Arc<Vec<u8>> = x;").is_empty());
        assert!(hits("fn thread_local_name() {}").is_empty());
        assert!(hits("let a = MyArc::new(RefCell::new(0));").is_empty());
    }

    #[test]
    fn atomic_token_shapes() {
        assert_eq!(
            atomic_tokens("next: Vec<AtomicU64>, done: AtomicBool,"),
            ["AtomicU64", "AtomicBool"]
        );
        assert!(atomic_tokens("let atomically = 1; Atomicity(x)").is_empty());
        assert!(atomic_tokens("MyAtomicU64::new()").is_empty());
    }
}
