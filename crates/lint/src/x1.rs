//! X1: cross-file exhaustiveness between the PFS protocol
//! (`pfs/proto.rs`), the node dispatch loops (`pfs/server.rs`,
//! `pfs/fs.rs`, `pfs/pointer.rs`), the flight recorder
//! (`sim/trace.rs`), and the span analyzer (`workload/spans.rs`).
//!
//! The paper's tables are cut from traces: a request variant that is
//! handled but never traced, or a trace kind that is declared but never
//! emitted, silently falls out of every table. X1 makes those lapses a
//! lint failure instead of a reviewer's job.

use crate::rules::Finding;
use crate::strip::view;

/// A source file prepared for cross-file checks: stripped of comments
/// and literals, with `#[cfg(test)]` lines blanked.
pub struct Src {
    pub file: String,
    pub code: String,
}

/// Strip `raw` and blank every `#[cfg(test)]` line.
pub fn prep(file: &str, raw: &str) -> Src {
    let v = view(raw);
    let mut code = String::with_capacity(v.code.len());
    for (idx, line) in v.code.lines().enumerate() {
        if v.is_test(idx + 1) {
            for _ in line.chars() {
                code.push(' ');
            }
        } else {
            code.push_str(line);
        }
        code.push('\n');
    }
    Src {
        file: file.to_string(),
        code,
    }
}

/// One parsed enum variant: name, 1-based line, payload text (between
/// the name and the variant-terminating comma, braces included).
pub struct Variant {
    pub name: String,
    pub line: usize,
    pub payload: String,
}

pub struct EnumInfo {
    pub decl_line: usize,
    /// Byte span of the whole declaration (for blanking).
    pub span: (usize, usize),
    pub variants: Vec<Variant>,
}

/// Parse `enum <name> { ... }` out of stripped source.
pub fn parse_enum(code: &str, name: &str) -> Option<EnumInfo> {
    let pat = format!("enum {name}");
    let mut from = 0;
    let start = loop {
        let at = from + code[from..].find(&pat)?;
        let end = at + pat.len();
        let boundary = code[end..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            break at;
        }
        from = end;
    };
    let bytes = code.as_bytes();
    let open = start + code[start..].find('{')?;
    let mut depth = 0usize;
    let mut close = open;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
            _ => {}
        }
    }
    // Walk the body at depth 1 collecting variant names and payloads.
    let mut variants = Vec::new();
    let mut depth = 1usize;
    let mut k = open + 1;
    let mut at_item_start = true;
    while k < close {
        let b = bytes[k];
        match b {
            b'{' | b'(' | b'[' => depth += 1,
            b'}' | b')' | b']' => depth = depth.saturating_sub(1),
            b',' if depth == 1 => at_item_start = true,
            b'#' if depth == 1 && at_item_start => {
                // Skip an attribute `#[...]`.
                let mut d = 0usize;
                while k < close {
                    match bytes[k] {
                        b'[' => d += 1,
                        b']' => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            _ if depth == 1 && at_item_start && (b.is_ascii_alphabetic() || b == b'_') => {
                let vs = k;
                while k < close && (bytes[k].is_ascii_alphanumeric() || bytes[k] == b'_') {
                    k += 1;
                }
                let vname = &code[vs..k];
                // Variant payload: up to the next depth-1 comma (or `}`).
                let mut d = 1usize;
                let mut pe = k;
                while pe < close {
                    match bytes[pe] {
                        b'{' | b'(' | b'[' => d += 1,
                        b'}' | b')' | b']' => d -= 1,
                        b',' if d == 1 => break,
                        _ => {}
                    }
                    pe += 1;
                }
                variants.push(Variant {
                    name: vname.to_string(),
                    line: code[..vs].matches('\n').count() + 1,
                    payload: code[k..pe].to_string(),
                });
                at_item_start = false;
                k = pe;
                continue;
            }
            _ => {}
        }
        k += 1;
    }
    Some(EnumInfo {
        decl_line: code[..start].matches('\n').count() + 1,
        span: (start, close + 1),
        variants,
    })
}

fn has_word(hay: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(at) = hay[from..].find(word) {
        let s = from + at;
        let e = s + word.len();
        let pre = hay[..s].chars().next_back();
        let post = hay[e..].chars().next();
        // A path prefix (`trace::EventKind::X`) still counts as a use,
        // so `:` is an acceptable predecessor.
        if pre.is_none_or(|c| !c.is_alphanumeric() && c != '_')
            && post.is_none_or(|c| !c.is_alphanumeric() && c != '_')
        {
            return true;
        }
        from = e;
    }
    false
}

/// Declared protocol knowledge: which trace kinds must exist and be
/// emitted for each request variant, and which `PfsResponse` variant
/// must carry its `PfsError` channel. Adding a request variant without
/// extending this table is itself an X1 finding — exhaustiveness is
/// opt-out, never silent.
const REQUEST_TRACE: &[(&str, &str, &[&str])] = &[
    ("PfsRequest", "Read", &["ServeStart", "ServeDone"]),
    ("PfsRequest", "Write", &["ServeStart", "ServeDone"]),
    ("PfsRequest", "Ptr", &["PtrOp"]),
    ("PfsRequest", "StageReplica", &["ServeStart", "ServeDone"]),
    ("PfsRequest", "CommitReplica", &["ServeStart", "ServeDone"]),
    ("PtrRequest", "UnixAcquire", &["PtrOp"]),
    ("PtrRequest", "UnixRelease", &["PtrOp"]),
    ("PtrRequest", "LogFetchAdd", &["PtrOp"]),
    ("PtrRequest", "SyncArrive", &["PtrOp"]),
    ("PtrRequest", "Rewind", &["PtrOp"]),
];
const REQUEST_ERR: &[(&str, &str, &str)] = &[
    ("PfsRequest", "Read", "Data"),
    ("PfsRequest", "Write", "WriteAck"),
    ("PfsRequest", "Ptr", "Ptr"),
    ("PfsRequest", "StageReplica", "Staged"),
    ("PfsRequest", "CommitReplica", "Staged"),
    ("PtrRequest", "UnixAcquire", "Ptr"),
    ("PtrRequest", "UnixRelease", "Ptr"),
    ("PtrRequest", "LogFetchAdd", "Ptr"),
    ("PtrRequest", "SyncArrive", "Ptr"),
    ("PtrRequest", "Rewind", "Ptr"),
];

/// Brace-match from `open` (which must index a `{`) to its closing `}`.
fn close_brace(code: &str, open: usize) -> usize {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    code.len().saturating_sub(1)
}

/// Metric-name vocabulary: every constant declared in telemetry's
/// `mod names` must be referenced outside the module — registered,
/// recorded, or aggregated. The registry only samples what was
/// registered, so a declared-but-unused name is a column that silently
/// never appears in `BENCH_metrics.json`; this makes the drift a lint
/// failure, symmetric with the `EventKind` emission check.
///
/// `prep` strips string literals, so the check is identifier-based by
/// construction: callers must go through `names::IDENT`, never repeat
/// the literal — which is exactly the discipline the module exists for.
pub fn check_x1_metric_names(telemetry: &Src, users: &[&Src]) -> Vec<Finding> {
    let Some(mod_at) = telemetry.code.find("mod names") else {
        return vec![x1(
            &telemetry.file,
            1,
            "cannot find `mod names` (the metric-name vocabulary)".into(),
        )];
    };
    let Some(open) = telemetry.code[mod_at..].find('{').map(|r| mod_at + r) else {
        return vec![x1(&telemetry.file, 1, "`mod names` has no body".into())];
    };
    let close = close_brace(&telemetry.code, open);

    // Collect `const IDENT` declarations inside the module body. The
    // stripped view blanks the string values; only identifiers remain.
    let body = &telemetry.code[open + 1..close];
    let mut consts: Vec<(String, usize)> = Vec::new();
    let mut from = 0;
    while let Some(at) = body[from..].find("const ") {
        let s = from + at + "const ".len();
        let ident: String = body[s..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !ident.is_empty() {
            let line = telemetry.code[..open + 1 + from + at].matches('\n').count() + 1;
            consts.push((ident, line));
        }
        from = s;
    }
    if consts.is_empty() {
        return vec![x1(
            &telemetry.file,
            telemetry.code[..mod_at].matches('\n').count() + 1,
            "`mod names` declares no metric-name constants".into(),
        )];
    }

    // Blank the module so a constant's own declaration is not evidence
    // of use; references elsewhere in telemetry.rs still count.
    let mut outside = telemetry.code.clone();
    let repl: String = outside[mod_at..=close]
        .chars()
        .map(|c| if c == '\n' { '\n' } else { ' ' })
        .collect();
    outside.replace_range(mod_at..=close, &repl);

    let mut out = Vec::new();
    for (ident, line) in &consts {
        let used = has_word(&outside, ident) || users.iter().any(|s| has_word(&s.code, ident));
        if !used {
            out.push(x1(
                &telemetry.file,
                *line,
                format!(
                    "metric name `names::{ident}` is declared but never registered or \
                     recorded — its column silently never appears in BENCH_metrics.json"
                ),
            ));
        }
    }
    out
}

/// Redundancy-mode exhaustiveness: every variant of the mount-level
/// `Redundancy` enum (`pfs/redundancy.rs`) must be dispatched on
/// somewhere outside its declaring file — the experiment driver selects
/// machine shape and recovery behavior per mode, and the CLI exposes the
/// mode axis. A variant nobody matches is dead policy: selectable in a
/// config yet silently behaving like another mode.
pub fn check_x1_redundancy(redundancy: &Src, users: &[&Src]) -> Vec<Finding> {
    let Some(info) = parse_enum(&redundancy.code, "Redundancy") else {
        return vec![x1(
            &redundancy.file,
            1,
            "cannot find `enum Redundancy` (the mount-level redundancy policy)".into(),
        )];
    };
    let mut out = Vec::new();
    for v in &info.variants {
        let qualified = format!("Redundancy::{}", v.name);
        if !users.iter().any(|s| has_word(&s.code, &qualified)) {
            out.push(x1(
                &redundancy.file,
                v.line,
                format!(
                    "`{qualified}` is never dispatched on outside its declaration — \
                     a redundancy mode nothing selects or handles is dead policy"
                ),
            ));
        }
    }
    out
}

fn x1(file: &str, line: usize, msg: String) -> Finding {
    Finding {
        rule: "X1",
        file: file.to_string(),
        line,
        msg,
    }
}

/// Run every X1 sub-check.
///
/// * `proto` — `crates/pfs/src/proto.rs`
/// * `handlers` — dispatch sources searched for `PfsRequest::<V>` arms
///   (server.rs + fs.rs)
/// * `pointer` — `crates/pfs/src/pointer.rs` (`PtrRequest::<V>` arms)
/// * `trace` — `crates/sim/src/trace.rs` (`EventKind` + `ALL`)
/// * `spans` — `crates/workload/src/spans.rs` (must name every kind)
/// * `emitters` — every other non-test source that may emit events or
///   construct `PfsError`s (bench/lint excluded: they only consume)
pub fn check_x1(
    proto: &Src,
    handlers: &[&Src],
    pointer: &Src,
    trace: &Src,
    spans: &Src,
    emitters: &[Src],
) -> Vec<Finding> {
    let mut out = Vec::new();

    let Some(kinds) = parse_enum(&trace.code, "EventKind") else {
        return vec![x1(&trace.file, 1, "cannot find `enum EventKind`".into())];
    };
    let kind_names: Vec<&str> = kinds.variants.iter().map(|v| v.name.as_str()).collect();

    // --- Request variants: handler arm + trace mapping + error mapping.
    for (enum_name, arm_sources, arm_label) in [
        (
            "PfsRequest",
            handlers,
            "I/O-node dispatch (pfs/server.rs, pfs/fs.rs)",
        ),
        (
            "PtrRequest",
            &[pointer][..],
            "pointer-server dispatch (pfs/pointer.rs)",
        ),
    ] {
        let Some(info) = parse_enum(&proto.code, enum_name) else {
            out.push(x1(
                &proto.file,
                1,
                format!("cannot find `enum {enum_name}`"),
            ));
            continue;
        };
        for v in &info.variants {
            let qualified = format!("{enum_name}::{}", v.name);
            if !arm_sources.iter().any(|s| has_word(&s.code, &qualified)) {
                out.push(x1(
                    &proto.file,
                    v.line,
                    format!("`{qualified}` has no handler arm in {arm_label}"),
                ));
            }
            match REQUEST_TRACE
                .iter()
                .find(|(e, n, _)| *e == enum_name && *n == v.name)
            {
                None => out.push(x1(
                    &proto.file,
                    v.line,
                    format!(
                        "`{qualified}` has no trace mapping; extend REQUEST_TRACE in \
                         paragon-lint so the variant is visible to the flight recorder"
                    ),
                )),
                Some((_, _, required)) => {
                    for kind in *required {
                        if !kind_names.contains(kind) {
                            out.push(x1(
                                &proto.file,
                                v.line,
                                format!(
                                    "`{qualified}` maps to trace kind `{kind}`, which is not \
                                     an `EventKind` variant"
                                ),
                            ));
                        }
                    }
                }
            }
            match REQUEST_ERR
                .iter()
                .find(|(e, n, _)| *e == enum_name && *n == v.name)
            {
                None => out.push(x1(
                    &proto.file,
                    v.line,
                    format!(
                        "`{qualified}` has no error mapping; extend REQUEST_ERR in \
                         paragon-lint with the PfsResponse variant that carries its PfsError"
                    ),
                )),
                Some((_, _, resp)) => {
                    let ok = parse_enum(&proto.code, "PfsResponse")
                        .and_then(|r| r.variants.into_iter().find(|rv| rv.name == *resp))
                        .is_some_and(|rv| {
                            rv.payload.contains("Result") && rv.payload.contains("PfsError")
                        });
                    if !ok {
                        out.push(x1(
                            &proto.file,
                            v.line,
                            format!(
                                "`{qualified}` maps to `PfsResponse::{resp}`, which does not \
                                 carry a `Result<_, PfsError>` — the request has no way to \
                                 fail over the wire"
                            ),
                        ));
                    }
                }
            }
        }
    }

    // --- EventKind: ALL completeness, emission, and span naming.
    let all_entries: Vec<String> = {
        let mut entries = Vec::new();
        if let Some(at) = trace.code.find("const ALL") {
            if let Some(open_rel) = trace.code[at..].find('[') {
                // Skip the type `[EventKind; N]`: take the bracket after `=`.
                let eq = trace.code[at..]
                    .find('=')
                    .map(|e| at + e)
                    .unwrap_or(at + open_rel);
                if let Some(arr_rel) = trace.code[eq..].find('[') {
                    let arr = eq + arr_rel;
                    let bytes = trace.code.as_bytes();
                    let mut depth = 0usize;
                    let mut k = arr;
                    let mut end = arr;
                    while k < bytes.len() {
                        match bytes[k] {
                            b'[' => depth += 1,
                            b']' => {
                                depth -= 1;
                                if depth == 0 {
                                    end = k;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    for part in trace.code[arr + 1..end].split(',') {
                        let part = part.trim();
                        if let Some(name) = part
                            .strip_prefix("EventKind::")
                            .or_else(|| part.strip_prefix("Self::"))
                        {
                            entries.push(name.trim().to_string());
                        }
                    }
                }
            }
        }
        entries
    };
    let all_line = trace
        .code
        .find("const ALL")
        .map(|at| trace.code[..at].matches('\n').count() + 1)
        .unwrap_or(1);
    if all_entries.is_empty() {
        out.push(x1(
            &trace.file,
            all_line,
            "cannot find `const ALL` entry list".into(),
        ));
    }
    for v in &kinds.variants {
        let n = all_entries.iter().filter(|e| **e == v.name).count();
        if n == 0 && !all_entries.is_empty() {
            out.push(x1(
                &trace.file,
                all_line,
                format!("`EventKind::{}` is missing from `EventKind::ALL`", v.name),
            ));
        } else if n > 1 {
            out.push(x1(
                &trace.file,
                all_line,
                format!(
                    "`EventKind::{}` appears {n} times in `EventKind::ALL`",
                    v.name
                ),
            ));
        }
        let qualified = format!("EventKind::{}", v.name);
        if !emitters.iter().any(|s| has_word(&s.code, &qualified)) {
            out.push(x1(
                &trace.file,
                v.line,
                format!(
                    "`{qualified}` is declared but never emitted — a dead trace kind \
                     silently drops its row from the paper tables"
                ),
            ));
        }
        if !has_word(&spans.code, &qualified) {
            out.push(x1(
                &trace.file,
                v.line,
                format!(
                    "`{qualified}` is not named in workload/spans.rs — the span analyzer \
                     cannot classify it"
                ),
            ));
        }
    }
    for e in &all_entries {
        if !kinds.variants.iter().any(|v| v.name == *e) {
            out.push(x1(
                &trace.file,
                all_line,
                format!("`EventKind::ALL` names unknown variant `{e}`"),
            ));
        }
    }

    // --- PfsError: every variant is live protocol vocabulary, i.e.
    // referenced somewhere outside its own declaration and Display impl.
    if let Some(errs) = parse_enum(&proto.code, "PfsError") {
        let mut blanked = proto.code.clone();
        let mut blank = |s: usize, e: usize| {
            // Safety: stripped code is ASCII outside literals.
            let repl: String = blanked[s..e]
                .chars()
                .map(|c| if c == '\n' { '\n' } else { ' ' })
                .collect();
            blanked.replace_range(s..e, &repl);
        };
        blank(errs.span.0, errs.span.1);
        if let Some(at) = proto.code.find("Display for PfsError") {
            let bytes = proto.code.as_bytes();
            if let Some(open_rel) = proto.code[at..].find('{') {
                let open = at + open_rel;
                let mut depth = 0usize;
                let mut k = open;
                while k < bytes.len() {
                    match bytes[k] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                blank(at, (k + 1).min(proto.code.len()));
            }
        }
        for v in &errs.variants {
            let qualified = format!("PfsError::{}", v.name);
            let live = has_word(&blanked, &qualified)
                || emitters.iter().any(|s| has_word(&s.code, &qualified));
            if !live {
                out.push(x1(
                    &proto.file,
                    v.line,
                    format!(
                        "`{qualified}` is never constructed or matched outside its \
                         declaration/Display — dead error vocabulary"
                    ),
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_variants_with_payloads() {
        let code = "pub enum E {\n    A { x: u64, y: u32 },\n    B(Result<u64, Err>),\n    C,\n}\n";
        let info = parse_enum(code, "E").unwrap();
        let names: Vec<_> = info.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
        assert_eq!(info.variants[0].line, 2);
        assert!(info.variants[1].payload.contains("Result"));
    }

    #[test]
    fn word_match_rejects_prefixed_paths() {
        assert!(has_word("m::EventKind::ReadStart,", "EventKind::ReadStart"));
        assert!(!has_word("EventKind::ReadStartX", "EventKind::ReadStart"));
    }
}
