//! A minimal Rust source scanner.
//!
//! `paragon-lint` deliberately avoids a full parser: the workspace is
//! hermetic (no registry deps), so instead of `syn` we strip everything
//! that is not code — comments, string/char literals — while preserving
//! the exact byte-per-line layout, and then run token-level rules over
//! the result. The stripper also tracks brace depth per line and marks
//! the regions covered by `#[cfg(test)]` so rules can exempt test code.

/// A scanned source file: stripped text plus per-line classification.
pub struct FileView {
    /// Source with comments and literals blanked to spaces. Same number
    /// of lines as the input; every line has the same char length.
    pub code: String,
    /// `test[i]` is true when 1-based line `i + 1` lies inside a
    /// `#[cfg(test)]` item (attribute line included).
    pub test: Vec<bool>,
    /// Brace depth at the *start* of each 1-based line `i + 1`.
    pub depth: Vec<usize>,
    /// Char column of the first `//` line-comment opener on each line
    /// (None when the line has no line comment). Strings or comment
    /// *bodies* that merely contain `//` are not openers.
    pub comment_col: Vec<Option<usize>>,
}

impl FileView {
    /// Stripped text of 1-based line `line` (empty if out of range).
    pub fn line(&self, line: usize) -> &str {
        self.code.lines().nth(line.saturating_sub(1)).unwrap_or("")
    }

    /// Is 1-based `line` inside a `#[cfg(test)]` region?
    pub fn is_test(&self, line: usize) -> bool {
        self.test
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Brace depth at the start of 1-based `line`.
    pub fn depth_at(&self, line: usize) -> usize {
        self.depth.get(line.saturating_sub(1)).copied().unwrap_or(0)
    }

    /// Char column where 1-based `line`'s `//` comment opens, if any.
    pub fn comment_col_at(&self, line: usize) -> Option<usize> {
        self.comment_col
            .get(line.saturating_sub(1))
            .copied()
            .flatten()
    }
}

/// Blank comments, string literals, raw strings, and char literals to
/// spaces, keeping newlines so line/column arithmetic stays valid.
pub fn strip(src: &str) -> String {
    scan(src).0
}

/// [`strip`], also returning the char offsets (into the whole text) at
/// which each `//` line comment opens.
fn scan(src: &str) -> (String, Vec<usize>) {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut comment_opens = Vec::new();
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    comment_opens.push(i);
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    st = St::Str;
                    out.push(' ');
                    i += 1;
                }
                'r' | 'b' | 'c'
                    if !prev_is_ident(&chars, i) && raw_str_hashes(&chars, i).is_some() =>
                {
                    let (hashes, skip) = raw_str_hashes(&chars, i).unwrap_or((0, 1));
                    st = St::RawStr(hashes);
                    for _ in 0..skip {
                        out.push(' ');
                    }
                    i += skip as usize;
                }
                'b' | 'c' if next == Some('"') => {
                    st = St::Str;
                    out.push_str("  ");
                    i += 2;
                }
                '\'' => {
                    // Char literal vs. lifetime: a literal is 'x' or an
                    // escape; a lifetime is ' followed by an identifier
                    // with no closing quote right after it.
                    if next == Some('\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        for _ in i..=j.min(chars.len() - 1) {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        out.push_str("   ");
                        i += 3;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                '\n' => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    // An escape blanks two chars — but `\<newline>` is the
                    // string-continuation escape, and eating that newline
                    // would shift every later line number in the file.
                    out.push(' ');
                    if next == Some('\n') {
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    st = St::Code;
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    (out, comment_opens)
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// At `chars[i]` sitting on `r`, `b`, or `c`: if this starts a raw
/// string (`r"`, `r#"`, `br#"`, `cr#"`, ...), return (hash count, chars
/// consumed up to and including the opening quote).
fn raw_str_hashes(chars: &[char], i: usize) -> Option<(u32, u32)> {
    let mut j = i;
    if matches!(chars.get(j), Some(&'b') | Some(&'c')) {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, (j - i + 1) as u32))
    } else {
        None
    }
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Scan a file into stripped text plus test-region and depth metadata.
pub fn view(src: &str) -> FileView {
    let (code, comment_opens) = scan(src);
    let n_lines = code.lines().count().max(1);
    let mut depth = vec![0usize; n_lines];
    let mut test = vec![false; n_lines];

    // Map comment-opener char offsets to (line, column).
    let mut comment_col = vec![None; n_lines];
    {
        let mut line = 0usize;
        let mut line_start = 0usize; // char offset of current line start
        let mut opens = comment_opens.iter().peekable();
        for (off, c) in src.chars().enumerate() {
            while let Some(&&o) = opens.peek() {
                if o <= off {
                    if o == off && line < n_lines && comment_col[line].is_none() {
                        comment_col[line] = Some(o - line_start);
                    }
                    opens.next();
                } else {
                    break;
                }
            }
            if c == '\n' {
                line += 1;
                line_start = off + 1;
            }
        }
    }

    // Brace depth at the start of each line.
    let mut d: usize = 0;
    let mut line = 0;
    depth[0] = 0;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d = d.saturating_sub(1),
            '\n' => {
                line += 1;
                if line < n_lines {
                    depth[line] = d;
                }
            }
            _ => {}
        }
    }

    // `#[cfg(test)]` regions: from the attribute to the close of the
    // item's brace block (or to the terminating `;` for `mod x;`).
    let bytes: Vec<char> = code.chars().collect();
    let mut starts: Vec<usize> = Vec::new();
    for pat in ["#[cfg(test)]", "#[cfg(all(test", "#[cfg(any(test"] {
        let mut from = 0;
        while let Some(off) = code[from..].find(pat) {
            starts.push(from + off);
            from += off + pat.len();
        }
    }
    starts.sort_unstable();
    for &s in &starts {
        // Char index of byte offset `s` (code is ASCII after stripping
        // except for pre-existing unicode idents; walk to be safe).
        let cs = code[..s].chars().count();
        let mut j = cs;
        // Skip to end of this attribute, then find the item's block.
        let mut end = bytes.len().saturating_sub(1);
        let mut bdepth = 0usize;
        let mut seen_open = false;
        while j < bytes.len() {
            match bytes[j] {
                '{' => {
                    bdepth += 1;
                    seen_open = true;
                }
                '}' => {
                    bdepth = bdepth.saturating_sub(1);
                    if seen_open && bdepth == 0 {
                        end = j;
                        break;
                    }
                }
                ';' if !seen_open => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        // Mark every line intersecting [cs, end].
        let first_line = code[..s].matches('\n').count();
        let last_byte: usize = code
            .char_indices()
            .nth(end)
            .map(|(b, _)| b)
            .unwrap_or_else(|| code.len().saturating_sub(1));
        let last_line = code[..last_byte].matches('\n').count();
        for t in test.iter_mut().take(last_line + 1).skip(first_line) {
            *t = true;
        }
    }

    FileView {
        code,
        test,
        depth,
        comment_col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let src = "let x = \"HashMap\"; // HashMap\nlet y = 1; /* HashMap */\n";
        let out = strip(src);
        assert!(!out.contains("HashMap"));
        assert!(out.contains("let x ="));
        assert_eq!(out.lines().count(), src.lines().count());
    }

    #[test]
    fn string_continuations_keep_line_numbers() {
        // `\` at end of line inside a string continues it on the next
        // line; the stripped view must keep that newline or every later
        // finding/waiver line in the file is off by one.
        let src = "let s = \"one \\\n    two\";\nlet t = Instant::now();\n";
        let out = strip(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert!(out.lines().nth(2).unwrap_or("").contains("Instant"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let s = r#\"panic!(\"x\")\"#; let c = '\\n'; let l: &'static str = f::<'a>();\n";
        let out = strip(src);
        assert!(!out.contains("panic!"));
        assert!(out.contains("'static"));
    }

    #[test]
    fn c_string_literals_are_blanked() {
        // Rust 1.77 C-string literals: `c"…"` and the raw form
        // `cr#"…"#`. An embedded `"` must not terminate the raw form
        // early and leak the tail tokens back into code.
        let src = "let a = c\"HashMap\";\nlet b = cr#\"Mutex \"q\" HashSet\"#;\nlet t = 1;\n";
        let out = strip(src);
        assert!(!out.contains("HashMap"));
        assert!(!out.contains("Mutex"));
        assert!(!out.contains("HashSet"));
        assert!(!out.contains('q'), "embedded quote leaked the tail");
        assert_eq!(out.lines().count(), src.lines().count());
        assert!(out.lines().nth(2).unwrap_or("").contains("let t = 1;"));
    }

    #[test]
    fn prefix_letters_inside_identifiers_do_not_open_strings() {
        // `magic` ends in `c` and `ptr` ends in `r`; neither may be
        // mistaken for a literal prefix when a string follows later.
        let src = "let magic = 1; let ptr = 2; let s = \"x\"; Instant::now();\n";
        let out = strip(src);
        assert!(out.contains("magic"));
        assert!(out.contains("ptr"));
        assert!(out.contains("Instant"));
    }

    #[test]
    fn cfg_test_regions_cover_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let v = view(src);
        assert!(!v.is_test(1));
        assert!(v.is_test(2));
        assert!(v.is_test(3));
        assert!(v.is_test(4));
        assert!(v.is_test(5));
        assert!(!v.is_test(6));
    }

    #[test]
    fn depth_tracks_braces() {
        let src = "fn a() {\n    if x {\n        y();\n    }\n}\n";
        let v = view(src);
        assert_eq!(v.depth_at(1), 0);
        assert_eq!(v.depth_at(2), 1);
        assert_eq!(v.depth_at(3), 2);
        assert_eq!(v.depth_at(5), 1);
    }
}
