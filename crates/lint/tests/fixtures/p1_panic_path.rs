//! Fixture: P1 — panicking constructs on the I/O path.

pub fn dispatch(kind: u8) -> u32 {
    match kind {
        0 => 0,
        1 => unreachable!("no such frame"),
        _ => panic!("bad frame kind"),
    }
}

pub fn first(v: &[u32]) -> u32 {
    let head = v.first().unwrap();
    *head
}

pub fn named(v: &[u32]) -> u32 {
    v.first().copied().expect("nonempty")
}

pub fn route(table: &[u32], slot: usize) -> u32 {
    table[slot]
}
