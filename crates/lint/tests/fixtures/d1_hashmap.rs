//! Fixture: D1 — randomly-seeded containers in sim-visible code.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn build() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
    m.len() + s.len()
}
