//! Fixture: a multi-rule waiver is tracked per named rule — here the D1
//! half is live and the C1 half is stale.
fn cache() {
    // paragon-lint: allow(D1, C1) — host-side diagnostics map, never sim-visible
    let m = std::collections::HashMap::<u32, u32>::new();
    let _ = m.len();
}
