//! Fixture: C1 — every shape of thread-shareable mutable state the rule
//! knows, outside the sanctioned parallel kernel.
use std::sync::Mutex;
use std::sync::atomic::AtomicU64;

static mut HITS: u64 = 0;

thread_local! {
    static SCRATCH: u64 = 0;
}

struct Shared {
    guard: Mutex<u64>,
    count: AtomicU64,
    cell: Arc<RefCell<u8>>,
}
