// The sanctioned parallel-kernel shape: every host-thread touch sits
// under a W1-justified waiver that argues why determinism survives.

pub fn run_sharded() {
    // paragon-lint: allow(D2) — worlds interact only at barrier epochs; merge order is (time, seq, shard)
    let workers: Vec<_> = (0..4)
        .map(|k| std::thread::spawn(move || k))
        .collect();
    for w in workers {
        let _ = w.join();
    }
}
