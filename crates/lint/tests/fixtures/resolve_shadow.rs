//! Fixture: a locally defined type shadows a banned name, and
//! crate-relative paths never resolve into `std` — neither may flag.

/// Sim-time stamp; shares a name with `std::time::Instant` on purpose.
pub struct Instant(pub u64);

pub fn tick(t: Instant) -> Instant {
    Instant(t.0 + 1)
}

pub fn fence() -> crate::sync::Barrier {
    crate::sync::Barrier::new(2)
}
