//! Fixture: W1 — waiver hygiene. Every directive below is defective in
//! a different way, and a reason-less waiver must not silence its rule.

// paragon-lint: allowed(D1) — the verb is wrong, not a waiver grammar
pub mod a {}

// paragon-lint: allow(D1
pub mod b {}

// paragon-lint: allow() — names no rules at all
pub mod c {}

// paragon-lint: allow(Q9) — Q9 is not a rule this linter knows about
pub mod d {}

use std::collections::HashMap; // paragon-lint: allow(D1)

pub type Table = HashMap<u32, u32>;
