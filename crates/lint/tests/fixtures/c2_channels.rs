//! Fixture: C2 — host channel construction outside the sanctioned
//! modules.
use std::sync::mpsc;

fn wire() {
    let (tx, rx) = mpsc::channel::<u64>();
    drop((tx, rx));
}
