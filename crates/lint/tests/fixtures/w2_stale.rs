//! Fixture: W2 — a waiver whose rule never fires on its lines is stale;
//! a live waiver right next to it stays silent.

fn checked(v: &[u32], pos: usize) -> u32 {
    // paragon-lint: allow(P1) — pos is clamped by the caller
    v.get(pos).copied().unwrap_or(0)
}

fn raw(v: &[u32], pos: usize) -> u32 {
    // paragon-lint: allow(P1) — pos comes from a bounds-checked ring cursor
    v[pos]
}
