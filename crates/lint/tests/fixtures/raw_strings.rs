//! Fixture: banned vocabulary inside C-string and raw C-string literals
//! must not flag — but real code around them still does.
fn strings() -> usize {
    let a = c"HashMap Instant Mutex";
    let b = cr#"thread_rng() mpsc "quoted" HashSet"#;
    a.to_bytes().len() + b.to_bytes().len()
}

fn real() -> std::time::Instant {
    std::time::Instant::now()
}
