//! Fixture: a justified waiver silences its rule over its scope, and
//! `#[cfg(test)]` code is exempt wholesale.

use std::collections::HashMap; // paragon-lint: allow(D1) — host-side fixture index, never sim-visible

pub fn pick(v: &[u32], pos: usize) -> u32 {
    // paragon-lint: allow(P1) — pos comes from binary_search over v, so it is in bounds
    v[pos]
}

pub struct Host {
    pub map: HashMap<u32, u32>, // paragon-lint: allow(D1) — iterated only for host-side display
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn unwrap_is_fine_here() {
        let s: HashSet<u32> = HashSet::new();
        assert_eq!(s.iter().next(), None);
        let v = vec![1u32];
        v.first().unwrap();
    }
}
