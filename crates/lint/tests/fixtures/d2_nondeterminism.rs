//! Fixture: D2 — ambient nondeterminism outside the sim kernel.

use std::time::Instant;

pub fn wall_clock_elapsed() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}

pub fn entropy() -> u64 {
    let now = std::time::SystemTime::now();
    let _ = now;
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn racer() {
    std::thread::spawn(|| {});
}
