// Seeded thread-ban violations: line 4 (import), line 7 (spawn via
// path), line 12 (spawn via imported name).

use std::thread;

pub fn fan_out() {
    let a = std::thread::spawn(|| 1u32);
    let _ = a;
}

pub fn fan_out_imported() {
    let b = thread::spawn(|| 2u32);
    let _ = b;
}
