//! Fixture: clean — deterministic containers, no panics, no clocks.

use std::collections::BTreeMap;

pub fn build() -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    m.insert(1, 2);
    m
}

pub fn get(m: &BTreeMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}
