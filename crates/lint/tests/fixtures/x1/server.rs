//! X1 fixture dispatch: handles Read/Write/Ptr but not Snoop.

pub fn dispatch(req: PfsRequest) -> PfsResponse {
    match req {
        PfsRequest::Read { .. } => PfsResponse::Data(Err(PfsError::BadReply)),
        PfsRequest::Write { .. } => PfsResponse::WriteAck(0),
        PfsRequest::Ptr(p) => PfsResponse::Ptr(route(p)),
    }
}
