//! Metric-name vocabulary fixture: `DEAD_GAUGE` is never registered.

pub mod names {
    pub const DISK_QUEUE: &str = "disk.queue";
    pub const READ_TIME_S: &str = "read.time_s";
    pub const DEAD_GAUGE: &str = "dead.gauge";
}

pub fn register(reg: &mut Registry) {
    reg.register_gauge(names::DISK_QUEUE, 0);
}
