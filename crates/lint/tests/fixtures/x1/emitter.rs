//! X1 fixture emitter: emits the three live kinds and constructs the
//! one live error.

pub fn run(sim: &Sim) {
    sim.emit(EventKind::ServeStart);
    sim.emit(EventKind::ServeDone);
    sim.emit(EventKind::PtrOp);
    let _ = PfsError::BadReply;
}
