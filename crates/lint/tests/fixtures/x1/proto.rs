//! X1 fixture protocol: `Snoop` has no handler arm and no table entry,
//! `Rewind` has no pointer-dispatch arm, `WriteAck` cannot carry an
//! error, and `PfsError::Ghost` is dead vocabulary.

pub enum PfsRequest {
    Read { offset: u64, len: u32 },
    Write { offset: u64 },
    Ptr(PtrRequest),
    Snoop,
}

pub enum PtrRequest {
    UnixAcquire { len: u32 },
    UnixRelease,
    LogFetchAdd { len: u32 },
    SyncArrive,
    Rewind,
}

pub enum PfsResponse {
    Data(Result<u64, PfsError>),
    WriteAck(u32),
    Ptr(Result<u64, PfsError>),
}

pub enum PfsError {
    BadReply,
    Ghost,
}

impl std::fmt::Display for PfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfsError::BadReply => write!(f, "bad reply"),
            PfsError::Ghost => write!(f, "ghost"),
        }
    }
}
