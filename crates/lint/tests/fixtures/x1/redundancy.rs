//! Fixture: mount-level redundancy policy with one dead mode.

pub enum Redundancy {
    None,
    ParityRaid,
    Replicated { rf: usize },
}
