//! X1 fixture span analyzer: classifies the three live kinds only.

pub fn class(kind: EventKind) -> u8 {
    match kind {
        EventKind::ServeStart => 0,
        EventKind::ServeDone => 1,
        EventKind::PtrOp => 2,
    }
}
