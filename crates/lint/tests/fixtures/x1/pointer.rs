//! X1 fixture pointer dispatch: handles every `PtrRequest` but Rewind.

pub fn route(req: PtrRequest) -> Result<u64, PfsError> {
    match req {
        PtrRequest::UnixAcquire { .. } => Ok(0),
        PtrRequest::UnixRelease => Ok(0),
        PtrRequest::LogFetchAdd { .. } => Ok(0),
        PtrRequest::SyncArrive => Ok(0),
    }
}
