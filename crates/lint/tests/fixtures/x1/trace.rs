//! X1 fixture flight recorder: `Phantom` is declared but missing from
//! `ALL`, never emitted, and unknown to the span analyzer.

pub enum EventKind {
    ServeStart,
    ServeDone,
    PtrOp,
    Phantom,
}

impl EventKind {
    pub const ALL: [EventKind; 3] = [
        EventKind::ServeStart,
        EventKind::ServeDone,
        EventKind::PtrOp,
    ];
}
