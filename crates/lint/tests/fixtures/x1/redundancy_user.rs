//! Fixture: the driver dispatches on two of the three modes.

pub fn dispatch(r: Redundancy) -> u32 {
    match r {
        Redundancy::None => 0,
        Redundancy::ParityRaid => 1,
    }
}
