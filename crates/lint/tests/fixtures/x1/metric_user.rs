//! Records a metric through the vocabulary, as the workload driver does.

pub fn record(reg: &mut Registry) {
    reg.record(names::READ_TIME_S, 0.5);
}
