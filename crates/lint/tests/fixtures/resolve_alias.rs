//! Fixture: use-aliases of banned items are resolved through the symbol
//! table and caught at every use site, plus once at the import itself.
use std::collections::HashMap as Map;
use std::time::Instant as Stamp;

fn lookup(keys: &[u64]) -> usize {
    let mut m: Map<u64, u64> = Map::new();
    for k in keys {
        m.insert(*k, k * 2);
    }
    m.len()
}

fn stamp() -> Stamp {
    Stamp::now()
}
