//! Fixture suite: every rule fires on a seeded violation at an exact
//! line, justified waivers silence their rule, clean files stay clean,
//! and the real workspace lints clean end to end.
//!
//! The fixture sources under `tests/fixtures/` are data, not code: they
//! are never compiled, only fed to the linter as text.

use paragon_lint::x1::{
    check_x1, check_x1_metric_names, check_x1_redundancy, parse_enum, prep, Src,
};
use paragon_lint::{
    build_workspace, cfg_for, findings_to_json, findings_to_sarif, lint_file, lint_file_in,
    lint_workspace, workspace_sources, FileCfg, Finding,
};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(rule, line)` pairs in the order the linter reported them.
fn pairs(findings: &[Finding]) -> Vec<(&'static str, usize)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn d1_flags_every_hash_container_line() {
    let f = lint_file("d1_hashmap.rs", &fixture("d1_hashmap.rs"), FileCfg::all());
    assert_eq!(pairs(&f), [("D1", 3), ("D1", 4), ("D1", 7), ("D1", 8)]);
    assert!(f[0].msg.contains("HashMap"), "{}", f[0].msg);
    assert!(f[1].msg.contains("HashSet"), "{}", f[1].msg);
    assert!(
        f[0].msg.contains("BTreeMap"),
        "the finding must name the fix: {}",
        f[0].msg
    );
}

#[test]
fn d2_flags_clocks_entropy_and_threads() {
    let f = lint_file("d2.rs", &fixture("d2_nondeterminism.rs"), FileCfg::all());
    assert_eq!(
        pairs(&f),
        [("D2", 3), ("D2", 6), ("D2", 11), ("D2", 13), ("D2", 18)]
    );
    assert!(f[2].msg.contains("SystemTime"));
    assert!(f[3].msg.contains("thread_rng"));
    assert!(f[4].msg.contains("thread::spawn"));
}

#[test]
fn p1_flags_macros_unwraps_and_indexing() {
    let f = lint_file("p1.rs", &fixture("p1_panic_path.rs"), FileCfg::all());
    assert_eq!(
        pairs(&f),
        [("P1", 6), ("P1", 7), ("P1", 12), ("P1", 17), ("P1", 21)]
    );
    assert!(f[0].msg.contains("unreachable!"));
    assert!(f[1].msg.contains("panic!"));
    assert!(f[2].msg.contains(".unwrap()"));
    assert!(f[3].msg.contains(".expect("));
    assert!(
        f[4].msg.contains("[slot]"),
        "index finding names the expression: {}",
        f[4].msg
    );
}

#[test]
fn p1_off_means_panics_pass() {
    // The same source under a non-I/O-path config: D1/D2 still apply,
    // P1 does not — the fixture has no D1/D2 seeds, so it comes back
    // clean.
    let cfg = FileCfg {
        d1: true,
        d2: true,
        threads: true,
        p1: false,
        c1: true,
        c2: true,
    };
    let f = lint_file("p1.rs", &fixture("p1_panic_path.rs"), cfg);
    assert!(f.is_empty(), "unexpected: {f:?}");
}

#[test]
fn thread_ban_holds_in_the_sim_crate_cfg() {
    // The sim crate's derived config turns the D2 wall-clock words off
    // but keeps the thread ban on: a kernel file reaching for host
    // threads must be flagged even though `Instant` is allowed there.
    let cfg = FileCfg {
        d1: true,
        d2: false,
        threads: true,
        p1: false,
        c1: true,
        c2: true,
    };
    let f = lint_file("threads.rs", &fixture("d2_threads.rs"), cfg);
    assert_eq!(pairs(&f), [("D2", 4), ("D2", 7), ("D2", 12)]);
    assert!(f[0].msg.contains("std::thread"), "{}", f[0].msg);
    assert!(
        f[0].msg.contains("sim::parallel"),
        "the finding must name the sanctioned escape hatch: {}",
        f[0].msg
    );
}

#[test]
fn sanctioned_parallel_module_waives_the_thread_ban() {
    let f = lint_file(
        "crates/sim/src/parallel.rs",
        &fixture("d2_threads_waived.rs"),
        FileCfg::all(),
    );
    assert!(f.is_empty(), "W1-justified waivers must silence: {f:?}");
}

#[test]
fn w1_rejects_each_malformation_and_bare_waivers_do_not_silence() {
    let f = lint_file("w1.rs", &fixture("w1_waivers.rs"), FileCfg::all());
    assert_eq!(
        pairs(&f),
        [
            ("W1", 4),  // `allowed(` is not the waiver verb
            ("W1", 7),  // missing `)`
            ("W1", 10), // names no rules
            ("W1", 13), // unknown rule id
            ("W1", 16), // no justification
            ("D1", 16), // ... and the reason-less waiver must not silence
            ("D1", 18),
        ]
    );
    assert!(f[3].msg.contains("Q9"), "{}", f[3].msg);
    assert!(f[4].msg.contains("justification"), "{}", f[4].msg);
}

#[test]
fn justified_waivers_silence_line_and_block_scope() {
    let f = lint_file("ok.rs", &fixture("waiver_ok.rs"), FileCfg::all());
    assert!(f.is_empty(), "waived + test-only code must be clean: {f:?}");
}

#[test]
fn aliased_imports_resolve_to_their_banned_targets() {
    // True positives for the resolver: `Map` and `Stamp` are caught at
    // every use site, and each import line carries exactly one finding
    // (the spelled-out `HashMap`/`Instant` token on the `use` line — the
    // import-site pass sees the line is covered and adds no duplicate).
    let f = lint_file("alias.rs", &fixture("resolve_alias.rs"), FileCfg::all());
    assert_eq!(
        pairs(&f),
        [("D1", 3), ("D2", 4), ("D1", 7), ("D2", 14), ("D2", 15)]
    );
    assert!(
        f[2].msg
            .contains("resolves to banned `std::collections::HashMap`"),
        "use-site finding names the resolved target: {}",
        f[2].msg
    );
    assert!(
        f[3].msg.contains("resolves to banned `std::time::Instant`"),
        "use-site finding names the resolved target: {}",
        f[3].msg
    );
}

#[test]
fn local_shadows_and_crate_paths_stay_clean() {
    // True negatives for the resolver: a locally defined `Instant` and a
    // crate-relative `Barrier` path must not flag.
    let f = lint_file("shadow.rs", &fixture("resolve_shadow.rs"), FileCfg::all());
    assert!(f.is_empty(), "unexpected: {f:?}");
}

#[test]
fn c1_flags_every_shared_state_shape() {
    let f = lint_file("c1.rs", &fixture("c1_concurrency.rs"), FileCfg::all());
    assert_eq!(
        pairs(&f),
        [
            ("C1", 3),  // use std::sync::Mutex
            ("C1", 4),  // use std::sync::atomic::AtomicU64
            ("C1", 6),  // static mut
            ("C1", 8),  // thread_local!
            ("C1", 13), // Mutex field
            ("C1", 14), // AtomicU64 field
            ("C1", 15), // Arc<RefCell<..>>
        ]
    );
    assert!(
        f[0].msg.contains("epoch-barrier frame channel"),
        "the finding must name the sanctioned alternative: {}",
        f[0].msg
    );
    assert!(f[6].msg.contains("Arc<RefCell<"), "{}", f[6].msg);
}

#[test]
fn c2_flags_host_channels() {
    let f = lint_file("c2.rs", &fixture("c2_channels.rs"), FileCfg::all());
    assert_eq!(pairs(&f), [("C2", 3), ("C2", 6)]);
    assert!(
        f[0].msg.contains("frame-channel/epoch-barrier"),
        "the finding must name the sanctioned API: {}",
        f[0].msg
    );
}

#[test]
fn sanctioned_modules_are_exempt_from_c_rules_only() {
    for rel in ["crates/sim/src/parallel.rs", "crates/workload/src/shard.rs"] {
        let cfg = cfg_for(rel);
        assert!(!cfg.c1 && !cfg.c2, "{rel} must be C1/C2-sanctioned");
        assert!(cfg.threads, "{rel} keeps the waiver-policed thread ban");
        // The same seeded violations, linted as if they lived in a
        // sanctioned file, come back clean.
        for fx in ["c1_concurrency.rs", "c2_channels.rs"] {
            let f = lint_file(rel, &fixture(fx), cfg);
            assert!(f.is_empty(), "{rel} x {fx}: {f:?}");
        }
    }
    let cfg = cfg_for("crates/os/src/lib.rs");
    assert!(
        cfg.c1 && cfg.c2 && cfg.p1,
        "ordinary files get the full set"
    );
}

#[test]
fn w2_flags_the_stale_waiver_and_spares_the_live_one() {
    let f = lint_file("w2.rs", &fixture("w2_stale.rs"), FileCfg::all());
    assert_eq!(pairs(&f), [("W2", 5)]);
    assert!(f[0].msg.contains("stale waiver"), "{}", f[0].msg);
    // waiver_ok.rs doubles as the all-live true negative (asserted clean
    // in `justified_waivers_silence_line_and_block_scope`).
}

#[test]
fn multi_rule_waiver_is_tracked_per_rule() {
    // allow(D1, C1) over a line where only D1 fires: the D1 half
    // suppresses, the C1 half is reported stale.
    let f = lint_file("w2m.rs", &fixture("w2_multi.rs"), FileCfg::all());
    assert_eq!(pairs(&f), [("W2", 4)]);
    assert!(f[0].msg.contains("C1"), "{}", f[0].msg);
}

#[test]
fn c_string_literals_do_not_flag_but_code_after_them_does() {
    let f = lint_file("raw.rs", &fixture("raw_strings.rs"), FileCfg::all());
    assert_eq!(
        pairs(&f),
        [("D2", 9), ("D2", 10)],
        "banned words inside c\"..\"/cr#\"..\"# must be blanked: {f:?}"
    );
}

#[test]
fn sarif_output_matches_the_committed_golden() {
    let f = lint_file("d1_hashmap.rs", &fixture("d1_hashmap.rs"), FileCfg::all());
    let sarif = findings_to_sarif(&f);
    assert_eq!(
        sarif,
        fixture("golden.sarif"),
        "SARIF output drifted from tests/fixtures/golden.sarif; if the \
         change is intentional, regenerate the golden from this output"
    );
}

#[test]
fn workspace_scan_skips_target_and_results_dirs() {
    // Synthetic workspace with planted D1 violations in build-output and
    // results directories: none of them may be scanned.
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint_skip_ws");
    let mk = |rel: &str, body: &str| {
        let p = root.join(rel);
        std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
        std::fs::write(&p, body).expect("write");
    };
    mk("crates/x/Cargo.toml", "[package]\nname = \"x\"\n");
    mk("crates/x/src/lib.rs", "pub fn ok() -> u32 { 1 }\n");
    mk(
        "crates/x/src/target/debug/bad.rs",
        "use std::collections::HashMap;\n",
    );
    mk(
        "crates/x/src/results/old.rs",
        "use std::collections::HashSet;\n",
    );
    mk(
        "crates/x/target/debug/bad.rs",
        "use std::collections::HashMap;\n",
    );
    let sources = workspace_sources(&root).expect("scan synthetic workspace");
    assert_eq!(
        sources.keys().collect::<Vec<_>>(),
        ["crates/x/src/lib.rs"],
        "planted target/ and results/ files leaked into the scan"
    );
    let ws = build_workspace(&root, &sources);
    for (rel, src) in &sources {
        let f = lint_file_in(rel, src, cfg_for(rel), &ws, "x");
        assert!(f.is_empty(), "{rel}: {f:?}");
    }
}

#[test]
fn clean_file_is_clean() {
    let f = lint_file("clean.rs", &fixture("clean.rs"), FileCfg::all());
    assert!(f.is_empty(), "unexpected: {f:?}");
}

#[test]
fn json_output_carries_exact_rule_file_and_line() {
    let f = lint_file("d1_hashmap.rs", &fixture("d1_hashmap.rs"), FileCfg::all());
    let json = findings_to_json(&f);
    for line in [3usize, 4, 7, 8] {
        let needle = format!("\"file\":\"d1_hashmap.rs\",\"line\":{line},");
        assert!(json.contains(&needle), "missing {needle} in {json}");
    }
    assert_eq!(json.matches("\"rule\":\"D1\"").count(), 4, "{json}");
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert_eq!(findings_to_json(&[]), "[]");
}

fn x1_src(name: &str) -> Src {
    prep(&format!("x1/{name}"), &fixture(&format!("x1/{name}")))
}

#[test]
fn x1_cross_file_exhaustiveness_fires_at_declaration_lines() {
    let proto = x1_src("proto.rs");
    let server = x1_src("server.rs");
    let pointer = x1_src("pointer.rs");
    let trace = x1_src("trace.rs");
    let spans = x1_src("spans.rs");
    let emitters = vec![x1_src("emitter.rs")];

    let mut f = check_x1(&proto, &[&server], &pointer, &trace, &spans, &emitters);
    f.sort_by(|a, b| (&a.file, a.line, &a.msg).cmp(&(&b.file, b.line, &b.msg)));

    let got: Vec<(String, usize)> = f.iter().map(|x| (x.file.clone(), x.line)).collect();
    let want = [
        ("x1/proto.rs", 7),  // Write maps to WriteAck, which cannot fail
        ("x1/proto.rs", 9),  // Snoop: no handler arm
        ("x1/proto.rs", 9),  // Snoop: no REQUEST_TRACE entry
        ("x1/proto.rs", 9),  // Snoop: no REQUEST_ERR entry
        ("x1/proto.rs", 17), // Rewind: no pointer-dispatch arm
        ("x1/proto.rs", 28), // Ghost: dead error vocabulary
        ("x1/trace.rs", 8),  // Phantom: never emitted
        ("x1/trace.rs", 8),  // Phantom: unknown to the span analyzer
        ("x1/trace.rs", 12), // Phantom: missing from ALL
    ];
    let want: Vec<(String, usize)> = want.iter().map(|(p, l)| (p.to_string(), *l)).collect();
    assert_eq!(got, want, "findings: {f:#?}");

    let msg_at = |line: usize, needle: &str| {
        assert!(
            f.iter().any(|x| x.line == line && x.msg.contains(needle)),
            "no finding at line {line} containing {needle:?}: {f:#?}"
        );
    };
    assert!(f.iter().all(|x| x.rule == "X1"));
    msg_at(7, "does not carry a `Result<_, PfsError>`");
    msg_at(9, "no handler arm");
    msg_at(9, "no trace mapping");
    msg_at(9, "no error mapping");
    msg_at(17, "no handler arm");
    msg_at(28, "dead error vocabulary");
    msg_at(8, "never emitted");
    msg_at(8, "not named in workload/spans.rs");
    msg_at(12, "missing from `EventKind::ALL`");
}

#[test]
fn x1_is_quiet_once_the_seeded_gaps_are_closed() {
    // Close every gap the bad fixture seeds: handle Snoop nowhere —
    // instead drop it from the protocol; give Rewind an arm; let
    // WriteAck carry its error; emit Phantom, classify it, and list it
    // in ALL; use Ghost.
    let proto_fixed = fixture("x1/proto.rs")
        .replace("    Snoop,\n", "")
        .replace("WriteAck(u32)", "WriteAck(Result<u32, PfsError>)");
    let trace_fixed = fixture("x1/trace.rs")
        .replace("[EventKind; 3]", "[EventKind; 4]")
        .replace(
            "        EventKind::PtrOp,\n",
            "        EventKind::PtrOp,\n        EventKind::Phantom,\n",
        );
    let pointer_fixed = fixture("x1/pointer.rs").replace(
        "        PtrRequest::SyncArrive => Ok(0),\n",
        "        PtrRequest::SyncArrive => Ok(0),\n        PtrRequest::Rewind => Ok(0),\n",
    );
    let spans_fixed = fixture("x1/spans.rs").replace(
        "        EventKind::PtrOp => 2,\n",
        "        EventKind::PtrOp => 2,\n        EventKind::Phantom => 3,\n",
    );
    let emitter_fixed = fixture("x1/emitter.rs").replace(
        "    let _ = PfsError::BadReply;\n",
        "    sim.emit(EventKind::Phantom);\n    let _ = PfsError::BadReply;\n    let _ = PfsError::Ghost;\n",
    );

    let proto = prep("proto.rs", &proto_fixed);
    let server = x1_src("server.rs");
    let pointer = prep("pointer.rs", &pointer_fixed);
    let trace = prep("trace.rs", &trace_fixed);
    let spans = prep("spans.rs", &spans_fixed);
    let emitters = vec![prep("emitter.rs", &emitter_fixed)];

    let f = check_x1(&proto, &[&server], &pointer, &trace, &spans, &emitters);
    assert!(f.is_empty(), "fixed fixture must be quiet: {f:#?}");
}

#[test]
fn x1_metric_names_flag_unregistered_constants() {
    let telemetry = x1_src("telemetry.rs");
    let user = x1_src("metric_user.rs");

    // READ_TIME_S is used only by the external user file, so its
    // presence there must count; DEAD_GAUGE is used by nobody.
    let f = check_x1_metric_names(&telemetry, &[&user]);
    assert_eq!(pairs(&f), [("X1", 6)]);
    assert!(f[0].msg.contains("DEAD_GAUGE"), "{}", f[0].msg);
    assert!(
        f[0].msg.contains("BENCH_metrics.json"),
        "the finding must name the consequence: {}",
        f[0].msg
    );

    // Registering the name closes the finding.
    let fixed = fixture("x1/telemetry.rs").replace(
        "    reg.register_gauge(names::DISK_QUEUE, 0);\n",
        "    reg.register_gauge(names::DISK_QUEUE, 0);\n    \
         reg.register_gauge(names::DEAD_GAUGE, 0);\n",
    );
    let telemetry = prep("telemetry.rs", &fixed);
    let f = check_x1_metric_names(&telemetry, &[&user]);
    assert!(f.is_empty(), "fixed fixture must be quiet: {f:#?}");
}

#[test]
fn x1_redundancy_modes_must_be_dispatched_somewhere() {
    let decl = x1_src("redundancy.rs");
    let user = x1_src("redundancy_user.rs");

    // Replicated is declared but dispatched on by nobody.
    let f = check_x1_redundancy(&decl, &[&user]);
    assert_eq!(pairs(&f), [("X1", 6)]);
    assert!(f[0].msg.contains("Replicated"), "{}", f[0].msg);
    assert!(
        f[0].msg.contains("dead policy"),
        "the finding must name the consequence: {}",
        f[0].msg
    );

    // Adding the dispatch arm closes the finding.
    let fixed = fixture("x1/redundancy_user.rs").replace(
        "        Redundancy::ParityRaid => 1,\n",
        "        Redundancy::ParityRaid => 1,\n        \
         Redundancy::Replicated { rf } => rf as u32,\n",
    );
    let user = prep("redundancy_user.rs", &fixed);
    let f = check_x1_redundancy(&decl, &[&user]);
    assert!(f.is_empty(), "fixed fixture must be quiet: {f:#?}");
}

#[test]
fn recovery_vocabulary_is_pinned_in_the_real_tree() {
    // The replication/recovery surface ships as one vocabulary: the
    // recovery trace kinds and the mount-level redundancy modes.
    // Dropping or renaming any of them silently breaks committed traces
    // and configs, so the exact names are pinned against the real tree.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let read = |rel: &str| std::fs::read_to_string(root.join(rel)).expect(rel);

    let trace = prep("trace.rs", &read("crates/sim/src/trace.rs"));
    let kinds = parse_enum(&trace.code, "EventKind").expect("EventKind parses");
    for k in [
        "ReplicaFailover",
        "RebuildStart",
        "RebuildCopy",
        "RebuildDone",
        "FaultNodeRecovered",
    ] {
        assert!(
            kinds.variants.iter().any(|v| v.name == k),
            "recovery trace kind `EventKind::{k}` is gone from sim/trace.rs"
        );
    }

    let red = prep("redundancy.rs", &read("crates/pfs/src/redundancy.rs"));
    let info = parse_enum(&red.code, "Redundancy").expect("Redundancy parses");
    let names: Vec<&str> = info.variants.iter().map(|v| v.name.as_str()).collect();
    assert_eq!(
        names,
        ["None", "ParityRaid", "Replicated"],
        "the mount-level redundancy modes changed"
    );
}

#[test]
fn the_real_workspace_lints_clean() {
    // The binary's CI gate, as a test: the shipped tree must carry zero
    // findings, so every fixture above demonstrates a rule that is
    // actually enforced at its zero state.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let findings = lint_workspace(&root).expect("walk workspace sources");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings_to_json(&findings)
    );
}
