//! Fixture suite: every rule fires on a seeded violation at an exact
//! line, justified waivers silence their rule, clean files stay clean,
//! and the real workspace lints clean end to end.
//!
//! The fixture sources under `tests/fixtures/` are data, not code: they
//! are never compiled, only fed to the linter as text.

use paragon_lint::x1::{
    check_x1, check_x1_metric_names, check_x1_redundancy, parse_enum, prep, Src,
};
use paragon_lint::{findings_to_json, lint_file, lint_workspace, FileCfg, Finding};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `(rule, line)` pairs in the order the linter reported them.
fn pairs(findings: &[Finding]) -> Vec<(&'static str, usize)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn d1_flags_every_hash_container_line() {
    let f = lint_file("d1_hashmap.rs", &fixture("d1_hashmap.rs"), FileCfg::all());
    assert_eq!(pairs(&f), [("D1", 3), ("D1", 4), ("D1", 7), ("D1", 8)]);
    assert!(f[0].msg.contains("HashMap"), "{}", f[0].msg);
    assert!(f[1].msg.contains("HashSet"), "{}", f[1].msg);
    assert!(
        f[0].msg.contains("BTreeMap"),
        "the finding must name the fix: {}",
        f[0].msg
    );
}

#[test]
fn d2_flags_clocks_entropy_and_threads() {
    let f = lint_file("d2.rs", &fixture("d2_nondeterminism.rs"), FileCfg::all());
    assert_eq!(
        pairs(&f),
        [("D2", 3), ("D2", 6), ("D2", 11), ("D2", 13), ("D2", 18)]
    );
    assert!(f[2].msg.contains("SystemTime"));
    assert!(f[3].msg.contains("thread_rng"));
    assert!(f[4].msg.contains("thread::spawn"));
}

#[test]
fn p1_flags_macros_unwraps_and_indexing() {
    let f = lint_file("p1.rs", &fixture("p1_panic_path.rs"), FileCfg::all());
    assert_eq!(
        pairs(&f),
        [("P1", 6), ("P1", 7), ("P1", 12), ("P1", 17), ("P1", 21)]
    );
    assert!(f[0].msg.contains("unreachable!"));
    assert!(f[1].msg.contains("panic!"));
    assert!(f[2].msg.contains(".unwrap()"));
    assert!(f[3].msg.contains(".expect("));
    assert!(
        f[4].msg.contains("[slot]"),
        "index finding names the expression: {}",
        f[4].msg
    );
}

#[test]
fn p1_off_means_panics_pass() {
    // The same source under a non-I/O-path config: D1/D2 still apply,
    // P1 does not — the fixture has no D1/D2 seeds, so it comes back
    // clean.
    let cfg = FileCfg {
        d1: true,
        d2: true,
        threads: true,
        p1: false,
    };
    let f = lint_file("p1.rs", &fixture("p1_panic_path.rs"), cfg);
    assert!(f.is_empty(), "unexpected: {f:?}");
}

#[test]
fn thread_ban_holds_in_the_sim_crate_cfg() {
    // The sim crate's derived config turns the D2 wall-clock words off
    // but keeps the thread ban on: a kernel file reaching for host
    // threads must be flagged even though `Instant` is allowed there.
    let cfg = FileCfg {
        d1: true,
        d2: false,
        threads: true,
        p1: false,
    };
    let f = lint_file("threads.rs", &fixture("d2_threads.rs"), cfg);
    assert_eq!(pairs(&f), [("D2", 4), ("D2", 7), ("D2", 12)]);
    assert!(f[0].msg.contains("std::thread"), "{}", f[0].msg);
    assert!(
        f[0].msg.contains("sim::parallel"),
        "the finding must name the sanctioned escape hatch: {}",
        f[0].msg
    );
}

#[test]
fn sanctioned_parallel_module_waives_the_thread_ban() {
    let f = lint_file(
        "crates/sim/src/parallel.rs",
        &fixture("d2_threads_waived.rs"),
        FileCfg::all(),
    );
    assert!(f.is_empty(), "W1-justified waivers must silence: {f:?}");
}

#[test]
fn w1_rejects_each_malformation_and_bare_waivers_do_not_silence() {
    let f = lint_file("w1.rs", &fixture("w1_waivers.rs"), FileCfg::all());
    assert_eq!(
        pairs(&f),
        [
            ("W1", 4),  // `allowed(` is not the waiver verb
            ("W1", 7),  // missing `)`
            ("W1", 10), // names no rules
            ("W1", 13), // unknown rule id
            ("W1", 16), // no justification
            ("D1", 16), // ... and the reason-less waiver must not silence
            ("D1", 18),
        ]
    );
    assert!(f[3].msg.contains("Q9"), "{}", f[3].msg);
    assert!(f[4].msg.contains("justification"), "{}", f[4].msg);
}

#[test]
fn justified_waivers_silence_line_and_block_scope() {
    let f = lint_file("ok.rs", &fixture("waiver_ok.rs"), FileCfg::all());
    assert!(f.is_empty(), "waived + test-only code must be clean: {f:?}");
}

#[test]
fn clean_file_is_clean() {
    let f = lint_file("clean.rs", &fixture("clean.rs"), FileCfg::all());
    assert!(f.is_empty(), "unexpected: {f:?}");
}

#[test]
fn json_output_carries_exact_rule_file_and_line() {
    let f = lint_file("d1_hashmap.rs", &fixture("d1_hashmap.rs"), FileCfg::all());
    let json = findings_to_json(&f);
    for line in [3usize, 4, 7, 8] {
        let needle = format!("\"file\":\"d1_hashmap.rs\",\"line\":{line},");
        assert!(json.contains(&needle), "missing {needle} in {json}");
    }
    assert_eq!(json.matches("\"rule\":\"D1\"").count(), 4, "{json}");
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert_eq!(findings_to_json(&[]), "[]");
}

fn x1_src(name: &str) -> Src {
    prep(&format!("x1/{name}"), &fixture(&format!("x1/{name}")))
}

#[test]
fn x1_cross_file_exhaustiveness_fires_at_declaration_lines() {
    let proto = x1_src("proto.rs");
    let server = x1_src("server.rs");
    let pointer = x1_src("pointer.rs");
    let trace = x1_src("trace.rs");
    let spans = x1_src("spans.rs");
    let emitters = vec![x1_src("emitter.rs")];

    let mut f = check_x1(&proto, &[&server], &pointer, &trace, &spans, &emitters);
    f.sort_by(|a, b| (&a.file, a.line, &a.msg).cmp(&(&b.file, b.line, &b.msg)));

    let got: Vec<(String, usize)> = f.iter().map(|x| (x.file.clone(), x.line)).collect();
    let want = [
        ("x1/proto.rs", 7),  // Write maps to WriteAck, which cannot fail
        ("x1/proto.rs", 9),  // Snoop: no handler arm
        ("x1/proto.rs", 9),  // Snoop: no REQUEST_TRACE entry
        ("x1/proto.rs", 9),  // Snoop: no REQUEST_ERR entry
        ("x1/proto.rs", 17), // Rewind: no pointer-dispatch arm
        ("x1/proto.rs", 28), // Ghost: dead error vocabulary
        ("x1/trace.rs", 8),  // Phantom: never emitted
        ("x1/trace.rs", 8),  // Phantom: unknown to the span analyzer
        ("x1/trace.rs", 12), // Phantom: missing from ALL
    ];
    let want: Vec<(String, usize)> = want.iter().map(|(p, l)| (p.to_string(), *l)).collect();
    assert_eq!(got, want, "findings: {f:#?}");

    let msg_at = |line: usize, needle: &str| {
        assert!(
            f.iter().any(|x| x.line == line && x.msg.contains(needle)),
            "no finding at line {line} containing {needle:?}: {f:#?}"
        );
    };
    assert!(f.iter().all(|x| x.rule == "X1"));
    msg_at(7, "does not carry a `Result<_, PfsError>`");
    msg_at(9, "no handler arm");
    msg_at(9, "no trace mapping");
    msg_at(9, "no error mapping");
    msg_at(17, "no handler arm");
    msg_at(28, "dead error vocabulary");
    msg_at(8, "never emitted");
    msg_at(8, "not named in workload/spans.rs");
    msg_at(12, "missing from `EventKind::ALL`");
}

#[test]
fn x1_is_quiet_once_the_seeded_gaps_are_closed() {
    // Close every gap the bad fixture seeds: handle Snoop nowhere —
    // instead drop it from the protocol; give Rewind an arm; let
    // WriteAck carry its error; emit Phantom, classify it, and list it
    // in ALL; use Ghost.
    let proto_fixed = fixture("x1/proto.rs")
        .replace("    Snoop,\n", "")
        .replace("WriteAck(u32)", "WriteAck(Result<u32, PfsError>)");
    let trace_fixed = fixture("x1/trace.rs")
        .replace("[EventKind; 3]", "[EventKind; 4]")
        .replace(
            "        EventKind::PtrOp,\n",
            "        EventKind::PtrOp,\n        EventKind::Phantom,\n",
        );
    let pointer_fixed = fixture("x1/pointer.rs").replace(
        "        PtrRequest::SyncArrive => Ok(0),\n",
        "        PtrRequest::SyncArrive => Ok(0),\n        PtrRequest::Rewind => Ok(0),\n",
    );
    let spans_fixed = fixture("x1/spans.rs").replace(
        "        EventKind::PtrOp => 2,\n",
        "        EventKind::PtrOp => 2,\n        EventKind::Phantom => 3,\n",
    );
    let emitter_fixed = fixture("x1/emitter.rs").replace(
        "    let _ = PfsError::BadReply;\n",
        "    sim.emit(EventKind::Phantom);\n    let _ = PfsError::BadReply;\n    let _ = PfsError::Ghost;\n",
    );

    let proto = prep("proto.rs", &proto_fixed);
    let server = x1_src("server.rs");
    let pointer = prep("pointer.rs", &pointer_fixed);
    let trace = prep("trace.rs", &trace_fixed);
    let spans = prep("spans.rs", &spans_fixed);
    let emitters = vec![prep("emitter.rs", &emitter_fixed)];

    let f = check_x1(&proto, &[&server], &pointer, &trace, &spans, &emitters);
    assert!(f.is_empty(), "fixed fixture must be quiet: {f:#?}");
}

#[test]
fn x1_metric_names_flag_unregistered_constants() {
    let telemetry = x1_src("telemetry.rs");
    let user = x1_src("metric_user.rs");

    // READ_TIME_S is used only by the external user file, so its
    // presence there must count; DEAD_GAUGE is used by nobody.
    let f = check_x1_metric_names(&telemetry, &[&user]);
    assert_eq!(pairs(&f), [("X1", 6)]);
    assert!(f[0].msg.contains("DEAD_GAUGE"), "{}", f[0].msg);
    assert!(
        f[0].msg.contains("BENCH_metrics.json"),
        "the finding must name the consequence: {}",
        f[0].msg
    );

    // Registering the name closes the finding.
    let fixed = fixture("x1/telemetry.rs").replace(
        "    reg.register_gauge(names::DISK_QUEUE, 0);\n",
        "    reg.register_gauge(names::DISK_QUEUE, 0);\n    \
         reg.register_gauge(names::DEAD_GAUGE, 0);\n",
    );
    let telemetry = prep("telemetry.rs", &fixed);
    let f = check_x1_metric_names(&telemetry, &[&user]);
    assert!(f.is_empty(), "fixed fixture must be quiet: {f:#?}");
}

#[test]
fn x1_redundancy_modes_must_be_dispatched_somewhere() {
    let decl = x1_src("redundancy.rs");
    let user = x1_src("redundancy_user.rs");

    // Replicated is declared but dispatched on by nobody.
    let f = check_x1_redundancy(&decl, &[&user]);
    assert_eq!(pairs(&f), [("X1", 6)]);
    assert!(f[0].msg.contains("Replicated"), "{}", f[0].msg);
    assert!(
        f[0].msg.contains("dead policy"),
        "the finding must name the consequence: {}",
        f[0].msg
    );

    // Adding the dispatch arm closes the finding.
    let fixed = fixture("x1/redundancy_user.rs").replace(
        "        Redundancy::ParityRaid => 1,\n",
        "        Redundancy::ParityRaid => 1,\n        \
         Redundancy::Replicated { rf } => rf as u32,\n",
    );
    let user = prep("redundancy_user.rs", &fixed);
    let f = check_x1_redundancy(&decl, &[&user]);
    assert!(f.is_empty(), "fixed fixture must be quiet: {f:#?}");
}

#[test]
fn recovery_vocabulary_is_pinned_in_the_real_tree() {
    // The replication/recovery surface ships as one vocabulary: the
    // recovery trace kinds and the mount-level redundancy modes.
    // Dropping or renaming any of them silently breaks committed traces
    // and configs, so the exact names are pinned against the real tree.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let read = |rel: &str| std::fs::read_to_string(root.join(rel)).expect(rel);

    let trace = prep("trace.rs", &read("crates/sim/src/trace.rs"));
    let kinds = parse_enum(&trace.code, "EventKind").expect("EventKind parses");
    for k in [
        "ReplicaFailover",
        "RebuildStart",
        "RebuildCopy",
        "RebuildDone",
        "FaultNodeRecovered",
    ] {
        assert!(
            kinds.variants.iter().any(|v| v.name == k),
            "recovery trace kind `EventKind::{k}` is gone from sim/trace.rs"
        );
    }

    let red = prep("redundancy.rs", &read("crates/pfs/src/redundancy.rs"));
    let info = parse_enum(&red.code, "Redundancy").expect("Redundancy parses");
    let names: Vec<&str> = info.variants.iter().map(|v| v.name.as_str()).collect();
    assert_eq!(
        names,
        ["None", "ParityRaid", "Replicated"],
        "the mount-level redundancy modes changed"
    );
}

#[test]
fn the_real_workspace_lints_clean() {
    // The binary's CI gate, as a test: the shipped tree must carry zero
    // findings, so every fixture above demonstrates a rule that is
    // actually enforced at its zero state.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let findings = lint_workspace(&root).expect("walk workspace sources");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings_to_json(&findings)
    );
}
