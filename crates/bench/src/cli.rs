//! Argument parsing and execution for the `paragonctl` binary, kept in
//! the library so the parsing rules are unit-testable.

use paragon_core::{PredictorKind, PrefetchConfig};
use paragon_machine::Calibration;
use paragon_metrics::{ExperimentRecord, Json};
use paragon_pfs::{IoMode, Redundancy};
use paragon_profile::{
    export_perfetto, kernel_scalars, render_critical_path, render_kernel_profile,
};
use paragon_sim::{
    export_json, hash_events, parse_json, render_track_summary, FaultStats, SimDuration, TraceEvent,
};
use paragon_workload::{
    metrics_check, metrics_report, read_spans, render_report, run, run_profiled, AccessPattern,
    ExperimentConfig, FaultSpec, RunResult, SpanBreakdown, SpanKind, StripeLayout,
    PARALLEL_SPEEDUP_SCALAR,
};

use std::process::ExitCode;

/// The help text.
pub const USAGE: &str = "\
paragonctl — drive the simulated Paragon PFS

USAGE:
    paragonctl run [OPTIONS]
    paragonctl faults [OPTIONS]
    paragonctl trace capture [OPTIONS] --out FILE
    paragonctl trace summarize FILE [--top N]
    paragonctl trace diff FILE1 FILE2
    paragonctl metrics run [OPTIONS] [--cadence-ms N] [--out FILE] [--bench]
    paragonctl metrics report [FILE | OPTIONS]
    paragonctl metrics check [OPTIONS] [--baseline FILE] [--tolerance X] [--bench]
    paragonctl profile critical-path [FILE | OPTIONS] [--top N]
    paragonctl profile export [FILE | OPTIONS] [--format perfetto] [--out FILE]
    paragonctl profile kernel [OPTIONS]

PROFILE:
    critical-path  reconstruct every completed read's span DAG from a
               trace (FILE, or a fresh OPTIONS run with the recorder
               armed) and charge each nanosecond of end-to-end latency
               to one pipeline component: p50/p95/p99/max blame per
               component plus the --top N slowest requests with their
               full milestone chains. Deterministic: byte-identical
               output at any --workers count
    export     render the trace as Chrome-trace JSON for ui.perfetto.dev
               (one lane per CN/ION/spindle, duration slices, flow
               arrows per request; fresh runs also attach telemetry
               counter tracks)
    --format <perfetto>  output format                    [perfetto]
    --out <FILE|->       destination                      [stdout]
    kernel     run the OPTIONS experiment with kernel self-profiling
               (host-side wall clocks, simulation bytes unchanged) and
               report epochs, per-worker barrier stall, cross-shard
               frame volume, events/s, calendar rebuild churn

METRICS:
    run        run the OPTIONS-selected experiment with the telemetry
               sampler armed and write the bottleneck-attribution report
               as deterministic JSON (same seed → identical bytes)
    --cadence-ms <N>  gauge sampling cadence, simulated ms    [100]
    --out <FILE|->    report destination       [BENCH_metrics.json]
    report     render a report (from FILE, or a fresh run) as tables
               and ASCII queue-depth charts
    check      re-run and compare the report's scalars against a
               committed baseline within per-metric tolerance bands;
               exits nonzero on regression (the CI perf gate)
    --baseline <FILE> committed baseline       [BENCH_metrics.json]
    --current <FILE>  compare FILE instead of re-running
    --tolerance <X>   override every band width
    --bench    also measure engine throughput on the fixed EXT-SCALING
               bench shape (64x16, 128 MB, 25 ms delay, prefetch,
               reread differencing) and add the host-timed scalar
               bench.sim_io_bytes_per_host_second to the report; on
               hosts with >= 4 cores additionally time the sharded
               512x64 shape at 1 vs 4 workers and add
               bench.parallel_speedup; in `check` both scalars gate as
               one-sided floors (see DESIGN.md)

FAULTS:
    run the OPTIONS-selected experiment once per fault class (none,
    disk-transient, dead-member, mesh-drop, ion-crash) with a RAID
    parity member, prefetching, and data verification forced on, and
    report how throughput and the prefetch hit rate degrade
    --error-pm <N>    transient disk error rate, per mille   [20]
    --drop-pm <N>     mesh message drop rate, per mille      [10]
    --redundancy all  instead run the EXT-FAULTS three-way comparison:
               the same I/O-node crash under none (client-visible
               errors), parity (in-array reconstruction), and
               replicated:2 (replica failover + online re-replication
               under the foreground load); any other value selects that
               redundancy mode for the five-class sweep

TRACE:
    capture    run an experiment with the flight recorder armed and
               write the recording as JSON (same OPTIONS as `run`;
               --trace caps the recording, default 1M events)
    summarize  per-track activity and the Table-2-style access-time
               decomposition reconstructed from a trace file
    --top <N>  also list the N slowest reconstructed spans with their
               request ids (0 = omit)                     [10]
    diff       compare two trace files; exits nonzero on divergence

OPTIONS:
    --mode <m_unix|m_log|m_sync|m_record|m_global|m_async>   [m_record]
    --cn <N>              compute nodes                      [8]
    --ion <N>             I/O nodes                          [8]
    --request-kb <N>      request size                       [64]
    --file-mb <N>         total file size                    [64]
    --su-kb <N>           stripe unit                        [64]
    --sgroup <N>          stripe across first N I/O nodes    [all]
    --ways-on-one <N>     stripe N ways on I/O node 0 instead
    --delay-ms <N>        compute delay between reads        [0]
    --seed <N>            simulation seed                    [42]
    --prefetch            enable the prefetch prototype
    --depth <N>           prefetch depth (implies --prefetch) [1]
    --strided-predictor   use the stride detector (implies --prefetch)
    --pattern <mode|strided:BYTES|random|reread:N>           [mode]
    --separate            one private file per node
    --redundancy <none|parity|replicated[:rf]>  mount redundancy [none]
    --buffered            disable Fast Path (server buffer cache on)
    --verify              verify returned bytes against the pattern
    --compare             also run with prefetching toggled, print both
    --trace <N>           record and print up to N trace events
    --shards <N>          force N shard worlds on the parallel kernel
                          (0 = auto: 1 below 1024 CN, byte-identical to
                          the serial kernel; 4 from 1024 CN; 8 from
                          4096 CN)                              [auto]
    --workers <N>         host threads driving the shard worlds; never
                          changes simulation bytes (0 = host cores) [1]
    --json                emit a JSON ExperimentRecord instead of text
";

pub(crate) struct Args(pub Vec<String>);

impl Args {
    fn flag(&mut self, name: &str) -> bool {
        match self.0.iter().position(|a| a == name) {
            Some(i) => {
                self.0.remove(i);
                true
            }
            None => false,
        }
    }

    fn value(&mut self, name: &str) -> Result<Option<String>, String> {
        match self.0.iter().position(|a| a == name) {
            Some(i) => {
                if i + 1 >= self.0.len() {
                    return Err(format!("{name} needs a value"));
                }
                let v = self.0.remove(i + 1);
                self.0.remove(i);
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    fn parsed<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, String> {
        match self.value(name)? {
            Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
            None => Ok(default),
        }
    }
}

pub(crate) fn parse_mode(s: &str) -> Result<IoMode, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "m_unix" | "unix" | "0" => IoMode::MUnix,
        "m_log" | "log" | "1" => IoMode::MLog,
        "m_sync" | "sync" | "2" => IoMode::MSync,
        "m_record" | "record" | "3" => IoMode::MRecord,
        "m_global" | "global" | "4" => IoMode::MGlobal,
        "m_async" | "async" | "5" => IoMode::MAsync,
        other => return Err(format!("unknown mode {other}")),
    })
}

pub(crate) fn parse_pattern(s: &str) -> Result<AccessPattern, String> {
    if s == "mode" {
        return Ok(AccessPattern::ModeDriven);
    }
    if s == "random" {
        return Ok(AccessPattern::Random);
    }
    if let Some(stride) = s.strip_prefix("strided:") {
        let stride = stride.parse().map_err(|_| format!("bad stride in {s}"))?;
        return Ok(AccessPattern::Strided { stride });
    }
    if let Some(passes) = s.strip_prefix("reread:") {
        let passes = passes
            .parse()
            .map_err(|_| format!("bad pass count in {s}"))?;
        return Ok(AccessPattern::Reread { passes });
    }
    Err(format!("unknown pattern {s}"))
}

pub(crate) fn build_config(args: &mut Args) -> Result<ExperimentConfig, String> {
    let cn: usize = args.parsed("--cn", 8)?;
    let ion: usize = args.parsed("--ion", 8)?;
    let request_kb: u32 = args.parsed("--request-kb", 64)?;
    let file_mb: u64 = args.parsed("--file-mb", 64)?;
    let su_kb: u64 = args.parsed("--su-kb", 64)?;
    let sgroup: usize = args.parsed("--sgroup", ion)?;
    let ways: usize = args.parsed("--ways-on-one", 0)?;
    let delay_ms: u64 = args.parsed("--delay-ms", 0)?;
    let seed: u64 = args.parsed("--seed", 42)?;
    let depth: u32 = args.parsed("--depth", 0)?;
    let mode = parse_mode(&args.value("--mode")?.unwrap_or_else(|| "m_record".into()))?;
    let pattern = parse_pattern(&args.value("--pattern")?.unwrap_or_else(|| "mode".into()))?;
    let strided_pred = args.flag("--strided-predictor");
    let prefetch_on = args.flag("--prefetch") || depth > 0 || strided_pred;
    let redundancy = match args.value("--redundancy")? {
        Some(v) => {
            Redundancy::parse(&v).ok_or_else(|| format!("bad value for --redundancy: {v}"))?
        }
        None => Redundancy::None,
    };

    let mut cfg = ExperimentConfig {
        seed,
        compute_nodes: cn,
        io_nodes: ion,
        calib: Calibration::paragon_1995(),
        mode,
        fast_path: !args.flag("--buffered"),
        stripe_unit: su_kb * 1024,
        layout: if ways > 0 {
            StripeLayout::WaysOnOne { ways, ion: 0 }
        } else {
            StripeLayout::Across { factor: sgroup }
        },
        request_size: request_kb * 1024,
        file_size: file_mb << 20,
        delay: SimDuration::from_millis(delay_ms),
        prefetch: None,
        access: pattern,
        separate_files: args.flag("--separate"),
        verify_data: args.flag("--verify"),
        trace_cap: args.parsed("--trace", 0)?,
        faults: FaultSpec::default(),
        redundancy,
        metrics_cadence: None,
        shards: match args.parsed("--shards", 0usize)? {
            0 => None,
            s => Some(s),
        },
        workers: args.parsed("--workers", 1)?,
    };
    if prefetch_on {
        let mut pc = PrefetchConfig::with_depth(depth.max(1));
        pc.copy_bw = cfg.calib.cn_copy_bw;
        if strided_pred {
            pc.predictor = PredictorKind::Strided;
        }
        cfg.prefetch = Some(pc);
    }
    Ok(cfg)
}

fn report_text(label: &str, r: &RunResult) {
    println!("== {label}");
    println!("  bandwidth       {:>10.2} MB/s", r.bandwidth_mb_s());
    println!("  elapsed         {:>10}", r.elapsed);
    println!("  mean access     {:>10}", r.read_time_mean());
    println!("  total bytes     {:>10} MB", r.total_bytes >> 20);
    println!("  node imbalance  {:>10.3}", r.node_imbalance());
    println!(
        "  disk            {:>10} requests ({} seq, {} near, {} far)",
        r.disk.requests, r.disk.sequential_hits, r.disk.near_seeks, r.disk.far_seeks
    );
    if r.prefetch_enabled {
        let p = &r.prefetch;
        println!(
            "  prefetch        hits {} ({} ready / {} in-flight / {} recovered), \
             misses {}, wasted {}, hidden {}",
            p.hits(),
            p.hits_ready,
            p.hits_inflight,
            p.recovered,
            p.misses,
            p.wasted,
            p.overlap_saved
        );
    }
    if r.verify_failures > 0 {
        println!("  !! VERIFY FAILURES: {}", r.verify_failures);
    }
}

fn report_json(cfg: &ExperimentConfig, results: &[(&str, RunResult)]) {
    let mut rec = ExperimentRecord::new("CTL", "paragonctl run");
    rec.config("mode", cfg.mode)
        .config("compute_nodes", cfg.compute_nodes)
        .config("io_nodes", cfg.io_nodes)
        .config("request_kb", cfg.request_size / 1024)
        .config("file_mb", cfg.file_size >> 20)
        .config("delay_ms", cfg.delay.as_millis())
        .config("seed", cfg.seed);
    for (label, r) in results {
        rec.point(
            &[("run", label)],
            &[
                ("bw_mb_s", r.bandwidth_mb_s()),
                ("mean_access_s", r.read_time_mean().as_secs_f64()),
                ("hit_ratio", r.prefetch.hit_ratio()),
                ("node_imbalance", r.node_imbalance()),
                ("verify_failures", r.verify_failures as f64),
            ],
        );
    }
    println!("{}", rec.to_json());
}

/// Summarize parsed trace events: header, per-track table, the
/// span-reconstructed access-time decomposition, and (for `top > 0`)
/// the `top` slowest spans with their request ids.
pub(crate) fn summarize_events(events: &[TraceEvent], top: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} events, hash {:#018x}\n\n",
        events.len(),
        hash_events(events)
    ));
    out.push_str(&render_track_summary(events));
    let spans = read_spans(events);
    let demand: Vec<_> = spans
        .iter()
        .filter(|s| s.kind != SpanKind::Prefetch)
        .cloned()
        .collect();
    let prefetch: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Prefetch)
        .cloned()
        .collect();
    if !demand.is_empty() {
        out.push_str(&format!("\ndemand reads ({} spans)\n", demand.len()));
        out.push_str(&SpanBreakdown::of(&demand).render());
    }
    if !prefetch.is_empty() {
        out.push_str(&format!(
            "\nprefetch transfers ({} spans)\n",
            prefetch.len()
        ));
        out.push_str(&SpanBreakdown::of(&prefetch).render());
    }
    if top > 0 && !spans.is_empty() {
        // Slowest first; ties break on request id so the listing is a
        // pure function of the trace.
        let mut slowest: Vec<&paragon_workload::ReadSpan> = spans.iter().collect();
        slowest.sort_by_key(|s| (std::cmp::Reverse(s.total()), s.req));
        slowest.truncate(top);
        out.push_str(&format!("\ntop {} slowest spans:\n", slowest.len()));
        for s in slowest {
            out.push_str(&format!(
                "  req {:>6}  {:>12}  {:?}  offset {}  len {}  \
                 (request {} | service {} | disk {} | reply {})\n",
                s.req,
                format!("{}", s.total()),
                s.kind,
                s.offset,
                s.len,
                s.request,
                s.service,
                s.disk,
                s.reply,
            ));
        }
    }
    out
}

fn load_trace(path: &str) -> Result<Vec<TraceEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_json(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// `paragonctl trace …`: capture, summarize, or diff trace files.
fn trace_cmd(argv: Vec<String>) -> ExitCode {
    let fail = |e: String| {
        eprintln!("error: {e}\n\n{USAGE}");
        ExitCode::FAILURE
    };
    match argv.first().map(String::as_str) {
        Some("capture") => {
            let mut args = Args(argv[1..].to_vec());
            let out_path = match args.value("--out") {
                Ok(v) => v,
                Err(e) => return fail(e),
            };
            let mut cfg = match build_config(&mut args) {
                Ok(c) => c,
                Err(e) => return fail(e),
            };
            if !args.0.is_empty() {
                return fail(format!("unrecognized arguments {:?}", args.0));
            }
            if cfg.trace_cap == 0 {
                cfg.trace_cap = 1 << 20;
            }
            let r = run(&cfg);
            let json = export_json(&r.trace);
            match &out_path {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &json) {
                        return fail(format!("writing {path}: {e}"));
                    }
                    println!(
                        "wrote {} events to {path} (hash {:#018x})",
                        r.trace.len(),
                        hash_events(&r.trace)
                    );
                }
                None => print!("{json}"),
            }
            ExitCode::SUCCESS
        }
        Some("summarize") => {
            let mut args = Args(argv[1..].to_vec());
            let top: usize = match args.parsed("--top", 10) {
                Ok(v) => v,
                Err(e) => return fail(e),
            };
            let [path] = &args.0[..] else {
                return fail("trace summarize needs a FILE".into());
            };
            match load_trace(path) {
                Ok(events) => {
                    print!("{}", summarize_events(&events, top));
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        Some("diff") => {
            let (Some(pa), Some(pb)) = (argv.get(1), argv.get(2)) else {
                return fail("trace diff needs FILE1 FILE2".into());
            };
            let (a, b) = match (load_trace(pa), load_trace(pb)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => return fail(e),
            };
            if hash_events(&a) == hash_events(&b) {
                println!(
                    "traces identical ({} events, hash {:#018x})",
                    a.len(),
                    hash_events(&a)
                );
                return ExitCode::SUCCESS;
            }
            println!(
                "traces differ: {pa} has {} events (hash {:#018x}), {pb} has {} (hash {:#018x})",
                a.len(),
                hash_events(&a),
                b.len(),
                hash_events(&b)
            );
            if let Some(i) = (0..a.len().min(b.len())).find(|&i| a[i] != b[i]) {
                println!("first divergence at event {i}:");
                println!("  {pa}: {:>14}  {}", format!("{}", a[i].time), a[i]);
                println!("  {pb}: {:>14}  {}", format!("{}", b[i].time), b[i]);
            } else {
                println!(
                    "one trace is a prefix of the other (common prefix {} events)",
                    a.len().min(b.len())
                );
            }
            ExitCode::FAILURE
        }
        _ => fail("trace needs a subcommand: capture | summarize | diff".into()),
    }
}

/// Parse OPTIONS into an instrumented config: telemetry sampler armed at
/// `--cadence-ms` and the flight recorder forced on (the report's
/// span-consistency cross-check needs a trace).
fn instrumented_config(args: &mut Args) -> Result<ExperimentConfig, String> {
    let cadence_ms: u64 = args.parsed("--cadence-ms", 100)?;
    if cadence_ms == 0 {
        return Err("--cadence-ms must be positive".into());
    }
    let mut cfg = build_config(args)?;
    cfg.metrics_cadence = Some(SimDuration::from_millis(cadence_ms));
    if cfg.trace_cap == 0 {
        cfg.trace_cap = 1 << 20;
    }
    Ok(cfg)
}

/// Name of the host-timed engine-throughput scalar `--bench` adds to the
/// metrics report. The `bench.` prefix selects the one-sided floor class
/// in [`metrics_check`]: wall-clock throughput varies with the host
/// machine, so only a large slowdown (below 25% of baseline by default)
/// fails the gate, and the scalar is skipped when the current report was
/// produced without `--bench`.
pub const BENCH_SCALAR: &str = "bench.sim_io_bytes_per_host_second";

/// Measure how many bytes of simulated application I/O the engine pushes
/// per *host* second on the canonical EXT-SCALING bench shape: 64 CN x
/// 16 ION, one shared 128 MB file, 64 KB requests, 25 ms think time,
/// depth-1 prefetch — the shape the calendar-queue/slab-executor fast
/// path was tuned on.
///
/// Host time is attributed by reread differencing: the same config runs
/// at 1 and 1+K sequential passes and only the difference counts, so
/// process startup, file population, and driver verification (all
/// constant in the pass count) cancel out and the scalar isolates the
/// measured-phase engine throughput. Simulated byte counts are
/// deterministic; only the host clock is noisy, so the best of three
/// trials is kept (a host timer only ever over-counts).
fn bench_throughput() -> Result<f64, String> {
    const EXTRA_PASSES: u32 = 4;
    let shape = |passes: u32| {
        let mut cfg = ExperimentConfig::paper_balanced(64 * 1024, SimDuration::from_millis(25));
        cfg.compute_nodes = 64;
        cfg.io_nodes = 16;
        cfg.layout = StripeLayout::Across { factor: 16 };
        cfg.file_size = 128 << 20;
        cfg.access = AccessPattern::Reread { passes };
        cfg.with_prefetch()
    };
    let timed = |passes: u32| {
        // paragon-lint: allow(D2) — the bench harness measures *host* wall
        // time by design; the reading never feeds back into the simulation.
        let t0 = std::time::Instant::now();
        let r = run(&shape(passes));
        (t0.elapsed().as_secs_f64(), r.total_bytes)
    };
    let mut best = 0.0f64;
    for _ in 0..3 {
        let (t_base, bytes_base) = timed(1);
        let (t_more, bytes_more) = timed(1 + EXTRA_PASSES);
        let dt = t_more - t_base;
        let db = bytes_more.saturating_sub(bytes_base);
        if dt > 0.0 && db > 0 {
            best = best.max(db as f64 / dt);
        }
    }
    if best <= 0.0 {
        return Err("bench: host-time difference was not positive in any trial".into());
    }
    Ok(best)
}

/// Measure the parallel kernel's host-time speedup on the large
/// EXT-SCALING shape: 512 CN × 64 ION, one shared 128 MB file, 64 KB
/// requests, forced onto 4 shard worlds. The *same* sharded simulation
/// (byte-identical traces by construction) runs once driven by a single
/// worker thread and once by four, and the scalar is the
/// reread-differenced host-time ratio serial ÷ parallel — so world
/// construction and file population, which both variants replicate
/// identically, cancel out and only the measured phase's epoch-parallel
/// execution is compared. Best of three trials (host noise only ever
/// lowers an observed speedup on an otherwise idle machine).
///
/// Returns `Ok(None)` — scalar skipped, gate absent-safe — when the
/// host cannot actually run four workers in parallel; a wall-clock
/// speedup floor is meaningless without the hardware under it.
fn bench_parallel_speedup() -> Result<Option<f64>, String> {
    const WORKERS: usize = 4;
    // paragon-lint: allow(D2) — host capability probe for the host-timed
    // bench harness; never feeds into a simulation.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < WORKERS {
        eprintln!(
            "bench: host exposes {cores} core(s); skipping \
             {PARALLEL_SPEEDUP_SCALAR} (needs {WORKERS})"
        );
        return Ok(None);
    }
    const EXTRA_PASSES: u32 = 2;
    let shape = |passes: u32, workers: usize| {
        let mut cfg = ExperimentConfig::paper_iobound(64 * 1024, 16);
        cfg.compute_nodes = 512;
        cfg.io_nodes = 64;
        cfg.layout = StripeLayout::Across { factor: 64 };
        cfg.file_size = 128 << 20;
        cfg.access = AccessPattern::Reread { passes };
        cfg.shards = Some(4);
        cfg.workers = workers;
        cfg.with_prefetch()
    };
    let timed = |passes: u32, workers: usize| {
        // paragon-lint: allow(D2) — the bench harness measures *host* wall
        // time by design; the reading never feeds back into the simulation.
        let t0 = std::time::Instant::now();
        run(&shape(passes, workers));
        t0.elapsed().as_secs_f64()
    };
    let delta = |workers: usize| timed(1 + EXTRA_PASSES, workers) - timed(1, workers);
    let mut best = 0.0f64;
    for _ in 0..3 {
        let serial = delta(1);
        let parallel = delta(WORKERS);
        if serial > 0.0 && parallel > 0.0 {
            best = best.max(serial / parallel);
        }
    }
    if best <= 0.0 {
        return Err("bench: host-time difference was not positive in any trial".into());
    }
    Ok(Some(best))
}

/// Self-profile the parallel kernel on a small sharded shape and return
/// its `bench.kernel.*` scalars for the report. The simulation is
/// deterministic; only the host-clock fields (stall fraction, events/s)
/// vary run to run, and `metrics check` treats the whole family as
/// absent-safe with a single absolute ceiling on the stall fraction.
fn bench_kernel_profile() -> Vec<(&'static str, f64)> {
    let mut cfg = ExperimentConfig::paper_iobound(64 * 1024, 16);
    cfg.compute_nodes = 128;
    cfg.io_nodes = 16;
    cfg.layout = StripeLayout::Across { factor: 16 };
    cfg.file_size = 32 << 20;
    cfg.shards = Some(4);
    // paragon-lint: allow(D2) — host capability probe for the host-timed
    // bench harness; never feeds into a simulation.
    cfg.workers = std::thread::available_parallelism().map_or(1, |n| n.get().min(4));
    let (_, prof) = run_profiled(&cfg);
    kernel_scalars(&prof)
}

/// Insert `name = value` into a report's `"scalars"` object (no-op on a
/// malformed report).
fn insert_scalar(report: &mut Json, name: &str, value: f64) {
    if let Json::Obj(root) = report {
        if let Some(Json::Obj(scalars)) = root.get_mut("scalars") {
            scalars.insert(name.into(), Json::Num(value));
        }
    }
}

fn load_report(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// `paragonctl metrics …`: the telemetry runner, renderer, and perf gate.
fn metrics_cmd(argv: Vec<String>) -> ExitCode {
    let fail = |e: String| {
        eprintln!("error: {e}\n\n{USAGE}");
        ExitCode::FAILURE
    };
    match argv.first().map(String::as_str) {
        Some("run") => {
            let mut args = Args(argv[1..].to_vec());
            let out_path = match args.value("--out") {
                Ok(v) => v.unwrap_or_else(|| "BENCH_metrics.json".into()),
                Err(e) => return fail(e),
            };
            let bench = args.flag("--bench");
            let cfg = match instrumented_config(&mut args) {
                Ok(c) => c,
                Err(e) => return fail(e),
            };
            if !args.0.is_empty() {
                return fail(format!("unrecognized arguments {:?}", args.0));
            }
            let r = run(&cfg);
            let mut report = metrics_report(&cfg, &r);
            if bench {
                match bench_throughput() {
                    Ok(v) => insert_scalar(&mut report, BENCH_SCALAR, v),
                    Err(e) => return fail(e),
                }
                match bench_parallel_speedup() {
                    Ok(Some(v)) => insert_scalar(&mut report, PARALLEL_SPEEDUP_SCALAR, v),
                    Ok(None) => {}
                    Err(e) => return fail(e),
                }
                for (name, v) in bench_kernel_profile() {
                    insert_scalar(&mut report, name, v);
                }
            }
            let json = report.pretty();
            if out_path == "-" {
                print!("{json}");
            } else {
                if let Err(e) = std::fs::write(&out_path, &json) {
                    return fail(format!("writing {out_path}: {e}"));
                }
                let scalars = report
                    .get("scalars")
                    .and_then(Json::as_obj)
                    .map_or(0, |m| m.len());
                println!("wrote metrics report to {out_path} ({scalars} scalars)");
            }
            ExitCode::SUCCESS
        }
        Some("report") => {
            // A lone non-flag argument is a report file to render;
            // otherwise run the OPTIONS-selected experiment fresh.
            let rest = &argv[1..];
            let report = if rest.len() == 1 && !rest[0].starts_with("--") {
                match load_report(&rest[0]) {
                    Ok(j) => j,
                    Err(e) => return fail(e),
                }
            } else {
                let mut args = Args(rest.to_vec());
                let cfg = match instrumented_config(&mut args) {
                    Ok(c) => c,
                    Err(e) => return fail(e),
                };
                if !args.0.is_empty() {
                    return fail(format!("unrecognized arguments {:?}", args.0));
                }
                let r = run(&cfg);
                metrics_report(&cfg, &r)
            };
            print!("{}", render_report(&report));
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut args = Args(argv[1..].to_vec());
            let baseline_path = match args.value("--baseline") {
                Ok(v) => v.unwrap_or_else(|| "BENCH_metrics.json".into()),
                Err(e) => return fail(e),
            };
            let bench = args.flag("--bench");
            let tolerance = match args.value("--tolerance") {
                Ok(Some(v)) => match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 => Some(t),
                    _ => return fail(format!("bad value for --tolerance: {v}")),
                },
                Ok(None) => None,
                Err(e) => return fail(e),
            };
            let current_path = match args.value("--current") {
                Ok(v) => v,
                Err(e) => return fail(e),
            };
            let current = match current_path {
                Some(p) => match load_report(&p) {
                    Ok(j) => j,
                    Err(e) => return fail(e),
                },
                None => {
                    let cfg = match instrumented_config(&mut args) {
                        Ok(c) => c,
                        Err(e) => return fail(e),
                    };
                    if !args.0.is_empty() {
                        return fail(format!("unrecognized arguments {:?}", args.0));
                    }
                    let r = run(&cfg);
                    let mut report = metrics_report(&cfg, &r);
                    if bench {
                        match bench_throughput() {
                            Ok(v) => insert_scalar(&mut report, BENCH_SCALAR, v),
                            Err(e) => return fail(e),
                        }
                    }
                    report
                }
            };
            let baseline = match load_report(&baseline_path) {
                Ok(j) => j,
                Err(e) => return fail(e),
            };
            let violations = metrics_check(&current, &baseline, tolerance);
            if violations.is_empty() {
                let n = baseline
                    .get("scalars")
                    .and_then(Json::as_obj)
                    .map_or(0, |m| m.len());
                println!("metrics gate passed: {n} scalars within tolerance of {baseline_path}");
                ExitCode::SUCCESS
            } else {
                eprintln!("metrics gate FAILED against {baseline_path}:");
                for v in &violations {
                    eprintln!("  {v}");
                }
                ExitCode::FAILURE
            }
        }
        _ => fail("metrics needs a subcommand: run | report | check".into()),
    }
}

/// Events (and, for a fresh run, the telemetry snapshot) for the
/// profile subcommands: a lone non-flag argument is a trace file to
/// analyze; otherwise the OPTIONS-selected experiment runs fresh with
/// the recorder armed and the sampler on.
fn profile_events(
    rest: &[String],
) -> Result<(Vec<TraceEvent>, Option<paragon_metrics::MetricsSnapshot>), String> {
    if let [path] = rest {
        if !path.starts_with("--") {
            return Ok((load_trace(path)?, None));
        }
    }
    let mut args = Args(rest.to_vec());
    let cfg = instrumented_config(&mut args)?;
    if !args.0.is_empty() {
        return Err(format!("unrecognized arguments {:?}", args.0));
    }
    let mut r = run(&cfg);
    Ok((std::mem::take(&mut r.trace), r.metrics))
}

/// `paragonctl profile …`: critical-path blame, Perfetto timeline
/// export, and the parallel kernel's self-profile.
fn profile_cmd(argv: Vec<String>) -> ExitCode {
    let fail = |e: String| {
        eprintln!("error: {e}\n\n{USAGE}");
        ExitCode::FAILURE
    };
    match argv.first().map(String::as_str) {
        Some("critical-path") => {
            let mut args = Args(argv[1..].to_vec());
            let top: usize = match args.parsed("--top", 5) {
                Ok(v) => v,
                Err(e) => return fail(e),
            };
            let (events, _) = match profile_events(&args.0) {
                Ok(v) => v,
                Err(e) => return fail(e),
            };
            print!("{}", render_critical_path(&events, top));
            ExitCode::SUCCESS
        }
        Some("export") => {
            let mut args = Args(argv[1..].to_vec());
            let out_path = match args.value("--out") {
                Ok(v) => v,
                Err(e) => return fail(e),
            };
            match args.value("--format") {
                Ok(None) => {}
                Ok(Some(f)) if f == "perfetto" || f == "chrome" => {}
                Ok(Some(f)) => return fail(format!("unknown export format {f}")),
                Err(e) => return fail(e),
            }
            let (events, counters) = match profile_events(&args.0) {
                Ok(v) => v,
                Err(e) => return fail(e),
            };
            let json = export_perfetto(&events, counters.as_ref());
            match &out_path {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &json) {
                        return fail(format!("writing {path}: {e}"));
                    }
                    println!(
                        "wrote {} events to {path} — open it in ui.perfetto.dev",
                        events.len()
                    );
                }
                None => print!("{json}"),
            }
            ExitCode::SUCCESS
        }
        Some("kernel") => {
            let mut args = Args(argv[1..].to_vec());
            let cfg = match build_config(&mut args) {
                Ok(c) => c,
                Err(e) => return fail(e),
            };
            if !args.0.is_empty() {
                return fail(format!("unrecognized arguments {:?}", args.0));
            }
            let (r, prof) = run_profiled(&cfg);
            print!("{}", render_kernel_profile(&prof));
            println!(
                "\nsimulated: {} MB in {} (trace hash {:#018x})",
                r.total_bytes >> 20,
                r.elapsed,
                r.trace_hash
            );
            ExitCode::SUCCESS
        }
        _ => fail("profile needs a subcommand: critical-path | export | kernel".into()),
    }
}

/// The fault classes `paragonctl faults` sweeps, in report order.
fn fault_classes(error_pm: u32, drop_pm: u32) -> Vec<(&'static str, FaultSpec)> {
    vec![
        ("none", FaultSpec::default()),
        (
            "disk-transient",
            FaultSpec {
                disk_error_pm: error_pm,
                ..FaultSpec::default()
            },
        ),
        (
            "dead-member",
            FaultSpec {
                dead_member: Some((0, 0)),
                ..FaultSpec::default()
            },
        ),
        (
            "mesh-drop",
            FaultSpec {
                mesh_drop_pm: drop_pm,
                ..FaultSpec::default()
            },
        ),
        (
            "ion-crash",
            FaultSpec {
                ion_crash: Some((0, SimDuration::ZERO, SimDuration::from_secs(5))),
                ..FaultSpec::default()
            },
        ),
    ]
}

/// Compact "what the plan actually injected" summary for one run.
fn injected_summary(f: &FaultStats) -> String {
    let mut parts = Vec::new();
    for (n, label) in [
        (f.disk_transients, "disk-err"),
        (f.disk_dead_hits, "dead-hit"),
        (f.mesh_dropped, "drop"),
        (f.mesh_duplicated, "dup"),
        (f.mesh_delayed, "delay"),
        (f.node_down_drops, "node-down"),
    ] {
        if n > 0 {
            parts.push(format!("{label} {n}"));
        }
    }
    if parts.is_empty() {
        "-".into()
    } else {
        parts.join(", ")
    }
}

/// `paragonctl faults --redundancy all`: the EXT-FAULTS three-way
/// comparison. The same I/O-node crash (ion 0 down from the measured
/// phase's start, for a window that outlasts the run — a permanent
/// failure as far as the workload is concerned) runs under each
/// redundancy mode, next to that mode's healthy baseline:
///
/// * `none` — the crashed node's stripes are simply gone; every read of
///   them burns the full retry budget and surfaces as an error.
/// * `parity` — per-node RAID reconstructs dead *spindles*, but a whole
///   crashed node still takes its stripes with it (the motivating gap).
/// * `replicated:2` — reads fail over to surviving copies with zero
///   client-visible errors while the recovery coordinator re-replicates
///   the lost copies under the foreground load (the rebuild storm).
///
/// For the replicated rows the command enforces the robustness
/// invariants: no client-visible read errors, and the rebuild queue
/// drained to exactly zero.
fn redundancy_sweep(base: &ExperimentConfig, json: bool) -> ExitCode {
    let crash = FaultSpec {
        ion_crash: Some((0, SimDuration::ZERO, SimDuration::from_secs(7200))),
        ..FaultSpec::default()
    };
    let modes = [
        Redundancy::None,
        Redundancy::ParityRaid,
        Redundancy::Replicated { rf: 2 },
    ];
    let mut rows = Vec::new();
    for mode in modes {
        let mut healthy = base.clone();
        healthy.redundancy = mode;
        let mut crashed = healthy.clone();
        crashed.faults = crash.clone();
        rows.push((mode, run(&healthy), run(&crashed)));
    }

    let keep = |h: &RunResult, c: &RunResult| {
        if h.bandwidth_mb_s() > 0.0 {
            c.bandwidth_mb_s() / h.bandwidth_mb_s() * 100.0
        } else {
            0.0
        }
    };
    if json {
        let mut rec = ExperimentRecord::new("EXT-FAULTS", "paragonctl faults --redundancy all");
        rec.config("mode", base.mode)
            .config("compute_nodes", base.compute_nodes)
            .config("io_nodes", base.io_nodes)
            .config("request_kb", base.request_size / 1024)
            .config("file_mb", base.file_size >> 20)
            .config("seed", base.seed);
        for (mode, h, c) in &rows {
            rec.point(
                &[("redundancy", &mode.label())],
                &[
                    ("bw_healthy_mb_s", h.bandwidth_mb_s()),
                    ("bw_crashed_mb_s", c.bandwidth_mb_s()),
                    ("keep_pct", keep(h, c)),
                    ("read_errors", c.read_errors as f64),
                    ("reconstructed_reads", c.raid.reconstructed_reads as f64),
                    ("replica_failovers", c.replica_failovers as f64),
                    ("replica_reads", c.replica_reads as f64),
                    (
                        "rebuild_bytes",
                        c.rebuild.as_ref().map_or(0.0, |r| r.bytes_copied as f64),
                    ),
                    ("rebuild_pending", c.rebuild_pending as f64),
                ],
            );
        }
        println!("{}", rec.to_json());
    } else {
        println!(
            "== redundancy sweep: ion 0 down for the whole run, {} cn x {} ion, {:?}, {} KB requests",
            base.compute_nodes,
            base.io_nodes,
            base.mode,
            base.request_size / 1024
        );
        println!(
            "{:<13} {:>9} {:>9} {:>6} {:>5} {:>7} {:>7} {:>7} {:>6} {:>5}",
            "redundancy",
            "healthy",
            "crashed",
            "keep%",
            "errs",
            "reconst",
            "failov",
            "alt-rd",
            "rb-KB",
            "pend"
        );
        for (mode, h, c) in &rows {
            println!(
                "{:<13} {:>9.2} {:>9.2} {:>6.1} {:>5} {:>7} {:>7} {:>7} {:>6} {:>5}",
                mode.label(),
                h.bandwidth_mb_s(),
                c.bandwidth_mb_s(),
                keep(h, c),
                c.read_errors,
                c.raid.reconstructed_reads,
                c.replica_failovers,
                c.replica_reads,
                c.rebuild.as_ref().map_or(0, |r| r.bytes_copied >> 10),
                c.rebuild_pending,
            );
        }
    }

    let mut ok = true;
    for (mode, h, c) in &rows {
        if h.verify_failures + c.verify_failures > 0 {
            eprintln!("!! {mode}: verify failures");
            ok = false;
        }
        if matches!(mode, Redundancy::Replicated { .. }) {
            if c.read_errors > 0 {
                eprintln!(
                    "!! {mode}: {} client-visible read errors (replication must mask the crash)",
                    c.read_errors
                );
                ok = false;
            }
            if c.rebuild_pending > 0 {
                eprintln!(
                    "!! {mode}: rebuild queue did not drain ({} slots pending)",
                    c.rebuild_pending
                );
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `paragonctl faults`: sweep the fault classes over one base experiment
/// and report the robustness metrics side by side.
fn faults_cmd(argv: Vec<String>) -> ExitCode {
    let fail = |e: String| {
        eprintln!("error: {e}\n\n{USAGE}");
        ExitCode::FAILURE
    };
    let mut args = Args(argv);
    let json = args.flag("--json");
    let error_pm: u32 = match args.parsed("--error-pm", 20) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let drop_pm: u32 = match args.parsed("--drop-pm", 10) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    // `--redundancy all` is a faults-only axis value, so it is peeled
    // off before `build_config` (whose parser would reject it).
    let three_way = {
        let pos = args
            .0
            .windows(2)
            .position(|w| w[0] == "--redundancy" && w[1] == "all");
        if let Some(i) = pos {
            args.0.drain(i..i + 2);
            true
        } else {
            false
        }
    };
    let mut base = match build_config(&mut args) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    if !args.0.is_empty() {
        return fail(format!("unrecognized arguments {:?}", args.0));
    }
    base.verify_data = true;
    if base.prefetch.is_none() {
        base = base.with_prefetch();
    }
    if three_way {
        return redundancy_sweep(&base, json);
    }
    // The sweep compares like with like: every class (including the
    // fault-free baseline) runs with a parity member so dead-member reads
    // can reconstruct, with prefetching on so hit-rate degradation is
    // visible, and with data verification so silent corruption fails loud.
    base.calib.raid_parity = true;

    let mut results: Vec<(&'static str, RunResult)> = Vec::new();
    for (label, spec) in fault_classes(error_pm, drop_pm) {
        let mut cfg = base.clone();
        cfg.faults = spec;
        results.push((label, run(&cfg)));
    }

    if json {
        let mut rec = ExperimentRecord::new("FAULT", "paragonctl faults");
        rec.config("mode", base.mode)
            .config("compute_nodes", base.compute_nodes)
            .config("io_nodes", base.io_nodes)
            .config("request_kb", base.request_size / 1024)
            .config("file_mb", base.file_size >> 20)
            .config("error_pm", error_pm)
            .config("drop_pm", drop_pm)
            .config("seed", base.seed);
        for (label, r) in &results {
            rec.point(
                &[("class", label)],
                &[
                    ("bw_mb_s", r.bandwidth_mb_s()),
                    ("hit_ratio", r.prefetch.hit_ratio()),
                    ("read_errors", r.read_errors as f64),
                    ("reconstructed_reads", r.raid.reconstructed_reads as f64),
                    ("prefetch_faults", r.prefetch.faults as f64),
                    ("verify_failures", r.verify_failures as f64),
                ],
            );
        }
        println!("{}", rec.to_json());
    } else {
        println!(
            "== fault sweep: {} cn × {} ion, {:?}, {} KB requests, parity on",
            base.compute_nodes,
            base.io_nodes,
            base.mode,
            base.request_size / 1024
        );
        println!(
            "{:<15} {:>9} {:>6} {:>5} {:>7} {:>7}  injected",
            "class", "bw MB/s", "hit%", "errs", "reconst", "pf-flt"
        );
        for (label, r) in &results {
            println!(
                "{:<15} {:>9.2} {:>6.1} {:>5} {:>7} {:>7}  {}",
                label,
                r.bandwidth_mb_s(),
                r.prefetch.hit_ratio() * 100.0,
                r.read_errors,
                r.raid.reconstructed_reads,
                r.prefetch.faults,
                injected_summary(&r.fault)
            );
            if r.verify_failures > 0 {
                println!("  !! VERIFY FAILURES: {}", r.verify_failures);
            }
        }
    }
    if results.iter().any(|(_, r)| r.verify_failures > 0) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Entry point: parse `argv` (without the program name), run, report.
pub fn main_impl(argv: Vec<String>) -> ExitCode {
    match argv.first().map(String::as_str) {
        Some("run") => {}
        Some("trace") => return trace_cmd(argv[1..].to_vec()),
        Some("faults") => return faults_cmd(argv[1..].to_vec()),
        Some("metrics") => return metrics_cmd(argv[1..].to_vec()),
        Some("profile") => return profile_cmd(argv[1..].to_vec()),
        other => {
            eprint!("{USAGE}");
            return if other == Some("--help") {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    }
    let mut args = Args(argv[1..].to_vec());
    let json = args.flag("--json");
    let compare = args.flag("--compare");
    let cfg = match build_config(&mut args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if !args.0.is_empty() {
        eprintln!("error: unrecognized arguments {:?}\n\n{USAGE}", args.0);
        return ExitCode::FAILURE;
    }

    let mut results: Vec<(&str, RunResult)> = Vec::new();
    if compare {
        let mut off = cfg.clone();
        off.prefetch = None;
        let on = if cfg.prefetch.is_some() {
            cfg.clone()
        } else {
            cfg.clone().with_prefetch()
        };
        results.push(("no-prefetch", run(&off)));
        results.push(("prefetch", run(&on)));
    } else {
        results.push((
            if cfg.prefetch.is_some() {
                "prefetch"
            } else {
                "no-prefetch"
            },
            run(&cfg),
        ));
    }

    if json {
        report_json(&cfg, &results);
    } else {
        for (label, r) in &results {
            report_text(label, r);
            if !r.trace.is_empty() {
                println!("-- trace ({} events) --", r.trace.len());
                for e in &r.trace {
                    println!("{:>14}  {e}", format!("{}", e.time));
                }
            }
        }
        if compare {
            let gain = results[1].1.bandwidth_mb_s() / results[0].1.bandwidth_mb_s();
            println!("== prefetch gain: {gain:.2}x");
        }
    }
    if results.iter().any(|(_, r)| r.verify_failures > 0) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_pfs::IoMode;
    use paragon_workload::{AccessPattern, StripeLayout};

    fn args(s: &str) -> Args {
        Args(s.split_whitespace().map(String::from).collect())
    }

    #[test]
    fn defaults_are_the_paper_testbed() {
        let cfg = build_config(&mut args("")).unwrap();
        assert_eq!(cfg.compute_nodes, 8);
        assert_eq!(cfg.io_nodes, 8);
        assert_eq!(cfg.request_size, 64 * 1024);
        assert_eq!(cfg.mode, IoMode::MRecord);
        assert!(cfg.fast_path);
        assert!(cfg.prefetch.is_none());
        assert_eq!(cfg.layout, StripeLayout::Across { factor: 8 });
    }

    #[test]
    fn full_flag_set_parses() {
        let mut a = args(
            "--mode m_async --cn 4 --ion 2 --request-kb 128 --file-mb 16 \
             --su-kb 16 --sgroup 2 --delay-ms 25 --seed 7 --depth 3 \
             --pattern reread:2 --separate --buffered --verify",
        );
        let cfg = build_config(&mut a).unwrap();
        assert!(a.0.is_empty(), "unconsumed args: {:?}", a.0);
        assert_eq!(cfg.mode, IoMode::MAsync);
        assert_eq!(cfg.compute_nodes, 4);
        assert_eq!(cfg.stripe_unit, 16 * 1024);
        assert_eq!(cfg.delay.as_millis(), 25);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.prefetch.as_ref().unwrap().depth, 3);
        assert_eq!(cfg.access, AccessPattern::Reread { passes: 2 });
        assert!(cfg.separate_files);
        assert!(!cfg.fast_path);
        assert!(cfg.verify_data);
    }

    #[test]
    fn mode_aliases_and_numbers() {
        assert_eq!(parse_mode("M_UNIX").unwrap(), IoMode::MUnix);
        assert_eq!(parse_mode("record").unwrap(), IoMode::MRecord);
        assert_eq!(parse_mode("5").unwrap(), IoMode::MAsync);
        assert!(parse_mode("m_bogus").is_err());
    }

    #[test]
    fn pattern_grammar() {
        assert_eq!(parse_pattern("mode").unwrap(), AccessPattern::ModeDriven);
        assert_eq!(parse_pattern("random").unwrap(), AccessPattern::Random);
        assert_eq!(
            parse_pattern("strided:65536").unwrap(),
            AccessPattern::Strided { stride: 65536 }
        );
        assert_eq!(
            parse_pattern("reread:4").unwrap(),
            AccessPattern::Reread { passes: 4 }
        );
        assert!(parse_pattern("strided:").is_err());
        assert!(parse_pattern("zigzag").is_err());
    }

    #[test]
    fn ways_on_one_overrides_sgroup() {
        let cfg = build_config(&mut args("--ways-on-one 8")).unwrap();
        assert_eq!(cfg.layout, StripeLayout::WaysOnOne { ways: 8, ion: 0 });
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(build_config(&mut args("--request-kb")).is_err());
        assert!(build_config(&mut args("--cn x")).is_err());
    }

    #[test]
    fn strided_predictor_implies_prefetch() {
        let cfg = build_config(&mut args("--strided-predictor")).unwrap();
        let pc = cfg.prefetch.unwrap();
        assert_eq!(pc.predictor, paragon_core::PredictorKind::Strided);
    }

    #[test]
    fn summarize_reconstructs_spans_from_a_parsed_trace() {
        use paragon_sim::{ev, EventKind, SimTime, Track};
        let mk = |t_us: u64, body: paragon_sim::EventBody| TraceEvent {
            time: SimTime::from_nanos(t_us * 1000),
            track: body.track,
            kind: body.kind,
            req: body.req,
            a: body.a,
            b: body.b,
        };
        let events = vec![
            mk(0, ev(Track::Cn(0), EventKind::ReadStart, 1, 0, 4096)),
            mk(10, ev(Track::Node(0), EventKind::NetTx, 1, 64, 2)),
            mk(20, ev(Track::Node(2), EventKind::NetRx, 1, 64, 0)),
            mk(30, ev(Track::Disk(0), EventKind::DiskStart, 1, 0, 4096)),
            mk(70, ev(Track::Disk(0), EventKind::DiskDone, 1, 0, 4096)),
            mk(100, ev(Track::Cn(0), EventKind::ReadDone, 1, 0, 4096)),
        ];
        // Round-trip through the trace-file format first.
        let parsed = parse_json(&export_json(&events)).unwrap();
        assert_eq!(parsed, events);
        let text = summarize_events(&parsed, 10);
        assert!(text.contains("6 events"));
        assert!(text.contains("demand reads (1 spans)"));
        assert!(text.contains("end-to-end"));
        assert!(text.contains("disk0"));
        assert!(text.contains("top 1 slowest spans:"), "{text}");
        assert!(text.contains("req      1"), "{text}");
        // --top 0 drops the listing.
        assert!(!summarize_events(&parsed, 0).contains("slowest spans"));
    }

    #[test]
    fn fault_sweep_covers_every_class_and_exits_clean() {
        assert_eq!(fault_classes(20, 10).len(), 5);
        // Tiny shape so the five runs stay cheap; verification is forced
        // on inside the command, so SUCCESS means every class delivered
        // pattern-correct data.
        let argv: Vec<String> = "faults --cn 2 --ion 2 --request-kb 16 --file-mb 2 --su-kb 16"
            .split_whitespace()
            .map(String::from)
            .collect();
        assert_eq!(main_impl(argv), ExitCode::SUCCESS);
    }

    #[test]
    fn injected_summary_formats() {
        assert_eq!(injected_summary(&FaultStats::default()), "-");
        let f = FaultStats {
            mesh_dropped: 3,
            disk_transients: 1,
            ..FaultStats::default()
        };
        assert_eq!(injected_summary(&f), "disk-err 1, drop 3");
    }

    const TINY: &str = "--cn 2 --ion 2 --request-kb 16 --file-mb 2 --su-kb 16 --cadence-ms 20";

    fn metrics_argv(sub: &str, extra: &str) -> Vec<String> {
        format!("metrics {sub} {TINY} {extra}")
            .split_whitespace()
            .map(String::from)
            .collect()
    }

    #[test]
    fn metrics_run_is_deterministic_and_check_gates() {
        let dir = std::env::temp_dir();
        let p1 = dir.join("paragonctl-test-metrics-1.json");
        let p2 = dir.join("paragonctl-test-metrics-2.json");
        let s = |p: &std::path::Path| p.to_str().unwrap().to_string();

        // Two runs with the same seed must produce byte-identical reports.
        for p in [&p1, &p2] {
            let argv = metrics_argv("run", &format!("--out {}", s(p)));
            assert_eq!(main_impl(argv), ExitCode::SUCCESS);
        }
        let t1 = std::fs::read_to_string(&p1).unwrap();
        let t2 = std::fs::read_to_string(&p2).unwrap();
        assert_eq!(t1, t2, "same-seed metrics reports differ");

        // The report is well-formed JSON with the gate's scalars.
        let report = Json::parse(&t1).unwrap();
        let scalars = report.get("scalars").and_then(Json::as_obj).unwrap();
        assert!(scalars.contains_key("util.disk"));
        assert!(scalars.contains_key("littles_law.ratio"));

        // Gate: a re-run against its own output passes…
        let argv = metrics_argv("check", &format!("--baseline {}", s(&p1)));
        assert_eq!(main_impl(argv), ExitCode::SUCCESS);

        // …and a tampered baseline fails, even under a wide tolerance.
        let tampered = t1.replace("\"bandwidth_mb_s\"", "\"bandwidth_mb_s_renamed\"");
        assert_ne!(tampered, t1, "tamper had no effect");
        std::fs::write(&p2, &tampered).unwrap();
        let argv = metrics_argv(
            "check",
            &format!("--baseline {} --current {} --tolerance 0.5", s(&p2), s(&p1)),
        );
        assert_eq!(main_impl(argv), ExitCode::FAILURE);

        // `report FILE` renders without re-running.
        assert_eq!(
            main_impl(vec!["metrics".into(), "report".into(), s(&p1)]),
            ExitCode::SUCCESS
        );

        for p in [p1, p2] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn bench_scalar_plumbs_through_report_and_floor_gate() {
        let mut base = Json::parse(r#"{"scalars":{"a":1}}"#).unwrap();
        insert_scalar(&mut base, BENCH_SCALAR, 100.0);
        assert_eq!(
            base.get("scalars")
                .and_then(|s| s.get(BENCH_SCALAR))
                .and_then(Json::as_f64),
            Some(100.0)
        );

        let dir = std::env::temp_dir();
        let base_p = dir.join("paragonctl-test-bench-base.json");
        let cur_p = dir.join("paragonctl-test-bench-cur.json");
        let s = |p: &std::path::Path| p.to_str().unwrap().to_string();
        std::fs::write(&base_p, base.pretty()).unwrap();

        // A committed baseline carrying the bench scalar still passes a
        // current report produced *without* --bench (the plain CI gate).
        std::fs::write(&cur_p, r#"{"scalars":{"a":1}}"#).unwrap();
        let check = |extra: &str| {
            main_impl(
                format!(
                    "metrics check --baseline {} --current {}{extra}",
                    s(&base_p),
                    s(&cur_p)
                )
                .split_whitespace()
                .map(String::from)
                .collect(),
            )
        };
        assert_eq!(check(""), ExitCode::SUCCESS);

        // Above the floor (25% of baseline) passes; below it fails.
        let mut cur = Json::parse(r#"{"scalars":{"a":1}}"#).unwrap();
        insert_scalar(&mut cur, BENCH_SCALAR, 30.0);
        std::fs::write(&cur_p, cur.pretty()).unwrap();
        assert_eq!(check(""), ExitCode::SUCCESS);
        insert_scalar(&mut cur, BENCH_SCALAR, 10.0);
        std::fs::write(&cur_p, cur.pretty()).unwrap();
        assert_eq!(check(""), ExitCode::FAILURE);

        for p in [&base_p, &cur_p] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn metrics_rejects_bad_flags() {
        assert_eq!(
            main_impl(vec!["metrics".into()]),
            ExitCode::FAILURE,
            "missing subcommand"
        );
        assert_eq!(
            main_impl(metrics_argv("run", "--cadence-ms 0 --out -")),
            ExitCode::FAILURE,
            "zero cadence"
        );
        assert_eq!(
            main_impl(metrics_argv("check", "--tolerance nope")),
            ExitCode::FAILURE,
            "unparseable tolerance"
        );
        assert_eq!(
            main_impl(metrics_argv("run", "--bogus-flag 1 --out -")),
            ExitCode::FAILURE,
            "unrecognized argument"
        );
    }

    #[test]
    fn trace_diff_exit_codes() {
        use paragon_sim::{EventKind, SimTime, Track};
        let mk = |t_us: u64, req: u64| TraceEvent {
            time: SimTime::from_nanos(t_us * 1000),
            track: Track::Cn(0),
            kind: EventKind::Mark,
            req,
            a: 0,
            b: 0,
        };
        let dir = std::env::temp_dir();
        let pa = dir.join("paragonctl-test-a.json");
        let pb = dir.join("paragonctl-test-b.json");
        let pc = dir.join("paragonctl-test-c.json");
        std::fs::write(&pa, export_json(&[mk(1, 1), mk(2, 2)])).unwrap();
        std::fs::write(&pb, export_json(&[mk(1, 1), mk(2, 2)])).unwrap();
        std::fs::write(&pc, export_json(&[mk(1, 1), mk(2, 3)])).unwrap();
        let s = |p: &std::path::Path| p.to_str().unwrap().to_string();
        assert_eq!(
            main_impl(vec!["trace".into(), "diff".into(), s(&pa), s(&pb)]),
            ExitCode::SUCCESS
        );
        assert_eq!(
            main_impl(vec!["trace".into(), "diff".into(), s(&pa), s(&pc)]),
            ExitCode::FAILURE
        );
        for p in [pa, pb, pc] {
            let _ = std::fs::remove_file(p);
        }
    }
}
