//! Figure 5 — balanced workloads with **large** requests (512 KB and
//! 1024 KB per node), 128 MB file.
//!
//! Shape to reproduce: the read access time at these sizes (≈ 0.25 s and
//! ≈ 0.45 s, Table 2) dwarfs the 0–0.1 s compute delays, so no
//! significant overlap is possible and prefetching buys little — the
//! curves with and without prefetching stay close together across the
//! whole delay sweep.

fn main() {
    paragon_bench::balanced_figure(
        "FIG5",
        "Balanced workloads: read bandwidth vs compute delay, 512/1024 KB requests",
        &[512 * 1024, 1024 * 1024],
    );
}
