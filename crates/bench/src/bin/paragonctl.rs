//! `paragonctl` — run one experiment from the command line.
//!
//! See `paragon_bench::cli` for the implementation and `--help` for the
//! options; the binary is a thin shim so the parsing is unit-testable.

use std::process::ExitCode;

fn main() -> ExitCode {
    paragon_bench::cli::main_impl(std::env::args().skip(1).collect())
}
