//! Extension: system-level prefetching vs **application-level double
//! buffering** — the classic alternative the paper's approach competes
//! with.
//!
//! A sophisticated application can overlap I/O itself: issue the
//! asynchronous read for block k+1 (`aread`/`iowait`, the PFS calls the
//! prefetcher is built on) before computing on block k. That gets the
//! same overlap *without* the prefetch-buffer copy — but every
//! application must be rewritten to do it, must manage its own buffers,
//! and must know its own access pattern. The paper's pitch is that the
//! file system can deliver (almost) the same win transparently.
//!
//! Three variants of the balanced M_RECORD workload:
//!   1. blocking reads, stock PFS              (the naive application)
//!   2. blocking reads + system prefetching    (the paper's prototype)
//!   3. application-level double buffering      (the expert application)

use std::rc::Rc;

use paragon_bench::save_record;
use paragon_core::{PrefetchConfig, PrefetchingFile};
use paragon_machine::{Machine, MachineConfig};
use paragon_metrics::{ExperimentRecord, Table};
use paragon_pfs::{pattern_byte, IoMode, OpenOptions, ParallelFs, StripeAttrs};
use paragon_sim::{Sim, SimDuration};

const NODES: usize = 8;
const FILE: u64 = 32 << 20;
const REQUEST: u32 = 64 * 1024;

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Blocking,
    SystemPrefetch,
    DoubleBuffered,
}

fn run_variant(variant: Variant, delay_ms: u64) -> f64 {
    let sim = Sim::new(55);
    let machine = Rc::new(Machine::new(&sim, MachineConfig::paper_testbed()));
    let pfs = ParallelFs::new(machine);
    let sim2 = sim.clone();
    let run = sim.spawn(async move {
        let file = pfs
            .create("/pfs/db", StripeAttrs::across(8, 64 * 1024))
            .await
            .unwrap();
        pfs.populate_with(file, FILE, |i| pattern_byte(12, i))
            .await
            .unwrap();
        let t0 = sim2.now();
        let rounds = FILE / (REQUEST as u64 * NODES as u64);
        let mut tasks = Vec::new();
        for rank in 0..NODES {
            let f = pfs
                .open(rank, NODES, file, IoMode::MRecord, OpenOptions::default())
                .unwrap();
            let sim3 = sim2.clone();
            tasks.push(sim2.spawn(async move {
                match variant {
                    Variant::Blocking => {
                        for _ in 0..rounds {
                            f.read(REQUEST).await.unwrap();
                            sim3.sleep(SimDuration::from_millis(delay_ms)).await;
                        }
                    }
                    Variant::SystemPrefetch => {
                        let pf = PrefetchingFile::new(f, PrefetchConfig::paper_prototype());
                        for _ in 0..rounds {
                            pf.read(REQUEST).await.unwrap();
                            sim3.sleep(SimDuration::from_millis(delay_ms)).await;
                        }
                        pf.close().await;
                    }
                    Variant::DoubleBuffered => {
                        // The expert application: one read in flight ahead
                        // of the block being computed on, no extra copy.
                        let mut next = f.aread(REQUEST).await;
                        for k in 0..rounds {
                            let current = next.join().await.unwrap();
                            if k + 1 < rounds {
                                next = f.aread(REQUEST).await;
                            }
                            let _ = current; // compute on it:
                            sim3.sleep(SimDuration::from_millis(delay_ms)).await;
                        }
                    }
                }
            }));
        }
        for t in tasks {
            t.await;
        }
        sim2.now().since(t0)
    });
    sim.run();
    let elapsed = run.try_take().expect("finished");
    FILE as f64 / (1 << 20) as f64 / elapsed.as_secs_f64()
}

fn main() {
    let mut table = Table::new(
        "System prefetching vs application double buffering (M_RECORD, 64 KB requests)",
        &[
            "Delay (s)",
            "Blocking (MB/s)",
            "System prefetch (MB/s)",
            "App double-buffer (MB/s)",
        ],
    );
    let mut record = ExperimentRecord::new(
        "EXT-DOUBLEBUF",
        "System-level prefetching vs application-level double buffering",
    );
    record
        .config("request_kb", 64)
        .config("file_mb", FILE >> 20);

    for delay_ms in [0u64, 10, 25, 50, 100] {
        let blocking = run_variant(Variant::Blocking, delay_ms);
        let system = run_variant(Variant::SystemPrefetch, delay_ms);
        let app = run_variant(Variant::DoubleBuffered, delay_ms);
        eprintln!("  [d={delay_ms}ms] blocking {blocking:.2} system {system:.2} app {app:.2}");
        table.row(&[
            format!("{:.3}", delay_ms as f64 / 1000.0),
            format!("{blocking:.2}"),
            format!("{system:.2}"),
            format!("{app:.2}"),
        ]);
        record.point(
            &[("delay_ms", &delay_ms.to_string())],
            &[
                ("bw_blocking_mb_s", blocking),
                ("bw_system_prefetch_mb_s", system),
                ("bw_double_buffer_mb_s", app),
            ],
        );
    }

    println!("\n{}", table.render());
    println!(
        "Reading: application double buffering is the upper bound (same overlap,\n\
         no prefetch-buffer copy); the transparent system prefetcher tracks it\n\
         to within the copy overhead — the paper's case that the file system\n\
         can do this for every unmodified application."
    );
    save_record(&record);
}
