//! Extension (paper §5 future work): "study the performance for a
//! greater variety of workloads and access patterns", plus prefetching
//! under other I/O modes (M_ASYNC, M_GLOBAL).
//!
//! Runs partition-sequential (M_ASYNC), broadcast (M_GLOBAL), strided,
//! random, and re-read patterns with the prototype on and off. Expected:
//! the sequential/record/broadcast predictors hit nearly always; the
//! stride detector locks onto strided access; random access defeats
//! prediction entirely (hit ratio ≈ 0, bandwidth unharmed apart from the
//! wasted-prefetch overhead).

use paragon_bench::{run_logged, save_record};
use paragon_metrics::{ExperimentRecord, Table};
use paragon_pfs::IoMode;
use paragon_sim::SimDuration;
use paragon_workload::{AccessPattern, ExperimentConfig};

fn main() {
    let cases: [(&str, IoMode, AccessPattern); 5] = [
        (
            "sequential/M_ASYNC",
            IoMode::MAsync,
            AccessPattern::ModeDriven,
        ),
        (
            "broadcast/M_GLOBAL",
            IoMode::MGlobal,
            AccessPattern::ModeDriven,
        ),
        (
            "strided 256KB",
            IoMode::MAsync,
            AccessPattern::Strided { stride: 256 * 1024 },
        ),
        ("random", IoMode::MAsync, AccessPattern::Random),
        (
            "re-read x2",
            IoMode::MAsync,
            AccessPattern::Reread { passes: 2 },
        ),
    ];

    let mut table = Table::new(
        "Access-pattern study: prefetching across patterns (64 KB requests, 25 ms delay)",
        &[
            "Pattern",
            "No prefetch (MB/s)",
            "Prefetch (MB/s)",
            "Hit ratio",
            "Wasted prefetches",
        ],
    );
    let mut record = ExperimentRecord::new(
        "EXT-PATTERNS",
        "Prefetching under sequential, broadcast, strided, random, re-read patterns",
    );
    record.config("request_kb", 64).config("delay_ms", 25);

    for (name, mode, access) in cases {
        let mut cfg = ExperimentConfig::paper_balanced(64 * 1024, SimDuration::from_millis(25));
        cfg.mode = mode;
        cfg.access = access;
        cfg.file_size = 32 << 20;
        cfg.verify_data = true;
        let no_pf = run_logged(&format!("{name} no-pf"), &cfg);
        let mut pf_cfg = cfg.clone().with_prefetch();
        if matches!(access, AccessPattern::Strided { .. }) {
            // The extension predictor: lock onto the stride instead of
            // assuming a sequential stream.
            pf_cfg.prefetch.as_mut().unwrap().predictor = paragon_core::PredictorKind::Strided;
        }
        let pf = run_logged(&format!("{name} pf"), &pf_cfg);
        assert_eq!(no_pf.verify_failures, 0, "data corruption in {name}");
        assert_eq!(pf.verify_failures, 0, "data corruption in {name}");
        table.row(&[
            name.to_owned(),
            format!("{:.2}", no_pf.bandwidth_mb_s()),
            format!("{:.2}", pf.bandwidth_mb_s()),
            format!("{:.2}", pf.prefetch.hit_ratio()),
            format!("{}", pf.prefetch.wasted),
        ]);
        record.point(
            &[("pattern", name)],
            &[
                ("bw_no_prefetch_mb_s", no_pf.bandwidth_mb_s()),
                ("bw_prefetch_mb_s", pf.bandwidth_mb_s()),
                ("hit_ratio", pf.prefetch.hit_ratio()),
                ("wasted", pf.prefetch.wasted as f64),
                ("issued", pf.prefetch.issued as f64),
            ],
        );
    }

    println!("\n{}", table.render());
    println!(
        "Findings: sequential, broadcast, and re-read streams hit ~always and\n\
         gain; the stride detector locks on (high hit ratio) but strided access\n\
         is seek-bound, so hiding latency barely moves bandwidth; random access\n\
         defeats prediction entirely (hit ratio ~0) yet costs almost nothing\n\
         beyond the wasted prefetches — and stays byte-correct throughout."
    );
    save_record(&record);
}
