//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Fast Path on/off** — routing reads through the I/O-node buffer
//!    cache instead of disk→user directly adds a server-side copy per
//!    request (and helps only re-read workloads).
//! 2. **Copy-bandwidth sensitivity** — the prefetch-hit copy is the
//!    prototype's intrinsic overhead; slower compute-node memcpy eats
//!    the prefetching win.
//! 3. **ART concurrency limit** — with max_arts=1 the prefetch of node k
//!    queues behind other asynchronous work; more ARTs decouple them.

use paragon_bench::{run_logged, save_record};
use paragon_metrics::{ExperimentRecord, Table};
use paragon_sim::SimDuration;
use paragon_workload::{AccessPattern, ExperimentConfig};

fn main() {
    let mut record = ExperimentRecord::new(
        "EXT-ABLATION",
        "Fast Path, copy-bandwidth, and ART-limit ablations",
    );

    // --- 1. Fast Path on/off, sequential vs re-read. -------------------
    let mut t1 = Table::new(
        "Ablation 1: Fast Path vs buffered servers (64 KB requests, no delay)",
        &["Workload", "Fast Path (MB/s)", "Buffered (MB/s)"],
    );
    for (name, access, passes_note) in [
        ("sequential", AccessPattern::ModeDriven, false),
        ("re-read x3", AccessPattern::Reread { passes: 3 }, true),
    ] {
        let mut cfg = ExperimentConfig::paper_iobound(64 * 1024, 2);
        cfg.access = access;
        if passes_note {
            cfg.mode = paragon_pfs::IoMode::MAsync;
        }
        let fast = run_logged(&format!("{name} fastpath"), &cfg);
        let mut buffered = cfg.clone();
        buffered.fast_path = false;
        let buf = run_logged(&format!("{name} buffered"), &buffered);
        t1.row(&[
            name.to_owned(),
            format!("{:.2}", fast.bandwidth_mb_s()),
            format!("{:.2}", buf.bandwidth_mb_s()),
        ]);
        record.point(
            &[("ablation", "fast_path"), ("workload", name)],
            &[
                ("bw_fast_path_mb_s", fast.bandwidth_mb_s()),
                ("bw_buffered_mb_s", buf.bandwidth_mb_s()),
            ],
        );
    }
    println!("\n{}", t1.render());
    println!(
        "Expected: Fast Path wins on cold sequential reads (no extra copy);\n\
         the buffer cache only pays off when data is re-read.\n"
    );

    // --- 2. Copy-bandwidth sensitivity. ---------------------------------
    let mut t2 = Table::new(
        "Ablation 2: prefetch-hit copy bandwidth (balanced 64 KB, 25 ms delay)",
        &[
            "CN memcpy (MB/s)",
            "Prefetch BW (MB/s)",
            "Gain vs no-prefetch",
        ],
    );
    let base = {
        let mut cfg = ExperimentConfig::paper_balanced(64 * 1024, SimDuration::from_millis(25));
        cfg.file_size = 32 << 20;
        cfg
    };
    let no_pf = run_logged("copy-bw baseline no-pf", &base);
    for copy_mb in [5.0f64, 15.0, 45.0, 200.0] {
        let mut cfg = base.clone().with_prefetch();
        cfg.prefetch.as_mut().unwrap().copy_bw = copy_mb * 1e6;
        let r = run_logged(&format!("copy {copy_mb} MB/s"), &cfg);
        let gain = r.bandwidth_mb_s() / no_pf.bandwidth_mb_s();
        t2.row(&[
            format!("{copy_mb:.0}"),
            format!("{:.2}", r.bandwidth_mb_s()),
            format!("{gain:.2}x"),
        ]);
        record.point(
            &[
                ("ablation", "copy_bw"),
                ("copy_mb_s", &format!("{copy_mb}")),
            ],
            &[("bw_prefetch_mb_s", r.bandwidth_mb_s()), ("gain", gain)],
        );
    }
    println!("\n{}", t2.render());
    println!(
        "Expected: the prototype's win shrinks as the compute-node copy gets\n\
         slower — the buffered hit must beat (read time − delay) + copy.\n"
    );

    // --- 3. ART concurrency limit. ---------------------------------------
    let mut t3 = Table::new(
        "Ablation 3: max concurrent ARTs (balanced 64 KB, 25 ms delay, depth 4)",
        &["max_arts", "Prefetch BW (MB/s)", "Hit ratio"],
    );
    for max_arts in [1usize, 2, 8] {
        let mut cfg = base.clone().with_prefetch();
        cfg.calib.max_arts = max_arts;
        cfg.prefetch.as_mut().unwrap().depth = 4;
        cfg.prefetch.as_mut().unwrap().max_buffers = 16;
        let r = run_logged(&format!("max_arts {max_arts}"), &cfg);
        t3.row(&[
            format!("{max_arts}"),
            format!("{:.2}", r.bandwidth_mb_s()),
            format!("{:.2}", r.prefetch.hit_ratio()),
        ]);
        record.point(
            &[
                ("ablation", "max_arts"),
                ("max_arts", &max_arts.to_string()),
            ],
            &[
                ("bw_prefetch_mb_s", r.bandwidth_mb_s()),
                ("hit_ratio", r.prefetch.hit_ratio()),
            ],
        );
    }
    println!("\n{}", t3.render());
    println!(
        "Expected: a single ART serializes a depth-4 pipeline; a handful of\n\
         ARTs restores full overlap."
    );
    save_record(&record);
}
