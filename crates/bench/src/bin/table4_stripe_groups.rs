//! Table 4 — PFS read performance **with prefetching** for different
//! stripe groups: striping across all 8 I/O nodes (R) versus striping
//! 8 ways across a single I/O node (R'), 8 compute nodes, no delays.
//!
//! Shape to reproduce: the 8-node group wins everywhere (one RAID array
//! must carry all the traffic in the 1-node configuration); the speedup
//! R/R' grows with request size and is smallest at 64 KB, where the
//! prefetching overhead is most pronounced.

use paragon_bench::{kb, run_logged, save_record, stamp_config, REQUEST_SIZES};
use paragon_metrics::{ExperimentRecord, Table};
use paragon_workload::{ExperimentConfig, StripeLayout};

fn main() {
    let mut table = Table::new(
        "Table 4: PFS Read Performance with Prefetching for different Stripe groups (8 CN)",
        &[
            "Request size (KB)",
            "File size (MB/node)",
            "BW sgroup=8 R (MB/s)",
            "BW sgroup=1 R' (MB/s)",
            "Speedup R/R'",
        ],
    );
    let mut record = ExperimentRecord::new(
        "TAB4",
        "Read bandwidth with prefetching: stripe group of 8 I/O nodes vs 8 ways on 1",
    );
    let mut max_speedup: f64 = 0.0;

    for sz in REQUEST_SIZES {
        // R: across all 8 I/O nodes (the testbed default).
        let wide = ExperimentConfig::paper_iobound(sz, 8).with_prefetch();
        if record.config.is_empty() {
            stamp_config(&mut record, &wide);
        }
        let r_wide = run_logged(&format!("{}KB sgroup=8", kb(sz)), &wide);
        // R': 8 stripe files all on I/O node 0.
        let mut narrow = ExperimentConfig::paper_iobound(sz, 8).with_prefetch();
        narrow.layout = StripeLayout::WaysOnOne { ways: 8, ion: 0 };
        let r_narrow = run_logged(&format!("{}KB sgroup=1", kb(sz)), &narrow);

        let speedup = r_wide.bandwidth_mb_s() / r_narrow.bandwidth_mb_s();
        max_speedup = max_speedup.max(speedup);
        table.row(&[
            format!("{}", kb(sz)),
            "8".to_owned(),
            format!("{:.2}", r_wide.bandwidth_mb_s()),
            format!("{:.2}", r_narrow.bandwidth_mb_s()),
            format!("{:.2}", speedup),
        ]);
        record.point(
            &[("request_kb", &kb(sz).to_string())],
            &[
                ("bw_sgroup8_mb_s", r_wide.bandwidth_mb_s()),
                ("bw_sgroup1_mb_s", r_narrow.bandwidth_mb_s()),
                ("speedup", speedup),
            ],
        );
    }

    println!("\n{}", table.render());
    println!(
        "Maximum speedup observed: {max_speedup:.2}x.\n\
         Paper's finding: striping across 8 I/O nodes beats 8-way striping on one\n\
         node; the speedup is smallest at 64 KB where prefetching overhead is most\n\
         pronounced (the paper's lost digit reports only 'a factor of _._')."
    );
    save_record(&record);
}
