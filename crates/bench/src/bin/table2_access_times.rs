//! Table 2 — minimum/typical read access times for the paper's request
//! sizes under collective 8-node load (no prefetching).
//!
//! These times set how much compute delay can overlap with I/O: the paper
//! reads ≈ 0.45 s for a 1024 KB per-node request, which is why a 0.1 s
//! delay buys no visible overlap at that size (Figure 5) while it fully
//! covers a 64 KB read (Figure 4).

use paragon_bench::{kb, run_logged, save_record, stamp_config, REQUEST_SIZES};
use paragon_metrics::{ExperimentRecord, Table};
use paragon_workload::ExperimentConfig;

fn main() {
    let mut table = Table::new(
        "Table 2: Read Access Times for Various Request Sizes (8 CN x 8 ION, M_RECORD)",
        &[
            "Request size (KB)",
            "Mean access time (s)",
            "Min (s)",
            "p50 (s)",
            "p99 (s)",
            "Max (s)",
        ],
    );
    let mut record = ExperimentRecord::new(
        "TAB2",
        "Per-request read access times vs request size, collective 8-node load",
    );

    for sz in REQUEST_SIZES {
        let cfg = ExperimentConfig::paper_iobound(sz, 8);
        if record.config.is_empty() {
            stamp_config(&mut record, &cfg);
        }
        let r = run_logged(&format!("{}KB", kb(sz)), &cfg);
        let tmin = r
            .per_node
            .iter()
            .map(|n| n.read_time_min)
            .min()
            .unwrap_or_default();
        let tmax = r
            .per_node
            .iter()
            .map(|n| n.read_time_max)
            .max()
            .unwrap_or_default();
        let mut hist = r.access_time_histogram();
        let (p50, _p90, p99) = hist.percentiles().expect("requests ran");
        table.row(&[
            format!("{}", kb(sz)),
            format!("{:.3}", r.read_time_mean().as_secs_f64()),
            format!("{:.3}", tmin.as_secs_f64()),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            format!("{:.3}", tmax.as_secs_f64()),
        ]);
        record.point(
            &[("request_kb", &kb(sz).to_string())],
            &[
                ("mean_access_s", r.read_time_mean().as_secs_f64()),
                ("min_access_s", tmin.as_secs_f64()),
                ("p50_access_s", p50),
                ("p99_access_s", p99),
                ("max_access_s", tmax.as_secs_f64()),
            ],
        );
    }

    println!("\n{}", table.render());
    println!(
        "Paper's anchor: a 1024 KB per-node request costs about 0.45 s under\n\
         8-node collective load; access time grows with request size."
    );
    save_record(&record);
}
