//! Extension (paper §5 future work): "evaluate the performance of
//! prefetching on much larger systems".
//!
//! Sweeps the machine shape from 2+1 to 32+16 nodes under the balanced
//! M_RECORD workload and reports aggregate bandwidth and per-node
//! fairness with and without prefetching. Expected shape: aggregate
//! bandwidth scales with the I/O-node count (the disks are the
//! bottleneck), prefetching keeps its relative win at every size, and
//! the benefit stays evenly distributed across nodes (low imbalance).

use paragon_bench::{run_logged, save_record};
use paragon_metrics::{ExperimentRecord, Table};
use paragon_sim::SimDuration;
use paragon_workload::{ExperimentConfig, StripeLayout};

const SHAPES: [(usize, usize); 5] = [(2, 1), (4, 2), (8, 8), (16, 8), (32, 16)];

fn main() {
    let mut table = Table::new(
        "Scaling study: balanced M_RECORD workload (64 KB requests, 25 ms delay)",
        &[
            "CN x ION",
            "No prefetch (MB/s)",
            "Prefetch (MB/s)",
            "Gain",
            "Node imbalance",
        ],
    );
    let mut record = ExperimentRecord::new(
        "EXT-SCALING",
        "Prefetching gain and fairness while scaling compute and I/O nodes",
    );
    record.config("request_kb", 64).config("delay_ms", 25);

    for (cn, ion) in SHAPES {
        let mut cfg = ExperimentConfig::paper_balanced(64 * 1024, SimDuration::from_millis(25));
        cfg.compute_nodes = cn;
        cfg.io_nodes = ion;
        cfg.layout = StripeLayout::Across { factor: ion };
        // Keep 4 MB per compute node so runs stay comparable.
        cfg.file_size = (cn as u64) * (4 << 20);
        let no_pf = run_logged(&format!("{cn}x{ion} no-pf"), &cfg);
        let pf = run_logged(&format!("{cn}x{ion} pf"), &cfg.clone().with_prefetch());
        let gain = pf.bandwidth_mb_s() / no_pf.bandwidth_mb_s();
        table.row(&[
            format!("{cn} x {ion}"),
            format!("{:.2}", no_pf.bandwidth_mb_s()),
            format!("{:.2}", pf.bandwidth_mb_s()),
            format!("{:.2}x", gain),
            format!("{:.3}", pf.node_imbalance()),
        ]);
        record.point(
            &[
                ("compute_nodes", &cn.to_string()),
                ("io_nodes", &ion.to_string()),
            ],
            &[
                ("bw_no_prefetch_mb_s", no_pf.bandwidth_mb_s()),
                ("bw_prefetch_mb_s", pf.bandwidth_mb_s()),
                ("gain", gain),
                ("node_imbalance", pf.node_imbalance()),
            ],
        );
    }

    println!("\n{}", table.render());
    println!(
        "Expected: bandwidth scales with I/O nodes; the prefetching gain persists\n\
         at every machine size; imbalance stays small (benefits equally\n\
         distributed amongst the processors, as the paper requires)."
    );
    save_record(&record);
}
