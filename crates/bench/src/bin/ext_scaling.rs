//! Extension (paper §5 future work): "evaluate the performance of
//! prefetching on much larger systems".
//!
//! Sweeps the machine shape from 2+1 up to 512+64 nodes under the
//! balanced M_RECORD workload and reports aggregate bandwidth, per-node
//! fairness, the prefetch hit ratio, and the time-mean/peak server
//! request-queue depth with prefetching on. Expected shape: aggregate
//! bandwidth scales with the I/O-node count (the disks are the
//! bottleneck), prefetching keeps its relative win at every size with a
//! stable hit ratio, the benefit stays evenly distributed across nodes
//! (low imbalance), and the server queues deepen as the compute-to-I/O
//! ratio climbs past the paper's 2:1 toward 8:1 at 512+64 — the
//! queue-depth degradation the paper's future-work question is about.

use paragon_bench::{run_logged, save_record};
use paragon_metrics::{ExperimentRecord, Table};
use paragon_sim::SimDuration;
use paragon_workload::{ExperimentConfig, StripeLayout};

const SHAPES: [(usize, usize); 10] = [
    (2, 1),
    (4, 2),
    (8, 8),
    (16, 8),
    (32, 16),
    (64, 16),
    (128, 32),
    (512, 64),
    (1024, 128),
    (4096, 256),
];

/// Per-compute-node file bytes: 4 MB keeps the small shapes comparable
/// to the paper's runs; from 64 CNs up it drops to 1 MB so the larger
/// points stay inside a laptop's memory and a CI wall-clock budget, and
/// the 4096-CN full machine drops to 256 KB (4 requests per node) for
/// the same reason — the sharded worlds each replicate the whole file
/// system, so file bytes cost shard-count × their size in host memory.
fn per_cn_bytes(cn: usize) -> u64 {
    if cn >= 4096 {
        256 << 10
    } else if cn >= 64 {
        1 << 20
    } else {
        4 << 20
    }
}

fn main() {
    let mut table = Table::new(
        "Scaling study: balanced M_RECORD workload (64 KB requests, 25 ms delay)",
        &[
            "CN x ION",
            "No prefetch (MB/s)",
            "Prefetch (MB/s)",
            "Gain",
            "Node imbalance",
            "PF hit ratio",
            "Server queue mean/max",
        ],
    );
    let mut record = ExperimentRecord::new(
        "EXT-SCALING",
        "Prefetching gain, fairness, hit ratio, and server queue depth while \
         scaling compute and I/O nodes",
    );
    record.config("request_kb", 64).config("delay_ms", 25);

    for (cn, ion) in SHAPES {
        let mut cfg = ExperimentConfig::paper_balanced(64 * 1024, SimDuration::from_millis(25));
        cfg.compute_nodes = cn;
        cfg.io_nodes = ion;
        cfg.layout = StripeLayout::Across { factor: ion };
        cfg.file_size = (cn as u64) * per_cn_bytes(cn);
        // From 1024 CNs up the config auto-shards onto the parallel
        // kernel; drive the worlds with one worker per host core. The
        // recorded values cannot depend on this (workers only map worlds
        // to threads), it just shortens the sweep on multicore hosts.
        cfg.workers = 0;
        let no_pf = run_logged(&format!("{cn}x{ion} no-pf"), &cfg);
        // Arm the telemetry sampler on the prefetch run so the record
        // captures how deep the server request queues sit at each shape.
        let mut pf_cfg = cfg.clone().with_prefetch();
        pf_cfg.metrics_cadence = Some(SimDuration::from_millis(100));
        let pf = run_logged(&format!("{cn}x{ion} pf"), &pf_cfg);
        let gain = pf.bandwidth_mb_s() / no_pf.bandwidth_mb_s();
        let (q_mean, q_max) = pf
            .metrics
            .as_ref()
            .map(|snap| {
                (
                    snap.series_time_mean("server.queue").unwrap_or(0.0),
                    snap.series_max("server.queue").unwrap_or(0.0),
                )
            })
            .unwrap_or((0.0, 0.0));
        table.row(&[
            format!("{cn} x {ion}"),
            format!("{:.2}", no_pf.bandwidth_mb_s()),
            format!("{:.2}", pf.bandwidth_mb_s()),
            format!("{:.2}x", gain),
            format!("{:.3}", pf.node_imbalance()),
            format!("{:.3}", pf.prefetch.hit_ratio()),
            format!("{q_mean:.2} / {q_max:.0}"),
        ]);
        record.point(
            &[
                ("compute_nodes", &cn.to_string()),
                ("io_nodes", &ion.to_string()),
                ("per_cn_mb", &(per_cn_bytes(cn) >> 20).to_string()),
            ],
            &[
                ("bw_no_prefetch_mb_s", no_pf.bandwidth_mb_s()),
                ("bw_prefetch_mb_s", pf.bandwidth_mb_s()),
                ("gain", gain),
                ("node_imbalance", pf.node_imbalance()),
                ("prefetch_hit_ratio", pf.prefetch.hit_ratio()),
                ("server_queue_mean", q_mean),
                ("server_queue_max", q_max),
            ],
        );
    }

    println!("\n{}", table.render());
    println!(
        "Expected: bandwidth scales with I/O nodes; the prefetching gain persists\n\
         at every machine size with a stable hit ratio; imbalance stays small\n\
         (benefits equally distributed amongst the processors, as the paper\n\
         requires); and the mean server queue depth degrades as the\n\
         compute-to-I/O ratio grows from 2:1 to 8:1 at 512 x 64."
    );
    save_record(&record);
}
