//! Extension: write-behind — the write-side dual of the prototype.
//!
//! 8 nodes write a shared M_RECORD file (each node its interleaved
//! records) with a compute phase between writes, synchronously vs with
//! the write-behind engine. The mirror image of Figures 4/5 is expected:
//! no gain when I/O-bound, a transfer time hidden per compute phase when
//! balanced, and convergence once the transfer time dwarfs the delay.

use std::rc::Rc;

use paragon_bench::save_record;
use paragon_core::{WriteBehindConfig, WriteBehindFile};
use paragon_machine::{Machine, MachineConfig};
use paragon_metrics::{ExperimentRecord, Table};
use paragon_pfs::{pattern_slice, IoMode, OpenOptions, ParallelFs, StripeAttrs};
use paragon_sim::{Sim, SimDuration};

const NODES: usize = 8;
const FILE: u64 = 32 << 20;

fn run_case(request: u32, delay_ms: u64, write_behind: bool) -> (f64, u64) {
    let sim = Sim::new(64);
    let machine = Rc::new(Machine::new(&sim, MachineConfig::paper_testbed()));
    let pfs = ParallelFs::new(machine);
    let sim2 = sim.clone();
    let run = sim.spawn(async move {
        let file = pfs
            .create("/pfs/writes", StripeAttrs::across(8, 64 * 1024))
            .await
            .unwrap();
        let t0 = sim2.now();
        let rounds = FILE / (request as u64 * NODES as u64);
        let mut tasks = Vec::new();
        for rank in 0..NODES {
            let f = pfs
                .open(rank, NODES, file, IoMode::MRecord, OpenOptions::default())
                .unwrap();
            let sim3 = sim2.clone();
            tasks.push(sim2.spawn(async move {
                let mut stalls = 0;
                if write_behind {
                    let wb = WriteBehindFile::new(f, WriteBehindConfig::prototype());
                    for k in 0..rounds {
                        let at = (k * NODES as u64 + rank as u64) * request as u64;
                        wb.write(pattern_slice(8, at, request as usize))
                            .await
                            .unwrap();
                        sim3.sleep(SimDuration::from_millis(delay_ms)).await;
                    }
                    wb.flush().await.unwrap();
                    stalls = wb.stats().stalls;
                } else {
                    for _ in 0..rounds {
                        let at = f.advance_pointer(request).await;
                        f.write_at(at, pattern_slice(8, at, request as usize))
                            .await
                            .unwrap();
                        sim3.sleep(SimDuration::from_millis(delay_ms)).await;
                    }
                }
                stalls
            }));
        }
        let mut stalls = 0;
        for t in tasks {
            stalls += t.await;
        }
        (sim2.now().since(t0), stalls)
    });
    sim.run();
    let (elapsed, stalls) = run.try_take().expect("finished");
    (
        FILE as f64 / (1 << 20) as f64 / elapsed.as_secs_f64(),
        stalls,
    )
}

fn main() {
    let mut record = ExperimentRecord::new(
        "EXT-WRITES",
        "Write-behind vs synchronous writes, balanced M_RECORD write workload",
    );
    record
        .config("compute_nodes", NODES)
        .config("file_mb", FILE >> 20);

    for request in [64 * 1024u32, 512 * 1024] {
        let mut table = Table::new(
            &format!(
                "Write-behind study: {} KB writes, 32 MB file, 8 CN x 8 ION",
                request / 1024
            ),
            &[
                "Delay (s)",
                "Synchronous (MB/s)",
                "Write-behind (MB/s)",
                "Gain",
                "Stalls",
            ],
        );
        for delay_ms in [0u64, 10, 25, 50, 100] {
            let (sync_bw, _) = run_case(request, delay_ms, false);
            let (wb_bw, stalls) = run_case(request, delay_ms, true);
            eprintln!(
                "  [{}KB d={}ms] sync {:.2} wb {:.2}",
                request / 1024,
                delay_ms,
                sync_bw,
                wb_bw
            );
            table.row(&[
                format!("{:.3}", delay_ms as f64 / 1000.0),
                format!("{sync_bw:.2}"),
                format!("{wb_bw:.2}"),
                format!("{:.2}x", wb_bw / sync_bw),
                format!("{stalls}"),
            ]);
            record.point(
                &[
                    ("request_kb", &(request / 1024).to_string()),
                    ("delay_ms", &delay_ms.to_string()),
                ],
                &[
                    ("bw_sync_mb_s", sync_bw),
                    ("bw_write_behind_mb_s", wb_bw),
                    ("gain", wb_bw / sync_bw),
                ],
            );
        }
        println!("\n{}", table.render());
    }
    println!(
        "Expected (mirror of Figures 4/5): balanced writers hide one transfer\n\
         per compute phase; I/O-bound writers gain little beyond the window's\n\
         initial pipelining; stalls appear once the disks can no longer keep\n\
         up with the capture rate."
    );
    save_record(&record);
}
