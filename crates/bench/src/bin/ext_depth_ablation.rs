//! Extension: prefetch-depth ablation.
//!
//! The paper's prototype "prefetches only one block of data it
//! anticipates will be needed" (depth 1). This study sweeps the depth
//! 1–8 on a balanced workload where the compute delay exceeds the read
//! time. Finding: **depth 1 already captures the entire win** — once the
//! delay covers the read time the depth-1 prefetch arrives ready, and a
//! deeper pipeline cannot push aggregate bandwidth past the disk
//! ceiling anyway. This is quantitative support for the prototype's
//! fixed depth-1 design: the extra pinned compute-node memory of a
//! deeper pipeline buys nothing here.

use paragon_bench::{run_logged, save_record};
use paragon_core::PrefetchConfig;
use paragon_metrics::{ExperimentRecord, Table};
use paragon_sim::SimDuration;
use paragon_workload::ExperimentConfig;

fn main() {
    let mut table = Table::new(
        "Depth ablation: balanced M_RECORD, 64 KB requests, 150 ms delay",
        &[
            "Depth",
            "Bandwidth (MB/s)",
            "Hit ratio",
            "Ready hits",
            "In-flight hits",
            "Wasted",
        ],
    );
    let mut record = ExperimentRecord::new(
        "EXT-DEPTH",
        "Prefetch depth 1-8 on a balanced workload with delay >> read time",
    );
    record.config("request_kb", 64).config("delay_ms", 150);

    // Baseline without prefetching for reference.
    let base = {
        let mut cfg = ExperimentConfig::paper_balanced(64 * 1024, SimDuration::from_millis(150));
        cfg.file_size = 32 << 20;
        cfg
    };
    let no_pf = run_logged("depth 0 (off)", &base);
    table.row(&[
        "0 (off)".to_owned(),
        format!("{:.2}", no_pf.bandwidth_mb_s()),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
    ]);
    record.point(&[("depth", "0")], &[("bw_mb_s", no_pf.bandwidth_mb_s())]);

    for depth in [1u32, 2, 4, 8] {
        let mut cfg = base.clone();
        let mut pc = PrefetchConfig::with_depth(depth);
        pc.copy_bw = cfg.calib.cn_copy_bw;
        cfg.prefetch = Some(pc);
        let r = run_logged(&format!("depth {depth}"), &cfg);
        table.row(&[
            format!("{depth}"),
            format!("{:.2}", r.bandwidth_mb_s()),
            format!("{:.2}", r.prefetch.hit_ratio()),
            format!("{}", r.prefetch.hits_ready),
            format!("{}", r.prefetch.hits_inflight),
            format!("{}", r.prefetch.wasted),
        ]);
        record.point(
            &[("depth", &depth.to_string())],
            &[
                ("bw_mb_s", r.bandwidth_mb_s()),
                ("hit_ratio", r.prefetch.hit_ratio()),
                ("hits_ready", r.prefetch.hits_ready as f64),
                ("wasted", r.prefetch.wasted as f64),
            ],
        );
    }

    println!("\n{}", table.render());
    println!(
        "Finding: depth 1 (the paper's prototype) captures the whole win here —\n\
         with delay > T the single prefetch is already ready at every demand\n\
         read, and deeper pipelines cannot exceed the disk ceiling. The paper's\n\
         fixed depth-1 choice costs nothing on these workloads."
    );
    save_record(&record);
}
