//! Table 3 — PFS read performance **with prefetching** for different
//! stripe unit sizes (no inter-read delay).
//!
//! The stripe unit with the stripe factor determines how a request
//! declusters over the I/O nodes (Figure 3): small units spread even a
//! 64 KB request over several I/O nodes (more parallelism per request,
//! but more per-piece overheads and more seek interleaving); a huge unit
//! funnels consecutive requests of *all* nodes to one I/O node at a time
//! (convoying). Results should otherwise be consistent with the
//! no-prefetching case — I/O-bound prefetching neither helps nor hurts
//! much, with the overhead most visible at small request sizes.

use paragon_bench::{kb, run_logged, save_record, stamp_config, REQUEST_SIZES};
use paragon_metrics::{ExperimentRecord, Table};
use paragon_workload::ExperimentConfig;

const STRIPE_UNITS: [u64; 3] = [64 * 1024, 16 * 1024, 1024 * 1024];

fn main() {
    let mut table = Table::new(
        "Table 3: PFS Read Performance with prefetching for different Stripe unit sizes",
        &[
            "Request size (KB)",
            "File size (MB/node)",
            "BW su=64KB (MB/s)",
            "BW su=16KB (MB/s)",
            "BW su=1024KB (MB/s)",
        ],
    );
    let mut record = ExperimentRecord::new(
        "TAB3",
        "Read bandwidth with prefetching across stripe-unit sizes, I/O-bound",
    );

    for sz in REQUEST_SIZES {
        let mut row = vec![format!("{}", kb(sz)), "8".to_owned()];
        let mut values = Vec::new();
        for su in STRIPE_UNITS {
            let mut cfg = ExperimentConfig::paper_iobound(sz, 8).with_prefetch();
            cfg.stripe_unit = su;
            if record.config.is_empty() {
                stamp_config(&mut record, &cfg);
            }
            let r = run_logged(&format!("{}KB su={}KB", kb(sz), su / 1024), &cfg);
            row.push(format!("{:.2}", r.bandwidth_mb_s()));
            values.push((format!("bw_su{}k", su / 1024), r.bandwidth_mb_s()));
        }
        table.row(&row);
        let refs: Vec<(&str, f64)> = values.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        record.point(&[("request_kb", &kb(sz).to_string())], &refs);
    }

    println!("\n{}", table.render());
    println!(
        "Paper's finding: with no delay between requests the results track the\n\
         no-prefetching case; small stripe units hurt small requests (per-piece\n\
         overhead), and a 1 MB unit serializes the nodes behind one I/O node at\n\
         a time for small requests."
    );
    save_record(&record);
}
