//! Figure 2 — read performance of the PFS I/O modes (no prefetching).
//!
//! 8 compute nodes read one shared file over 8 I/O nodes (64 KB blocks),
//! for each mode and request size; the "Separate Files" series has each
//! node reading a private file. Shape to reproduce: throughput rises with
//! request size, and the modes order
//! `M_UNIX < M_SYNC ≈ M_LOG < M_RECORD < M_ASYNC ≤ Separate Files`
//! (serializing token < barrier/fetch-add coordination < node-local
//! pointers < no coordination < no sharing at all).

use paragon_bench::{kb, run_logged, save_record, stamp_config, REQUEST_SIZES};
use paragon_metrics::{AsciiChart, ExperimentRecord, Series, Table};
use paragon_pfs::IoMode;
use paragon_workload::ExperimentConfig;

fn main() {
    let modes = [
        IoMode::MUnix,
        IoMode::MLog,
        IoMode::MSync,
        IoMode::MRecord,
        IoMode::MAsync,
    ];
    let mut table = Table::new(
        "Figure 2 (data): File System Read Performance, 8 Compute Nodes, 8 I/O Nodes (MB/s)",
        &[
            "Request size (KB)",
            "M_UNIX",
            "M_LOG",
            "M_SYNC",
            "M_RECORD",
            "M_ASYNC",
            "Separate Files",
        ],
    );
    let mut record = ExperimentRecord::new(
        "FIG2",
        "Read throughput of the PFS I/O modes vs request size, 64 KB blocks",
    );
    let mut series: Vec<Series> = modes
        .iter()
        .map(|m| Series::new(&m.to_string(), Vec::new()))
        .collect();
    series.push(Series::new("Separate Files", Vec::new()));

    for sz in REQUEST_SIZES {
        let mut row = vec![format!("{}", kb(sz))];
        let mut values: Vec<(String, f64)> = Vec::new();
        for (i, &mode) in modes.iter().enumerate() {
            let mut cfg = ExperimentConfig::paper_iobound(sz, 4);
            cfg.mode = mode;
            if record.config.is_empty() {
                stamp_config(&mut record, &cfg);
            }
            let r = run_logged(&format!("{} {}KB", mode, kb(sz)), &cfg);
            row.push(format!("{:.2}", r.bandwidth_mb_s()));
            series[i].points.push((kb(sz) as f64, r.bandwidth_mb_s()));
            values.push((format!("bw_{mode}"), r.bandwidth_mb_s()));
        }
        // Separate Files: one private 4 MB file per node, same total data.
        let mut cfg = ExperimentConfig::paper_iobound(sz, 4);
        cfg.mode = IoMode::MAsync;
        cfg.separate_files = true;
        cfg.file_size = 4 << 20;
        let r = run_logged(&format!("separate {}KB", kb(sz)), &cfg);
        row.push(format!("{:.2}", r.bandwidth_mb_s()));
        series[5].points.push((kb(sz) as f64, r.bandwidth_mb_s()));
        values.push(("bw_separate_files".to_owned(), r.bandwidth_mb_s()));

        table.row(&row);
        let value_refs: Vec<(&str, f64)> = values.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        record.point(&[("request_kb", &kb(sz).to_string())], &value_refs);
    }

    println!("\n{}", table.render());
    let mut chart = AsciiChart::new(
        "Figure 2: Read Performance of the PFS I/O Modes",
        "request size (KB)",
        "throughput (MB/s)",
    );
    for s in series {
        chart = chart.series(s);
    }
    println!("{}", chart.render());
    println!(
        "Paper's ordering to check: M_UNIX lowest (pointer token serializes),\n\
         M_LOG/M_SYNC next (coordination per call), then M_RECORD, M_ASYNC,\n\
         and Separate Files on top; all rising with request size."
    );
    save_record(&record);
}
