//! Table 1 — PFS read performance with and without prefetching for
//! **I/O-bound** workloads (no computation between reads).
//!
//! Paper finding to reproduce: prefetching gives *no significant benefit*
//! when there is nothing to overlap with — the one-request-ahead prefetch
//! has no head start — and at small request sizes it is slightly *slower*
//! because of the prefetch-buffer copy and issue overhead.
//!
//! Configuration: M_RECORD, stripe unit 64 KB, stripe group 8, 8 compute
//! nodes × 8 I/O nodes, 8 MB of file per node, zero inter-read delay.

use paragon_bench::{kb, run_logged, save_record, stamp_config, REQUEST_SIZES};
use paragon_metrics::{ExperimentRecord, Table};
use paragon_workload::ExperimentConfig;

fn main() {
    let mut table = Table::new(
        "Table 1: PFS Read Performance with and without Prefetching \
         (stripe unit 64KB, stripe group 8, I/O-bound)",
        &[
            "Request size (KB)",
            "File size (MB/node)",
            "Read BW no-prefetch (MB/s)",
            "Read BW prefetch (MB/s)",
            "Hit ratio",
        ],
    );
    let mut record = ExperimentRecord::new(
        "TAB1",
        "Read bandwidth with vs without prefetching, I/O-bound M_RECORD workload",
    );

    for sz in REQUEST_SIZES {
        let base = ExperimentConfig::paper_iobound(sz, 8);
        if record.config.is_empty() {
            stamp_config(&mut record, &base);
        }
        let no_pf = run_logged(&format!("{}KB no-pf", kb(sz)), &base);
        let pf = run_logged(&format!("{}KB pf", kb(sz)), &base.clone().with_prefetch());
        table.row(&[
            format!("{}", kb(sz)),
            "8".to_owned(),
            format!("{:.2}", no_pf.bandwidth_mb_s()),
            format!("{:.2}", pf.bandwidth_mb_s()),
            format!("{:.2}", pf.prefetch.hit_ratio()),
        ]);
        record.point(
            &[("request_kb", &kb(sz).to_string())],
            &[
                ("bw_no_prefetch_mb_s", no_pf.bandwidth_mb_s()),
                ("bw_prefetch_mb_s", pf.bandwidth_mb_s()),
                ("hit_ratio", pf.prefetch.hit_ratio()),
                ("hits_inflight", pf.prefetch.hits_inflight as f64),
                ("hits_ready", pf.prefetch.hits_ready as f64),
            ],
        );
    }

    println!("\n{}", table.render());
    println!(
        "Paper's finding: bandwidths comparable in all sizes; prefetching slightly\n\
         slower at 64 KB (copy + issue overhead, no computation to hide I/O behind).\n\
         Note the hits are overwhelmingly *in-flight* hits: the prefetch has no\n\
         head start, so the demand read still waits out most of the disk time."
    );
    save_record(&record);
}
