//! Figure 4 — PFS read performance for **balanced** workloads (compute
//! delays between reads), request sizes 64/128/256 KB, 128 MB file.
//!
//! Shape to reproduce: with prefetching, bandwidth holds near the
//! I/O-bound ceiling while the inter-read delay is at most the read
//! access time T(sz) (the prefetch hides the delay — full overlap), then
//! falls off once delay > T; without prefetching every delay is added
//! straight to the critical path, so bandwidth decays immediately.

fn main() {
    paragon_bench::balanced_figure(
        "FIG4",
        "Balanced workloads: read bandwidth vs compute delay, 64/128/256 KB requests",
        &[64 * 1024, 128 * 1024, 256 * 1024],
    );
}
