//! Extension: the SCSI-16 hardware upgrade.
//!
//! Section 2 of the paper notes that "SCSI-16 hardware is also available
//! that effectively quadruples the bandwidth available on each I/O
//! node". This study reruns the headline experiments on that hardware:
//!
//! * the I/O-bound bandwidth ceiling rises toward 4× (software overheads
//!   now matter more, so it lands below a perfect 4×),
//! * read access times T(sz) shrink ~4×, which *moves the prefetching
//!   crossover left*: delays that were "too small to overlap" at SCSI-8
//!   (Figure 5's regime) become prime prefetching territory at SCSI-16 —
//!   faster disks make prefetching more useful at large request sizes,
//!   not less.

use paragon_bench::{kb, run_logged, save_record, REQUEST_SIZES};
use paragon_machine::Calibration;
use paragon_metrics::{ExperimentRecord, Table};
use paragon_sim::SimDuration;
use paragon_workload::ExperimentConfig;

fn main() {
    let mut record = ExperimentRecord::new(
        "EXT-SCSI16",
        "Headline experiments on the SCSI-16 hardware the paper mentions",
    );

    // --- ceiling + access times across request sizes -------------------
    let mut t1 = Table::new(
        "SCSI-8 vs SCSI-16: I/O-bound M_RECORD bandwidth and access time",
        &[
            "Request (KB)",
            "SCSI-8 BW (MB/s)",
            "SCSI-16 BW (MB/s)",
            "SCSI-8 T (s)",
            "SCSI-16 T (s)",
        ],
    );
    for sz in REQUEST_SIZES {
        let old = run_logged(
            &format!("scsi8 {}KB", kb(sz)),
            &ExperimentConfig::paper_iobound(sz, 4),
        );
        let mut cfg16 = ExperimentConfig::paper_iobound(sz, 4);
        cfg16.calib = Calibration::paragon_scsi16();
        let new = run_logged(&format!("scsi16 {}KB", kb(sz)), &cfg16);
        t1.row(&[
            format!("{}", kb(sz)),
            format!("{:.2}", old.bandwidth_mb_s()),
            format!("{:.2}", new.bandwidth_mb_s()),
            format!("{:.3}", old.read_time_mean().as_secs_f64()),
            format!("{:.3}", new.read_time_mean().as_secs_f64()),
        ]);
        record.point(
            &[
                ("experiment", "ceiling"),
                ("request_kb", &kb(sz).to_string()),
            ],
            &[
                ("bw_scsi8_mb_s", old.bandwidth_mb_s()),
                ("bw_scsi16_mb_s", new.bandwidth_mb_s()),
                ("t_scsi8_s", old.read_time_mean().as_secs_f64()),
                ("t_scsi16_s", new.read_time_mean().as_secs_f64()),
            ],
        );
    }
    println!("\n{}", t1.render());

    // --- the crossover moves left: Figure 5's 1024 KB case -------------
    let mut t2 = Table::new(
        "1024 KB balanced requests (Figure 5's 'no gain' regime) on SCSI-16",
        &["Delay (s)", "no prefetch (MB/s)", "prefetch (MB/s)", "Gain"],
    );
    for delay_ms in [0u64, 25, 50, 100] {
        let mut base =
            ExperimentConfig::paper_balanced(1024 * 1024, SimDuration::from_millis(delay_ms));
        base.calib = Calibration::paragon_scsi16();
        base.file_size = 64 << 20;
        let no_pf = run_logged(&format!("16 d={delay_ms} no-pf"), &base);
        let pf = run_logged(
            &format!("16 d={delay_ms} pf"),
            &base.clone().with_prefetch(),
        );
        let gain = pf.bandwidth_mb_s() / no_pf.bandwidth_mb_s();
        t2.row(&[
            format!("{:.3}", delay_ms as f64 / 1000.0),
            format!("{:.2}", no_pf.bandwidth_mb_s()),
            format!("{:.2}", pf.bandwidth_mb_s()),
            format!("{gain:.2}x"),
        ]);
        record.point(
            &[
                ("experiment", "fig5_on_scsi16"),
                ("delay_ms", &delay_ms.to_string()),
            ],
            &[
                ("bw_no_prefetch_mb_s", no_pf.bandwidth_mb_s()),
                ("bw_prefetch_mb_s", pf.bandwidth_mb_s()),
                ("gain", gain),
            ],
        );
    }
    println!("\n{}", t2.render());
    println!(
        "Reading: SCSI-16 shrinks T(1024 KB) ~4x, so the 0-0.1 s delays that\n\
         bought nothing in Figure 5 now overlap usefully — faster disks widen\n\
         the regime where the paper's prefetching helps."
    );
    save_record(&record);
}
