//! # paragon-bench — the experiment harness
//!
//! One binary per table and figure of the paper (see DESIGN.md §4 for the
//! index), plus the extension studies. Every binary prints the table or
//! ASCII figure it regenerates and writes a machine-readable JSON record
//! under `results/`.
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig2_io_modes` | Figure 2 — read throughput of the PFS I/O modes |
//! | `table1_iobound` | Table 1 — read BW with/without prefetching, I/O-bound |
//! | `table2_access_times` | Table 2 — read access times per request size |
//! | `fig4_balanced` | Figure 4 — balanced workloads, 64/128/256 KB |
//! | `fig5_balanced_large` | Figure 5 — balanced workloads, 512/1024 KB |
//! | `table3_stripe_units` | Table 3 — prefetching across stripe units |
//! | `table4_stripe_groups` | Table 4 — prefetching across stripe groups |
//! | `ext_scaling` | future work: larger systems |
//! | `ext_patterns` | future work: more access patterns |
//! | `ext_depth_ablation` | extension: prefetch depth 1–8 |
//! | `ext_ablation` | ablations: Fast Path, copy bandwidth, ART limit |
//! | `ext_writes` | extension: write-behind (the prototype's write-side dual) |
//! | `ext_double_buffering` | extension: vs application-level double buffering |
//! | `paragonctl` | CLI: run any machine/mode/pattern/prefetch combination |

pub mod cli;

use std::fs;
use std::path::PathBuf;

use paragon_metrics::ExperimentRecord;
use paragon_workload::{ExperimentConfig, RunResult};

/// Request sizes the paper sweeps (bytes).
pub const REQUEST_SIZES: [u32; 5] = [64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024];

/// KB pretty-printer for row labels.
pub fn kb(bytes: u32) -> u64 {
    bytes as u64 / 1024
}

/// Where experiment records land (`results/` at the workspace root,
/// overridable with `PARAGON_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("PARAGON_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    fs::create_dir_all(&dir).expect("cannot create results dir");
    dir
}

/// Persist a record as `results/<id>.json`.
pub fn save_record(record: &ExperimentRecord) {
    let path = results_dir().join(format!("{}.json", record.id.to_lowercase()));
    fs::write(&path, record.to_json()).expect("cannot write record");
    println!("\n[record saved to {}]", path.display());
}

/// Stamp the standard machine-shape config entries on a record.
pub fn stamp_config(record: &mut ExperimentRecord, cfg: &ExperimentConfig) {
    record
        .config("compute_nodes", cfg.compute_nodes)
        .config("io_nodes", cfg.io_nodes)
        .config("stripe_unit", cfg.stripe_unit)
        .config("mode", cfg.mode)
        .config("seed", cfg.seed)
        .config("fast_path", cfg.fast_path);
}

/// Run and echo a one-line progress note (experiments run many configs;
/// silence reads as a hang).
pub fn run_logged(label: &str, cfg: &ExperimentConfig) -> RunResult {
    let r = paragon_workload::run(cfg);
    eprintln!(
        "  [{label}] bw {:.2} MB/s, elapsed {}, {} reads",
        r.bandwidth_mb_s(),
        r.elapsed,
        r.per_node.iter().map(|n| n.reads).sum::<u64>()
    );
    r
}

/// The paper's balanced-workload delay sweep: 0 s – 0.1 s of computation
/// between consecutive reads.
pub const DELAYS_MS: [u64; 6] = [0, 10, 25, 50, 75, 100];

/// Shared driver of Figures 4 and 5 (they differ only in the request-size
/// set): for each size, sweep the inter-read delay with and without the
/// prefetch prototype, print the per-size table + ASCII figure, and save
/// one combined record.
pub fn balanced_figure(id: &str, description: &str, sizes: &[u32]) {
    use paragon_metrics::{AsciiChart, Series, Table};
    use paragon_sim::SimDuration;

    let mut record = ExperimentRecord::new(id, description);
    for &sz in sizes {
        let mut table = Table::new(
            &format!(
                "{id} (data): Balanced Workload, {} KB requests, 128 MB file",
                kb(sz)
            ),
            &[
                "Delay (s)",
                "No prefetch (MB/s)",
                "Prefetch (MB/s)",
                "Ready hits",
                "In-flight hits",
            ],
        );
        let mut no_pf_series = Vec::new();
        let mut pf_series = Vec::new();
        for ms in DELAYS_MS {
            let delay = SimDuration::from_millis(ms);
            let base = ExperimentConfig::paper_balanced(sz, delay);
            if record.config.is_empty() {
                stamp_config(&mut record, &base);
            }
            let no_pf = run_logged(&format!("{}KB d={}ms no-pf", kb(sz), ms), &base);
            let pf = run_logged(
                &format!("{}KB d={}ms pf", kb(sz), ms),
                &base.clone().with_prefetch(),
            );
            table.row(&[
                format!("{:.3}", ms as f64 / 1000.0),
                format!("{:.2}", no_pf.bandwidth_mb_s()),
                format!("{:.2}", pf.bandwidth_mb_s()),
                format!("{}", pf.prefetch.hits_ready),
                format!("{}", pf.prefetch.hits_inflight),
            ]);
            record.point(
                &[
                    ("request_kb", &kb(sz).to_string()),
                    ("delay_ms", &ms.to_string()),
                ],
                &[
                    ("bw_no_prefetch_mb_s", no_pf.bandwidth_mb_s()),
                    ("bw_prefetch_mb_s", pf.bandwidth_mb_s()),
                    ("hits_ready", pf.prefetch.hits_ready as f64),
                    ("hits_inflight", pf.prefetch.hits_inflight as f64),
                    ("overlap_saved_s", pf.prefetch.overlap_saved.as_secs_f64()),
                ],
            );
            no_pf_series.push((ms as f64 / 1000.0, no_pf.bandwidth_mb_s()));
            pf_series.push((ms as f64 / 1000.0, pf.bandwidth_mb_s()));
        }
        println!("\n{}", table.render());
        let chart = AsciiChart::new(
            &format!("Read Bandwidths, {} KB request size", kb(sz)),
            "computation delay between reads (s)",
            "read bandwidth (MB/s)",
        )
        .series(Series::new("no prefetching", no_pf_series))
        .series(Series::new("prefetching", pf_series));
        println!("{}", chart.render());
    }
    println!(
        "Paper's finding: significant gains whenever computation overlaps I/O;\n\
         the closer the delay is to the read access time, the bigger the win.\n\
         For large requests (T(sz) >> delay) no significant overlap is possible."
    );
    save_record(&record);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sizes_match_paper_sweep() {
        assert_eq!(REQUEST_SIZES.map(kb), [64, 128, 256, 512, 1024]);
    }

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.is_dir());
    }
}
