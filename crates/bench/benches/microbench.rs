//! Criterion microbenchmarks of the simulator's hot paths: these bound
//! the host cost of every experiment (one experiment = millions of
//! event-heap operations, declustering plans, and disk service steps).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use paragon_pfs::StripeAttrs;
use paragon_sim::{Sim, SimDuration};

fn bench_event_loop(c: &mut Criterion) {
    c.bench_function("sim/10k_interleaved_timers", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            for n in 0..100u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    for i in 0..100u64 {
                        s.sleep(SimDuration::from_micros(n * 13 + i * 7)).await;
                    }
                });
            }
            black_box(sim.run().events_processed)
        })
    });
}

fn bench_channels(c: &mut Criterion) {
    c.bench_function("sim/channel_ping_pong_1k", |b| {
        b.iter(|| {
            let sim = Sim::new(1);
            let (tx, mut rx) = paragon_sim::sync::channel::<u64>();
            let s = sim.clone();
            let h = sim.spawn(async move {
                let mut acc = 0;
                while let Some(v) = rx.recv().await {
                    acc += v;
                }
                acc
            });
            sim.spawn(async move {
                for i in 0..1000u64 {
                    tx.send(i).unwrap();
                    s.yield_now().await;
                }
            });
            sim.run();
            black_box(h.try_take())
        })
    });
}

fn bench_stripe_plan(c: &mut Criterion) {
    let attrs = StripeAttrs::across(8, 64 * 1024);
    c.bench_function("pfs/plan_1MB_over_8", |b| {
        b.iter(|| black_box(attrs.plan(black_box(3 * 64 * 1024), black_box(1 << 20))))
    });
    c.bench_function("pfs/plan_unaligned_100k", |b| {
        b.iter(|| black_box(attrs.plan(black_box(12_345), black_box(100_001))))
    });
}

fn bench_disk(c: &mut Criterion) {
    use bytes::Bytes;
    use paragon_disk::{Disk, DiskParams, SchedPolicy};
    c.bench_function("disk/1k_sequential_reads", |b| {
        b.iter_batched(
            || {
                let sim = Sim::new(1);
                let disk = Disk::new(&sim, DiskParams::scsi_1995(), SchedPolicy::Elevator, "b");
                let d2 = disk.clone();
                sim.spawn(async move {
                    d2.write(0, Bytes::from(vec![1u8; 1 << 20])).await;
                });
                sim.run();
                (sim, disk)
            },
            |(sim, disk)| {
                sim.spawn(async move {
                    for i in 0..1000u64 {
                        disk.read((i * 1024) % (1 << 20), 1024).await;
                    }
                });
                black_box(sim.run().events_processed)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    use paragon_machine::Calibration;
    use paragon_pfs::IoMode;
    use paragon_workload::{AccessPattern, ExperimentConfig, StripeLayout};
    let cfg = ExperimentConfig {
        seed: 1,
        compute_nodes: 4,
        io_nodes: 4,
        calib: Calibration::paragon_1995(),
        mode: IoMode::MRecord,
        fast_path: true,
        stripe_unit: 64 * 1024,
        layout: StripeLayout::Across { factor: 4 },
        request_size: 64 * 1024,
        file_size: 2 << 20,
        delay: paragon_sim::SimDuration::ZERO,
        prefetch: None,
        access: AccessPattern::ModeDriven,
        separate_files: false,
        verify_data: false,
        trace_cap: 0,
    };
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    group.bench_function("2MB_m_record_4x4", |b| {
        b.iter(|| black_box(paragon_workload::run(&cfg).bandwidth_mb_s()))
    });
    let pf = cfg.clone().with_prefetch();
    group.bench_function("2MB_m_record_4x4_prefetch", |b| {
        b.iter(|| black_box(paragon_workload::run(&pf).bandwidth_mb_s()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_loop,
    bench_channels,
    bench_stripe_plan,
    bench_disk,
    bench_end_to_end
);
criterion_main!(benches);
