//! Microbenchmarks of the simulator's hot paths: these bound the host
//! cost of every experiment (one experiment = millions of event-heap
//! operations, declustering plans, and disk service steps). Plain
//! `fn main` harness (hermetic build: no criterion); run with
//! `cargo bench --bench microbench`.

use std::hint::black_box;
use std::time::Instant;

use paragon_pfs::StripeAttrs;
use paragon_sim::{Sim, SimDuration};

/// Run `f` `iters` times and print mean wall time per iteration.
fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> f64 {
    // One warmup iteration.
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<40} {:>12.3} us/iter  ({iters} iters)", per * 1e6);
    per
}

fn bench_event_loop() {
    bench("sim/10k_interleaved_timers", 20, || {
        let sim = Sim::new(1);
        for n in 0..100u64 {
            let s = sim.clone();
            sim.spawn(async move {
                for i in 0..100u64 {
                    s.sleep(SimDuration::from_micros(n * 13 + i * 7)).await;
                }
            });
        }
        sim.run().events_processed
    });
}

fn bench_channels() {
    bench("sim/channel_ping_pong_1k", 50, || {
        let sim = Sim::new(1);
        let (tx, mut rx) = paragon_sim::sync::channel::<u64>();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let mut acc = 0;
            while let Some(v) = rx.recv().await {
                acc += v;
            }
            acc
        });
        sim.spawn(async move {
            for i in 0..1000u64 {
                tx.send(i).unwrap();
                s.yield_now().await;
            }
        });
        sim.run();
        h.try_take()
    });
}

fn bench_stripe_plan() {
    let attrs = StripeAttrs::across(8, 64 * 1024);
    bench("pfs/plan_1MB_over_8", 10_000, || {
        attrs.plan(black_box(3 * 64 * 1024), black_box(1 << 20))
    });
    bench("pfs/plan_unaligned_100k", 10_000, || {
        attrs.plan(black_box(12_345), black_box(100_001))
    });
}

fn bench_disk() {
    use bytes::Bytes;
    use paragon_disk::{Disk, DiskParams, SchedPolicy};
    bench("disk/1k_sequential_reads", 10, || {
        let sim = Sim::new(1);
        let disk = Disk::new(&sim, DiskParams::scsi_1995(), SchedPolicy::Elevator, "b");
        let d2 = disk.clone();
        sim.spawn(async move {
            d2.write(0, Bytes::from(vec![1u8; 1 << 20])).await.unwrap();
        });
        sim.run();
        sim.spawn(async move {
            for i in 0..1000u64 {
                disk.read((i * 1024) % (1 << 20), 1024).await.unwrap();
            }
        });
        sim.run().events_processed
    });
}

fn end_to_end_cfg() -> paragon_workload::ExperimentConfig {
    use paragon_machine::Calibration;
    use paragon_pfs::{IoMode, Redundancy};
    use paragon_workload::{AccessPattern, ExperimentConfig, FaultSpec, StripeLayout};
    ExperimentConfig {
        seed: 1,
        compute_nodes: 4,
        io_nodes: 4,
        calib: Calibration::paragon_1995(),
        mode: IoMode::MRecord,
        fast_path: true,
        stripe_unit: 64 * 1024,
        layout: StripeLayout::Across { factor: 4 },
        request_size: 64 * 1024,
        file_size: 2 << 20,
        delay: paragon_sim::SimDuration::ZERO,
        prefetch: None,
        access: AccessPattern::ModeDriven,
        separate_files: false,
        verify_data: false,
        trace_cap: 0,
        faults: FaultSpec::default(),
        redundancy: Redundancy::None,
        metrics_cadence: None,
        shards: None,
        workers: 1,
    }
}

fn bench_end_to_end() {
    let cfg = end_to_end_cfg();
    bench("end_to_end/2MB_m_record_4x4", 10, || {
        paragon_workload::run(&cfg).bandwidth_mb_s()
    });
    let pf = cfg.clone().with_prefetch();
    bench("end_to_end/2MB_m_record_4x4_prefetch", 10, || {
        paragon_workload::run(&pf).bandwidth_mb_s()
    });
}

/// Acceptance check for the flight recorder: a disarmed run must not be
/// measurably slower than the seed's no-tracing behaviour, because
/// `Sim::emit` never evaluates its closure when recording is off. We
/// compare disarmed vs armed end-to-end runs: disarmed must not pay the
/// recording cost (the armed run allocates and stores every event).
fn bench_trace_overhead() {
    let cfg = end_to_end_cfg();
    let disarmed = bench("trace/end_to_end_disarmed", 10, || {
        paragon_workload::run(&cfg).bandwidth_mb_s()
    });
    let mut traced = cfg.clone();
    traced.trace_cap = 1 << 20;
    let armed = bench("trace/end_to_end_armed", 10, || {
        let r = paragon_workload::run(&traced);
        (r.bandwidth_mb_s(), r.trace.len())
    });
    println!(
        "trace/armed_over_disarmed               {:>12.3} x",
        armed / disarmed
    );
}

fn main() {
    bench_event_loop();
    bench_channels();
    bench_stripe_plan();
    bench_disk();
    bench_end_to_end();
    bench_trace_overhead();
}
