//! Host-cost coverage of every table and figure: each entry runs a
//! reduced-size version of the corresponding experiment (same code path,
//! smaller file), so `cargo bench` exercises the entire harness and
//! tracks the host cost of regenerating each artifact. The full-size
//! regenerators are the `paragon-bench` binaries. Plain `fn main`
//! harness (hermetic build: no criterion).

use std::hint::black_box;
use std::time::Instant;

use paragon_pfs::IoMode;
use paragon_sim::SimDuration;
use paragon_workload::{run, AccessPattern, ExperimentConfig, StripeLayout};

fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<44} {:>12.3} ms/iter  ({iters} iters)", per * 1e3);
}

/// 1 MB per node: small enough to iterate, big enough to exercise every
/// code path (striping, coalescing, queues, prefetch machinery).
fn small(request: u32) -> ExperimentConfig {
    ExperimentConfig::paper_iobound(request, 1)
}

fn fig2() {
    for mode in IoMode::all() {
        let mut cfg = small(64 * 1024);
        cfg.mode = mode;
        bench(&format!("fig2_io_modes/{mode}"), 5, || {
            run(&cfg).bandwidth_mb_s()
        });
    }
    let mut sep = small(64 * 1024);
    sep.mode = IoMode::MAsync;
    sep.separate_files = true;
    sep.file_size = 1 << 20;
    bench("fig2_io_modes/separate_files", 5, || {
        run(&sep).bandwidth_mb_s()
    });
}

fn tab1() {
    for (label, prefetch) in [("no_prefetch", false), ("prefetch", true)] {
        let cfg = if prefetch {
            small(64 * 1024).with_prefetch()
        } else {
            small(64 * 1024)
        };
        bench(&format!("table1_iobound/{label}"), 5, || {
            run(&cfg).bandwidth_mb_s()
        });
    }
}

fn tab2() {
    for request in [64 * 1024u32, 1024 * 1024] {
        let cfg = small(request);
        bench(
            &format!("table2_access_times/{}KB", request / 1024),
            5,
            || run(&cfg).read_time_mean(),
        );
    }
}

fn fig4_fig5() {
    for (label, request, delay_ms) in [
        ("64KB_25ms", 64 * 1024u32, 25u64),
        ("1024KB_100ms", 1024 * 1024, 100),
    ] {
        let mut cfg = small(request).with_prefetch();
        cfg.delay = SimDuration::from_millis(delay_ms);
        bench(&format!("fig4_fig5_balanced/{label}"), 5, || {
            run(&cfg).bandwidth_mb_s()
        });
    }
}

fn tab3() {
    for su in [16 * 1024u64, 64 * 1024, 1024 * 1024] {
        let mut cfg = small(256 * 1024).with_prefetch();
        cfg.stripe_unit = su;
        bench(
            &format!("table3_stripe_units/su_{}KB", su / 1024),
            5,
            || run(&cfg).bandwidth_mb_s(),
        );
    }
}

fn tab4() {
    let wide = small(256 * 1024).with_prefetch();
    bench("table4_stripe_groups/sgroup_8", 5, || {
        run(&wide).bandwidth_mb_s()
    });
    let mut narrow = small(256 * 1024).with_prefetch();
    narrow.layout = StripeLayout::WaysOnOne { ways: 8, ion: 0 };
    bench("table4_stripe_groups/sgroup_1", 5, || {
        run(&narrow).bandwidth_mb_s()
    });
}

fn extensions() {
    // Depth ablation and pattern sweep, one representative each.
    let mut depth4 = small(64 * 1024).with_prefetch();
    depth4.prefetch.as_mut().unwrap().depth = 4;
    depth4.delay = SimDuration::from_millis(50);
    bench("extensions/depth4_balanced", 5, || {
        run(&depth4).bandwidth_mb_s()
    });
    let mut random = small(64 * 1024).with_prefetch();
    random.mode = IoMode::MAsync;
    random.access = AccessPattern::Random;
    bench("extensions/random_pattern", 5, || {
        run(&random).bandwidth_mb_s()
    });
}

fn main() {
    fig2();
    tab1();
    tab2();
    fig4_fig5();
    tab3();
    tab4();
    extensions();
}
