//! Criterion coverage of every table and figure: each benchmark runs a
//! reduced-size version of the corresponding experiment (same code path,
//! smaller file), so `cargo bench` exercises the entire harness and
//! tracks the host cost of regenerating each artifact. The full-size
//! regenerators are the `paragon-bench` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use paragon_pfs::IoMode;
use paragon_sim::SimDuration;
use paragon_workload::{run, AccessPattern, ExperimentConfig, StripeLayout};

/// 1 MB per node: small enough to iterate, big enough to exercise every
/// code path (striping, coalescing, queues, prefetch machinery).
fn small(request: u32) -> ExperimentConfig {
    ExperimentConfig::paper_iobound(request, 1)
}

fn fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_io_modes");
    g.sample_size(10);
    for mode in IoMode::all() {
        let mut cfg = small(64 * 1024);
        cfg.mode = mode;
        g.bench_function(mode.to_string(), |b| {
            b.iter(|| black_box(run(&cfg).bandwidth_mb_s()))
        });
    }
    let mut sep = small(64 * 1024);
    sep.mode = IoMode::MAsync;
    sep.separate_files = true;
    sep.file_size = 1 << 20;
    g.bench_function("separate_files", |b| {
        b.iter(|| black_box(run(&sep).bandwidth_mb_s()))
    });
    g.finish();
}

fn tab1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_iobound");
    g.sample_size(10);
    for (label, prefetch) in [("no_prefetch", false), ("prefetch", true)] {
        let cfg = if prefetch {
            small(64 * 1024).with_prefetch()
        } else {
            small(64 * 1024)
        };
        g.bench_function(label, |b| {
            b.iter(|| black_box(run(&cfg).bandwidth_mb_s()))
        });
    }
    g.finish();
}

fn tab2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_access_times");
    g.sample_size(10);
    for request in [64 * 1024u32, 1024 * 1024] {
        g.bench_function(format!("{}KB", request / 1024), |b| {
            let cfg = small(request);
            b.iter(|| black_box(run(&cfg).read_time_mean()))
        });
    }
    g.finish();
}

fn fig4_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_fig5_balanced");
    g.sample_size(10);
    for (label, request, delay_ms) in
        [("64KB_25ms", 64 * 1024u32, 25u64), ("1024KB_100ms", 1024 * 1024, 100)]
    {
        let mut cfg = small(request).with_prefetch();
        cfg.delay = SimDuration::from_millis(delay_ms);
        g.bench_function(label, |b| {
            b.iter(|| black_box(run(&cfg).bandwidth_mb_s()))
        });
    }
    g.finish();
}

fn tab3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_stripe_units");
    g.sample_size(10);
    for su in [16 * 1024u64, 64 * 1024, 1024 * 1024] {
        let mut cfg = small(256 * 1024).with_prefetch();
        cfg.stripe_unit = su;
        g.bench_function(format!("su_{}KB", su / 1024), |b| {
            b.iter(|| black_box(run(&cfg).bandwidth_mb_s()))
        });
    }
    g.finish();
}

fn tab4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_stripe_groups");
    g.sample_size(10);
    let wide = small(256 * 1024).with_prefetch();
    g.bench_function("sgroup_8", |b| {
        b.iter(|| black_box(run(&wide).bandwidth_mb_s()))
    });
    let mut narrow = small(256 * 1024).with_prefetch();
    narrow.layout = StripeLayout::WaysOnOne { ways: 8, ion: 0 };
    g.bench_function("sgroup_1", |b| {
        b.iter(|| black_box(run(&narrow).bandwidth_mb_s()))
    });
    g.finish();
}

fn extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    // Depth ablation and pattern sweep, one representative each.
    let mut depth4 = small(64 * 1024).with_prefetch();
    depth4.prefetch.as_mut().unwrap().depth = 4;
    depth4.delay = SimDuration::from_millis(50);
    g.bench_function("depth4_balanced", |b| {
        b.iter(|| black_box(run(&depth4).bandwidth_mb_s()))
    });
    let mut random = small(64 * 1024).with_prefetch();
    random.mode = IoMode::MAsync;
    random.access = AccessPattern::Random;
    g.bench_function("random_pattern", |b| {
        b.iter(|| black_box(run(&random).bandwidth_mb_s()))
    });
    g.finish();
}

criterion_group!(benches, fig2, tab1, tab2, fig4_fig5, tab3, tab4, extensions);
criterion_main!(benches);
