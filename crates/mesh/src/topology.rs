//! Paragon 2-D mesh topology and XY (dimension-order) routing.

/// Flat node identifier, row-major over the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Mesh coordinates: `x` is the column, `y` the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    pub x: usize,
    pub y: usize,
}

/// Mesh shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    pub cols: usize,
    pub rows: usize,
}

impl Topology {
    /// A `cols × rows` mesh; both dimensions must be nonzero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "degenerate mesh");
        Topology { cols, rows }
    }

    /// Smallest mesh with at least `n` nodes, roughly square but keeping
    /// the Paragon's wider-than-tall aspect.
    pub fn for_nodes(n: usize) -> Self {
        assert!(n > 0);
        let rows = (n as f64).sqrt().floor() as usize;
        let rows = rows.max(1);
        let cols = n.div_ceil(rows);
        Topology { cols, rows }
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.cols * self.rows
    }

    /// Coordinates of `node`. Panics if out of range.
    pub fn coord(&self, node: NodeId) -> Coord {
        assert!(node.0 < self.nodes(), "node {} out of range", node.0);
        Coord {
            x: node.0 % self.cols,
            y: node.0 / self.cols,
        }
    }

    /// Flat id of `coord`.
    pub fn node_at(&self, c: Coord) -> NodeId {
        assert!(c.x < self.cols && c.y < self.rows);
        NodeId(c.y * self.cols + c.x)
    }

    /// Hop count of the XY route between two nodes (Manhattan distance).
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        let ca = self.coord(a);
        let cb = self.coord(b);
        ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
    }

    /// The full XY route from `a` to `b`, inclusive of both endpoints:
    /// first travel in X, then in Y — the Paragon's dimension-order rule.
    pub fn route(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let ca = self.coord(a);
        let cb = self.coord(b);
        let mut path = vec![a];
        let mut cur = ca;
        while cur.x != cb.x {
            cur.x = if cb.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            path.push(self.node_at(cur));
        }
        while cur.y != cb.y {
            cur.y = if cb.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            path.push(self.node_at(cur));
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_roundtrip() {
        let t = Topology::new(4, 3);
        for i in 0..t.nodes() {
            let n = NodeId(i);
            assert_eq!(t.node_at(t.coord(n)), n);
        }
    }

    #[test]
    fn hops_is_manhattan() {
        let t = Topology::new(4, 4);
        let a = t.node_at(Coord { x: 0, y: 0 });
        let b = t.node_at(Coord { x: 3, y: 2 });
        assert_eq!(t.hops(a, b), 5);
        assert_eq!(t.hops(a, a), 0);
    }

    #[test]
    fn route_is_x_then_y_and_length_matches_hops() {
        let t = Topology::new(5, 5);
        let a = t.node_at(Coord { x: 1, y: 4 });
        let b = t.node_at(Coord { x: 4, y: 1 });
        let route = t.route(a, b);
        assert_eq!(route.len(), t.hops(a, b) + 1);
        assert_eq!(route.first(), Some(&a));
        assert_eq!(route.last(), Some(&b));
        // X leg first: y stays 4 until x reaches 4.
        let coords: Vec<Coord> = route.iter().map(|&n| t.coord(n)).collect();
        assert!(coords[..4].iter().all(|c| c.y == 4));
    }

    #[test]
    fn for_nodes_covers_request() {
        for n in 1..40 {
            let t = Topology::for_nodes(n);
            assert!(t.nodes() >= n, "{t:?} too small for {n}");
        }
    }
}
