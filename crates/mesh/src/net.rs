//! Message transport over the mesh.
//!
//! Timing model: a send serializes on the sender's NIC for the software
//! send overhead plus the wire time (`bytes / link_bw`), then the message
//! propagates `hops × hop_latency` plus the receive overhead before landing
//! in the destination mailbox. This reproduces the two facts that matter
//! for the paper's experiments — per-message software cost (~100 µs class,
//! which penalizes many small requests) and NIC serialization under fan-in —
//! while interior wormhole-link contention, which is negligible next to
//! 3 MB/s disks on a >150 MB/s mesh, is folded into the NIC term.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use paragon_sim::sync::{channel, Receiver, Semaphore, Sender};
use paragon_sim::{
    ev, EventKind, FaultPlan, MeshVerdict, OutFrame, ReqId, ShardCtx, Sim, SimDuration, SimTime,
    Track,
};

use crate::topology::{NodeId, Topology};

/// Mesh timing parameters.
#[derive(Debug, Clone)]
pub struct MeshParams {
    /// Per-link bandwidth, bytes/second.
    pub link_bw: f64,
    /// Router latency per hop.
    pub hop_latency: SimDuration,
    /// Software overhead on the sending side (syscall, packetization).
    pub send_overhead: SimDuration,
    /// Software overhead on the receiving side.
    pub recv_overhead: SimDuration,
    /// Cost of a loopback (same-node) message.
    pub local_overhead: SimDuration,
}

impl MeshParams {
    /// Paragon-class parameters: 175 MB/s links, 40 ns/hop routers, ~60 µs
    /// software overhead on each side (OSF/1 message passing was costly).
    pub fn paragon() -> Self {
        MeshParams {
            link_bw: 175e6,
            hop_latency: SimDuration::from_nanos(40),
            send_overhead: SimDuration::from_micros(60),
            recv_overhead: SimDuration::from_micros(60),
            local_overhead: SimDuration::from_micros(15),
        }
    }

    /// Zero-cost transport for unit tests of higher layers.
    pub fn instant() -> Self {
        MeshParams {
            link_bw: f64::INFINITY,
            hop_latency: SimDuration::ZERO,
            send_overhead: SimDuration::ZERO,
            recv_overhead: SimDuration::ZERO,
            local_overhead: SimDuration::ZERO,
        }
    }

    fn wire_time(&self, bytes: u64) -> SimDuration {
        if self.link_bw.is_infinite() || bytes == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::for_bytes(bytes, self.link_bw)
        }
    }
}

/// A delivered message: payload plus its wire-level metadata.
#[derive(Debug)]
pub struct Envelope<M> {
    pub src: NodeId,
    pub wire_bytes: u64,
    pub payload: M,
}

/// Per-mesh traffic counters.
#[derive(Debug, Default, Clone)]
pub struct MeshStats {
    pub messages: u64,
    pub bytes: u64,
    pub max_nic_queue: usize,
    /// Messages lost: injected drops, crash-window drops, and sends to a
    /// receiver that has shut down.
    pub drops: u64,
    /// Messages duplicated by the fault plan.
    pub dups: u64,
    /// Messages delayed by the fault plan.
    pub delays: u64,
    /// Router hops traversed, summed over all non-local messages.
    pub hops: u64,
}

struct MeshInner<M> {
    mailboxes: BTreeMap<NodeId, Sender<Envelope<M>>>,
    stats: MeshStats,
}

/// Wire form of a message crossing between shard worlds: everything the
/// destination world needs to finish the delivery locally. The sender's
/// world has already charged NIC occupancy, drawn the fault verdict, and
/// computed the arrival instant; the destination world performs the
/// mailbox landing (and its NetRx/drop accounting) at that instant.
struct MeshFrame<M> {
    src: NodeId,
    dst: NodeId,
    wire_bytes: u64,
    req: ReqId,
    payload: M,
}

/// The interconnect: binds mailboxes and moves typed messages with
/// Paragon-calibrated latency. Clone freely.
pub struct Mesh<M> {
    sim: Sim,
    topo: Topology,
    params: MeshParams,
    nic_tx: Rc<Vec<Semaphore>>,
    faults: FaultPlan,
    inner: Rc<RefCell<MeshInner<M>>>,
    /// Payload+header bytes accepted by the fault plan but not yet landed
    /// in a mailbox; polled live by telemetry gauges.
    inflight_bytes: Rc<Cell<i64>>,
    /// Cumulative NIC-occupancy nanoseconds per source node.
    nic_busy_ns: Rc<Vec<Cell<u64>>>,
    /// Present only in sharded worlds: the shard context plus this
    /// mesh's fabric id, used to divert sends whose destination another
    /// shard owns (and to receive theirs).
    shard: Option<(Rc<ShardCtx>, u32)>,
}

impl<M> Clone for Mesh<M> {
    fn clone(&self) -> Self {
        Mesh {
            sim: self.sim.clone(),
            topo: self.topo,
            params: self.params.clone(),
            nic_tx: self.nic_tx.clone(),
            faults: self.faults.clone(),
            inner: self.inner.clone(),
            inflight_bytes: self.inflight_bytes.clone(),
            nic_busy_ns: self.nic_busy_ns.clone(),
            shard: self.shard.clone(),
        }
    }
}

impl<M: Clone + Send + 'static> Mesh<M> {
    /// Build a mesh over `topo` with the given timing parameters.
    ///
    /// In a sharded world this also registers the mesh as a fabric with
    /// the shard context; every world constructs its meshes in the same
    /// order, so the fabric id names the same mesh in every shard.
    pub fn new(sim: &Sim, topo: Topology, params: MeshParams) -> Self {
        let nic_tx = (0..topo.nodes()).map(|_| Semaphore::new(1)).collect();
        let nic_busy_ns = (0..topo.nodes()).map(|_| Cell::new(0u64)).collect();
        let mut mesh = Mesh {
            sim: sim.clone(),
            topo,
            params,
            nic_tx: Rc::new(nic_tx),
            faults: sim.faults(),
            inner: Rc::new(RefCell::new(MeshInner {
                mailboxes: BTreeMap::new(),
                stats: MeshStats::default(),
            })),
            inflight_bytes: Rc::new(Cell::new(0)),
            nic_busy_ns: Rc::new(nic_busy_ns),
            shard: None,
        };
        if let Some(ctx) = sim.shard_ctx() {
            let receiver = mesh.clone();
            let fabric = ctx.register_fabric(move |frame| receiver.inject_frame(frame));
            mesh.shard = Some((ctx, fabric));
        }
        mesh
    }

    /// Land a frame exported by another shard's world: re-enter transit
    /// accounting here and finish the delivery at the precomputed arrival
    /// instant. Called at the epoch barrier, in `(arrival, src, seq)`
    /// order.
    fn inject_frame(&self, frame: OutFrame) {
        let arrival = SimTime::from_nanos(frame.arrival_ns);
        let Ok(boxed) = frame.payload.downcast::<MeshFrame<M>>() else {
            // A frame for this fabric that is not this mesh's message
            // type would be a wiring bug between worlds; surface it as an
            // observable drop rather than a crash.
            self.inner.borrow_mut().stats.drops += 1;
            return;
        };
        let MeshFrame {
            src,
            dst,
            wire_bytes,
            req,
            payload,
        } = *boxed;
        self.inflight_bytes
            .set(self.inflight_bytes.get() + wire_bytes as i64);
        let mesh = self.clone();
        let sim = self.sim.clone();
        self.sim.spawn_named("mesh-deliver", async move {
            sim.sleep_until(arrival).await;
            mesh.finish_delivery(src, dst, wire_bytes, req, payload);
        });
    }

    /// The mesh shape.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Claim the mailbox of `node`. Panics if claimed twice: each simulated
    /// node has exactly one receive loop.
    pub fn bind(&self, node: NodeId) -> Receiver<Envelope<M>> {
        let (tx, rx) = channel();
        let prev = self.inner.borrow_mut().mailboxes.insert(node, tx);
        assert!(prev.is_none(), "mailbox for node {} bound twice", node.0);
        rx
    }

    /// Send `payload` (costing `wire_bytes` on the wire) from `src` to
    /// `dst`. Resolves when the sender's NIC is free again — i.e. after the
    /// send overhead and wire time — *not* when the message is delivered;
    /// delivery completes asynchronously after the propagation delay.
    pub async fn send(&self, src: NodeId, dst: NodeId, wire_bytes: u64, payload: M) {
        self.send_tagged(src, dst, wire_bytes, payload, 0).await
    }

    /// [`Mesh::send`] with a trace context: `req` stamps the `NetTx`
    /// (source NIC occupied) and `NetRx` (delivered) flight-recorder
    /// events, so one request's mesh crossings can be picked out of the
    /// stream. `0` records untagged events.
    pub async fn send_tagged(
        &self,
        src: NodeId,
        dst: NodeId,
        wire_bytes: u64,
        payload: M,
        req: ReqId,
    ) {
        let occupancy = if src == dst {
            self.params.local_overhead
        } else {
            self.params.send_overhead + self.params.wire_time(wire_bytes)
        };
        {
            let Some(sem) = self.nic_tx.get(src.0) else {
                // A source outside the topology has no NIC; the frame is
                // lost observably, like a send from a decommissioned node.
                self.sim.emit(|| {
                    ev(
                        Track::Node(src.0 as u16),
                        EventKind::MeshDrop,
                        req,
                        wire_bytes,
                        dst.0 as u64,
                    )
                });
                self.inner.borrow_mut().stats.drops += 1;
                return;
            };
            let guard = sem.acquire().await;
            {
                let mut inner = self.inner.borrow_mut();
                inner.stats.messages += 1;
                inner.stats.bytes += wire_bytes;
                inner.stats.hops += self.topo.hops(src, dst) as u64;
                inner.stats.max_nic_queue = inner.stats.max_nic_queue.max(sem.queue_len());
            }
            self.sim.emit(|| {
                ev(
                    Track::Node(src.0 as u16),
                    EventKind::NetTx,
                    req,
                    wire_bytes,
                    dst.0 as u64,
                )
            });
            self.sim.sleep(occupancy).await;
            if let Some(busy) = self.nic_busy_ns.get(src.0) {
                busy.set(busy.get() + occupancy.as_nanos());
            }
            drop(guard);
        }
        // The message has left the NIC; the fault plan now decides its
        // fate in transit. Verdicts are drawn in NIC-release order, which
        // the executor makes deterministic.
        let mut extra_delay = SimDuration::ZERO;
        let mut copies = 1usize;
        match self
            .faults
            .mesh_verdict(src.0 as u16, dst.0 as u16, self.sim.now())
        {
            MeshVerdict::Deliver => {}
            MeshVerdict::Drop => {
                self.sim.emit(|| {
                    ev(
                        Track::Node(src.0 as u16),
                        EventKind::MeshDrop,
                        req,
                        wire_bytes,
                        dst.0 as u64,
                    )
                });
                self.inner.borrow_mut().stats.drops += 1;
                return;
            }
            MeshVerdict::Duplicate => {
                self.sim.emit(|| {
                    ev(
                        Track::Node(src.0 as u16),
                        EventKind::MeshDup,
                        req,
                        wire_bytes,
                        dst.0 as u64,
                    )
                });
                self.inner.borrow_mut().stats.dups += 1;
                copies = 2;
            }
            MeshVerdict::Delay(d) => {
                self.sim.emit(|| {
                    ev(
                        Track::Node(src.0 as u16),
                        EventKind::MeshDelay,
                        req,
                        d.as_nanos(),
                        dst.0 as u64,
                    )
                });
                self.inner.borrow_mut().stats.delays += 1;
                extra_delay = d;
            }
        }
        let propagation = if src == dst {
            SimDuration::ZERO
        } else {
            self.params.hop_latency * self.topo.hops(src, dst) as u64 + self.params.recv_overhead
        } + extra_delay;
        let mut payloads = Vec::with_capacity(copies);
        for _ in 1..copies {
            payloads.push(payload.clone());
        }
        payloads.push(payload);
        // Destination owned by another shard's world: the sender-side
        // costs (NIC occupancy, stats, NetTx, fault verdict) are already
        // charged here; the landing happens in the owner's world at
        // `now + propagation`. Propagation of any cross-shard message is
        // at least one hop plus the receive overhead — exactly the
        // conservative lookahead — so the arrival is never in the
        // destination's past.
        if let Some((ctx, fabric)) = &self.shard {
            if !ctx.owns(dst.0 as u16) {
                let arrival = self.sim.now() + propagation;
                for payload in payloads {
                    ctx.export(
                        arrival,
                        ctx.owner_of(dst.0 as u16),
                        *fabric,
                        Box::new(MeshFrame {
                            src,
                            dst,
                            wire_bytes,
                            req,
                            payload,
                        }),
                    );
                }
                return;
            }
        }
        for payload in payloads {
            self.inflight_bytes
                .set(self.inflight_bytes.get() + wire_bytes as i64);
            if propagation.is_zero() {
                self.finish_delivery(src, dst, wire_bytes, req, payload);
            } else {
                let mesh = self.clone();
                let sim = self.sim.clone();
                self.sim.spawn_named("mesh-deliver", async move {
                    sim.sleep(propagation).await;
                    mesh.finish_delivery(src, dst, wire_bytes, req, payload);
                });
            }
        }
    }

    /// The receiver half of a delivery: leave transit accounting, record
    /// the landing, and push into the destination mailbox. Shared by the
    /// local path and cross-shard injection so both produce the same
    /// events in the same order.
    fn finish_delivery(&self, src: NodeId, dst: NodeId, wire_bytes: u64, req: ReqId, payload: M) {
        self.inflight_bytes
            .set(self.inflight_bytes.get() - wire_bytes as i64);
        self.sim.emit(|| {
            ev(
                Track::Node(dst.0 as u16),
                EventKind::NetRx,
                req,
                wire_bytes,
                src.0 as u64,
            )
        });
        let mailbox = self.inner.borrow().mailboxes.get(&dst).cloned();
        // An unbound destination or a dropped receiver means the node
        // never existed or shut down; either way the frame is lost like
        // on a real NIC — but observably so.
        if mailbox
            .map(|mb| {
                mb.send(Envelope {
                    src,
                    wire_bytes,
                    payload,
                })
            })
            .is_none_or(|r| r.is_err())
        {
            self.sim.emit(|| {
                ev(
                    Track::Node(dst.0 as u16),
                    EventKind::MeshDrop,
                    req,
                    wire_bytes,
                    dst.0 as u64,
                )
            });
            self.inner.borrow_mut().stats.drops += 1;
        }
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> MeshStats {
        self.inner.borrow().stats.clone()
    }

    /// Live bytes-in-transit cell (incremented when a frame leaves the
    /// fault plan, decremented when it lands in — or misses — a mailbox).
    pub fn inflight_bytes_cell(&self) -> Rc<Cell<i64>> {
        self.inflight_bytes.clone()
    }

    /// Cumulative NIC-occupancy nanoseconds, indexed by source node.
    pub fn nic_busy_ns(&self) -> Vec<u64> {
        self.nic_busy_ns.iter().map(Cell::get).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_sim::SimTime;

    fn two_node_mesh(sim: &Sim, params: MeshParams) -> Mesh<u64> {
        Mesh::new(sim, Topology::new(2, 1), params)
    }

    #[test]
    fn message_arrives_with_latency() {
        let sim = Sim::new(1);
        let params = MeshParams {
            link_bw: 1e6,
            hop_latency: SimDuration::from_micros(10),
            send_overhead: SimDuration::from_micros(100),
            recv_overhead: SimDuration::from_micros(50),
            local_overhead: SimDuration::ZERO,
        };
        let mesh = two_node_mesh(&sim, params);
        let mut rx = mesh.bind(NodeId(1));
        let m2 = mesh.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let env = rx.recv().await.unwrap();
            (env.src, env.payload, s.now())
        });
        sim.spawn(async move {
            // 1000 bytes at 1 MB/s = 1 ms wire time.
            m2.send(NodeId(0), NodeId(1), 1000, 7).await;
        });
        sim.run();
        let (src, payload, at) = h.try_take().unwrap();
        assert_eq!(src, NodeId(0));
        assert_eq!(payload, 7);
        // 100 µs send + 1 ms wire + 1 hop × 10 µs + 50 µs recv.
        assert_eq!(
            at,
            SimTime::ZERO + SimDuration::from_micros(100 + 1000 + 10 + 50)
        );
    }

    #[test]
    fn sender_nic_serializes_back_to_back_sends() {
        let sim = Sim::new(1);
        let params = MeshParams {
            link_bw: 1e6,
            hop_latency: SimDuration::ZERO,
            send_overhead: SimDuration::ZERO,
            recv_overhead: SimDuration::ZERO,
            local_overhead: SimDuration::ZERO,
        };
        let mesh = two_node_mesh(&sim, params);
        let mut rx = mesh.bind(NodeId(1));
        let s = sim.clone();
        let h = sim.spawn(async move {
            let mut arrivals = Vec::new();
            for _ in 0..3 {
                let env = rx.recv().await.unwrap();
                arrivals.push((env.payload, s.now().as_millis_round()));
            }
            arrivals
        });
        for i in 0..3u64 {
            let m = mesh.clone();
            sim.spawn(async move {
                m.send(NodeId(0), NodeId(1), 1000, i).await;
            });
        }
        sim.run();
        // Three 1 ms messages through one NIC: arrivals at 1, 2, 3 ms.
        let arrivals = h.try_take().unwrap();
        let times: Vec<u64> = arrivals.iter().map(|&(_, t)| t).collect();
        assert_eq!(times, vec![1, 2, 3]);
    }

    #[test]
    fn same_pair_messages_stay_fifo() {
        let sim = Sim::new(1);
        let mesh = two_node_mesh(&sim, MeshParams::paragon());
        let mut rx = mesh.bind(NodeId(1));
        let h = sim.spawn(async move {
            let mut got = Vec::new();
            for _ in 0..10 {
                got.push(rx.recv().await.unwrap().payload);
            }
            got
        });
        let m = mesh.clone();
        sim.spawn(async move {
            for i in 0..10u64 {
                m.send(NodeId(0), NodeId(1), 64 + i, i).await;
            }
        });
        sim.run();
        assert_eq!(h.try_take(), Some((0..10).collect::<Vec<u64>>()));
    }

    #[test]
    fn local_send_is_cheap_and_delivered() {
        let sim = Sim::new(1);
        let mesh = two_node_mesh(&sim, MeshParams::paragon());
        let mut rx = mesh.bind(NodeId(0));
        let s = sim.clone();
        let h = sim.spawn(async move {
            let env = rx.recv().await.unwrap();
            (env.payload, s.now())
        });
        let m = mesh.clone();
        sim.spawn(async move {
            m.send(NodeId(0), NodeId(0), 1 << 20, 42).await;
        });
        sim.run();
        let (p, at) = h.try_take().unwrap();
        assert_eq!(p, 42);
        assert_eq!(at, SimTime::ZERO + SimDuration::from_micros(15));
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let sim = Sim::new(1);
        let mesh = two_node_mesh(&sim, MeshParams::instant());
        let _rx = mesh.bind(NodeId(1));
        let m = mesh.clone();
        sim.spawn(async move {
            m.send(NodeId(0), NodeId(1), 100, 1).await;
            m.send(NodeId(0), NodeId(1), 200, 2).await;
        });
        sim.run();
        let st = mesh.stats();
        assert_eq!(st.messages, 2);
        assert_eq!(st.bytes, 300);
    }

    #[test]
    fn telemetry_cells_balance_and_count_hops() {
        let sim = Sim::new(1);
        let mesh = two_node_mesh(&sim, MeshParams::paragon());
        let inflight = mesh.inflight_bytes_cell();
        let mut rx = mesh.bind(NodeId(1));
        sim.spawn(async move {
            rx.recv().await.unwrap();
            rx.recv().await.unwrap();
        });
        let m = mesh.clone();
        sim.spawn(async move {
            m.send(NodeId(0), NodeId(1), 4096, 1u64).await;
            m.send(NodeId(0), NodeId(1), 4096, 2u64).await;
        });
        sim.run();
        // Every frame that entered transit also left it.
        assert_eq!(inflight.get(), 0);
        let st = mesh.stats();
        assert_eq!(st.hops, 2); // two messages, one hop each on a 2×1 mesh
        let busy = mesh.nic_busy_ns();
        assert!(busy[0] > 0, "sender NIC accumulated occupancy");
        assert_eq!(busy[1], 0, "receiver NIC sent nothing");
    }

    #[test]
    fn cross_shard_send_matches_the_serial_timeline() {
        use paragon_sim::{run_sharded, ShardPlan};
        use std::sync::Arc;

        // One sender on node 0, one receiver on node 1.
        fn model(sim: &Sim) -> paragon_sim::JoinHandle<(u64, SimTime)> {
            let mesh: Mesh<u64> = two_node_mesh(sim, MeshParams::paragon());
            let owns = |node: u16| sim.shard_ctx().is_none_or(|ctx| ctx.owns(node));
            let handle = {
                let s = sim.clone();
                let mut rx = if owns(1) {
                    Some(mesh.bind(NodeId(1)))
                } else {
                    None
                };
                sim.spawn(async move {
                    match rx.as_mut() {
                        Some(rx) => {
                            let env = rx.recv().await.unwrap();
                            (env.payload, s.now())
                        }
                        None => (0, SimTime::ZERO),
                    }
                })
            };
            if owns(0) {
                let m = mesh.clone();
                sim.spawn(async move {
                    m.send(NodeId(0), NodeId(1), 1000, 7).await;
                });
            }
            handle
        }

        let serial = {
            let sim = Sim::new(5);
            let h = model(&sim);
            sim.run();
            h.try_take().unwrap()
        };
        // The paragon propagation floor: one hop plus receive overhead.
        let lookahead = MeshParams::paragon().hop_latency.as_nanos()
            + MeshParams::paragon().recv_overhead.as_nanos();
        let plan = ShardPlan {
            shards: 2,
            workers: 2,
            lookahead_ns: lookahead,
            owner: Arc::new(vec![0, 1]),
            seed: 5,
        };
        let sharded = run_sharded(&plan, |_, sim| model(sim), |_, _, h| h.try_take());
        assert_eq!(serial.0, 7);
        assert_eq!(
            sharded[1],
            Some(serial),
            "cross-shard delivery must land at the serial instant"
        );
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let sim = Sim::new(1);
        let mesh = two_node_mesh(&sim, MeshParams::instant());
        let _a = mesh.bind(NodeId(0));
        let _b = mesh.bind(NodeId(0));
    }

    #[test]
    fn dead_receiver_drop_is_counted_and_traced() {
        let sim = Sim::new(1);
        let mesh = two_node_mesh(&sim, MeshParams::instant());
        let rx = mesh.bind(NodeId(1));
        drop(rx); // the node "shut down"
        sim.tracer().arm(16);
        let m = mesh.clone();
        sim.spawn(async move {
            m.send(NodeId(0), NodeId(1), 64, 1).await;
        });
        sim.run();
        assert_eq!(mesh.stats().drops, 1);
        assert!(sim
            .tracer()
            .events()
            .iter()
            .any(|e| e.kind == EventKind::MeshDrop));
    }

    #[test]
    fn injected_drop_loses_the_message() {
        let sim = Sim::new(1);
        let mesh = two_node_mesh(&sim, MeshParams::instant());
        let mut rx = mesh.bind(NodeId(1));
        sim.faults().set_mesh_faults(1000, 0, 0, SimDuration::ZERO);
        sim.faults().arm();
        let h = sim.spawn(async move { rx.recv().await });
        let m = mesh.clone();
        sim.spawn(async move {
            m.send(NodeId(0), NodeId(1), 64, 9u64).await;
        });
        sim.run();
        assert!(!h.is_finished(), "dropped message must never arrive");
        assert_eq!(mesh.stats().drops, 1);
        sim.shutdown();
    }

    #[test]
    fn injected_duplicate_delivers_twice() {
        let sim = Sim::new(1);
        let mesh = two_node_mesh(&sim, MeshParams::instant());
        let mut rx = mesh.bind(NodeId(1));
        sim.faults().set_mesh_faults(0, 1000, 0, SimDuration::ZERO);
        sim.faults().arm();
        let h = sim.spawn(async move {
            let a = rx.recv().await.unwrap().payload;
            let b = rx.recv().await.unwrap().payload;
            (a, b)
        });
        let m = mesh.clone();
        sim.spawn(async move {
            m.send(NodeId(0), NodeId(1), 64, 7u64).await;
        });
        sim.run();
        assert_eq!(h.try_take(), Some((7, 7)));
        assert_eq!(mesh.stats().dups, 1);
    }

    #[test]
    fn injected_delay_postpones_delivery() {
        let sim = Sim::new(1);
        let mesh = two_node_mesh(&sim, MeshParams::instant());
        let mut rx = mesh.bind(NodeId(1));
        sim.faults()
            .set_mesh_faults(0, 0, 1000, SimDuration::from_millis(5));
        sim.faults().arm();
        let s = sim.clone();
        let h = sim.spawn(async move {
            rx.recv().await.unwrap();
            s.now()
        });
        let m = mesh.clone();
        sim.spawn(async move {
            m.send(NodeId(0), NodeId(1), 64, 1u64).await;
        });
        sim.run();
        assert_eq!(
            h.try_take(),
            Some(SimTime::ZERO + SimDuration::from_millis(5))
        );
        assert_eq!(mesh.stats().delays, 1);
    }
}
