//! # paragon-mesh — 2-D mesh interconnect model
//!
//! The Paragon's nodes are connected by a 2-D mesh with dimension-order
//! (XY) wormhole routing. This crate provides the topology/routing math and
//! a typed message transport with a calibrated timing model: software
//! send/receive overheads, per-hop router latency, wire time at link
//! bandwidth, and NIC serialization under fan-in.

// Robustness: a lost or misrouted frame must surface as an observable
// drop (or an `Err`), never a panic on the transport path.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod net;
mod topology;

pub use net::{Envelope, Mesh, MeshParams, MeshStats};
pub use topology::{Coord, NodeId, Topology};
