//! # paragon-mesh — 2-D mesh interconnect model
//!
//! The Paragon's nodes are connected by a 2-D mesh with dimension-order
//! (XY) wormhole routing. This crate provides the topology/routing math and
//! a typed message transport with a calibrated timing model: software
//! send/receive overheads, per-hop router latency, wire time at link
//! bandwidth, and NIC serialization under fan-in.

mod net;
mod topology;

pub use net::{Envelope, Mesh, MeshParams, MeshStats};
pub use topology::{Coord, NodeId, Topology};
