//! Randomized tests for the mesh: XY routing geometry and per-pair FIFO
//! delivery under arbitrary traffic. Cases come from the in-repo [`Rng`];
//! `heavy-tests` multiplies the count.

use paragon_mesh::{Mesh, MeshParams, NodeId, Topology};
use paragon_sim::{Rng, Sim};

fn cases(light: usize, heavy: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        heavy
    } else {
        light
    }
}

/// Hop count is the Manhattan distance, symmetric, and triangle-
/// inequality-consistent; the XY route has exactly hops+1 nodes.
#[test]
fn routing_geometry() {
    let mut rng = Rng::seed_from_u64(0x4e57);
    for _ in 0..cases(256, 4096) {
        let cols = rng.range_usize(1..12);
        let rows = rng.range_usize(1..12);
        let t = Topology::new(cols, rows);
        let n = t.nodes();
        let a = NodeId(rng.range_usize(0..144) % n);
        let b = NodeId(rng.range_usize(0..144) % n);
        let c = NodeId(rng.range_usize(0..144) % n);
        assert_eq!(t.hops(a, b), t.hops(b, a));
        assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
        let route = t.route(a, b);
        assert_eq!(route.len(), t.hops(a, b) + 1);
        assert_eq!(route[0], a);
        assert_eq!(*route.last().unwrap(), b);
        // Each step moves exactly one hop.
        for w in route.windows(2) {
            assert_eq!(t.hops(w[0], w[1]), 1);
        }
    }
}

/// Messages between one (src, dst) pair always arrive in send order,
/// whatever their sizes.
#[test]
fn per_pair_fifo() {
    let mut rng = Rng::seed_from_u64(0xf1f0);
    for _ in 0..cases(32, 256) {
        let sizes: Vec<u64> = (0..rng.range_usize(1..30))
            .map(|_| rng.range_u64(0..100_000))
            .collect();
        let sim = Sim::new(9);
        let mesh: Mesh<u64> = Mesh::new(&sim, Topology::new(4, 4), MeshParams::paragon());
        let mut rx = mesh.bind(NodeId(5));
        let n = sizes.len();
        let h = sim.spawn(async move {
            let mut got = Vec::new();
            for _ in 0..n {
                got.push(rx.recv().await.unwrap().payload);
            }
            got
        });
        let m = mesh.clone();
        sim.spawn(async move {
            for (i, bytes) in sizes.into_iter().enumerate() {
                m.send(NodeId(0), NodeId(5), bytes, i as u64).await;
            }
        });
        sim.run();
        let got = h.try_take().unwrap();
        assert_eq!(got, (0..n as u64).collect::<Vec<_>>());
    }
}
