//! Property tests for the mesh: XY routing geometry and per-pair FIFO
//! delivery under arbitrary traffic.

use proptest::prelude::*;

use paragon_mesh::{Mesh, MeshParams, NodeId, Topology};
use paragon_sim::Sim;

proptest! {
    /// Hop count is the Manhattan distance, symmetric, and triangle-
    /// inequality-consistent; the XY route has exactly hops+1 nodes.
    #[test]
    fn routing_geometry(
        cols in 1usize..12,
        rows in 1usize..12,
        a in 0usize..144,
        b in 0usize..144,
        c in 0usize..144,
    ) {
        let t = Topology::new(cols, rows);
        let n = t.nodes();
        let (a, b, c) = (NodeId(a % n), NodeId(b % n), NodeId(c % n));
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
        let route = t.route(a, b);
        prop_assert_eq!(route.len(), t.hops(a, b) + 1);
        prop_assert_eq!(route[0], a);
        prop_assert_eq!(*route.last().unwrap(), b);
        // Each step moves exactly one hop.
        for w in route.windows(2) {
            prop_assert_eq!(t.hops(w[0], w[1]), 1);
        }
    }

    /// Messages between one (src, dst) pair always arrive in send order,
    /// whatever their sizes.
    #[test]
    fn per_pair_fifo(sizes in prop::collection::vec(0u64..100_000, 1..30)) {
        let sim = Sim::new(9);
        let mesh: Mesh<u64> = Mesh::new(&sim, Topology::new(4, 4), MeshParams::paragon());
        let mut rx = mesh.bind(NodeId(5));
        let n = sizes.len();
        let h = sim.spawn(async move {
            let mut got = Vec::new();
            for _ in 0..n {
                got.push(rx.recv().await.unwrap().payload);
            }
            got
        });
        let m = mesh.clone();
        sim.spawn(async move {
            for (i, bytes) in sizes.into_iter().enumerate() {
                m.send(NodeId(0), NodeId(5), bytes, i as u64).await;
            }
        });
        sim.run();
        let got = h.try_take().unwrap();
        prop_assert_eq!(got, (0..n as u64).collect::<Vec<_>>());
    }
}
