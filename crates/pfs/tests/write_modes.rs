//! Mode-semantic writes: the write mirror of the read pointer machinery.

use std::rc::Rc;

use bytes::Bytes;
use paragon_machine::{Machine, MachineConfig};
use paragon_pfs::{IoMode, OpenOptions, ParallelFs, StripeAttrs};
use paragon_sim::{Sim, SimDuration};

fn mount(sim: &Sim, cn: usize, ion: usize) -> Rc<ParallelFs> {
    let machine = Rc::new(Machine::new(sim, MachineConfig::tiny_instant(cn, ion)));
    ParallelFs::new(machine)
}

/// Each writer stamps its payload with its rank; read the file back and
/// return the rank stamp of every 8 KB record in file order.
async fn stamped_write_run(
    pfs: Rc<ParallelFs>,
    mode: IoMode,
    writers: usize,
    rounds: u64,
) -> Vec<u8> {
    const REC: usize = 8 * 1024;
    let id = pfs
        .create("/pfs/w", StripeAttrs::across(2, 4096))
        .await
        .unwrap();
    let sim = pfs.machine().sim().clone();
    let mut tasks = Vec::new();
    for rank in 0..writers {
        let f = pfs
            .open(rank, writers, id, mode, OpenOptions::default())
            .unwrap();
        let sim2 = sim.clone();
        tasks.push(sim.spawn(async move {
            for _ in 0..rounds {
                f.write(Bytes::from(vec![rank as u8 + 1; REC]))
                    .await
                    .unwrap();
                // Stagger so arrival orders vary across modes.
                sim2.sleep(SimDuration::from_micros(rank as u64 + 1)).await;
            }
        }));
    }
    for t in tasks {
        t.await;
    }
    // Read the whole file back (single reader, positioned).
    let reader = pfs
        .open(0, 1, id, IoMode::MAsync, OpenOptions::default())
        .unwrap();
    let total = match mode {
        IoMode::MGlobal => rounds, // everyone wrote the same records
        _ => writers as u64 * rounds,
    };
    let mut stamps = Vec::new();
    for k in 0..total {
        let data = reader
            .transfer_read(k * REC as u64, REC as u32)
            .await
            .unwrap();
        // A record must be entirely one writer's bytes (no tearing).
        assert!(
            data.iter().all(|&b| b == data[0]),
            "torn record {k} under {mode}"
        );
        assert!(data[0] >= 1 && data[0] <= writers as u8, "hole at {k}");
        stamps.push(data[0] - 1);
    }
    stamps
}

fn run_mode(mode: IoMode, writers: usize, rounds: u64) -> Vec<u8> {
    let sim = Sim::new(17);
    let pfs = mount(&sim, writers, 2);
    let h = sim.spawn(stamped_write_run(pfs, mode, writers, rounds));
    sim.run();
    h.try_take().expect("finished")
}

#[test]
fn m_log_appends_each_record_exactly_once() {
    let stamps = run_mode(IoMode::MLog, 3, 4);
    // Arrival order is unspecified, but each writer's 4 records all land.
    let mut counts = [0u32; 3];
    for s in stamps {
        counts[s as usize] += 1;
    }
    assert_eq!(counts, [4, 4, 4]);
}

#[test]
fn m_unix_appends_atomically() {
    let stamps = run_mode(IoMode::MUnix, 3, 3);
    let mut counts = [0u32; 3];
    for s in stamps {
        counts[s as usize] += 1;
    }
    assert_eq!(counts, [3, 3, 3]);
}

#[test]
fn m_sync_writes_in_node_order_per_round() {
    let stamps = run_mode(IoMode::MSync, 4, 3);
    // Node order within every collective round.
    assert_eq!(stamps, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
}

#[test]
fn m_record_writes_interleave_by_rank() {
    let stamps = run_mode(IoMode::MRecord, 4, 3);
    assert_eq!(stamps, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
}

#[test]
fn m_global_writers_converge() {
    // All writers write identical rounds; the file holds `rounds` records
    // and each is intact (writers race but payloads per round are equal
    // in this test's usage contract — we only check integrity).
    let stamps = run_mode(IoMode::MGlobal, 3, 4);
    assert_eq!(stamps.len(), 4);
}

#[test]
fn write_returns_the_landing_offset() {
    let sim = Sim::new(18);
    let pfs = mount(&sim, 2, 2);
    let h = sim.spawn(async move {
        let id = pfs
            .create("/pfs/off", StripeAttrs::across(2, 4096))
            .await
            .unwrap();
        let f = pfs
            .open(0, 1, id, IoMode::MAsync, OpenOptions::default())
            .unwrap();
        let a = f.write(Bytes::from(vec![1u8; 1000])).await.unwrap();
        let b = f.write(Bytes::from(vec![2u8; 500])).await.unwrap();
        (a, b)
    });
    sim.run();
    assert_eq!(h.try_take(), Some((0, 1000)));
}
