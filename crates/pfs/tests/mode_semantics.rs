//! Executable semantics of the client pointer machinery: M_RECORD
//! partitioning as a property, asynchronous reads in every mode, seek
//! and rewind behaviour.

use std::rc::Rc;

use paragon_machine::{Machine, MachineConfig};
use paragon_pfs::{
    pattern_byte, pattern_slice, IoMode, OpenOptions, ParallelFs, PfsFileId, StripeAttrs,
};
use paragon_sim::{Rng, Sim};

fn mount(sim: &Sim, cn: usize, ion: usize) -> Rc<ParallelFs> {
    let machine = Rc::new(Machine::new(sim, MachineConfig::tiny_instant(cn, ion)));
    ParallelFs::new(machine)
}

async fn make_file(pfs: &ParallelFs, size: u64, seed: u64) -> PfsFileId {
    let id = pfs
        .create("/pfs/sem", StripeAttrs::across(2, 16 * 1024))
        .await
        .unwrap();
    pfs.populate_with(id, size, |i| pattern_byte(seed, i))
        .await
        .unwrap();
    id
}

/// M_RECORD's individual pointers partition the file: over any number
/// of rounds, the union of every rank's offsets tiles the prefix
/// exactly once.
#[test]
fn m_record_offsets_partition_the_file() {
    let mut rng = Rng::seed_from_u64(0x3ec0);
    let n_cases = if cfg!(feature = "heavy-tests") {
        192
    } else {
        24
    };
    for _ in 0..n_cases {
        let nprocs = rng.range_usize(1..7);
        let rounds = rng.range_u64(1..12);
        let len = rng.range_u64(1..100_000) as u32;
        let sim = Sim::new(1);
        let pfs = mount(&sim, nprocs, 2);
        let h = sim.spawn(async move {
            let id = pfs
                .create("/pfs/p", StripeAttrs::across(2, 4096))
                .await
                .unwrap();
            // Size the file so every offset is in range (content unused).
            pfs.populate_with(id, rounds * nprocs as u64 * len as u64, |_| 0)
                .await
                .unwrap();
            let mut offsets = Vec::new();
            for rank in 0..nprocs {
                let f = pfs
                    .open(rank, nprocs, id, IoMode::MRecord, OpenOptions::default())
                    .unwrap();
                for _ in 0..rounds {
                    offsets.push(f.advance_pointer(len).await);
                }
            }
            offsets
        });
        sim.run();
        let mut offsets = h.try_take().expect("completed");
        offsets.sort();
        let expect: Vec<u64> = (0..rounds * nprocs as u64)
            .map(|k| k * len as u64)
            .collect();
        assert_eq!(offsets, expect);
    }
}

#[test]
fn aread_works_in_every_mode() {
    // One node per mode issues an asynchronous read, computes, then joins.
    for mode in IoMode::all() {
        let sim = Sim::new(2);
        let pfs = mount(&sim, 1, 2);
        let h = sim.spawn(async move {
            let id = make_file(&pfs, 256 * 1024, 4).await;
            let f = pfs.open(0, 1, id, mode, OpenOptions::default()).unwrap();
            let req = f.aread(32 * 1024).await;
            let data = req.join().await.unwrap();
            data == pattern_slice(4, 0, 32 * 1024)
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true), "aread failed under {mode}");
    }
}

#[test]
fn seek_repositions_m_async() {
    let sim = Sim::new(3);
    let pfs = mount(&sim, 1, 2);
    let h = sim.spawn(async move {
        let id = make_file(&pfs, 256 * 1024, 5).await;
        let f = pfs
            .open(0, 1, id, IoMode::MAsync, OpenOptions::default())
            .unwrap();
        f.seek(100_000);
        assert_eq!(f.peek_pointer(1000), 100_000);
        let data = f.read(1000).await.unwrap();
        data == pattern_slice(5, 100_000, 1000)
    });
    sim.run();
    assert_eq!(h.try_take(), Some(true));
}

#[test]
fn rewind_restarts_the_stream() {
    let sim = Sim::new(4);
    let pfs = mount(&sim, 1, 2);
    let h = sim.spawn(async move {
        let id = make_file(&pfs, 256 * 1024, 6).await;
        let f = pfs
            .open(0, 1, id, IoMode::MRecord, OpenOptions::default())
            .unwrap();
        let a = f.read(16 * 1024).await.unwrap();
        let _b = f.read(16 * 1024).await.unwrap();
        f.rewind().await.unwrap();
        let again = f.read(16 * 1024).await.unwrap();
        a == again
    });
    sim.run();
    assert_eq!(h.try_take(), Some(true));
}

#[test]
fn shared_pointer_rewind_resets_for_everyone() {
    let sim = Sim::new(5);
    let pfs = mount(&sim, 2, 2);
    let h = sim.spawn(async move {
        let id = make_file(&pfs, 256 * 1024, 7).await;
        let f0 = pfs
            .open(0, 2, id, IoMode::MLog, OpenOptions::default())
            .unwrap();
        let f1 = pfs
            .open(1, 2, id, IoMode::MLog, OpenOptions::default())
            .unwrap();
        let a = f0.read(16 * 1024).await.unwrap();
        let _ = f1.read(16 * 1024).await.unwrap();
        f0.rewind().await.unwrap();
        // After rewind the shared pointer is back at zero; the next read
        // (from either node) gets the first record again.
        let again = f1.read(16 * 1024).await.unwrap();
        a == again
    });
    sim.run();
    assert_eq!(h.try_take(), Some(true));
}

#[test]
#[should_panic(expected = "only meaningful for M_ASYNC")]
fn seek_rejects_other_modes() {
    let sim = Sim::new(6);
    let pfs = mount(&sim, 1, 2);
    let h = sim.spawn(async move {
        let id = make_file(&pfs, 64 * 1024, 8).await;
        let f = pfs
            .open(0, 1, id, IoMode::MRecord, OpenOptions::default())
            .unwrap();
        f.seek(0);
    });
    sim.run();
    drop(h);
}

#[test]
#[should_panic(expected = "advance_pointer on shared-pointer mode")]
fn advance_pointer_rejects_shared_modes() {
    let sim = Sim::new(7);
    let pfs = mount(&sim, 1, 2);
    let h = sim.spawn(async move {
        let id = make_file(&pfs, 64 * 1024, 9).await;
        let f = pfs
            .open(0, 1, id, IoMode::MUnix, OpenOptions::default())
            .unwrap();
        f.advance_pointer(1024).await;
    });
    sim.run();
    drop(h);
}
