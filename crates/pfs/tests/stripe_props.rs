//! Property tests for the declustering math — the invariants every layer
//! above relies on.

use proptest::prelude::*;

use paragon_pfs::StripeAttrs;

fn attrs_strategy() -> impl Strategy<Value = StripeAttrs> {
    (1u64..=256 * 1024, 1usize..=16).prop_map(|(su, factor)| StripeAttrs::across(factor, su))
}

proptest! {
    /// Declustering tiles the logical extent exactly once, in order.
    #[test]
    fn decluster_tiles_exactly(
        attrs in attrs_strategy(),
        offset in 0u64..1 << 30,
        len in 1u64..4 << 20,
    ) {
        let pieces = attrs.decluster(offset, len);
        let mut pos = 0u64;
        for p in &pieces {
            prop_assert_eq!(p.logical_offset, pos);
            prop_assert!(p.len > 0 && p.len <= attrs.stripe_unit);
            prop_assert!(p.slot < attrs.factor());
            pos += p.len;
        }
        prop_assert_eq!(pos, len);
    }

    /// Offset ↔ (slot, slot_offset) is a bijection: every logical byte
    /// maps to exactly one slot byte, and Figure 3's formula holds.
    #[test]
    fn decluster_is_figure3(
        attrs in attrs_strategy(),
        offset in 0u64..1 << 30,
        len in 1u64..1 << 20,
    ) {
        for p in attrs.decluster(offset, len) {
            let abs = offset + p.logical_offset;
            let unit = abs / attrs.stripe_unit;
            prop_assert_eq!(p.slot as u64, unit % attrs.factor() as u64);
            let row = unit / attrs.factor() as u64;
            prop_assert_eq!(p.slot_offset, row * attrs.stripe_unit + abs % attrs.stripe_unit);
        }
    }

    /// Coalescing preserves every piece and produces contiguous,
    /// non-overlapping per-slot runs.
    #[test]
    fn coalesce_preserves_pieces(
        attrs in attrs_strategy(),
        offset in 0u64..1 << 28,
        len in 1u64..4 << 20,
    ) {
        let pieces = attrs.decluster(offset, len);
        let reqs = attrs.coalesce(&pieces);
        let total: u64 = reqs.iter().map(|r| r.len).sum();
        prop_assert_eq!(total, len);
        for r in &reqs {
            // Pieces tile the run contiguously.
            let mut at = r.slot_offset;
            for p in &r.pieces {
                prop_assert_eq!(p.slot, r.slot);
                prop_assert_eq!(p.slot_offset, at);
                at += p.len;
            }
            prop_assert_eq!(at, r.slot_offset + r.len);
        }
        // At most one run per (slot, disjoint region): runs on the same
        // slot must not touch (else they should have been merged).
        for (i, a) in reqs.iter().enumerate() {
            for b in reqs.iter().skip(i + 1) {
                if a.slot == b.slot {
                    let disjoint = a.slot_offset + a.len < b.slot_offset
                        || b.slot_offset + b.len < a.slot_offset;
                    prop_assert!(disjoint, "mergeable runs left unmerged");
                }
            }
        }
    }

    /// `logical_end` inverts populate's slot-size computation.
    #[test]
    fn logical_end_matches_decluster(
        attrs in attrs_strategy(),
        size in 1u64..4 << 20,
    ) {
        // Compute slot sizes by declustering the whole file.
        let mut sizes = vec![0u64; attrs.factor()];
        for p in attrs.decluster(0, size) {
            sizes[p.slot] = sizes[p.slot].max(p.slot_offset + p.len);
        }
        prop_assert_eq!(attrs.logical_end(&sizes), size);
    }
}
