//! Randomized tests for the declustering math — the invariants every
//! layer above relies on. Cases come from the in-repo [`Rng`];
//! `heavy-tests` multiplies the count.

use paragon_pfs::StripeAttrs;
use paragon_sim::Rng;

fn cases(light: usize, heavy: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        heavy
    } else {
        light
    }
}

fn rand_attrs(rng: &mut Rng) -> StripeAttrs {
    StripeAttrs::across(rng.range_usize(1..17), rng.range_u64(1..256 * 1024 + 1))
}

/// Declustering tiles the logical extent exactly once, in order.
#[test]
fn decluster_tiles_exactly() {
    let mut rng = Rng::seed_from_u64(0x7117);
    for _ in 0..cases(256, 2048) {
        let attrs = rand_attrs(&mut rng);
        let offset = rng.range_u64(0..1 << 30);
        let len = rng.range_u64(1..4 << 20);
        let pieces = attrs.decluster(offset, len);
        let mut pos = 0u64;
        for p in &pieces {
            assert_eq!(p.logical_offset, pos);
            assert!(p.len > 0 && p.len <= attrs.stripe_unit);
            assert!(p.slot < attrs.factor());
            pos += p.len;
        }
        assert_eq!(pos, len);
    }
}

/// Offset ↔ (slot, slot_offset) is a bijection: every logical byte
/// maps to exactly one slot byte, and Figure 3's formula holds.
#[test]
fn decluster_is_figure3() {
    let mut rng = Rng::seed_from_u64(0xf163);
    for _ in 0..cases(256, 2048) {
        let attrs = rand_attrs(&mut rng);
        let offset = rng.range_u64(0..1 << 30);
        let len = rng.range_u64(1..1 << 20);
        for p in attrs.decluster(offset, len) {
            let abs = offset + p.logical_offset;
            let unit = abs / attrs.stripe_unit;
            assert_eq!(p.slot as u64, unit % attrs.factor() as u64);
            let row = unit / attrs.factor() as u64;
            assert_eq!(
                p.slot_offset,
                row * attrs.stripe_unit + abs % attrs.stripe_unit
            );
        }
    }
}

/// Coalescing preserves every piece and produces contiguous,
/// non-overlapping per-slot runs.
#[test]
fn coalesce_preserves_pieces() {
    let mut rng = Rng::seed_from_u64(0xc0a1);
    for _ in 0..cases(256, 2048) {
        let attrs = rand_attrs(&mut rng);
        let offset = rng.range_u64(0..1 << 28);
        let len = rng.range_u64(1..4 << 20);
        let pieces = attrs.decluster(offset, len);
        let reqs = attrs.coalesce(&pieces);
        let total: u64 = reqs.iter().map(|r| r.len).sum();
        assert_eq!(total, len);
        for r in &reqs {
            // Pieces tile the run contiguously.
            let mut at = r.slot_offset;
            for p in &r.pieces {
                assert_eq!(p.slot, r.slot);
                assert_eq!(p.slot_offset, at);
                at += p.len;
            }
            assert_eq!(at, r.slot_offset + r.len);
        }
        // At most one run per (slot, disjoint region): runs on the same
        // slot must not touch (else they should have been merged).
        for (i, a) in reqs.iter().enumerate() {
            for b in reqs.iter().skip(i + 1) {
                if a.slot == b.slot {
                    let disjoint = a.slot_offset + a.len < b.slot_offset
                        || b.slot_offset + b.len < a.slot_offset;
                    assert!(disjoint, "mergeable runs left unmerged");
                }
            }
        }
    }
}

/// `logical_end` inverts populate's slot-size computation.
#[test]
fn logical_end_matches_decluster() {
    let mut rng = Rng::seed_from_u64(0x10e4);
    for _ in 0..cases(256, 2048) {
        let attrs = rand_attrs(&mut rng);
        let size = rng.range_u64(1..4 << 20);
        // Compute slot sizes by declustering the whole file.
        let mut sizes = vec![0u64; attrs.factor()];
        for p in attrs.decluster(0, size) {
            sizes[p.slot] = sizes[p.slot].max(p.slot_offset + p.len);
        }
        assert_eq!(attrs.logical_end(&sizes), size);
    }
}
