//! The PFS server process of one I/O node.
//!
//! Each I/O node runs one server that owns the node's UFS. Per request it
//! charges the calibrated per-request processing cost (plus the partial-
//! block penalty for requests that are not block-aligned, and the shared-
//! file consistency check for shared opens), then services the transfer
//! over the Fast Path or the buffer cache. M_GLOBAL reads are deduplicated
//! so one physical I/O feeds every node of a collective call.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::Bytes;
use paragon_sim::sync::{Semaphore, Signal};
use paragon_sim::{ev, EventKind, ReqId, Rng, Sim, SimDuration, SimTime, Track};
use paragon_ufs::Ufs;

use crate::meta::Registry;
use crate::proto::{PfsError, PfsFileId, PfsRequest, PfsResponse};

/// Server timing knobs (from the machine calibration).
#[derive(Debug, Clone)]
pub struct ServerParams {
    /// Per-request processing cost (jittered ±25 % per request: OS
    /// service times vary, which is also what staggers the initially
    /// phase-locked SPMD nodes into a pipeline, as on real machines).
    pub request_overhead: SimDuration,
    /// Extra cost for requests not aligned to the fs block size.
    pub partial_block_penalty: SimDuration,
    /// Extra cost per request on files opened shared.
    pub shared_file_check: SimDuration,
    /// File-system block size (alignment reference).
    pub fs_block: u64,
    /// Server thread pool size: requests beyond this queue FIFO. This is
    /// what aggregates per-piece overheads when a stripe unit is small
    /// enough that one client read fans out into many server requests.
    pub threads: usize,
}

/// Per-server counters.
#[derive(Debug, Default, Clone)]
pub struct ServerStats {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Requests that paid the partial-block penalty.
    pub partial_block_requests: u64,
    /// M_GLOBAL reads satisfied from another node's physical I/O.
    pub global_shares: u64,
}

/// Shared result slot of one in-progress M_GLOBAL read.
type GlobalResult = Rc<RefCell<Option<Result<Bytes, PfsError>>>>;

/// Dedup key of an M_GLOBAL read: (file, slot, offset, len).
type GlobalKey = (PfsFileId, u16, u64, u32);

struct GlobalEntry {
    done: Signal,
    data: GlobalResult,
    remaining: Rc<std::cell::Cell<u16>>,
}

/// One I/O node's PFS server.
#[derive(Clone)]
pub struct IonServer {
    sim: Sim,
    ufs: Ufs,
    ion_index: usize,
    params: Rc<ServerParams>,
    registry: Rc<RefCell<Registry>>,
    global: Rc<RefCell<BTreeMap<GlobalKey, GlobalEntry>>>,
    stats: Rc<RefCell<ServerStats>>,
    rng: Rc<RefCell<Rng>>,
    /// FIFO server thread pool.
    threads: Semaphore,
    /// Requests currently inside [`IonServer::handle`] (queued for a
    /// thread or being serviced); polled live by telemetry gauges.
    inflight: Rc<Cell<usize>>,
    /// Cumulative nanoseconds any server thread was held.
    busy_ns: Rc<Cell<u64>>,
}

impl IonServer {
    /// Create the server for I/O node `ion_index`.
    pub fn new(
        sim: &Sim,
        ufs: Ufs,
        ion_index: usize,
        params: ServerParams,
        registry: Rc<RefCell<Registry>>,
    ) -> Self {
        let rng = sim.rng(&format!("pfs-server.{ion_index}"));
        let threads = Semaphore::new(params.threads.max(1));
        IonServer {
            sim: sim.clone(),
            ufs,
            ion_index,
            params: Rc::new(params),
            registry,
            global: Rc::new(RefCell::new(BTreeMap::new())),
            stats: Rc::new(RefCell::new(ServerStats::default())),
            rng: Rc::new(RefCell::new(rng)),
            threads,
            inflight: Rc::new(Cell::new(0)),
            busy_ns: Rc::new(Cell::new(0)),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        self.stats.borrow().clone()
    }

    /// Live request-queue-depth cell (requests inside `handle`), for
    /// telemetry gauges.
    pub fn inflight_cell(&self) -> Rc<Cell<usize>> {
        self.inflight.clone()
    }

    /// Cumulative nanoseconds server threads were held so far.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.get()
    }

    fn note_busy(&self, since: SimTime) {
        self.busy_ns
            .set(self.busy_ns.get() + (self.sim.now() - since).as_nanos());
    }

    /// Service one request. Installed as this node's RPC handler.
    pub async fn handle(&self, request: PfsRequest) -> PfsResponse {
        self.inflight.set(self.inflight.get() + 1);
        let resp = self.handle_inner(request).await;
        self.inflight.set(self.inflight.get() - 1);
        resp
    }

    async fn handle_inner(&self, request: PfsRequest) -> PfsResponse {
        let ion = Track::Ion(self.ion_index as u16);
        match request {
            PfsRequest::Read {
                req,
                file,
                slot,
                offset,
                len,
                fast_path,
                shared,
                global_parties,
            } => {
                self.sim
                    .emit(|| ev(ion, EventKind::ServeStart, req, offset, len as u64));
                let result = self
                    .read(
                        file,
                        slot,
                        offset,
                        len,
                        fast_path,
                        shared,
                        global_parties,
                        req,
                    )
                    .await;
                self.sim
                    .emit(|| ev(ion, EventKind::ServeDone, req, offset, len as u64));
                PfsResponse::Data(result)
            }
            PfsRequest::Write {
                req,
                file,
                slot,
                offset,
                data,
                fast_path,
                shared,
            } => {
                let len = data.len() as u64;
                self.sim
                    .emit(|| ev(ion, EventKind::ServeStart, req, offset, len));
                let result = self
                    .write(file, slot, offset, data, fast_path, shared, req)
                    .await;
                self.sim
                    .emit(|| ev(ion, EventKind::ServeDone, req, offset, len));
                PfsResponse::WriteAck(result)
            }
            PfsRequest::Ptr(_) => {
                // Pointer operations belong on the service node; answer a
                // misrouted one with an error instead of crashing the node.
                PfsResponse::Ptr(Err(PfsError::BadRequest))
            }
            PfsRequest::StageReplica {
                req,
                file,
                slot,
                crashed_ion,
            } => {
                self.sim
                    .emit(|| ev(ion, EventKind::ServeStart, req, slot as u64, 0));
                let result = self.stage_replica(file, slot, crashed_ion).await;
                self.sim
                    .emit(|| ev(ion, EventKind::ServeDone, req, slot as u64, 0));
                PfsResponse::Staged(result)
            }
            PfsRequest::CommitReplica {
                req,
                file,
                slot,
                crashed_ion,
            } => {
                self.sim
                    .emit(|| ev(ion, EventKind::ServeStart, req, slot as u64, 0));
                let result = self.promote_replica(file, slot, crashed_ion).await;
                self.sim
                    .emit(|| ev(ion, EventKind::ServeDone, req, slot as u64, 0));
                PfsResponse::Staged(result)
            }
        }
    }

    /// Create a staging copy of `slot` on this node's UFS and register it
    /// in this node's view of the file table. The rebuild coordinator
    /// sends this when it cannot touch the target node's UFS directly
    /// (the node lives in another shard's world); the reply carries the
    /// staging inode so the coordinator can mirror its own table.
    async fn stage_replica(
        &self,
        file: PfsFileId,
        slot: u16,
        crashed_ion: u16,
    ) -> Result<u64, PfsError> {
        let _thread = self.threads.acquire().await;
        let held = self.sim.now();
        self.charge_overheads(0, 0, false).await;
        // Resolve the staging name without holding the registry borrow
        // across the UFS create (the server handles requests concurrently).
        let name = {
            let registry = self.registry.borrow();
            let meta = registry.get(file)?;
            meta.slot(slot)?;
            format!("{}.{}.rb{crashed_ion}", meta.name, slot)
        };
        let inode = self.ufs.create(&name).await?;
        {
            let registry = self.registry.borrow();
            let meta = registry.get(file)?;
            meta.add_staging_replica(slot, self.ion_index, inode);
        }
        self.note_busy(held);
        Ok(inode.0)
    }

    /// Promote this node's staging copy of `slot` to ready, retiring the
    /// crashed node's lost copy — the commit half of a cross-world
    /// re-replication.
    async fn promote_replica(
        &self,
        file: PfsFileId,
        slot: u16,
        crashed_ion: u16,
    ) -> Result<u64, PfsError> {
        let _thread = self.threads.acquire().await;
        let held = self.sim.now();
        self.charge_overheads(0, 0, false).await;
        {
            let registry = self.registry.borrow();
            let meta = registry.get(file)?;
            // This node must actually hold a copy to promote.
            meta.inode_on(slot, self.ion_index)?;
            meta.commit_replica(slot, self.ion_index, crashed_ion as usize);
        }
        self.note_busy(held);
        Ok(0)
    }

    async fn charge_overheads(&self, offset: u64, len: u64, shared: bool) {
        let mut cost = self.params.request_overhead;
        if shared {
            cost += self.params.shared_file_check;
        }
        if !offset.is_multiple_of(self.params.fs_block) || !len.is_multiple_of(self.params.fs_block)
        {
            cost += self.params.partial_block_penalty;
            self.stats.borrow_mut().partial_block_requests += 1;
        }
        if !cost.is_zero() {
            // ±25 % service-time variability (deterministic per seed).
            let f = 1.0 + self.rng.borrow_mut().range_f64(-0.25..0.25);
            cost = SimDuration::from_nanos((cost.as_nanos() as f64 * f).round() as u64);
        }
        self.sim.sleep(cost).await;
    }

    fn resolve(&self, file: PfsFileId, slot: u16) -> Result<paragon_ufs::InodeId, PfsError> {
        let registry = self.registry.borrow();
        let meta = registry.get(file)?;
        // Replica-aware: serve whichever copy of the slot lives here
        // (staging copies included, so rebuild writes land). A request
        // routed to a node holding no copy is a `BadSlot` error reply,
        // not a crash.
        meta.inode_on(slot, self.ion_index)
    }

    #[allow(clippy::too_many_arguments)]
    async fn read(
        &self,
        file: PfsFileId,
        slot: u16,
        offset: u64,
        len: u32,
        fast_path: bool,
        shared: bool,
        global_parties: u16,
        req: ReqId,
    ) -> Result<Bytes, PfsError> {
        self.stats.borrow_mut().reads += 1;
        if global_parties > 1 {
            return self
                .global_read(
                    file,
                    slot,
                    offset,
                    len,
                    fast_path,
                    shared,
                    global_parties,
                    req,
                )
                .await;
        }
        // Occupy a server thread for the request's processing + transfer.
        let _thread = self.threads.acquire().await;
        let held = self.sim.now();
        self.charge_overheads(offset, len as u64, shared).await;
        let result = self
            .physical_read(file, slot, offset, len, fast_path, req)
            .await;
        self.note_busy(held);
        let data = result?;
        self.stats.borrow_mut().bytes_read += len as u64;
        Ok(data)
    }

    /// M_GLOBAL: the first arrival does the physical I/O; the other
    /// `parties - 1` arrivals wait on it and share the result.
    #[allow(clippy::too_many_arguments)]
    async fn global_read(
        &self,
        file: PfsFileId,
        slot: u16,
        offset: u64,
        len: u32,
        fast_path: bool,
        shared: bool,
        parties: u16,
        req: ReqId,
    ) -> Result<Bytes, PfsError> {
        // Every arrival pays its processing on a thread, but *waiting*
        // for another node's physical read must not hold one (a full
        // pool of waiters would deadlock the initiator).
        {
            let _thread = self.threads.acquire().await;
            let held = self.sim.now();
            self.charge_overheads(offset, len as u64, shared).await;
            self.note_busy(held);
        }
        let key = (file, slot, offset, len);
        let existing = {
            let map = self.global.borrow();
            map.get(&key)
                .map(|e| (e.done.clone(), e.data.clone(), e.remaining.clone()))
        };
        match existing {
            Some((done, data, remaining)) => {
                done.wait().await;
                // The initiator stores the result before setting the
                // signal; a missing result means the reply path broke.
                let result = data.borrow().clone().unwrap_or(Err(PfsError::BadReply));
                self.consume_global(key, &remaining);
                self.stats.borrow_mut().global_shares += 1;
                if result.is_ok() {
                    self.stats.borrow_mut().bytes_read += len as u64;
                }
                result
            }
            None => {
                let entry = GlobalEntry {
                    done: Signal::new(),
                    data: Rc::new(RefCell::new(None)),
                    remaining: Rc::new(std::cell::Cell::new(parties)),
                };
                let done = entry.done.clone();
                let data = entry.data.clone();
                let remaining = entry.remaining.clone();
                self.global.borrow_mut().insert(key, entry);
                let _thread = self.threads.acquire().await;
                let held = self.sim.now();
                let result = self
                    .physical_read(file, slot, offset, len, fast_path, req)
                    .await;
                self.note_busy(held);
                *data.borrow_mut() = Some(result.clone());
                done.set();
                self.consume_global(key, &remaining);
                if result.is_ok() {
                    self.stats.borrow_mut().bytes_read += len as u64;
                }
                result
            }
        }
    }

    fn consume_global(&self, key: GlobalKey, remaining: &Rc<std::cell::Cell<u16>>) {
        // Saturating: a retried or mesh-duplicated M_GLOBAL read can
        // consume the same party slot twice; never underflow the count.
        let left = remaining.get().saturating_sub(1);
        remaining.set(left);
        if left == 0 {
            self.global.borrow_mut().remove(&key);
        }
    }

    async fn physical_read(
        &self,
        file: PfsFileId,
        slot: u16,
        offset: u64,
        len: u32,
        fast_path: bool,
        req: ReqId,
    ) -> Result<Bytes, PfsError> {
        let inode = self.resolve(file, slot)?;
        let data = if fast_path {
            self.ufs.read_direct_req(inode, offset, len, req).await?
        } else {
            self.ufs.read_cached_req(inode, offset, len, req).await?
        };
        Ok(data)
    }

    #[allow(clippy::too_many_arguments)]
    async fn write(
        &self,
        file: PfsFileId,
        slot: u16,
        offset: u64,
        data: Bytes,
        fast_path: bool,
        shared: bool,
        _req: ReqId,
    ) -> Result<u32, PfsError> {
        let _thread = self.threads.acquire().await;
        let held = self.sim.now();
        self.charge_overheads(offset, data.len() as u64, shared)
            .await;
        let len = data.len() as u32;
        let result: Result<(), PfsError> = match self.resolve(file, slot) {
            Ok(inode) => {
                let w = if fast_path {
                    self.ufs.write(inode, offset, data).await
                } else {
                    self.ufs.write_cached(inode, offset, data).await
                };
                w.map(|_| ()).map_err(PfsError::from)
            }
            Err(e) => Err(e),
        };
        self.note_busy(held);
        result?;
        let mut st = self.stats.borrow_mut();
        st.writes += 1;
        st.bytes_written += len as u64;
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stripe::StripeAttrs;
    use paragon_disk::{DiskParams, RaidArray, SchedPolicy};
    use paragon_ufs::UfsParams;

    fn setup(sim: &Sim) -> (IonServer, PfsFileId) {
        let raid = RaidArray::new(
            sim,
            DiskParams::ideal(1e8),
            SchedPolicy::Fifo,
            1,
            64 * 1024,
            "s",
        );
        let mut up = UfsParams::paragon();
        up.metadata_op = SimDuration::ZERO;
        let ufs = Ufs::new(sim, raid, up);
        let registry = Rc::new(RefCell::new(Registry::new()));
        let params = ServerParams {
            request_overhead: SimDuration::from_micros(100),
            partial_block_penalty: SimDuration::from_micros(500),
            shared_file_check: SimDuration::from_micros(50),
            fs_block: 64 * 1024,
            threads: 4,
        };
        let server = IonServer::new(sim, ufs.clone(), 0, params, registry.clone());
        // Create the stripe file and register it.
        let ufs2 = ufs.clone();
        let reg2 = registry.clone();
        let h = sim.spawn(async move {
            let inode = ufs2.create("/pfs/f.0").await.unwrap();
            reg2.borrow_mut().insert(
                "/pfs/f",
                StripeAttrs::across(1, 64 * 1024),
                vec![(0, inode)],
            )
        });
        sim.run();
        (server, h.try_take().unwrap())
    }

    #[test]
    fn write_then_read_roundtrips() {
        let sim = Sim::new(1);
        let (server, file) = setup(&sim);
        let s2 = server.clone();
        let h = sim.spawn(async move {
            let payload = Bytes::from(vec![0x5au8; 128 * 1024]);
            let req = PfsRequest::Write {
                req: 0,
                file,
                slot: 0,
                offset: 0,
                data: payload.clone(),
                fast_path: true,
                shared: false,
            };
            let PfsResponse::WriteAck(Ok(n)) = s2.handle(req).await else {
                panic!("write failed")
            };
            let req = PfsRequest::Read {
                req: 0,
                file,
                slot: 0,
                offset: 0,
                len: 128 * 1024,
                fast_path: true,
                shared: false,
                global_parties: 0,
            };
            let PfsResponse::Data(Ok(data)) = s2.handle(req).await else {
                panic!("read failed")
            };
            (n, data == payload)
        });
        sim.run();
        assert_eq!(h.try_take(), Some((128 * 1024, true)));
        let st = server.stats();
        assert_eq!((st.reads, st.writes), (1, 1));
    }

    #[test]
    fn unaligned_requests_pay_the_partial_penalty() {
        let sim = Sim::new(1);
        let (server, file) = setup(&sim);
        let s2 = server.clone();
        sim.spawn(async move {
            let data = Bytes::from(vec![1u8; 128 * 1024]);
            s2.handle(PfsRequest::Write {
                req: 0,
                file,
                slot: 0,
                offset: 0,
                data,
                fast_path: true,
                shared: false,
            })
            .await;
            // 1000-byte read at offset 13: doubly unaligned.
            s2.handle(PfsRequest::Read {
                req: 0,
                file,
                slot: 0,
                offset: 13,
                len: 1000,
                fast_path: true,
                shared: false,
                global_parties: 0,
            })
            .await;
        });
        sim.run();
        assert_eq!(server.stats().partial_block_requests, 1);
    }

    #[test]
    fn global_read_does_one_physical_io() {
        let sim = Sim::new(1);
        let (server, file) = setup(&sim);
        let writer = server.clone();
        sim.spawn(async move {
            writer
                .handle(PfsRequest::Write {
                    req: 0,
                    file,
                    slot: 0,
                    offset: 0,
                    data: Bytes::from(vec![9u8; 64 * 1024]),
                    fast_path: true,
                    shared: false,
                })
                .await;
        });
        sim.run();
        let before = server.ufs.stats().direct_reads;
        // Four "nodes" issue the identical global read.
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s2 = server.clone();
            handles.push(sim.spawn(async move {
                let PfsResponse::Data(Ok(data)) = s2
                    .handle(PfsRequest::Read {
                        req: 0,
                        file,
                        slot: 0,
                        offset: 0,
                        len: 64 * 1024,
                        fast_path: true,
                        shared: true,
                        global_parties: 4,
                    })
                    .await
                else {
                    panic!("global read failed")
                };
                data.len()
            }));
        }
        sim.run();
        for h in handles {
            assert_eq!(h.try_take(), Some(64 * 1024));
        }
        assert_eq!(server.ufs.stats().direct_reads - before, 1);
        assert_eq!(server.stats().global_shares, 3);
        // The dedup entry must be cleaned up for the next collective.
        assert!(server.global.borrow().is_empty());
    }

    #[test]
    fn read_past_eof_surfaces_as_pfs_error() {
        let sim = Sim::new(1);
        let (server, file) = setup(&sim);
        let s2 = server.clone();
        let h = sim.spawn(async move {
            let PfsResponse::Data(result) = s2
                .handle(PfsRequest::Read {
                    req: 0,
                    file,
                    slot: 0,
                    offset: 0,
                    len: 4096,
                    fast_path: true,
                    shared: false,
                    global_parties: 0,
                })
                .await
            else {
                panic!("wrong response kind")
            };
            result.is_err()
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }
}
