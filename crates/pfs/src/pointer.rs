//! The shared-file-pointer server.
//!
//! Shared-pointer modes (M_UNIX, M_LOG, M_SYNC) coordinate through one
//! service-node process that owns the pointer of every shared PFS file:
//!
//! * **M_UNIX** — a FIFO token: the holder reads at the pointer and
//!   releases with the advance; everyone else queues. This is what makes
//!   M_UNIX serialize.
//! * **M_LOG** — fetch-and-add: reserve a range and go; transfers overlap.
//! * **M_SYNC** — a collective: all ranks must arrive, then node-ordered
//!   ranges are released at once.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use paragon_sim::sync::{oneshot, OneshotSender, Semaphore};
use paragon_sim::{ev, EventKind, Sim, SimDuration, Track};

use crate::proto::{PfsError, PfsFileId, PtrRequest};

#[derive(Default)]
struct FilePtr {
    offset: u64,
    token_held: bool,
    token_queue: VecDeque<OneshotSender<u64>>,
    sync_waiters: Vec<(u16, u64, OneshotSender<u64>)>,
}

/// Pointer-server counters.
#[derive(Debug, Default, Clone)]
pub struct PointerStats {
    pub ops: u64,
    /// Deepest M_UNIX token queue observed (contention diagnostic).
    pub max_token_queue: usize,
}

/// The pointer state machine. The PFS mounts it on the service node; unit
/// tests drive it directly.
#[derive(Clone)]
pub struct PointerServer {
    sim: Sim,
    op_cost: SimDuration,
    /// The pointer server is one OS process: operations serialize on it.
    gate: Semaphore,
    files: Rc<RefCell<BTreeMap<PfsFileId, FilePtr>>>,
    stats: Rc<RefCell<PointerStats>>,
}

impl PointerServer {
    /// Create a pointer server charging `op_cost` per (serialized)
    /// operation.
    pub fn new(sim: &Sim, op_cost: SimDuration) -> Self {
        PointerServer {
            sim: sim.clone(),
            op_cost,
            gate: Semaphore::new(1),
            files: Rc::new(RefCell::new(BTreeMap::new())),
            stats: Rc::new(RefCell::new(PointerStats::default())),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PointerStats {
        self.stats.borrow().clone()
    }

    /// Current pointer of `file` (0 if never touched).
    pub fn pointer(&self, file: PfsFileId) -> u64 {
        self.files
            .borrow()
            .get(&file)
            .map(|f| f.offset)
            .unwrap_or(0)
    }

    /// Service one pointer operation; resolves to the relevant offset,
    /// or [`PfsError::ServiceLost`] if the server abandoned the caller
    /// mid-operation. The op-cost section is serialized (one server
    /// process); waiting on a token or a collective happens *outside*
    /// the serialized section, so a held M_UNIX token never blocks
    /// unrelated operations.
    pub async fn handle(&self, req: PtrRequest) -> Result<u64, PfsError> {
        let gate = self.gate.acquire().await;
        self.sim.sleep(self.op_cost).await;
        self.stats.borrow_mut().ops += 1;
        drop(gate);
        let res: Result<u64, PfsError> = match req {
            PtrRequest::UnixAcquire { file } => {
                let waiter = {
                    let mut files = self.files.borrow_mut();
                    let f = files.entry(file).or_default();
                    if !f.token_held {
                        f.token_held = true;
                        None
                    } else {
                        let (tx, rx) = oneshot();
                        f.token_queue.push_back(tx);
                        let depth = f.token_queue.len();
                        let mut st = self.stats.borrow_mut();
                        st.max_token_queue = st.max_token_queue.max(depth);
                        Some(rx)
                    }
                };
                match waiter {
                    None => Ok(self.pointer(file)),
                    Some(rx) => rx.await.map_err(|_| PfsError::ServiceLost),
                }
            }
            PtrRequest::UnixRelease { file, advance } => {
                let mut files = self.files.borrow_mut();
                let f = files.entry(file).or_default();
                assert!(f.token_held, "UnixRelease without a held token");
                f.offset += advance;
                let new_offset = f.offset;
                if let Some(next) = f.token_queue.pop_front() {
                    // Token passes directly to the next waiter.
                    next.send(new_offset);
                } else {
                    f.token_held = false;
                }
                Ok(new_offset)
            }
            PtrRequest::LogFetchAdd { file, len } => {
                let mut files = self.files.borrow_mut();
                let f = files.entry(file).or_default();
                let at = f.offset;
                f.offset += len;
                Ok(at)
            }
            PtrRequest::SyncArrive {
                file,
                rank,
                nprocs,
                len,
            } => {
                let rx = {
                    let mut files = self.files.borrow_mut();
                    let f = files.entry(file).or_default();
                    let (tx, rx) = oneshot();
                    assert!(
                        !f.sync_waiters.iter().any(|(r, _, _)| *r == rank),
                        "rank {rank} arrived twice at an M_SYNC collective"
                    );
                    f.sync_waiters.push((rank, len, tx));
                    if f.sync_waiters.len() == nprocs as usize {
                        // Everyone is here: assign node-ordered ranges.
                        let mut arrivals = std::mem::take(&mut f.sync_waiters);
                        arrivals.sort_by_key(|(r, _, _)| *r);
                        let mut at = f.offset;
                        for (_, want, tx) in arrivals {
                            tx.send(at);
                            at += want;
                        }
                        f.offset = at;
                    }
                    rx
                };
                rx.await.map_err(|_| PfsError::ServiceLost)
            }
            PtrRequest::Rewind { file } => {
                let mut files = self.files.borrow_mut();
                let f = files.entry(file).or_default();
                assert!(
                    !f.token_held && f.sync_waiters.is_empty(),
                    "rewind while pointer operations are outstanding"
                );
                f.offset = 0;
                Ok(0)
            }
        };
        if let Ok(at) = res {
            // Flight-recorder record of the completed pointer operation:
            // `a` carries the offset the caller was handed.
            self.sim.emit(|| ev(Track::Svc, EventKind::PtrOp, 0, at, 0));
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: PfsFileId = PfsFileId(0);

    fn server(sim: &Sim) -> PointerServer {
        PointerServer::new(sim, SimDuration::ZERO)
    }

    #[test]
    fn unix_token_serializes_and_is_fifo() {
        let sim = Sim::new(1);
        let ps = server(&sim);
        let log: Rc<RefCell<Vec<(u16, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        for rank in 0..3u16 {
            let ps2 = ps.clone();
            let s = sim.clone();
            let log2 = log.clone();
            sim.spawn(async move {
                // Stagger arrivals so queue order is 0,1,2.
                s.sleep(SimDuration::from_micros(rank as u64)).await;
                let at = ps2
                    .handle(PtrRequest::UnixAcquire { file: F })
                    .await
                    .unwrap();
                s.sleep(SimDuration::from_millis(10)).await; // "the I/O"
                ps2.handle(PtrRequest::UnixRelease {
                    file: F,
                    advance: 100,
                })
                .await
                .unwrap();
                log2.borrow_mut().push((rank, at));
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![(0, 0), (1, 100), (2, 200)]);
        assert_eq!(ps.stats().max_token_queue, 2);
    }

    #[test]
    fn log_fetch_add_reserves_disjoint_ranges() {
        let sim = Sim::new(1);
        let ps = server(&sim);
        let offsets: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..4 {
            let ps2 = ps.clone();
            let o = offsets.clone();
            sim.spawn(async move {
                let at = ps2
                    .handle(PtrRequest::LogFetchAdd { file: F, len: 64 })
                    .await
                    .unwrap();
                o.borrow_mut().push(at);
            });
        }
        sim.run();
        let mut got = offsets.borrow().clone();
        got.sort();
        assert_eq!(got, vec![0, 64, 128, 192]);
        assert_eq!(ps.pointer(F), 256);
    }

    #[test]
    fn sync_arrive_blocks_until_all_ranks_arrive() {
        let sim = Sim::new(1);
        let ps = server(&sim);
        let releases: Rc<RefCell<Vec<(u16, u64, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        // Ranks arrive out of order and with different sizes; offsets must
        // still come out in node order.
        for (rank, delay_ms, len) in [(2u16, 5u64, 300u64), (0, 10, 100), (1, 1, 200)] {
            let ps2 = ps.clone();
            let s = sim.clone();
            let r2 = releases.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_millis(delay_ms)).await;
                let at = ps2
                    .handle(PtrRequest::SyncArrive {
                        file: F,
                        rank,
                        nprocs: 3,
                        len,
                    })
                    .await
                    .unwrap();
                r2.borrow_mut().push((rank, at, s.now().as_millis_round()));
            });
        }
        sim.run();
        let mut got = releases.borrow().clone();
        got.sort_by_key(|&(r, _, _)| r);
        // Node-ordered offsets: rank0 at 0 (100 B), rank1 at 100 (200 B),
        // rank2 at 300; all released at the last arrival (10 ms).
        assert_eq!(got, vec![(0, 0, 10), (1, 100, 10), (2, 300, 10)]);
        assert_eq!(ps.pointer(F), 600);
    }

    #[test]
    fn sync_generations_do_not_mix_across_files() {
        let sim = Sim::new(1);
        let ps = server(&sim);
        let g = PfsFileId(9);
        let ps2 = ps.clone();
        let h = sim.spawn(async move {
            let a = ps2
                .handle(PtrRequest::LogFetchAdd { file: F, len: 10 })
                .await
                .unwrap();
            let b = ps2
                .handle(PtrRequest::LogFetchAdd { file: g, len: 20 })
                .await
                .unwrap();
            (a, b)
        });
        sim.run();
        assert_eq!(h.try_take(), Some((0, 0)));
        assert_eq!(ps.pointer(F), 10);
        assert_eq!(ps.pointer(g), 20);
    }

    #[test]
    fn rewind_resets_pointer() {
        let sim = Sim::new(1);
        let ps = server(&sim);
        let ps2 = ps.clone();
        sim.spawn(async move {
            ps2.handle(PtrRequest::LogFetchAdd { file: F, len: 512 })
                .await
                .unwrap();
            ps2.handle(PtrRequest::Rewind { file: F }).await.unwrap();
        });
        sim.run();
        assert_eq!(ps.pointer(F), 0);
    }

    #[test]
    fn op_cost_is_charged() {
        let sim = Sim::new(1);
        let ps = PointerServer::new(&sim, SimDuration::from_micros(200));
        let s = sim.clone();
        let ps2 = ps.clone();
        let h = sim.spawn(async move {
            ps2.handle(PtrRequest::LogFetchAdd { file: F, len: 1 })
                .await
                .unwrap();
            s.now().as_nanos()
        });
        sim.run();
        assert_eq!(h.try_take(), Some(200_000));
    }
}
