//! PFS file metadata.
//!
//! One machine-wide registry maps a [`PfsFileId`] to its stripe attributes
//! and the per-slot UFS inodes. In the Paragon this lived in the mount
//! metadata replicated to the servers; here it is a shared table the
//! client library and the I/O-node servers both consult (metadata RPCs are
//! folded into the calibrated per-request server cost).

use paragon_ufs::InodeId;

use crate::proto::{PfsError, PfsFileId};
use crate::stripe::StripeAttrs;

/// Metadata of one PFS file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Machine-wide id.
    pub id: PfsFileId,
    /// Mount-relative name.
    pub name: String,
    /// Stripe layout.
    pub attrs: StripeAttrs,
    /// Per group slot: `(I/O-node index, inode of that slot's stripe file)`.
    pub slots: Vec<(usize, InodeId)>,
}

impl FileMeta {
    /// Resolve a slot to its I/O node and inode.
    pub fn slot(&self, slot: u16) -> Result<(usize, InodeId), PfsError> {
        self.slots
            .get(slot as usize)
            .copied()
            .ok_or(PfsError::BadSlot {
                slot,
                factor: self.slots.len(),
            })
    }
}

/// The machine-wide file table. Removed files leave tombstones so ids
/// stay stable.
#[derive(Debug, Default)]
pub struct Registry {
    files: Vec<Option<FileMeta>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new file and return its id.
    pub fn insert(
        &mut self,
        name: &str,
        attrs: StripeAttrs,
        slots: Vec<(usize, InodeId)>,
    ) -> PfsFileId {
        assert_eq!(
            attrs.factor(),
            slots.len(),
            "slot list does not match stripe factor"
        );
        let id = PfsFileId(self.files.len() as u32);
        self.files.push(Some(FileMeta {
            id,
            name: name.to_owned(),
            attrs,
            slots,
        }));
        id
    }

    /// Look a file up by id.
    pub fn get(&self, id: PfsFileId) -> Result<&FileMeta, PfsError> {
        self.files
            .get(id.0 as usize)
            .and_then(|f| f.as_ref())
            .ok_or(PfsError::UnknownFile(id))
    }

    /// Look a file up by name.
    pub fn lookup(&self, name: &str) -> Option<&FileMeta> {
        self.files.iter().flatten().find(|f| f.name == name)
    }

    /// Remove a file, returning its metadata (for slot-file cleanup).
    pub fn remove(&mut self, id: PfsFileId) -> Result<FileMeta, PfsError> {
        self.files
            .get_mut(id.0 as usize)
            .and_then(|f| f.take())
            .ok_or(PfsError::UnknownFile(id))
    }

    /// Iterate over live files.
    pub fn iter(&self) -> impl Iterator<Item = &FileMeta> {
        self.files.iter().flatten()
    }

    /// Number of live files.
    pub fn len(&self) -> usize {
        self.files.iter().flatten().count()
    }

    /// True when no live files exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_resolve() {
        let mut r = Registry::new();
        let attrs = StripeAttrs::across(2, 64 * 1024);
        let id = r.insert("/pfs/a", attrs, vec![(0, InodeId(0)), (1, InodeId(0))]);
        assert_eq!(id, PfsFileId(0));
        let meta = r.get(id).unwrap();
        assert_eq!(meta.slot(1).unwrap(), (1, InodeId(0)));
        assert!(matches!(
            meta.slot(2),
            Err(PfsError::BadSlot { slot: 2, factor: 2 })
        ));
        assert!(r.lookup("/pfs/a").is_some());
        assert!(r.lookup("/pfs/b").is_none());
    }

    #[test]
    fn remove_leaves_a_tombstone() {
        let mut r = Registry::new();
        let attrs = StripeAttrs::across(1, 1024);
        let a = r.insert("/a", attrs.clone(), vec![(0, InodeId(0))]);
        let b = r.insert("/b", attrs, vec![(0, InodeId(1))]);
        let meta = r.remove(a).unwrap();
        assert_eq!(meta.name, "/a");
        assert!(matches!(r.get(a), Err(PfsError::UnknownFile(_))));
        assert!(r.remove(a).is_err(), "double remove must fail");
        // Ids stay stable: /b is still where it was.
        assert_eq!(r.get(b).unwrap().name, "/b");
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().count(), 1);
    }

    #[test]
    fn unknown_file_is_an_error() {
        let r = Registry::new();
        assert!(matches!(
            r.get(PfsFileId(3)),
            Err(PfsError::UnknownFile(PfsFileId(3)))
        ));
    }
}
