//! PFS file metadata.
//!
//! One machine-wide registry maps a [`PfsFileId`] to its stripe attributes
//! and the per-slot UFS inodes. In the Paragon this lived in the mount
//! metadata replicated to the servers; here it is a shared table the
//! client library and the I/O-node servers both consult (metadata RPCs are
//! folded into the calibrated per-request server cost).

use std::cell::RefCell;
use std::rc::Rc;

use paragon_ufs::InodeId;

use crate::proto::{PfsError, PfsFileId};
use crate::stripe::StripeAttrs;

/// One physical copy of a stripe slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replica {
    /// I/O node hosting this copy.
    pub ion: usize,
    /// Inode of the copy's stripe file on that node's UFS.
    pub inode: InodeId,
    /// Readable. A rebuild target starts `false` (staging): the server
    /// resolves it so recovery writes land, but readers never choose it
    /// until the copy is complete and committed.
    pub ready: bool,
}

/// Per-slot replica lists of one file, shared between every clone of its
/// [`FileMeta`] (open handles, servers, and the recovery coordinator all
/// see replacement replicas the moment they commit).
#[derive(Debug, Clone, Default)]
pub struct SlotReplicas {
    table: Rc<RefCell<Vec<Vec<Replica>>>>,
}

impl SlotReplicas {
    fn new(table: Vec<Vec<Replica>>) -> Self {
        SlotReplicas {
            table: Rc::new(RefCell::new(table)),
        }
    }

    fn get(&self, slot: usize) -> Option<Vec<Replica>> {
        self.table.borrow().get(slot).cloned()
    }
}

/// Metadata of one PFS file.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Machine-wide id.
    pub id: PfsFileId,
    /// Mount-relative name.
    pub name: String,
    /// Stripe layout.
    pub attrs: StripeAttrs,
    /// Per group slot: `(I/O-node index, inode of that slot's stripe
    /// file)` — the *primary* (initial) placement. Replicated mounts
    /// keep further copies in [`FileMeta::replicas`].
    pub slots: Vec<(usize, InodeId)>,
    /// Every live copy of every slot, primary first. Shared across
    /// clones (interior `Rc`), so recovery-time replacements are seen by
    /// open handles.
    pub replicas: SlotReplicas,
}

impl FileMeta {
    /// Resolve a slot to its primary I/O node and inode.
    pub fn slot(&self, slot: u16) -> Result<(usize, InodeId), PfsError> {
        self.slots
            .get(slot as usize)
            .copied()
            .ok_or(PfsError::BadSlot {
                slot,
                factor: self.slots.len(),
            })
    }

    /// Every copy of `slot` (ready and staging), preference order.
    pub fn slot_replicas(&self, slot: u16) -> Result<Vec<Replica>, PfsError> {
        self.replicas.get(slot as usize).ok_or(PfsError::BadSlot {
            slot,
            factor: self.slots.len(),
        })
    }

    /// Readable copies of `slot`, preference order (primary first).
    pub fn readable_replicas(&self, slot: u16) -> Result<Vec<Replica>, PfsError> {
        Ok(self
            .slot_replicas(slot)?
            .into_iter()
            .filter(|r| r.ready)
            .collect())
    }

    /// The inode of `slot`'s copy hosted on I/O node `ion`, staging
    /// included (servers resolve incoming requests with this).
    pub fn inode_on(&self, slot: u16, ion: usize) -> Result<InodeId, PfsError> {
        self.slot_replicas(slot)?
            .iter()
            .find(|r| r.ion == ion)
            .map(|r| r.inode)
            .ok_or(PfsError::BadSlot {
                slot,
                factor: self.slots.len(),
            })
    }

    /// Register a staging copy of `slot` on `ion` (rebuild target).
    /// Not readable until [`FileMeta::commit_replica`].
    pub fn add_staging_replica(&self, slot: u16, ion: usize, inode: InodeId) {
        let mut table = self.replicas.table.borrow_mut();
        if let Some(list) = table.get_mut(slot as usize) {
            list.push(Replica {
                ion,
                inode,
                ready: false,
            });
        }
    }

    /// Mark the staging copy of `slot` on `ion` readable and drop the
    /// copy it replaces (`lost_ion`), completing one re-replication.
    pub fn commit_replica(&self, slot: u16, ion: usize, lost_ion: usize) {
        let mut table = self.replicas.table.borrow_mut();
        if let Some(list) = table.get_mut(slot as usize) {
            for r in list.iter_mut() {
                if r.ion == ion {
                    r.ready = true;
                }
            }
            list.retain(|r| r.ion != lost_ion);
        }
    }
}

/// The machine-wide file table. Removed files leave tombstones so ids
/// stay stable.
#[derive(Debug, Default)]
pub struct Registry {
    files: Vec<Option<FileMeta>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new single-copy file and return its id.
    pub fn insert(
        &mut self,
        name: &str,
        attrs: StripeAttrs,
        slots: Vec<(usize, InodeId)>,
    ) -> PfsFileId {
        let replicas = slots
            .iter()
            .map(|&(ion, inode)| {
                vec![Replica {
                    ion,
                    inode,
                    ready: true,
                }]
            })
            .collect();
        self.insert_replicated(name, attrs, slots, replicas)
    }

    /// Register a file with explicit per-slot replica lists (entry 0 of
    /// each list is the primary; `slots` must match the primaries).
    pub fn insert_replicated(
        &mut self,
        name: &str,
        attrs: StripeAttrs,
        slots: Vec<(usize, InodeId)>,
        replicas: Vec<Vec<Replica>>,
    ) -> PfsFileId {
        assert_eq!(
            attrs.factor(),
            slots.len(),
            "slot list does not match stripe factor"
        );
        assert_eq!(
            slots.len(),
            replicas.len(),
            "replica table does not match stripe factor"
        );
        let id = PfsFileId(self.files.len() as u32);
        self.files.push(Some(FileMeta {
            id,
            name: name.to_owned(),
            attrs,
            slots,
            replicas: SlotReplicas::new(replicas),
        }));
        id
    }

    /// Look a file up by id.
    pub fn get(&self, id: PfsFileId) -> Result<&FileMeta, PfsError> {
        self.files
            .get(id.0 as usize)
            .and_then(|f| f.as_ref())
            .ok_or(PfsError::UnknownFile(id))
    }

    /// Look a file up by name.
    pub fn lookup(&self, name: &str) -> Option<&FileMeta> {
        self.files.iter().flatten().find(|f| f.name == name)
    }

    /// Remove a file, returning its metadata (for slot-file cleanup).
    pub fn remove(&mut self, id: PfsFileId) -> Result<FileMeta, PfsError> {
        self.files
            .get_mut(id.0 as usize)
            .and_then(|f| f.take())
            .ok_or(PfsError::UnknownFile(id))
    }

    /// Iterate over live files.
    pub fn iter(&self) -> impl Iterator<Item = &FileMeta> {
        self.files.iter().flatten()
    }

    /// Number of live files.
    pub fn len(&self) -> usize {
        self.files.iter().flatten().count()
    }

    /// True when no live files exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_resolve() {
        let mut r = Registry::new();
        let attrs = StripeAttrs::across(2, 64 * 1024);
        let id = r.insert("/pfs/a", attrs, vec![(0, InodeId(0)), (1, InodeId(0))]);
        assert_eq!(id, PfsFileId(0));
        let meta = r.get(id).unwrap();
        assert_eq!(meta.slot(1).unwrap(), (1, InodeId(0)));
        assert!(matches!(
            meta.slot(2),
            Err(PfsError::BadSlot { slot: 2, factor: 2 })
        ));
        assert!(r.lookup("/pfs/a").is_some());
        assert!(r.lookup("/pfs/b").is_none());
    }

    #[test]
    fn remove_leaves_a_tombstone() {
        let mut r = Registry::new();
        let attrs = StripeAttrs::across(1, 1024);
        let a = r.insert("/a", attrs.clone(), vec![(0, InodeId(0))]);
        let b = r.insert("/b", attrs, vec![(0, InodeId(1))]);
        let meta = r.remove(a).unwrap();
        assert_eq!(meta.name, "/a");
        assert!(matches!(r.get(a), Err(PfsError::UnknownFile(_))));
        assert!(r.remove(a).is_err(), "double remove must fail");
        // Ids stay stable: /b is still where it was.
        assert_eq!(r.get(b).unwrap().name, "/b");
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().count(), 1);
    }

    #[test]
    fn replica_table_supports_staging_commit_and_sharing() {
        let mut r = Registry::new();
        let attrs = StripeAttrs::across(2, 64 * 1024);
        let rep = |ion: usize, inode: u64| Replica {
            ion,
            inode: InodeId(inode),
            ready: true,
        };
        let id = r.insert_replicated(
            "/pfs/rep",
            attrs,
            vec![(0, InodeId(0)), (1, InodeId(1))],
            vec![vec![rep(0, 0), rep(2, 7)], vec![rep(1, 1), rep(3, 8)]],
        );
        let meta = r.get(id).unwrap().clone();
        assert_eq!(meta.readable_replicas(0).unwrap().len(), 2);
        assert_eq!(meta.inode_on(0, 2).unwrap(), InodeId(7));
        assert!(meta.inode_on(0, 1).is_err());
        assert!(meta.slot_replicas(5).is_err());
        // Stage a replacement for the copy on ion 2, then commit it.
        meta.add_staging_replica(0, 3, InodeId(9));
        assert_eq!(
            meta.readable_replicas(0).unwrap().len(),
            2,
            "staging copy must be unreadable"
        );
        assert_eq!(
            meta.inode_on(0, 3).unwrap(),
            InodeId(9),
            "staging copy must resolve on its server"
        );
        meta.commit_replica(0, 3, 2);
        let now = meta.readable_replicas(0).unwrap();
        assert_eq!(now.len(), 2);
        assert!(now.iter().any(|c| c.ion == 3 && c.ready));
        assert!(meta.inode_on(0, 2).is_err(), "lost copy must be dropped");
        // Clones taken before the commit share the same table.
        let clone = r.get(id).unwrap().clone();
        assert!(clone.inode_on(0, 3).is_ok());
    }

    #[test]
    fn unknown_file_is_an_error() {
        let r = Registry::new();
        assert!(matches!(
            r.get(PfsFileId(3)),
            Err(PfsError::UnknownFile(PfsFileId(3)))
        ));
    }
}
