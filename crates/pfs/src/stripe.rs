//! PFS stripe attributes and declustering.
//!
//! A PFS file is interleaved over a **stripe group** of UFS partitions in
//! units of the **stripe unit size**: logical unit `u` lands on group slot
//! `u % G` at per-slot offset `(u / G) * su` (Figure 3 of the paper). A
//! slot usually maps to a distinct I/O node, but Table 4's "striping 8
//! ways across 1 node" configuration is expressed by repeating the same
//! I/O node in several slots — each slot is its own UFS file regardless.

/// How a PFS file is laid out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeAttrs {
    /// Bytes per stripe unit.
    pub stripe_unit: u64,
    /// I/O node index for each group slot. Length = stripe factor.
    /// Repeats are allowed (several stripe files on one I/O node).
    pub group: Vec<usize>,
}

impl StripeAttrs {
    /// Stripe over I/O nodes `0..factor`, one slot each — the default
    /// layout of a PFS mount with stripe factor `factor`.
    pub fn across(factor: usize, stripe_unit: u64) -> Self {
        assert!(factor > 0 && stripe_unit > 0, "degenerate stripe attrs");
        StripeAttrs {
            stripe_unit,
            group: (0..factor).collect(),
        }
    }

    /// Stripe `ways` ways across the single I/O node `ion` (Table 4's
    /// second configuration).
    pub fn ways_on_one(ways: usize, ion: usize, stripe_unit: u64) -> Self {
        assert!(ways > 0 && stripe_unit > 0);
        StripeAttrs {
            stripe_unit,
            group: vec![ion; ways],
        }
    }

    /// Number of group slots (the stripe factor).
    pub fn factor(&self) -> usize {
        self.group.len()
    }

    /// Map a logical extent onto per-slot pieces, in logical order.
    pub fn decluster(&self, offset: u64, len: u64) -> Vec<StripePiece> {
        assert!(len > 0, "zero-length extent");
        let su = self.stripe_unit;
        let g = self.factor() as u64;
        let mut pieces = Vec::new();
        let mut pos = 0u64;
        while pos < len {
            let abs = offset + pos;
            let unit = abs / su;
            let slot = (unit % g) as usize;
            let row = unit / g;
            let in_unit = abs % su;
            let chunk = (su - in_unit).min(len - pos);
            pieces.push(StripePiece {
                slot,
                slot_offset: row * su + in_unit,
                len: chunk,
                logical_offset: pos,
            });
            pos += chunk;
        }
        pieces
    }

    /// Group pieces per slot and merge slot-contiguous runs into single
    /// server requests — the client half of PFS block coalescing. Requests
    /// come out ordered by slot.
    pub fn coalesce(&self, pieces: &[StripePiece]) -> Vec<SlotRequest> {
        let mut per_slot: Vec<Vec<StripePiece>> = vec![Vec::new(); self.factor()];
        for p in pieces {
            // paragon-lint: allow(P1) — plan() computes slot = unit % factor,
            // so every piece's slot is < factor == per_slot.len()
            per_slot[p.slot].push(*p);
        }
        let mut out = Vec::new();
        for (slot, mut ps) in per_slot.into_iter().enumerate() {
            if ps.is_empty() {
                continue;
            }
            ps.sort_by_key(|p| p.slot_offset);
            let mut current = SlotRequest {
                slot,
                slot_offset: ps[0].slot_offset,
                len: 0,
                pieces: Vec::new(),
            };
            for p in ps {
                if current.len > 0 && current.slot_offset + current.len != p.slot_offset {
                    out.push(std::mem::replace(
                        &mut current,
                        SlotRequest {
                            slot,
                            slot_offset: p.slot_offset,
                            len: 0,
                            pieces: Vec::new(),
                        },
                    ));
                }
                current.len += p.len;
                current.pieces.push(p);
            }
            out.push(current);
        }
        out
    }

    /// Convenience: decluster + coalesce in one call.
    pub fn plan(&self, offset: u64, len: u64) -> Vec<SlotRequest> {
        self.coalesce(&self.decluster(offset, len))
    }

    /// Logical file size implied by per-slot sizes (for bounds checks):
    /// the largest logical offset any slot byte maps back to, plus one.
    pub fn logical_end(&self, slot_sizes: &[u64]) -> u64 {
        assert_eq!(slot_sizes.len(), self.factor());
        let su = self.stripe_unit;
        let g = self.factor() as u64;
        let mut end = 0u64;
        for (slot, &size) in slot_sizes.iter().enumerate() {
            if size == 0 {
                continue;
            }
            let last = size - 1;
            let row = last / su;
            let in_unit = last % su;
            let logical = (row * g + slot as u64) * su + in_unit;
            end = end.max(logical + 1);
        }
        end
    }
}

/// One contiguous piece of a logical extent on one group slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripePiece {
    /// Group slot index.
    pub slot: usize,
    /// Byte offset within the slot's stripe file.
    pub slot_offset: u64,
    /// Piece length in bytes.
    pub len: u64,
    /// Offset of this piece within the logical extent.
    pub logical_offset: u64,
}

/// One coalesced server request: a contiguous byte run in one slot's
/// stripe file, with the pieces that reassemble it into the user buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotRequest {
    /// Group slot index.
    pub slot: usize,
    /// Start offset within the stripe file.
    pub slot_offset: u64,
    /// Total contiguous length.
    pub len: u64,
    /// Member pieces, ascending `slot_offset`.
    pub pieces: Vec<StripePiece>,
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1024;

    /// The paper's Figure 3: 64 KB stripe units over 8 I/O nodes.
    fn fig3() -> StripeAttrs {
        StripeAttrs::across(8, 64 * KB)
    }

    #[test]
    fn fig3_64kb_requests_hit_one_ion_each() {
        // 8 compute nodes each reading 64 KB (aligned): request k goes
        // wholly to I/O node k.
        let attrs = fig3();
        for k in 0..8u64 {
            let pieces = attrs.decluster(k * 64 * KB, 64 * KB);
            assert_eq!(pieces.len(), 1);
            assert_eq!(pieces[0].slot, k as usize);
            assert_eq!(pieces[0].len, 64 * KB);
        }
    }

    #[test]
    fn fig3_128kb_requests_split_over_two_ions() {
        // Figure 3's second case: 128 KB requests each span two adjacent
        // I/O nodes; request k covers nodes 2k and 2k+1.
        let attrs = fig3();
        for k in 0..4u64 {
            let pieces = attrs.decluster(k * 128 * KB, 128 * KB);
            assert_eq!(pieces.len(), 2);
            assert_eq!(pieces[0].slot, (2 * k) as usize);
            assert_eq!(pieces[1].slot, (2 * k + 1) as usize);
        }
    }

    #[test]
    fn decluster_tiles_the_extent() {
        let attrs = StripeAttrs::across(5, 10_000);
        let pieces = attrs.decluster(12_345, 123_456);
        let mut pos = 0;
        for p in &pieces {
            assert_eq!(p.logical_offset, pos);
            assert!(p.len > 0 && p.len <= attrs.stripe_unit);
            pos += p.len;
        }
        assert_eq!(pos, 123_456);
    }

    #[test]
    fn multi_row_requests_coalesce_per_slot() {
        // 1024 KB over 8 slots of 64 KB: 16 units, 2 rows → 8 slot
        // requests of 128 KB each, each built from two pieces.
        let attrs = fig3();
        let reqs = attrs.plan(0, 1024 * KB);
        assert_eq!(reqs.len(), 8);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.slot, i);
            assert_eq!(r.len, 128 * KB);
            assert_eq!(r.pieces.len(), 2);
            assert_eq!(r.slot_offset, 0);
        }
    }

    #[test]
    fn non_adjacent_rows_do_not_coalesce() {
        // Two separate 64 KB units on the same slot with a gap between.
        let attrs = StripeAttrs::across(2, 64 * KB);
        // Units 0 (slot 0) and 4 (slot 0, row 2): rows 0 and 2 leave a
        // hole at row 1 in slot 0's file.
        let mut pieces = attrs.decluster(0, 64 * KB);
        pieces.extend(attrs.decluster(4 * 64 * KB, 64 * KB));
        let reqs = attrs.coalesce(&pieces);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].slot_offset, 0);
        assert_eq!(reqs[1].slot_offset, 2 * 64 * KB);
    }

    #[test]
    fn ways_on_one_maps_everything_to_one_ion() {
        let attrs = StripeAttrs::ways_on_one(8, 3, 64 * KB);
        assert_eq!(attrs.factor(), 8);
        assert!(attrs.group.iter().all(|&ion| ion == 3));
        // Slots still distribute the data 8 ways.
        let reqs = attrs.plan(0, 512 * KB);
        assert_eq!(reqs.len(), 8);
    }

    #[test]
    fn unaligned_extent_clips_edge_pieces() {
        let attrs = StripeAttrs::across(4, 100);
        let pieces = attrs.decluster(250, 200);
        // First piece: 50 bytes finishing unit 2; last piece clipped too.
        assert_eq!(pieces[0].len, 50);
        assert_eq!(pieces[0].slot, 2);
        assert_eq!(pieces[0].slot_offset, 50);
        let total: u64 = pieces.iter().map(|p| p.len).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn logical_end_inverts_slot_sizes() {
        let attrs = StripeAttrs::across(4, 100);
        // A 1000-byte file: units 0..9; slot sizes 300,300,200,200.
        let sizes = [300u64, 300, 200, 200];
        assert_eq!(attrs.logical_end(&sizes), 1000);
        // Empty file.
        assert_eq!(attrs.logical_end(&[0, 0, 0, 0]), 0);
    }
}
