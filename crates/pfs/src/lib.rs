//! # paragon-pfs — the Paragon Parallel File System
//!
//! A full model of the PFS the paper modifies: files striped over
//! per-I/O-node UFS partitions ([`StripeAttrs`], Figure 3 declustering
//! with client-side block coalescing), all six I/O modes ([`IoMode`],
//! Figure 1), the shared-file-pointer server, Fast Path I/O (buffer cache
//! bypass), and per-I/O-node server processes — everything the prefetch
//! prototype in `paragon-core` plugs into.
//!
//! Typical use:
//!
//! 1. build a [`paragon_machine::Machine`],
//! 2. mount with [`ParallelFs::new`],
//! 3. [`ParallelFs::create`] + [`ParallelFs::populate_with`],
//! 4. per compute node, [`ParallelFs::open`] and issue [`PfsFile::read`]s.
//!
//! ```
//! use std::rc::Rc;
//! use paragon_sim::Sim;
//! use paragon_machine::{Machine, MachineConfig};
//! use paragon_pfs::{pattern_byte, pattern_slice, IoMode, OpenOptions, ParallelFs, StripeAttrs};
//!
//! let sim = Sim::new(7);
//! let machine = Rc::new(Machine::new(&sim, MachineConfig::tiny_instant(2, 2)));
//! let pfs = ParallelFs::new(machine);
//! let h = sim.spawn(async move {
//!     let file = pfs.create("/pfs/doc", StripeAttrs::across(2, 16 * 1024)).await.unwrap();
//!     pfs.populate_with(file, 256 * 1024, |i| pattern_byte(3, i)).await.unwrap();
//!     // Rank 1 of 2 reads its first M_RECORD record: record #1.
//!     let f = pfs.open(1, 2, file, IoMode::MRecord, OpenOptions::default()).unwrap();
//!     let data = f.read(32 * 1024).await.unwrap();
//!     data == pattern_slice(3, 32 * 1024, 32 * 1024)
//! });
//! sim.run();
//! assert_eq!(h.try_take(), Some(true));
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod client;
mod fs;
mod meta;
mod modes;
mod pointer;
mod proto;
mod rebuild;
mod redundancy;
mod server;
mod stripe;

pub use client::{ClientParams, ClientStats, OpenOptions, PfsFile};
pub use fs::{pattern_byte, pattern_slice, ParallelFs};
pub use meta::{FileMeta, Registry, Replica};
pub use modes::IoMode;
pub use pointer::{PointerServer, PointerStats};
pub use proto::{PfsError, PfsFileId, PfsRequest, PfsResponse, PtrRequest};
pub use rebuild::{rebuild_after_crash, RebuildConfig, RebuildStats};
pub use redundancy::Redundancy;
pub use server::{IonServer, ServerParams, ServerStats};
pub use stripe::{SlotRequest, StripeAttrs, StripePiece};
