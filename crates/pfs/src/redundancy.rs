//! Redundancy policy of a mount.
//!
//! The Paragon PFS stripes exactly one copy of the data across the I/O
//! nodes; losing an I/O node loses the stripe unless the per-node RAID
//! array happens to cover it. [`Redundancy`] names the mount-level
//! alternatives the experiments compare:
//!
//! * [`Redundancy::None`] — the paper's layout: one copy per stripe
//!   unit, per-node RAID as configured by the calibration.
//! * [`Redundancy::ParityRaid`] — one copy per stripe unit plus the
//!   per-I/O-node parity member (degraded-mode reads reconstruct a dead
//!   spindle from parity, inside one node).
//! * [`Redundancy::Replicated`] — `rf` full copies of every stripe
//!   slot, each on a *distinct* I/O node (cross-failure-domain
//!   placement). Reads prefer the primary copy and deterministically
//!   fail over; writes fan out to every copy and succeed on a majority
//!   quorum; a recovery coordinator re-replicates after a node crash.

/// Mount-level redundancy policy. Defaults to [`Redundancy::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Redundancy {
    /// Single-copy striping, RAID as the calibration says (the default:
    /// exactly the paper's layout).
    #[default]
    None,
    /// Single-copy striping over per-I/O-node parity RAID arrays.
    ParityRaid,
    /// `rf` copies of every stripe slot on `rf` distinct I/O nodes.
    Replicated {
        /// Replication factor: total copies, primary included. Must be
        /// ≥ 2 and ≤ the machine's I/O-node count.
        rf: usize,
    },
}

impl Redundancy {
    /// Copies kept of every stripe slot (1 unless replicated).
    pub fn replication_factor(&self) -> usize {
        match *self {
            Redundancy::None | Redundancy::ParityRaid => 1,
            Redundancy::Replicated { rf } => rf.max(1),
        }
    }

    /// Stable CLI/config name: `none`, `parity`, or `replicated:<rf>`.
    pub fn label(&self) -> String {
        match *self {
            Redundancy::None => "none".to_owned(),
            Redundancy::ParityRaid => "parity".to_owned(),
            Redundancy::Replicated { rf } => format!("replicated:{rf}"),
        }
    }

    /// Parse a [`Redundancy::label`] back (`replicated` alone means
    /// `rf = 2`).
    pub fn parse(s: &str) -> Option<Redundancy> {
        match s {
            "none" => Some(Redundancy::None),
            "parity" | "parity-raid" => Some(Redundancy::ParityRaid),
            "replicated" => Some(Redundancy::Replicated { rf: 2 }),
            _ => {
                let rf = s.strip_prefix("replicated:")?.parse::<usize>().ok()?;
                (rf >= 2).then_some(Redundancy::Replicated { rf })
            }
        }
    }
}

impl std::fmt::Display for Redundancy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for r in [
            Redundancy::None,
            Redundancy::ParityRaid,
            Redundancy::Replicated { rf: 2 },
            Redundancy::Replicated { rf: 3 },
        ] {
            assert_eq!(Redundancy::parse(&r.label()), Some(r));
        }
        assert_eq!(
            Redundancy::parse("replicated"),
            Some(Redundancy::Replicated { rf: 2 })
        );
        assert_eq!(
            Redundancy::parse("parity-raid"),
            Some(Redundancy::ParityRaid)
        );
        assert_eq!(Redundancy::parse("replicated:1"), None);
        assert_eq!(Redundancy::parse("raid6"), None);
    }

    #[test]
    fn replication_factor_is_one_unless_replicated() {
        assert_eq!(Redundancy::None.replication_factor(), 1);
        assert_eq!(Redundancy::ParityRaid.replication_factor(), 1);
        assert_eq!(Redundancy::Replicated { rf: 3 }.replication_factor(), 3);
    }
}
