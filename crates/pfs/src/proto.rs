//! Wire protocol between PFS clients, I/O-node servers, and the pointer
//! server. One request/response pair rides the machine-wide RPC fabric.

use bytes::Bytes;
use paragon_disk::DiskError;
use paragon_os::{RpcError, WireSize};
use paragon_sim::ReqId;
use paragon_ufs::UfsError;

/// Identifier of a PFS file (machine-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PfsFileId(pub u32);

/// Requests a client can send. `Clone` so the client can re-send an
/// idempotent request under its retry policy (and so the mesh can model
/// duplicated deliveries).
#[derive(Debug, Clone)]
pub enum PfsRequest {
    /// Read a contiguous run of one stripe file.
    Read {
        /// Flight-recorder request id minted at the client (`0` = none).
        req: ReqId,
        file: PfsFileId,
        /// Group slot whose stripe file is addressed.
        slot: u16,
        /// Byte offset within the stripe file.
        offset: u64,
        /// Bytes to read.
        len: u32,
        /// Fast Path (bypass the server's buffer cache)?
        fast_path: bool,
        /// Is the file opened shared (pays the consistency check)?
        shared: bool,
        /// M_GLOBAL: if nonzero, this many nodes will issue the identical
        /// read and one physical I/O should serve them all.
        global_parties: u16,
    },
    /// Write a contiguous run of one stripe file.
    Write {
        /// Flight-recorder request id minted at the client (`0` = none).
        req: ReqId,
        file: PfsFileId,
        slot: u16,
        offset: u64,
        data: Bytes,
        fast_path: bool,
        shared: bool,
    },
    /// Shared-file-pointer operation (service node).
    Ptr(PtrRequest),
    /// Recovery: create a staging replica of `slot` on the receiving I/O
    /// node (re-replication target after `crashed_ion` crashed). The
    /// reply carries the staging file's inode so the rebuild coordinator
    /// can mirror the registry entry. Used when the coordinator and the
    /// target node live in different shard worlds; a local target is
    /// staged directly.
    StageReplica {
        /// Flight-recorder request id minted at the coordinator.
        req: ReqId,
        file: PfsFileId,
        slot: u16,
        /// The I/O node whose copy was lost.
        crashed_ion: u16,
    },
    /// Recovery: promote the receiving I/O node's staging replica of
    /// `slot` to ready, retiring `crashed_ion`'s lost copy.
    CommitReplica {
        /// Flight-recorder request id minted at the coordinator.
        req: ReqId,
        file: PfsFileId,
        slot: u16,
        /// The I/O node whose copy is being replaced.
        crashed_ion: u16,
    },
}

/// Shared-pointer operations, one per shared-pointer mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtrRequest {
    /// M_UNIX: acquire the pointer token; the reply carries the current
    /// pointer. The token is held until [`PtrRequest::UnixRelease`].
    UnixAcquire { file: PfsFileId },
    /// M_UNIX: advance the pointer by `advance` and release the token.
    UnixRelease { file: PfsFileId, advance: u64 },
    /// M_LOG: atomically fetch the pointer and advance it by `len`.
    LogFetchAdd { file: PfsFileId, len: u64 },
    /// M_SYNC: rank `rank` of `nprocs` arrives at a collective call
    /// wanting `len` bytes; the reply (sent once all ranks arrive)
    /// carries this rank's node-ordered offset.
    SyncArrive {
        file: PfsFileId,
        rank: u16,
        nprocs: u16,
        len: u64,
    },
    /// Reset the pointer (file rewind; also used between experiments).
    Rewind { file: PfsFileId },
}

/// Responses.
#[derive(Debug, Clone)]
pub enum PfsResponse {
    /// Read reply.
    Data(Result<Bytes, PfsError>),
    /// Write acknowledgement.
    WriteAck(Result<u32, PfsError>),
    /// Pointer-operation reply: the relevant file offset, or why the
    /// service node could not produce one.
    Ptr(Result<u64, PfsError>),
    /// Replica staging/commit acknowledgement: the staging file's inode
    /// (staging) or `0` (commit), or why the target could not comply.
    Staged(Result<u64, PfsError>),
}

/// PFS-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfsError {
    /// The underlying UFS failed.
    Ufs(UfsError),
    /// Request addressed a slot outside the file's stripe group.
    BadSlot { slot: u16, factor: usize },
    /// No such PFS file.
    UnknownFile(PfsFileId),
    /// The device under an I/O node failed the request (dead member
    /// without parity cover, transient media error, disk server gone).
    DiskError(DiskError),
    /// A data-transfer RPC attempt exceeded its deadline.
    Timeout,
    /// The I/O node (or the reply path back from it) is down.
    IoNodeDown,
    /// The client's retry policy was exhausted without a good reply.
    TooManyRetries {
        /// Attempts made (initial call + retries).
        attempts: u32,
    },
    /// Protocol violation: a peer answered with the wrong reply kind.
    BadReply,
    /// The request was routed to a node type that cannot serve it (e.g.
    /// a data read sent to the service node).
    BadRequest,
    /// The service node abandoned the operation mid-call (its process
    /// went away while the caller was queued on it).
    ServiceLost,
}

impl std::fmt::Display for PfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfsError::Ufs(e) => write!(f, "ufs: {e}"),
            PfsError::BadSlot { slot, factor } => {
                write!(f, "slot {slot} out of range (stripe factor {factor})")
            }
            PfsError::UnknownFile(id) => write!(f, "unknown PFS file {}", id.0),
            PfsError::DiskError(e) => write!(f, "device failure: {e}"),
            PfsError::Timeout => write!(f, "request timed out"),
            PfsError::IoNodeDown => write!(f, "I/O node down"),
            PfsError::TooManyRetries { attempts } => {
                write!(f, "gave up after {attempts} attempts")
            }
            PfsError::BadReply => write!(f, "protocol violation: wrong reply kind"),
            PfsError::BadRequest => {
                write!(f, "request routed to a node that cannot serve it")
            }
            PfsError::ServiceLost => write!(f, "service node abandoned the operation"),
        }
    }
}

impl std::error::Error for PfsError {}

impl From<UfsError> for PfsError {
    fn from(e: UfsError) -> Self {
        match e {
            // Surface device failures under their own variant so callers
            // can tell an injected fault from a file-system error.
            UfsError::Disk(d) => PfsError::DiskError(d),
            other => PfsError::Ufs(other),
        }
    }
}

impl From<RpcError> for PfsError {
    fn from(e: RpcError) -> Self {
        match e {
            RpcError::Timeout => PfsError::Timeout,
            RpcError::Dropped => PfsError::IoNodeDown,
            RpcError::TooManyRetries { attempts } => PfsError::TooManyRetries { attempts },
        }
    }
}

impl WireSize for PfsRequest {
    fn wire_bytes(&self) -> u64 {
        match self {
            PfsRequest::Read { .. } => 32,
            PfsRequest::Write { data, .. } => 32 + data.len() as u64,
            PfsRequest::Ptr(_) => 24,
            PfsRequest::StageReplica { .. } | PfsRequest::CommitReplica { .. } => 24,
        }
    }

    fn trace_req(&self) -> ReqId {
        match self {
            PfsRequest::Read { req, .. }
            | PfsRequest::Write { req, .. }
            | PfsRequest::StageReplica { req, .. }
            | PfsRequest::CommitReplica { req, .. } => *req,
            PfsRequest::Ptr(_) => 0,
        }
    }
}

impl WireSize for PfsResponse {
    fn wire_bytes(&self) -> u64 {
        match self {
            PfsResponse::Data(Ok(data)) => 16 + data.len() as u64,
            PfsResponse::Data(Err(_))
            | PfsResponse::WriteAck(_)
            | PfsResponse::Ptr(_)
            | PfsResponse::Staged(_) => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_requests_are_small_on_the_wire() {
        let req = PfsRequest::Read {
            req: 0,
            file: PfsFileId(0),
            slot: 0,
            offset: 0,
            len: 1 << 20,
            fast_path: true,
            shared: true,
            global_parties: 0,
        };
        assert!(req.wire_bytes() < 64);
    }

    #[test]
    fn data_replies_carry_their_payload() {
        let resp = PfsResponse::Data(Ok(Bytes::from(vec![0u8; 4096])));
        assert_eq!(resp.wire_bytes(), 16 + 4096);
        let err = PfsResponse::Data(Err(PfsError::UnknownFile(PfsFileId(9))));
        assert_eq!(err.wire_bytes(), 16);
    }

    /// One of every `PfsError` variant, for exhaustive protocol tests.
    fn all_errors() -> Vec<PfsError> {
        vec![
            PfsError::Ufs(UfsError::NotFound),
            PfsError::BadSlot { slot: 9, factor: 4 },
            PfsError::UnknownFile(PfsFileId(3)),
            PfsError::DiskError(DiskError::Transient),
            PfsError::DiskError(DiskError::Dead),
            PfsError::DiskError(DiskError::Down),
            PfsError::Timeout,
            PfsError::IoNodeDown,
            PfsError::TooManyRetries { attempts: 4 },
            PfsError::BadReply,
            PfsError::BadRequest,
            PfsError::ServiceLost,
        ]
    }

    #[test]
    fn every_error_variant_displays() {
        for e in all_errors() {
            let text = e.to_string();
            assert!(!text.is_empty(), "{e:?} has an empty Display");
            // Errors are protocol values: Display must be stable under
            // the Clone the reply path performs.
            assert_eq!(text, e.clone().to_string());
        }
    }

    #[test]
    fn every_error_variant_roundtrips_through_the_reply_protocol() {
        for e in all_errors() {
            // A read reply carrying the error…
            let reply = PfsResponse::Data(Err(e.clone()));
            assert_eq!(reply.wire_bytes(), 16, "error replies are headers only");
            let PfsResponse::Data(Err(back)) = reply.clone() else {
                panic!("reply kind changed in flight")
            };
            assert_eq!(back, e);
            // …a write acknowledgement carrying the same error…
            let ack = PfsResponse::WriteAck(Err(e.clone()));
            let PfsResponse::WriteAck(Err(back)) = ack else {
                panic!("ack kind changed in flight")
            };
            assert_eq!(back, e);
            // …and a pointer reply carrying it.
            let ptr = PfsResponse::Ptr(Err(e.clone()));
            assert_eq!(ptr.wire_bytes(), 16, "pointer replies are headers only");
            let PfsResponse::Ptr(Err(back)) = ptr else {
                panic!("pointer reply kind changed in flight")
            };
            assert_eq!(back, e);
        }
    }

    #[test]
    fn rpc_errors_map_onto_pfs_errors() {
        assert_eq!(PfsError::from(RpcError::Timeout), PfsError::Timeout);
        assert_eq!(PfsError::from(RpcError::Dropped), PfsError::IoNodeDown);
        assert_eq!(
            PfsError::from(RpcError::TooManyRetries { attempts: 7 }),
            PfsError::TooManyRetries { attempts: 7 }
        );
    }

    #[test]
    fn ufs_disk_errors_surface_as_device_failures() {
        assert_eq!(
            PfsError::from(UfsError::Disk(DiskError::Dead)),
            PfsError::DiskError(DiskError::Dead)
        );
        assert_eq!(
            PfsError::from(UfsError::NotFound),
            PfsError::Ufs(UfsError::NotFound)
        );
    }

    #[test]
    fn write_requests_carry_their_payload() {
        let req = PfsRequest::Write {
            req: 0,
            file: PfsFileId(1),
            slot: 2,
            offset: 0,
            data: Bytes::from(vec![1u8; 1000]),
            fast_path: true,
            shared: false,
        };
        assert_eq!(req.wire_bytes(), 1032);
    }
}
