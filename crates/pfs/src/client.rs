//! The client half of the PFS: one [`PfsFile`] per (node, open file).
//!
//! A read takes the mode-specific pointer step (a token/range RPC to the
//! pointer server for shared-pointer modes; a local record computation for
//! per-node-pointer modes), declusters the byte range over the stripe
//! group, sends one coalesced request per I/O node concurrently, and
//! scatters the replies into the user buffer. Blocking and asynchronous
//! (`aread`, via the ART machinery) variants are provided; the prefetch
//! engine in `paragon-core` is built on [`PfsFile::transfer_read`] +
//! [`PfsFile::advance_pointer`].

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use paragon_mesh::NodeId;
use paragon_os::{ArtPool, AsyncHandle, RpcClient, RpcError, RpcPolicy};
use paragon_sim::{ev, EventKind, ReqId, Sim, SimDuration, Track};

use crate::meta::FileMeta;
use crate::modes::IoMode;
use crate::proto::{PfsError, PfsRequest, PfsResponse, PtrRequest};

/// Open-time options.
#[derive(Debug, Clone, Copy)]
pub struct OpenOptions {
    /// Use Fast Path I/O (bypass the I/O nodes' buffer caches). This is
    /// the PFS default for large transfers; disable to model buffered
    /// mounts.
    pub fast_path: bool,
}

impl Default for OpenOptions {
    fn default() -> Self {
        OpenOptions { fast_path: true }
    }
}

/// Client-side counters for one open file.
#[derive(Debug, Default, Clone)]
pub struct ClientStats {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

/// Client-side timing knobs (from the machine calibration).
#[derive(Debug, Clone)]
pub struct ClientParams {
    /// Per-call system-call overhead.
    pub syscall: SimDuration,
    /// M_RECORD node-ordered record bookkeeping per call.
    pub record_bookkeeping: SimDuration,
    /// Deadline/retry discipline for data-transfer legs. Positioned
    /// reads and writes are idempotent, so a timed-out leg is re-sent;
    /// pointer operations are NOT retried (they move shared state).
    pub data_policy: RpcPolicy,
    /// Mount-wide count of read legs that failed over to another
    /// replica (replicated mounts; stays 0 otherwise).
    pub replica_failovers: Rc<Cell<u64>>,
    /// Mount-wide count of read legs served by a non-primary replica.
    pub replica_reads: Rc<Cell<u64>>,
}

struct FileState {
    /// Collective round counter (M_RECORD / M_GLOBAL).
    round: u64,
    /// Local byte pointer (M_ASYNC).
    local_offset: u64,
}

/// One node's handle on an open PFS file. Clone freely; clones share the
/// file pointer state (they are the same open).
#[derive(Clone)]
pub struct PfsFile {
    sim: Sim,
    rpc: RpcClient<PfsRequest, PfsResponse>,
    arts: ArtPool,
    params: Rc<ClientParams>,
    meta: Rc<FileMeta>,
    /// Mesh id of each machine I/O node, indexed by I/O-node index.
    io_node_ids: Rc<Vec<NodeId>>,
    service_node: NodeId,
    rank: u16,
    nprocs: u16,
    mode: IoMode,
    fast_path: bool,
    size_at_open: u64,
    state: Rc<RefCell<FileState>>,
    stats: Rc<RefCell<ClientStats>>,
    /// I/O nodes a replicated read leg of this handle saw fail. They are
    /// deprioritized (not skipped — a recovered node serves again) so
    /// only the first read through a dead node pays the full timeout.
    suspects: Rc<RefCell<BTreeSet<usize>>>,
}

impl PfsFile {
    /// Assemble a handle. Library users go through `ParallelFs::open`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        sim: Sim,
        rpc: RpcClient<PfsRequest, PfsResponse>,
        arts: ArtPool,
        params: ClientParams,
        meta: FileMeta,
        io_node_ids: Rc<Vec<NodeId>>,
        service_node: NodeId,
        rank: u16,
        nprocs: u16,
        mode: IoMode,
        opts: OpenOptions,
        size_at_open: u64,
    ) -> Self {
        assert!(rank < nprocs, "rank {rank} out of range for {nprocs} procs");
        PfsFile {
            sim,
            rpc,
            arts,
            params: Rc::new(params),
            meta: Rc::new(meta),
            io_node_ids,
            service_node,
            rank,
            nprocs,
            mode,
            fast_path: opts.fast_path,
            size_at_open,
            state: Rc::new(RefCell::new(FileState {
                round: 0,
                local_offset: 0,
            })),
            stats: Rc::new(RefCell::new(ClientStats::default())),
            suspects: Rc::new(RefCell::new(BTreeSet::new())),
        }
    }

    /// The mode this handle was opened with.
    pub fn mode(&self) -> IoMode {
        self.mode
    }

    /// This node's rank in the application.
    pub fn rank(&self) -> u16 {
        self.rank
    }

    /// Number of application processes sharing the file.
    pub fn nprocs(&self) -> u16 {
        self.nprocs
    }

    /// File size when the handle was opened.
    pub fn size(&self) -> u64 {
        self.size_at_open
    }

    /// Stripe attributes of the file.
    pub fn stripe_attrs(&self) -> &crate::stripe::StripeAttrs {
        &self.meta.attrs
    }

    /// Client counters for this handle.
    pub fn stats(&self) -> ClientStats {
        self.stats.borrow().clone()
    }

    /// The node's ART pool (the prefetch engine issues through it).
    pub fn art_pool(&self) -> &ArtPool {
        &self.arts
    }

    /// The simulation world (for timing instrumentation in layers above).
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Charge one client system call (the prefetch engine wraps `read`
    /// and pays this itself).
    pub async fn syscall(&self) {
        self.sim.sleep(self.params.syscall).await;
    }

    /// One shared-pointer operation. Deliberately NO deadline and NO
    /// retry: pointer operations move shared state, so re-sending one
    /// could double-advance the pointer. The machinery instead protects
    /// the service node from injected faults.
    async fn ptr(&self, req: PtrRequest) -> Result<u64, PfsError> {
        match self.rpc.call(self.service_node, PfsRequest::Ptr(req)).await {
            Ok(PfsResponse::Ptr(res)) => res,
            Ok(_) => Err(PfsError::BadReply),
            Err(e) => Err(e.into()),
        }
    }

    /// Advance this node's pointer by `len` under the open mode's
    /// *individual-pointer* semantics and return the byte offset the next
    /// access covers. Panics for shared-pointer modes — their pointer
    /// motion is inseparable from the access (the paper's prototype
    /// likewise targets the individual-pointer modes).
    pub async fn advance_pointer(&self, len: u32) -> u64 {
        match self.mode {
            IoMode::MRecord => {
                self.sim.sleep(self.params.record_bookkeeping).await;
                let mut st = self.state.borrow_mut();
                let round = st.round;
                st.round += 1;
                (round * self.nprocs as u64 + self.rank as u64) * len as u64
            }
            IoMode::MGlobal => {
                let mut st = self.state.borrow_mut();
                let round = st.round;
                st.round += 1;
                round * len as u64
            }
            IoMode::MAsync => {
                let mut st = self.state.borrow_mut();
                let at = st.local_offset;
                st.local_offset += len as u64;
                at
            }
            // paragon-lint: allow(P1) — documented caller contract: the
            // prefetch engine only drives individual-pointer modes
            m => panic!("advance_pointer on shared-pointer mode {m}"),
        }
    }

    /// Offset the *next* `len`-byte access of this node would cover, for
    /// individual-pointer modes, without advancing anything. Used by
    /// sequential predictors.
    pub fn peek_pointer(&self, len: u32) -> u64 {
        let st = self.state.borrow();
        match self.mode {
            IoMode::MRecord => (st.round * self.nprocs as u64 + self.rank as u64) * len as u64,
            IoMode::MGlobal => st.round * len as u64,
            IoMode::MAsync => st.local_offset,
            // paragon-lint: allow(P1) — documented caller contract: the
            // sequential predictors only drive individual-pointer modes
            m => panic!("peek_pointer on shared-pointer mode {m}"),
        }
    }

    /// Reposition this node's individual pointer (M_ASYNC only — the
    /// M_RECORD and M_GLOBAL pointers are round-structured, and shared
    /// pointers belong to the pointer server).
    pub fn seek(&self, offset: u64) {
        assert_eq!(
            self.mode,
            IoMode::MAsync,
            "seek is only meaningful for M_ASYNC handles"
        );
        self.state.borrow_mut().local_offset = offset;
    }

    /// Blocking read of the next `len` bytes under the open mode.
    pub async fn read(&self, len: u32) -> Result<Bytes, PfsError> {
        self.syscall().await;
        match self.mode {
            IoMode::MUnix => {
                let at = self
                    .ptr(PtrRequest::UnixAcquire { file: self.meta.id })
                    .await?;
                // Atomicity: the token is held across the transfer.
                let result = self.transfer_read(at, len).await;
                self.ptr(PtrRequest::UnixRelease {
                    file: self.meta.id,
                    advance: len as u64,
                })
                .await?;
                result
            }
            IoMode::MLog => {
                let at = self
                    .ptr(PtrRequest::LogFetchAdd {
                        file: self.meta.id,
                        len: len as u64,
                    })
                    .await?;
                self.transfer_read(at, len).await
            }
            IoMode::MSync => {
                let at = self
                    .ptr(PtrRequest::SyncArrive {
                        file: self.meta.id,
                        rank: self.rank,
                        nprocs: self.nprocs,
                        len: len as u64,
                    })
                    .await?;
                self.transfer_read(at, len).await
            }
            IoMode::MRecord | IoMode::MAsync => {
                let at = self.advance_pointer(len).await;
                self.transfer_read(at, len).await
            }
            IoMode::MGlobal => {
                let at = self.advance_pointer(len).await;
                self.transfer_read_global(at, len, self.nprocs).await
            }
        }
    }

    /// Asynchronous read: the pointer step happens now (setup), the
    /// transfer runs on an ART. `iowait` = [`AsyncHandle::join`].
    pub async fn aread(&self, len: u32) -> AsyncHandle<Result<Bytes, PfsError>> {
        self.syscall().await;
        match self.mode {
            IoMode::MRecord | IoMode::MAsync => {
                let at = self.advance_pointer(len).await;
                let this = self.clone();
                self.arts
                    .submit(async move { this.transfer_read(at, len).await })
                    .await
            }
            IoMode::MGlobal => {
                let at = self.advance_pointer(len).await;
                let this = self.clone();
                let parties = self.nprocs;
                self.arts
                    .submit(async move { this.transfer_read_global(at, len, parties).await })
                    .await
            }
            IoMode::MUnix => {
                let this = self.clone();
                self.arts
                    .submit(async move {
                        let at = this
                            .ptr(PtrRequest::UnixAcquire { file: this.meta.id })
                            .await?;
                        let result = this.transfer_read(at, len).await;
                        this.ptr(PtrRequest::UnixRelease {
                            file: this.meta.id,
                            advance: len as u64,
                        })
                        .await?;
                        result
                    })
                    .await
            }
            IoMode::MLog => {
                let this = self.clone();
                self.arts
                    .submit(async move {
                        let at = this
                            .ptr(PtrRequest::LogFetchAdd {
                                file: this.meta.id,
                                len: len as u64,
                            })
                            .await?;
                        this.transfer_read(at, len).await
                    })
                    .await
            }
            IoMode::MSync => {
                let this = self.clone();
                self.arts
                    .submit(async move {
                        let at = this
                            .ptr(PtrRequest::SyncArrive {
                                file: this.meta.id,
                                rank: this.rank,
                                nprocs: this.nprocs,
                                len: len as u64,
                            })
                            .await?;
                        this.transfer_read(at, len).await
                    })
                    .await
            }
        }
    }

    /// Positioned read with no pointer interaction and no syscall charge:
    /// the raw striped transfer. This is what a prefetch issues ("the file
    /// pointer is not changed in the process of prefetching").
    pub async fn transfer_read(&self, offset: u64, len: u32) -> Result<Bytes, PfsError> {
        let req = self.sim.mint_req();
        self.transfer_read_inner(offset, len, 0, req).await
    }

    /// [`PfsFile::transfer_read`] under a caller-minted flight-recorder
    /// request id (the prefetch engine mints one id per issue so the
    /// prefetch's whole lifetime shares one correlation key).
    pub async fn transfer_read_tagged(
        &self,
        offset: u64,
        len: u32,
        req: ReqId,
    ) -> Result<Bytes, PfsError> {
        self.transfer_read_inner(offset, len, 0, req).await
    }

    async fn transfer_read_global(
        &self,
        offset: u64,
        len: u32,
        global_parties: u16,
    ) -> Result<Bytes, PfsError> {
        let req = self.sim.mint_req();
        self.transfer_read_inner(offset, len, global_parties, req)
            .await
    }

    async fn transfer_read_inner(
        &self,
        offset: u64,
        len: u32,
        global_parties: u16,
        req: ReqId,
    ) -> Result<Bytes, PfsError> {
        assert!(len > 0, "zero-length read");
        let cn = Track::Cn(self.rank);
        self.sim
            .emit(|| ev(cn, EventKind::ReadStart, req, offset, len as u64));
        let plan = self.meta.attrs.plan(offset, len as u64);
        let shared = self.nprocs > 1;
        let policy = self.params.data_policy;
        let mut handles = Vec::with_capacity(plan.len());
        for sreq in plan {
            let (primary, _) = self.meta.slot(sreq.slot as u16)?;
            let copies = self.meta.readable_replicas(sreq.slot as u16)?;
            let rpc = self.rpc.clone();
            let msg = PfsRequest::Read {
                req,
                file: self.meta.id,
                slot: sreq.slot as u16,
                offset: sreq.slot_offset,
                len: sreq.len as u32,
                fast_path: self.fast_path,
                shared,
                global_parties,
            };
            if copies.len() <= 1 {
                let dst = *self.io_node_ids.get(primary).ok_or(PfsError::BadSlot {
                    slot: sreq.slot as u16,
                    factor: self.io_node_ids.len(),
                })?;
                // Positioned reads are idempotent: re-sending one under the
                // retry policy is safe.
                handles.push((
                    sreq,
                    self.sim.spawn_named("pfs-read-leg", async move {
                        rpc.call_policy(dst, msg, policy).await
                    }),
                ));
                continue;
            }
            // Replicated: deterministic read-from-any. Candidate order is
            // primary first, then the other copies in placement order,
            // with this handle's suspect nodes demoted to the back (kept,
            // not skipped — a recovered node serves again). Non-final
            // candidates get a single attempt so a dead node costs one
            // timeout; the final candidate keeps the full retry budget.
            let mut order: Vec<(usize, NodeId)> = Vec::with_capacity(copies.len());
            {
                let suspects = self.suspects.borrow();
                for pass in [false, true] {
                    for c in copies.iter().filter(|c| suspects.contains(&c.ion) == pass) {
                        let dst = *self.io_node_ids.get(c.ion).ok_or(PfsError::BadSlot {
                            slot: sreq.slot as u16,
                            factor: self.io_node_ids.len(),
                        })?;
                        order.push((c.ion, dst));
                    }
                }
            }
            let sim = self.sim.clone();
            let suspects = self.suspects.clone();
            let params = self.params.clone();
            let slot = sreq.slot as u64;
            handles.push((
                sreq,
                self.sim.spawn_named("pfs-read-leg", async move {
                    let single = RpcPolicy {
                        retries: 0,
                        ..policy
                    };
                    let last = order.len().saturating_sub(1);
                    for (k, &(ion, dst)) in order.iter().enumerate() {
                        let attempt = if k == last { policy } else { single };
                        let res = rpc.call_policy(dst, msg.clone(), attempt).await;
                        if matches!(res, Ok(PfsResponse::Data(Ok(_)))) {
                            if ion != primary {
                                params.replica_reads.set(params.replica_reads.get() + 1);
                            }
                            return res;
                        }
                        if k < last && failover_worthy(&res) {
                            suspects.borrow_mut().insert(ion);
                            params
                                .replica_failovers
                                .set(params.replica_failovers.get() + 1);
                            if let Some(&(next, _)) = order.get(k + 1) {
                                sim.emit(|| {
                                    ev(cn, EventKind::ReplicaFailover, req, slot, next as u64)
                                });
                            }
                            continue;
                        }
                        return res;
                    }
                    // Unreachable (the final candidate always returns),
                    // kept for totality.
                    Err(RpcError::Dropped)
                }),
            ));
        }
        // Zero-copy fast path: one slot leg whose pieces land at identical
        // offsets (src == dst) is the whole extent — the reply buffer is
        // the result, no reassembly needed. The leg still runs in its own
        // spawned task so event interleaving matches the general path.
        let direct = handles.len() == 1 && {
            let sreq = &handles[0].0;
            sreq.pieces
                .iter()
                .all(|p| p.slot_offset - sreq.slot_offset == p.logical_offset)
        };
        let mut out = if direct {
            BytesMut::new()
        } else {
            BytesMut::zeroed(len as usize)
        };
        let mut direct_data = None;
        let mut first_err = None;
        for (sreq, h) in handles {
            // Join every leg before reporting an error (deterministic
            // completion; no legs left writing into a dropped buffer).
            match h.await {
                Ok(PfsResponse::Data(Ok(data))) => {
                    debug_assert_eq!(data.len() as u64, sreq.len);
                    if direct {
                        direct_data = Some(data);
                        continue;
                    }
                    for p in &sreq.pieces {
                        let src = (p.slot_offset - sreq.slot_offset) as usize;
                        let dst = p.logical_offset as usize;
                        out[dst..dst + p.len as usize]
                            .copy_from_slice(&data[src..src + p.len as usize]);
                    }
                }
                Ok(PfsResponse::Data(Err(e))) => {
                    first_err.get_or_insert(e);
                }
                Ok(_) => {
                    first_err.get_or_insert(PfsError::BadReply);
                }
                Err(e) => {
                    first_err.get_or_insert(e.into());
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let mut st = self.stats.borrow_mut();
        st.reads += 1;
        st.bytes_read += len as u64;
        drop(st);
        self.sim
            .emit(|| ev(cn, EventKind::Copy, req, offset, len as u64));
        self.sim
            .emit(|| ev(cn, EventKind::ReadDone, req, offset, len as u64));
        Ok(match direct_data {
            Some(data) => data,
            None => out.freeze(),
        })
    }

    /// Write the next `data.len()` bytes under the open mode — the write
    /// mirror of [`PfsFile::read`]. M_UNIX holds the pointer token across
    /// the transfer (atomic appends); M_LOG reserves its range with a
    /// fetch-and-add and transfers concurrently (the mode's eponymous
    /// log-append use); M_SYNC assigns node-ordered ranges once every
    /// rank arrives; M_RECORD/M_ASYNC use their local pointers. Returns
    /// the offset the data landed at.
    pub async fn write(&self, data: Bytes) -> Result<u64, PfsError> {
        self.syscall().await;
        let len = data.len() as u64;
        match self.mode {
            IoMode::MUnix => {
                let at = self
                    .ptr(PtrRequest::UnixAcquire { file: self.meta.id })
                    .await?;
                let result = self.transfer_write(at, data).await;
                self.ptr(PtrRequest::UnixRelease {
                    file: self.meta.id,
                    advance: len,
                })
                .await?;
                result.map(|()| at)
            }
            IoMode::MLog => {
                let at = self
                    .ptr(PtrRequest::LogFetchAdd {
                        file: self.meta.id,
                        len,
                    })
                    .await?;
                self.transfer_write(at, data).await.map(|()| at)
            }
            IoMode::MSync => {
                let at = self
                    .ptr(PtrRequest::SyncArrive {
                        file: self.meta.id,
                        rank: self.rank,
                        nprocs: self.nprocs,
                        len,
                    })
                    .await?;
                self.transfer_write(at, data).await.map(|()| at)
            }
            IoMode::MRecord | IoMode::MAsync => {
                let at = self.advance_pointer(data.len() as u32).await;
                self.transfer_write(at, data).await.map(|()| at)
            }
            IoMode::MGlobal => {
                // Every node writes the same data to the same place; the
                // round advances once. Last writer wins (they are equal).
                let at = self.advance_pointer(data.len() as u32).await;
                self.transfer_write(at, data).await.map(|()| at)
            }
        }
    }

    /// Positioned write (used to lay files out and by write workloads).
    pub async fn write_at(&self, offset: u64, data: Bytes) -> Result<(), PfsError> {
        self.syscall().await;
        self.transfer_write(offset, data).await
    }

    /// Raw striped write, no syscall charge.
    pub async fn transfer_write(&self, offset: u64, data: Bytes) -> Result<(), PfsError> {
        assert!(!data.is_empty(), "zero-length write");
        let req = self.sim.mint_req();
        let cn = Track::Cn(self.rank);
        let wlen = data.len() as u64;
        self.sim
            .emit(|| ev(cn, EventKind::WriteStart, req, offset, wlen));
        let plan = self.meta.attrs.plan(offset, data.len() as u64);
        let shared = self.nprocs > 1;
        let policy = self.params.data_policy;
        let mut handles = Vec::with_capacity(plan.len());
        for sreq in plan {
            let copies = self.meta.readable_replicas(sreq.slot as u16)?;
            // Gather the logical pieces into one contiguous slot buffer.
            // A single piece is already contiguous — share the slice.
            let single = if sreq.pieces.len() == 1 {
                sreq.pieces.first()
            } else {
                None
            };
            let payload = if let Some(p) = single {
                data.slice(p.logical_offset as usize..(p.logical_offset + p.len) as usize)
            } else {
                let mut buf = BytesMut::zeroed(sreq.len as usize);
                for p in &sreq.pieces {
                    let dst_at = (p.slot_offset - sreq.slot_offset) as usize;
                    let src_at = p.logical_offset as usize;
                    buf[dst_at..dst_at + p.len as usize]
                        .copy_from_slice(&data[src_at..src_at + p.len as usize]);
                }
                buf.freeze()
            };
            // One leg per readable copy (a single-copy slot is exactly the
            // old path). Positioned writes are idempotent (same bytes,
            // same offset), so re-sending one under the retry policy is
            // safe — and so is fanning the same payload to every copy.
            let mut legs = Vec::with_capacity(copies.len());
            for copy in &copies {
                let dst = *self.io_node_ids.get(copy.ion).ok_or(PfsError::BadSlot {
                    slot: sreq.slot as u16,
                    factor: self.io_node_ids.len(),
                })?;
                let rpc = self.rpc.clone();
                let msg = PfsRequest::Write {
                    req,
                    file: self.meta.id,
                    slot: sreq.slot as u16,
                    offset: sreq.slot_offset,
                    data: payload.clone(),
                    fast_path: self.fast_path,
                    shared,
                };
                legs.push(self.sim.spawn_named("pfs-write-leg", async move {
                    rpc.call_policy(dst, msg, policy).await
                }));
            }
            handles.push(legs);
        }
        let mut first_err = None;
        for legs in handles {
            // A replicated slot write succeeds when its primary copy acks
            // or a majority of copies ack; every leg is still joined so no
            // task is left writing after an early error. A single-copy
            // slot needs its one leg — exactly the old semantics.
            let quorum = legs.len() / 2 + 1;
            let mut acked = 0usize;
            let mut primary_acked = false;
            let mut leg_err = None;
            for (k, h) in legs.into_iter().enumerate() {
                match h.await {
                    Ok(PfsResponse::WriteAck(Ok(_))) => {
                        acked += 1;
                        if k == 0 {
                            primary_acked = true;
                        }
                    }
                    Ok(PfsResponse::WriteAck(Err(e))) => {
                        leg_err.get_or_insert(e);
                    }
                    Ok(_) => {
                        leg_err.get_or_insert(PfsError::BadReply);
                    }
                    Err(e) => {
                        leg_err.get_or_insert(e.into());
                    }
                }
            }
            if acked < quorum && !primary_acked {
                first_err.get_or_insert(leg_err.unwrap_or(PfsError::BadReply));
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let mut st = self.stats.borrow_mut();
        st.writes += 1;
        st.bytes_written += data.len() as u64;
        drop(st);
        self.sim
            .emit(|| ev(cn, EventKind::WriteDone, req, offset, wlen));
        Ok(())
    }

    /// Rewind this handle's pointer state (and, for shared-pointer modes,
    /// the shared pointer itself — callers coordinate so only one node of
    /// a shared open rewinds).
    pub async fn rewind(&self) -> Result<(), PfsError> {
        {
            let mut st = self.state.borrow_mut();
            st.round = 0;
            st.local_offset = 0;
        }
        if self.mode.shared_pointer() {
            self.ptr(PtrRequest::Rewind { file: self.meta.id }).await?;
        }
        Ok(())
    }
}

/// Should a failed replicated read leg try the next copy? Transport
/// failures and node/device unavailability are what replication covers;
/// logical errors (bad slot, unknown file, protocol violations) would
/// fail identically everywhere, so they are reported as-is.
fn failover_worthy(res: &Result<PfsResponse, RpcError>) -> bool {
    match res {
        Err(_) => true,
        Ok(PfsResponse::Data(Err(e))) => matches!(
            e,
            PfsError::Timeout
                | PfsError::IoNodeDown
                | PfsError::DiskError(_)
                | PfsError::TooManyRetries { .. }
        ),
        Ok(_) => false,
    }
}
