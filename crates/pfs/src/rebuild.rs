//! Online re-replication after an I/O-node crash.
//!
//! When a replicated mount loses an I/O node, every stripe slot with a
//! copy on that node is under-replicated until a new copy exists
//! elsewhere. [`rebuild_after_crash`] is the recovery coordinator: it
//! scans the registry for affected slots, stages a replacement copy on a
//! surviving I/O node, and copies the slot's bytes through the *normal*
//! RPC/server/disk path — so rebuild traffic contends with foreground
//! reads on the mesh, the server thread pools, and the spindles, exactly
//! the interference the rebuild-storm experiments measure. A token
//! bucket throttles the copy stream so foreground traffic keeps making
//! progress.
//!
//! Replacement copies go through a staging protocol (see
//! [`crate::meta::Replica::ready`]): the target's server resolves the
//! staging inode so recovery writes land, but readers never select the
//! copy until it is complete and committed — a half-written replica can
//! never serve a read.

use std::rc::Rc;

use paragon_sim::{ev, EventKind, Sim, SimDuration, SimTime, Track};

use crate::fs::ParallelFs;
use crate::proto::{PfsError, PfsFileId, PfsRequest, PfsResponse};

/// Shape and throttle of one recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildConfig {
    /// Token-bucket refill rate for rebuild copy traffic, in bytes per
    /// simulated second. `0` disables the throttle entirely (rebuild as
    /// fast as the machine allows — the "rebuild storm").
    pub rate_bytes_per_s: u64,
    /// Token-bucket capacity: the largest burst the throttle admits.
    pub burst_bytes: u64,
    /// Copy granularity — one read RPC + one write RPC per chunk.
    pub chunk_bytes: u64,
}

impl Default for RebuildConfig {
    fn default() -> Self {
        RebuildConfig {
            // Paced to cede priority to demand I/O: a single 1995-era
            // I/O node sustains only ~a few MB/s of foreground reads, so
            // a 2 MiB/s background copy stream keeps the foreground at
            // well over half its healthy bandwidth during recovery.
            rate_bytes_per_s: 2 * 1024 * 1024,
            burst_bytes: 256 * 1024,
            chunk_bytes: 64 * 1024,
        }
    }
}

impl RebuildConfig {
    /// No throttle: copy as fast as the machine allows.
    pub fn unthrottled() -> Self {
        RebuildConfig {
            rate_bytes_per_s: 0,
            ..Self::default()
        }
    }
}

/// Counters of one completed recovery pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RebuildStats {
    /// Stripe slots whose lost copy was re-replicated.
    pub slots_copied: u64,
    /// Bytes moved to the replacement copies.
    pub bytes_copied: u64,
}

/// Deterministic integer token bucket over simulated time.
struct TokenBucket {
    sim: Sim,
    rate: u64,
    burst: u64,
    tokens: u64,
    refilled_at: SimTime,
}

impl TokenBucket {
    fn new(sim: Sim, cfg: &RebuildConfig) -> Self {
        let now = sim.now();
        TokenBucket {
            sim,
            rate: cfg.rate_bytes_per_s,
            // A bucket smaller than one chunk would deadlock: a full
            // bucket could still never cover one take().
            burst: cfg.burst_bytes.max(cfg.chunk_bytes).max(1),
            tokens: cfg.burst_bytes.max(cfg.chunk_bytes).max(1),
            refilled_at: now,
        }
    }

    fn refill(&mut self) {
        let now = self.sim.now();
        let dt = (now - self.refilled_at).as_nanos() as u128;
        let earned = (dt * self.rate as u128 / 1_000_000_000) as u64;
        self.tokens = self.tokens.saturating_add(earned).min(self.burst);
        self.refilled_at = now;
    }

    /// Block until `n` bytes of budget are available, then consume them.
    async fn take(&mut self, n: u64) {
        if self.rate == 0 {
            return;
        }
        self.refill();
        if self.tokens < n {
            let deficit = (n - self.tokens) as u128;
            let wait = (deficit * 1_000_000_000).div_ceil(self.rate as u128) as u64;
            self.sim.sleep(SimDuration::from_nanos(wait)).await;
            self.refill();
        }
        self.tokens = self.tokens.saturating_sub(n);
    }
}

/// One under-replicated stripe slot.
struct WorkItem {
    file: PfsFileId,
    slot: u16,
    /// Surviving source copy to read from.
    src_ion: usize,
    /// Surviving target to host the replacement copy.
    target_ion: usize,
}

/// Re-replicate every stripe slot that lost a copy on `crashed_ion`.
///
/// Runs to completion in simulated time while foreground traffic
/// continues; copy traffic flows through compute node 0's RPC endpoint
/// so it contends with demand I/O. Emits [`EventKind::RebuildStart`],
/// one [`EventKind::RebuildCopy`] per slot, and
/// [`EventKind::RebuildDone`]; the mount's `rebuild_pending` gauge
/// counts down to exactly zero as slots complete.
pub async fn rebuild_after_crash(
    pfs: &Rc<ParallelFs>,
    crashed_ion: usize,
    cfg: RebuildConfig,
) -> Result<RebuildStats, PfsError> {
    let sim = pfs.sim().clone();
    let machine_ions = pfs.machine().io_nodes();
    let req = sim.mint_req();

    // Plan: find every slot with a readable copy on the crashed node and
    // pick, deterministically, a surviving source and a surviving target
    // that does not already hold a copy of that slot.
    let mut work = Vec::new();
    {
        let registry = pfs.registry().borrow();
        for meta in registry.iter() {
            for slot in 0..meta.attrs.factor() as u16 {
                let copies = meta.slot_replicas(slot)?;
                if copies.len() < 2 || !copies.iter().any(|c| c.ion == crashed_ion && c.ready) {
                    // Single-copy slots have no surviving source; slots
                    // without a copy on the crashed node are unaffected.
                    continue;
                }
                let src = copies
                    .iter()
                    .find(|c| c.ready && c.ion != crashed_ion)
                    .map(|c| c.ion);
                let (primary, _) = meta.slot(slot)?;
                let target = (1..machine_ions)
                    .map(|d| (primary + d) % machine_ions)
                    .find(|&ion| ion != crashed_ion && copies.iter().all(|c| c.ion != ion));
                if let (Some(src_ion), Some(target_ion)) = (src, target) {
                    work.push(WorkItem {
                        file: meta.id,
                        slot,
                        src_ion,
                        target_ion,
                    });
                }
            }
        }
    }

    let pending = pfs.rebuild_pending_cell();
    let bytes_cell = pfs.rebuild_bytes_cell();
    pending.set(pending.get() + work.len() as u64);
    sim.emit(|| {
        ev(
            Track::Sys,
            EventKind::RebuildStart,
            req,
            work.len() as u64,
            crashed_ion as u64,
        )
    });

    // Copy through the front door: compute node 0's RPC endpoint, the
    // calibrated retry policy, Fast Path (no cache pollution). Each slot
    // is staged, streamed chunk by chunk under the token bucket, then
    // committed.
    let (rpc, _arts) = pfs.node_endpoint(0);
    let calib = pfs.machine().calib().clone();
    let policy = paragon_os::RpcPolicy::with_retries(
        calib.rpc_attempt_timeout,
        calib.rpc_retries,
        calib.rpc_backoff,
    );
    let chunk = cfg.chunk_bytes.max(1);
    let mut bucket = TokenBucket::new(sim.clone(), &cfg);
    let mut stats = RebuildStats::default();
    let shard = sim.shard_ctx();
    for item in work {
        let meta = pfs.registry().borrow().get(item.file)?.clone();
        let src_inode = meta.inode_on(item.slot, item.src_ion)?;
        let slot_len = pfs.machine().ufs(item.src_ion).size(src_inode).unwrap_or(0);
        let target_node = pfs.machine().io_node(item.target_ion);
        // A target owned by this shard's world (always, under the serial
        // kernel) is staged directly on its UFS. A target in another
        // shard's world is staged through the front door — its server
        // creates the staging file and registers it in that world's file
        // table — and the reply's inode is mirrored into ours.
        let local_target = shard
            .as_ref()
            .is_none_or(|ctx| ctx.owns(target_node.0 as u16));
        let staging = if local_target {
            pfs.machine()
                .ufs(item.target_ion)
                .create(&format!("{}.{}.rb{crashed_ion}", meta.name, item.slot))
                .await
                .map_err(PfsError::from)?
        } else {
            let stage = PfsRequest::StageReplica {
                req,
                file: item.file,
                slot: item.slot,
                crashed_ion: crashed_ion as u16,
            };
            match rpc.call_policy(target_node, stage, policy).await {
                Ok(PfsResponse::Staged(Ok(inode))) => paragon_ufs::InodeId(inode),
                Ok(PfsResponse::Staged(Err(e))) => return Err(e),
                Ok(_) => return Err(PfsError::BadReply),
                Err(e) => return Err(e.into()),
            }
        };
        meta.add_staging_replica(item.slot, item.target_ion, staging);
        let mut at = 0u64;
        while at < slot_len {
            let n = chunk.min(slot_len - at);
            bucket.take(n).await;
            let read = PfsRequest::Read {
                req,
                file: item.file,
                slot: item.slot,
                offset: at,
                len: n as u32,
                fast_path: true,
                shared: false,
                global_parties: 0,
            };
            let data = match rpc
                .call_policy(pfs.machine().io_node(item.src_ion), read, policy)
                .await
            {
                Ok(PfsResponse::Data(Ok(data))) => data,
                Ok(PfsResponse::Data(Err(e))) => return Err(e),
                Ok(_) => return Err(PfsError::BadReply),
                Err(e) => return Err(e.into()),
            };
            let write = PfsRequest::Write {
                req,
                file: item.file,
                slot: item.slot,
                offset: at,
                data,
                fast_path: true,
                shared: false,
            };
            match rpc
                .call_policy(pfs.machine().io_node(item.target_ion), write, policy)
                .await
            {
                Ok(PfsResponse::WriteAck(Ok(_))) => {}
                Ok(PfsResponse::WriteAck(Err(e))) => return Err(e),
                Ok(_) => return Err(PfsError::BadReply),
                Err(e) => return Err(e.into()),
            }
            at += n;
        }
        if !local_target {
            // Promote in the owning world first — its readers select
            // ready copies from that table — then mirror below.
            let commit = PfsRequest::CommitReplica {
                req,
                file: item.file,
                slot: item.slot,
                crashed_ion: crashed_ion as u16,
            };
            match rpc.call_policy(target_node, commit, policy).await {
                Ok(PfsResponse::Staged(Ok(_))) => {}
                Ok(PfsResponse::Staged(Err(e))) => return Err(e),
                Ok(_) => return Err(PfsError::BadReply),
                Err(e) => return Err(e.into()),
            }
        }
        meta.commit_replica(item.slot, item.target_ion, crashed_ion);
        stats.slots_copied += 1;
        stats.bytes_copied += slot_len;
        pending.set(pending.get().saturating_sub(1));
        bytes_cell.set(bytes_cell.get() + slot_len);
        let slot = item.slot as u64;
        sim.emit(|| ev(Track::Sys, EventKind::RebuildCopy, req, slot, slot_len));
    }
    sim.emit(|| {
        ev(
            Track::Sys,
            EventKind::RebuildDone,
            req,
            stats.slots_copied,
            stats.bytes_copied,
        )
    });
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_paces_a_stream() {
        let sim = Sim::new(1);
        let cfg = RebuildConfig {
            rate_bytes_per_s: 1_000_000,
            burst_bytes: 1_000,
            chunk_bytes: 1_000,
        };
        let s2 = sim.clone();
        let h = sim.spawn(async move {
            let mut bucket = TokenBucket::new(s2.clone(), &cfg);
            // Burst covers the first chunk; nine more at 1 MB/s must
            // take 9 ms of simulated time.
            for _ in 0..10 {
                bucket.take(1_000).await;
            }
            s2.now().as_nanos()
        });
        sim.run();
        assert_eq!(h.try_take(), Some(9_000_000));
    }

    #[test]
    fn unthrottled_bucket_never_waits() {
        let sim = Sim::new(2);
        let s2 = sim.clone();
        let h = sim.spawn(async move {
            let mut bucket = TokenBucket::new(s2.clone(), &RebuildConfig::unthrottled());
            for _ in 0..100 {
                bucket.take(u64::MAX / 200).await;
            }
            s2.now().as_nanos()
        });
        sim.run();
        assert_eq!(h.try_take(), Some(0));
    }
}
