//! The PFS I/O modes (Figure 1 of the paper).
//!
//! A mode is a hint the application gives the file system about how the
//! nodes sharing a file will access it; the file system uses it to pick a
//! pointer-coordination strategy. The taxonomy:
//!
//! ```text
//!                      file sharing
//!                     /            \
//!          shared file pointer   unique (per-node) file pointers
//!           /        |      \          /        \        \
//!      atomicity  synced   log     node-order  same data  uncoordinated
//!       M_UNIX    M_SYNC   M_LOG    M_RECORD   M_GLOBAL    M_ASYNC
//!       (mode 0)  (mode 2) (mode 1) (mode 3)   (mode 4)    (mode 5)
//! ```
//!
//! * **M_UNIX** — one shared pointer with Unix single-process semantics:
//!   each access atomically reads at the pointer and advances it, so
//!   concurrent accesses serialize on the pointer token.
//! * **M_LOG** — shared pointer, first-come-first-served: an access
//!   reserves its range with a fetch-and-add and then proceeds, so data
//!   transfers overlap; ordering across nodes is arrival order.
//! * **M_SYNC** — shared pointer, node order, synchronizing: every node
//!   must arrive at the collective call before ranges (assigned in node
//!   order) are released; variable request sizes allowed.
//! * **M_RECORD** — per-node pointers over a record-structured file: call
//!   `k` of node `i` reads record `k·N + i`. No inter-node communication
//!   is needed, but all nodes must use the same request size. This is the
//!   mode the prefetch prototype targets.
//! * **M_GLOBAL** — all nodes read the *same* data; the I/O nodes satisfy
//!   one physical read per collective call and fan the data out.
//! * **M_ASYNC** — per-node pointers, no coordination, no consistency
//!   guarantees: the fastest shared-file mode.

use std::fmt;

/// A PFS file-sharing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoMode {
    /// Mode 0: shared pointer, atomic (serializing).
    MUnix,
    /// Mode 1: shared pointer, arrival-ordered log.
    MLog,
    /// Mode 2: shared pointer, node-ordered, synchronizing.
    MSync,
    /// Mode 3: per-node pointers, node-ordered records (same size).
    MRecord,
    /// Mode 4: per-node pointers, all nodes see the same data.
    MGlobal,
    /// Mode 5: per-node pointers, uncoordinated.
    MAsync,
}

impl IoMode {
    /// The numeric mode of the Paragon API.
    pub fn number(self) -> u8 {
        match self {
            IoMode::MUnix => 0,
            IoMode::MLog => 1,
            IoMode::MSync => 2,
            IoMode::MRecord => 3,
            IoMode::MGlobal => 4,
            IoMode::MAsync => 5,
        }
    }

    /// All six modes, mode-number order.
    pub fn all() -> [IoMode; 6] {
        [
            IoMode::MUnix,
            IoMode::MLog,
            IoMode::MSync,
            IoMode::MRecord,
            IoMode::MGlobal,
            IoMode::MAsync,
        ]
    }

    /// True for modes where all nodes share one file pointer.
    pub fn shared_pointer(self) -> bool {
        matches!(self, IoMode::MUnix | IoMode::MLog | IoMode::MSync)
    }

    /// True for modes whose accesses are totally ordered by node rank.
    pub fn node_ordered(self) -> bool {
        matches!(self, IoMode::MSync | IoMode::MRecord)
    }

    /// True when every node of a collective call sees identical data.
    pub fn same_data(self) -> bool {
        self == IoMode::MGlobal
    }

    /// True when all nodes must issue equal-sized requests.
    pub fn requires_equal_sizes(self) -> bool {
        self == IoMode::MRecord
    }

    /// True when an access is atomic with respect to the shared pointer
    /// (the pointer token is held across the data transfer).
    pub fn atomic(self) -> bool {
        self == IoMode::MUnix
    }

    /// True when a collective call synchronizes all nodes before any
    /// request is serviced.
    pub fn synchronizing(self) -> bool {
        self == IoMode::MSync
    }
}

impl fmt::Display for IoMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            IoMode::MUnix => "M_UNIX",
            IoMode::MLog => "M_LOG",
            IoMode::MSync => "M_SYNC",
            IoMode::MRecord => "M_RECORD",
            IoMode::MGlobal => "M_GLOBAL",
            IoMode::MAsync => "M_ASYNC",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_numbers_match_paragon_api() {
        let nums: Vec<u8> = IoMode::all().iter().map(|m| m.number()).collect();
        assert_eq!(nums, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn taxonomy_partitions_correctly() {
        // Exactly three shared-pointer modes.
        let shared: Vec<IoMode> = IoMode::all()
            .into_iter()
            .filter(|m| m.shared_pointer())
            .collect();
        assert_eq!(shared, vec![IoMode::MUnix, IoMode::MLog, IoMode::MSync]);
        // Exactly one atomic, one synchronizing, one same-data mode.
        assert_eq!(IoMode::all().iter().filter(|m| m.atomic()).count(), 1);
        assert_eq!(
            IoMode::all().iter().filter(|m| m.synchronizing()).count(),
            1
        );
        assert_eq!(IoMode::all().iter().filter(|m| m.same_data()).count(), 1);
        // M_RECORD is node-ordered but not shared-pointer.
        assert!(IoMode::MRecord.node_ordered());
        assert!(!IoMode::MRecord.shared_pointer());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(IoMode::MRecord.to_string(), "M_RECORD");
        assert_eq!(IoMode::MUnix.to_string(), "M_UNIX");
    }
}
