//! The mounted parallel file system.
//!
//! [`ParallelFs::new`] wires a machine up: one PFS server per I/O node,
//! the pointer server on the service node, and the RPC fabric between
//! them. Files are created with explicit stripe attributes, populated
//! through [`ParallelFs::populate_with`] (experiment setup — writes land
//! directly on the UFS instances without charging client time), and
//! opened per node with [`ParallelFs::open`].

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use paragon_machine::Machine;
use paragon_mesh::NodeId;
use paragon_os::{ArtConfig, ArtPool, ArtStats, RpcClient, RpcNet, RpcPolicy};
use paragon_sim::Sim;

use crate::client::{ClientParams, OpenOptions, PfsFile};
use crate::meta::{FileMeta, Registry, Replica};
use crate::modes::IoMode;
use crate::pointer::{PointerServer, PointerStats};
use crate::proto::{PfsError, PfsFileId, PfsRequest, PfsResponse};
use crate::redundancy::Redundancy;
use crate::server::{IonServer, ServerParams, ServerStats};
use crate::stripe::StripeAttrs;

/// One compute node's RPC endpoint and ART pool.
pub(crate) type NodeEndpoint = (RpcClient<PfsRequest, PfsResponse>, ArtPool);

/// A mounted PFS. One per machine.
pub struct ParallelFs {
    sim: Sim,
    machine: Rc<Machine>,
    rpc: RpcNet<PfsRequest, PfsResponse>,
    registry: Rc<RefCell<Registry>>,
    pointer: PointerServer,
    servers: Vec<IonServer>,
    io_node_ids: Rc<Vec<NodeId>>,
    /// Lazily-created per-rank client endpoints and ART pools (one mailbox
    /// and one active list per compute node).
    clients: RefCell<BTreeMap<usize, NodeEndpoint>>,
    /// Mount-level redundancy policy (`Replicated` places extra copies).
    redundancy: Redundancy,
    /// Stripe slots awaiting re-replication; polled live by telemetry.
    rebuild_pending: Rc<Cell<u64>>,
    /// Cumulative bytes copied by recovery coordinators.
    rebuild_bytes: Rc<Cell<u64>>,
    /// Cumulative reads that failed over to a non-primary replica.
    replica_failovers: Rc<Cell<u64>>,
    /// Cumulative reads served by a non-primary replica.
    replica_reads: Rc<Cell<u64>>,
}

impl ParallelFs {
    /// Mount a PFS on `machine` with single-copy striping (the paper's
    /// layout): starts the I/O-node servers and the pointer server.
    pub fn new(machine: Rc<Machine>) -> Rc<Self> {
        Self::new_with_redundancy(machine, Redundancy::None)
    }

    /// Mount with an explicit redundancy policy. `Replicated { rf }`
    /// places `rf` copies of every stripe slot on `rf` distinct I/O
    /// nodes; `None`/`ParityRaid` behave exactly like [`ParallelFs::new`]
    /// (parity membership is a machine-calibration matter).
    pub fn new_with_redundancy(machine: Rc<Machine>, redundancy: Redundancy) -> Rc<Self> {
        let sim = machine.sim().clone();
        let calib = machine.calib().clone();
        let rpc: RpcNet<PfsRequest, PfsResponse> =
            RpcNet::new(&sim, machine.topology(), calib.mesh.clone());
        let registry = Rc::new(RefCell::new(Registry::new()));

        let server_params = ServerParams {
            request_overhead: calib.server_request,
            partial_block_penalty: calib.partial_block_penalty,
            shared_file_check: calib.shared_file_check,
            fs_block: calib.fs_block,
            threads: calib.server_threads,
        };
        let mut servers = Vec::with_capacity(machine.io_nodes());
        for i in 0..machine.io_nodes() {
            let server = IonServer::new(
                &sim,
                machine.ufs(i).clone(),
                i,
                server_params.clone(),
                registry.clone(),
            );
            servers.push(server.clone());
            rpc.serve(machine.io_node(i), move |_src, req| {
                let server = server.clone();
                Box::pin(async move { server.handle(req).await })
            });
        }

        let pointer = PointerServer::new(&sim, calib.pointer_op);
        let ptr = pointer.clone();
        rpc.serve(machine.service_node(), move |_src, req| {
            let ptr = ptr.clone();
            Box::pin(async move {
                match req {
                    PfsRequest::Ptr(p) => PfsResponse::Ptr(ptr.handle(p).await),
                    // Data requests belong on an I/O node; a misrouted one
                    // gets a matching-kind error reply, not a crash.
                    PfsRequest::Read { .. } => PfsResponse::Data(Err(PfsError::BadRequest)),
                    PfsRequest::Write { .. } => PfsResponse::WriteAck(Err(PfsError::BadRequest)),
                    PfsRequest::StageReplica { .. } | PfsRequest::CommitReplica { .. } => {
                        PfsResponse::Staged(Err(PfsError::BadRequest))
                    }
                }
            })
        });

        let io_node_ids = Rc::new(
            (0..machine.io_nodes())
                .map(|i| machine.io_node(i))
                .collect(),
        );
        assert!(
            redundancy.replication_factor() <= machine.io_nodes(),
            "replication factor exceeds the I/O-node count"
        );
        Rc::new(ParallelFs {
            sim,
            machine,
            rpc,
            registry,
            pointer,
            servers,
            io_node_ids,
            clients: RefCell::new(BTreeMap::new()),
            redundancy,
            rebuild_pending: Rc::new(Cell::new(0)),
            rebuild_bytes: Rc::new(Cell::new(0)),
            replica_failovers: Rc::new(Cell::new(0)),
            replica_reads: Rc::new(Cell::new(0)),
        })
    }

    /// The mount's redundancy policy.
    pub fn redundancy(&self) -> Redundancy {
        self.redundancy
    }

    /// Live count of stripe slots awaiting re-replication (telemetry
    /// gauge; zero whenever no rebuild is in progress).
    pub fn rebuild_pending_cell(&self) -> Rc<Cell<u64>> {
        self.rebuild_pending.clone()
    }

    /// Cumulative bytes copied by recovery coordinators.
    pub fn rebuild_bytes_cell(&self) -> Rc<Cell<u64>> {
        self.rebuild_bytes.clone()
    }

    /// Cumulative reads that failed over to a non-primary replica.
    pub fn replica_failovers_cell(&self) -> Rc<Cell<u64>> {
        self.replica_failovers.clone()
    }

    /// Cumulative reads served by a non-primary replica.
    pub fn replica_reads_cell(&self) -> Rc<Cell<u64>> {
        self.replica_reads.clone()
    }

    pub(crate) fn sim(&self) -> &Sim {
        &self.sim
    }

    pub(crate) fn registry(&self) -> &Rc<RefCell<Registry>> {
        &self.registry
    }

    /// The extra replica I/O nodes of one stripe slot whose primary is
    /// `primary`: `rf - 1` distinct I/O nodes, preferring nodes *outside*
    /// the stripe group — they serve no primary slot, so when a group
    /// member crashes its failover traffic lands on spare capacity
    /// instead of doubling a neighbour's load. Spares are rotated per
    /// primary so consecutive slots spread over different spares; when
    /// the group covers the whole machine the placement degrades to the
    /// next distinct nodes cyclically. Deterministic either way.
    fn replica_ions(&self, primary: usize, group: &[usize]) -> Vec<usize> {
        let ions = self.machine.io_nodes();
        let rf = self.redundancy.replication_factor();
        let (mut spare, loaded): (Vec<usize>, Vec<usize>) = (1..ions)
            .map(|d| (primary + d) % ions)
            .partition(|ion| !group.contains(ion));
        if !spare.is_empty() {
            let rot = primary % spare.len();
            spare.rotate_left(rot);
        }
        spare
            .into_iter()
            .chain(loaded)
            .take(rf.saturating_sub(1))
            .collect()
    }

    /// The machine this PFS is mounted on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Create a PFS file with explicit stripe attributes.
    pub async fn create(&self, name: &str, attrs: StripeAttrs) -> Result<PfsFileId, PfsError> {
        assert!(
            attrs.group.iter().all(|&ion| ion < self.machine.io_nodes()),
            "stripe group references a nonexistent I/O node"
        );
        let mut slots = Vec::with_capacity(attrs.factor());
        let mut replicas = Vec::with_capacity(attrs.factor());
        for (slot, &ion) in attrs.group.iter().enumerate() {
            let inode = self
                .machine
                .ufs(ion)
                .create(&format!("{name}.{slot}"))
                .await
                .map_err(PfsError::from)?;
            slots.push((ion, inode));
            let mut copies = vec![Replica {
                ion,
                inode,
                ready: true,
            }];
            for (k, rion) in self.replica_ions(ion, &attrs.group).into_iter().enumerate() {
                let rinode = self
                    .machine
                    .ufs(rion)
                    .create(&format!("{name}.{slot}.r{}", k + 1))
                    .await
                    .map_err(PfsError::from)?;
                copies.push(Replica {
                    ion: rion,
                    inode: rinode,
                    ready: true,
                });
            }
            replicas.push(copies);
        }
        Ok(self
            .registry
            .borrow_mut()
            .insert_replicated(name, attrs, slots, replicas))
    }

    /// Create with the mount's default layout: striped once across the
    /// first `factor` I/O nodes in `stripe_unit` units.
    pub async fn create_default(
        &self,
        name: &str,
        stripe_unit: u64,
        factor: usize,
    ) -> Result<PfsFileId, PfsError> {
        self.create(name, StripeAttrs::across(factor, stripe_unit))
            .await
    }

    /// Lay `size` bytes of content into `file`, byte `i` = `fill(i)`.
    ///
    /// Experiment setup: the data lands directly on the per-slot UFS
    /// files (the simulated disks still charge their write time, but no
    /// client/mesh time is consumed — populate before starting the clock).
    pub async fn populate_with(
        &self,
        file: PfsFileId,
        size: u64,
        fill: impl Fn(u64) -> u8,
    ) -> Result<(), PfsError> {
        if size == 0 {
            return Ok(());
        }
        let meta = self.registry.borrow().get(file)?.clone();
        let su = meta.attrs.stripe_unit;
        let g = meta.attrs.factor() as u64;
        // Build each slot's stripe file content in one pass.
        let mut slot_bufs: Vec<BytesMut> = (0..g)
            .map(|slot| {
                // Slot length: full rows plus the clipped final row.
                let units = size.div_ceil(su);
                let full = units / g + u64::from(units % g > slot);
                let mut len = full * su;
                // The very last unit may be clipped by the file size.
                if units > 0 && (units - 1) % g == slot && !size.is_multiple_of(su) {
                    len -= su - size % su;
                }
                BytesMut::zeroed(len as usize)
            })
            .collect();
        for unit in 0..size.div_ceil(su) {
            let slot = (unit % g) as usize;
            let row = unit / g;
            let ustart = unit * su;
            let ulen = su.min(size - ustart);
            // paragon-lint: allow(P1) — slot = unit % g < g = slot_bufs.len(),
            // and each buffer was sized above to hold exactly its rows
            let buf = &mut slot_bufs[slot][(row * su) as usize..(row * su + ulen) as usize];
            for (i, b) in buf.iter_mut().enumerate() {
                *b = fill(ustart + i as u64);
            }
        }
        let mut handles = Vec::new();
        for (slot, buf) in slot_bufs.into_iter().enumerate() {
            if buf.is_empty() {
                continue;
            }
            let data = buf.freeze();
            // Every copy of the slot gets the identical content (the
            // primary first, extra replicas after — one write task per
            // copy, so replicated populates still overlap across nodes).
            for copy in meta.slot_replicas(slot as u16)? {
                let ufs = self.machine.ufs(copy.ion).clone();
                let data = data.clone();
                handles.push(self.sim.spawn_named("populate-slot", async move {
                    ufs.write(copy.inode, 0, data).await
                }));
            }
        }
        for h in handles {
            h.await.map_err(PfsError::from)?;
        }
        Ok(())
    }

    /// Remove a PFS file: frees every slot's stripe file (flushing any
    /// dirty cached blocks) and tombstones the id. Open handles must not
    /// be used afterwards (their requests will fail with `UnknownFile`).
    pub async fn remove(&self, file: PfsFileId) -> Result<(), PfsError> {
        let meta = self.registry.borrow_mut().remove(file)?;
        for slot in 0..meta.slots.len() {
            for copy in meta.slot_replicas(slot as u16)? {
                self.machine
                    .ufs(copy.ion)
                    .remove(copy.inode)
                    .await
                    .map_err(PfsError::from)?;
            }
        }
        Ok(())
    }

    /// Metadata snapshot of `file` (name, stripe attributes, slot map).
    pub fn stat(&self, file: PfsFileId) -> Result<FileMeta, PfsError> {
        Ok(self.registry.borrow().get(file)?.clone())
    }

    /// Names of every live PFS file, creation order.
    pub fn list(&self) -> Vec<String> {
        self.registry
            .borrow()
            .iter()
            .map(|m| m.name.clone())
            .collect()
    }

    /// Logical size of `file` implied by its slot files' current sizes.
    pub fn logical_size(&self, file: PfsFileId) -> Result<u64, PfsError> {
        let registry = self.registry.borrow();
        let meta = registry.get(file)?;
        let sizes: Vec<u64> = meta
            .slots
            .iter()
            .map(|&(ion, inode)| self.machine.ufs(ion).size(inode).unwrap_or(0))
            .collect();
        Ok(meta.attrs.logical_end(&sizes))
    }

    /// Open `file` on compute node `rank` (of `nprocs`) in `mode`.
    pub fn open(
        &self,
        rank: usize,
        nprocs: usize,
        file: PfsFileId,
        mode: IoMode,
        opts: OpenOptions,
    ) -> Result<PfsFile, PfsError> {
        self.open_on(rank, rank, nprocs, file, mode, opts)
    }

    /// Open `file` from compute node `node`, participating as `rank` of
    /// `nprocs`. The separate-files workloads use this: each physical
    /// node opens its private file as rank 0 of 1.
    pub fn open_on(
        &self,
        node: usize,
        rank: usize,
        nprocs: usize,
        file: PfsFileId,
        mode: IoMode,
        opts: OpenOptions,
    ) -> Result<PfsFile, PfsError> {
        let meta = self.registry.borrow().get(file)?.clone();
        let calib = self.machine.calib();
        let (rpc, arts) = self.node_endpoint(node);
        let size = self.logical_size(file)?;
        Ok(PfsFile::new(
            self.sim.clone(),
            rpc,
            arts,
            ClientParams {
                syscall: calib.syscall,
                record_bookkeeping: calib.record_bookkeeping,
                data_policy: RpcPolicy::with_retries(
                    calib.rpc_attempt_timeout,
                    calib.rpc_retries,
                    calib.rpc_backoff,
                ),
                replica_failovers: self.replica_failovers.clone(),
                replica_reads: self.replica_reads.clone(),
            },
            meta,
            self.io_node_ids.clone(),
            self.machine.service_node(),
            rank as u16,
            nprocs as u16,
            mode,
            opts,
            size,
        ))
    }

    /// The RPC endpoint + ART pool of compute node `rank`, created on
    /// first use (one mailbox per node).
    pub(crate) fn node_endpoint(&self, rank: usize) -> NodeEndpoint {
        let mut clients = self.clients.borrow_mut();
        let calib = self.machine.calib();
        clients
            .entry(rank)
            .or_insert_with(|| {
                let client = self.rpc.client(self.machine.compute_node(rank));
                let arts = ArtPool::new(
                    &self.sim,
                    ArtConfig {
                        setup: calib.art_setup,
                        dispatch: calib.art_dispatch,
                        max_arts: calib.max_arts,
                    },
                );
                (client, arts)
            })
            .clone()
    }

    /// Counters of I/O node `index`'s server. Returns empty counters for
    /// an index outside the machine's I/O-node range.
    pub fn server_stats(&self, index: usize) -> ServerStats {
        self.servers
            .get(index)
            .map(|s| s.stats())
            .unwrap_or_default()
    }

    /// Counters of the pointer server.
    pub fn pointer_stats(&self) -> PointerStats {
        self.pointer.stats()
    }

    /// Aggregate bytes read across all I/O-node servers.
    pub fn total_bytes_served(&self) -> u64 {
        self.servers.iter().map(|s| s.stats().bytes_read).sum()
    }

    /// Live request-queue-depth cells of every I/O-node server, in
    /// I/O-node order, for telemetry gauges.
    pub fn server_inflight_cells(&self) -> Vec<Rc<Cell<usize>>> {
        self.servers.iter().map(|s| s.inflight_cell()).collect()
    }

    /// Cumulative server-thread-held nanoseconds per I/O node.
    pub fn server_busy_ns(&self) -> Vec<u64> {
        self.servers.iter().map(|s| s.busy_ns()).collect()
    }

    /// Requests currently on any compute node's ART active list (the
    /// paper's active FIFO), summed over nodes. Counts only endpoints
    /// created so far — which is all of them once the workload opened
    /// its files.
    pub fn art_active(&self) -> usize {
        self.clients
            .borrow()
            .values()
            .map(|(_, arts)| arts.active())
            .sum()
    }

    /// ART counters aggregated over all compute-node pools: summed
    /// submissions/completions, per-node max of the active-list peak.
    pub fn art_stats(&self) -> ArtStats {
        let mut total = ArtStats::default();
        for (_, arts) in self.clients.borrow().values() {
            let st = arts.stats();
            total.submitted += st.submitted;
            total.completed += st.completed;
            total.max_active = total.max_active.max(st.max_active);
        }
        total
    }

    /// The RPC fabric, for transport-layer telemetry.
    pub fn rpc_net(&self) -> &RpcNet<PfsRequest, PfsResponse> {
        &self.rpc
    }
}

/// Deterministic file content used throughout tests and experiments:
/// byte `i` of a file with `seed` is `pattern_byte(seed, i)`.
pub fn pattern_byte(seed: u64, offset: u64) -> u8 {
    let x = offset
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seed.wrapping_mul(0xd134_2543_de82_ef95));
    ((x >> 32) ^ x) as u8
}

/// Materialize `[offset, offset + len)` of the pattern file (what a read
/// should return).
pub fn pattern_slice(seed: u64, offset: u64, len: usize) -> Bytes {
    let mut buf = BytesMut::zeroed(len);
    for (i, b) in buf.iter_mut().enumerate() {
        *b = pattern_byte(seed, offset + i as u64);
    }
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_machine::MachineConfig;

    const KB: u64 = 1024;

    fn mount(sim: &Sim, cn: usize, ion: usize) -> Rc<ParallelFs> {
        let machine = Rc::new(Machine::new(sim, MachineConfig::tiny_instant(cn, ion)));
        ParallelFs::new(machine)
    }

    /// Build a populated file and return its id.
    async fn make_file(
        pfs: &ParallelFs,
        name: &str,
        attrs: StripeAttrs,
        size: u64,
        seed: u64,
    ) -> PfsFileId {
        let id = pfs.create(name, attrs).await.unwrap();
        pfs.populate_with(id, size, |i| pattern_byte(seed, i))
            .await
            .unwrap();
        id
    }

    #[test]
    fn populate_then_read_at_roundtrips() {
        let sim = Sim::new(3);
        let pfs = mount(&sim, 2, 3);
        let p2 = pfs.clone();
        let h = sim.spawn(async move {
            let attrs = StripeAttrs::across(3, 16 * KB);
            let id = make_file(&p2, "/pfs/a", attrs, 300 * KB, 7).await;
            assert_eq!(p2.logical_size(id).unwrap(), 300 * KB);
            let f = p2
                .open(0, 1, id, IoMode::MAsync, OpenOptions::default())
                .unwrap();
            // An unaligned range spanning several stripe units.
            let data = f.transfer_read(10_000, 100_000).await.unwrap();
            data == pattern_slice(7, 10_000, 100_000)
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }

    #[test]
    fn m_record_partitions_the_file_by_rank() {
        let sim = Sim::new(4);
        let pfs = mount(&sim, 4, 2);
        let p2 = pfs.clone();
        let h = sim.spawn(async move {
            let attrs = StripeAttrs::across(2, 64 * KB);
            let id = make_file(&p2, "/pfs/r", attrs, 4 * 64 * KB * 2, 1).await;
            let mut ok = true;
            for rank in 0..4usize {
                let f = p2
                    .open(rank, 4, id, IoMode::MRecord, OpenOptions::default())
                    .unwrap();
                for round in 0..2u64 {
                    let data = f.read(64 * 1024).await.unwrap();
                    let expect_at = (round * 4 + rank as u64) * 64 * KB;
                    ok &= data == pattern_slice(1, expect_at, 64 * 1024);
                }
            }
            ok
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }

    #[test]
    fn m_unix_reads_are_disjoint_and_cover_the_prefix() {
        let sim = Sim::new(5);
        let pfs = mount(&sim, 3, 2);
        let p2 = pfs.clone();
        let done: Rc<RefCell<Vec<Bytes>>> = Rc::new(RefCell::new(Vec::new()));
        let d2 = done.clone();
        sim.spawn(async move {
            let attrs = StripeAttrs::across(2, 16 * KB);
            let id = make_file(&p2, "/pfs/u", attrs, 96 * KB, 9).await;
            let mut handles = Vec::new();
            for rank in 0..3usize {
                let f = p2
                    .open(rank, 3, id, IoMode::MUnix, OpenOptions::default())
                    .unwrap();
                let sim2 = f.sim().clone();
                handles.push(sim2.spawn(async move { f.read(32 * 1024).await.unwrap() }));
            }
            for h in handles {
                let data = h.await;
                d2.borrow_mut().push(data);
            }
        });
        sim.run();
        // Together the three 32 KB reads must cover bytes 0..96 KB exactly
        // once (order depends on token arrival).
        let mut got: Vec<Bytes> = done.borrow().clone();
        got.sort_by_key(|b| {
            // Identify each chunk by matching its first byte offset.
            (0..3u64)
                .find(|&k| b[..] == pattern_slice(9, k * 32 * KB, 32 * 1024)[..])
                .expect("chunk does not match any expected range")
        });
        for (k, b) in got.iter().enumerate() {
            assert_eq!(&b[..], &pattern_slice(9, k as u64 * 32 * KB, 32 * 1024)[..]);
        }
    }

    #[test]
    fn m_global_all_nodes_see_identical_data() {
        let sim = Sim::new(6);
        let pfs = mount(&sim, 4, 2);
        let p2 = pfs.clone();
        let h = sim.spawn(async move {
            let attrs = StripeAttrs::across(2, 16 * KB);
            let id = make_file(&p2, "/pfs/g", attrs, 128 * KB, 2).await;
            let mut handles = Vec::new();
            for rank in 0..4usize {
                let f = p2
                    .open(rank, 4, id, IoMode::MGlobal, OpenOptions::default())
                    .unwrap();
                let sim2 = f.sim().clone();
                handles.push(sim2.spawn(async move {
                    let a = f.read(32 * 1024).await.unwrap();
                    let b = f.read(32 * 1024).await.unwrap();
                    (a, b)
                }));
            }
            let mut all = Vec::new();
            for h in handles {
                all.push(h.await);
            }
            all
        });
        sim.run();
        let all = h.try_take().unwrap();
        for (a, b) in &all {
            assert_eq!(&a[..], &pattern_slice(2, 0, 32 * 1024)[..]);
            assert_eq!(&b[..], &pattern_slice(2, 32 * KB, 32 * 1024)[..]);
        }
        // The I/O nodes must have deduplicated the collective reads.
        let shares: u64 = (0..2).map(|i| pfs.server_stats(i).global_shares).sum();
        assert!(shares > 0, "expected global read sharing");
    }

    #[test]
    fn ways_on_one_node_all_traffic_hits_that_node() {
        let sim = Sim::new(7);
        let pfs = mount(&sim, 2, 3);
        let p2 = pfs.clone();
        sim.spawn(async move {
            let attrs = StripeAttrs::ways_on_one(4, 1, 16 * KB);
            let id = make_file(&p2, "/pfs/w", attrs, 256 * KB, 3).await;
            let f = p2
                .open(0, 1, id, IoMode::MAsync, OpenOptions::default())
                .unwrap();
            let data = f.read(128 * 1024).await.unwrap();
            assert_eq!(&data[..], &pattern_slice(3, 0, 128 * 1024)[..]);
        });
        sim.run();
        assert!(pfs.server_stats(1).reads > 0);
        assert_eq!(pfs.server_stats(0).reads, 0);
        assert_eq!(pfs.server_stats(2).reads, 0);
    }

    #[test]
    fn write_at_then_read_back_through_pfs() {
        let sim = Sim::new(8);
        let pfs = mount(&sim, 1, 2);
        let p2 = pfs.clone();
        let h = sim.spawn(async move {
            let id = p2
                .create("/pfs/wr", StripeAttrs::across(2, 16 * KB))
                .await
                .unwrap();
            let f = p2
                .open(0, 1, id, IoMode::MAsync, OpenOptions::default())
                .unwrap();
            let payload = pattern_slice(11, 0, 100_000);
            f.write_at(0, payload.clone()).await.unwrap();
            let back = f.transfer_read(0, 100_000).await.unwrap();
            back == payload
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }

    #[test]
    fn aread_overlaps_with_computation() {
        let sim = Sim::new(9);
        let pfs = mount(&sim, 1, 2);
        let p2 = pfs.clone();
        let h = sim.spawn(async move {
            let attrs = StripeAttrs::across(2, 16 * KB);
            let id = make_file(&p2, "/pfs/as", attrs, 256 * KB, 4).await;
            let f = p2
                .open(0, 1, id, IoMode::MAsync, OpenOptions::default())
                .unwrap();
            let req = f.aread(64 * 1024).await;
            let data = req.join().await.unwrap();
            data == pattern_slice(4, 0, 64 * 1024)
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }

    #[test]
    fn remove_frees_slot_files_and_tombstones_the_id() {
        let sim = Sim::new(10);
        let pfs = mount(&sim, 1, 2);
        let p2 = pfs.clone();
        let h = sim.spawn(async move {
            let attrs = StripeAttrs::across(2, 16 * KB);
            let a = make_file(&p2, "/pfs/rm", attrs.clone(), 128 * KB, 1).await;
            assert_eq!(p2.list(), vec!["/pfs/rm".to_owned()]);
            assert_eq!(p2.stat(a).unwrap().slots.len(), 2);
            let f = p2
                .open(0, 1, a, IoMode::MAsync, OpenOptions::default())
                .unwrap();
            p2.remove(a).await.unwrap();
            assert!(p2.list().is_empty());
            assert!(p2.stat(a).is_err());
            // A stale handle's requests surface UnknownFile, not corruption.
            let err = f.transfer_read(0, 1024).await;
            assert!(err.is_err());
            // The name (and the space) can be reused.
            let b = make_file(&p2, "/pfs/rm", attrs, 64 * KB, 2).await;
            let g = p2
                .open(0, 1, b, IoMode::MAsync, OpenOptions::default())
                .unwrap();
            let data = g.transfer_read(0, 1024).await.unwrap();
            data == pattern_slice(2, 0, 1024)
        });
        sim.run();
        assert_eq!(h.try_take(), Some(true));
    }

    #[test]
    fn pattern_helpers_are_consistent() {
        let s = pattern_slice(5, 100, 50);
        for i in 0..50u64 {
            assert_eq!(s[i as usize], pattern_byte(5, 100 + i));
        }
    }
}
