//! RPC fabric under load and cancellation: many clients against many
//! servers, timed-out calls, and ART/RPC composition.

use paragon_mesh::{MeshParams, NodeId, Topology};
use paragon_os::{ArtConfig, ArtPool, RpcNet, WireSize};
use paragon_sim::{Sim, SimDuration, SimTime};

#[derive(Debug, Clone)]
struct Req(u64);
#[derive(Debug, Clone)]
struct Resp(u64);

impl WireSize for Req {
    fn wire_bytes(&self) -> u64 {
        8
    }
}
impl WireSize for Resp {
    fn wire_bytes(&self) -> u64 {
        8
    }
}

#[test]
fn all_pairs_heavy_traffic() {
    // 4 clients × 4 servers × 32 calls each; every reply must route back
    // to exactly its caller.
    let sim = Sim::new(11);
    let net: RpcNet<Req, Resp> = RpcNet::new(&sim, Topology::new(8, 1), MeshParams::paragon());
    for s in 4..8usize {
        let sim2 = sim.clone();
        net.serve(NodeId(s), move |src, Req(x)| {
            let sim2 = sim2.clone();
            Box::pin(async move {
                // Delay keyed on content so replies interleave heavily.
                sim2.sleep(SimDuration::from_micros(997 - (x % 997))).await;
                Resp(x * 1000 + src.0 as u64)
            })
        });
    }
    let mut handles = Vec::new();
    for c in 0..4usize {
        let client = net.client(NodeId(c));
        for k in 0..32u64 {
            let client = client.clone();
            let dst = NodeId(4 + ((c as u64 + k) % 4) as usize);
            let x = c as u64 * 100 + k;
            handles.push((
                x,
                c,
                sim.spawn(async move { client.call(dst, Req(x)).await.unwrap().0 }),
            ));
        }
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    for (x, c, h) in handles {
        assert_eq!(
            h.try_take(),
            Some(x * 1000 + c as u64),
            "call {x} misrouted"
        );
    }
    let st = net.stats();
    assert_eq!(st.calls, 128);
    assert_eq!(st.replies, 128);
}

#[test]
fn timed_out_call_discards_late_reply() {
    let sim = Sim::new(12);
    let net: RpcNet<Req, Resp> = RpcNet::new(&sim, Topology::new(2, 1), MeshParams::instant());
    let sim2 = sim.clone();
    net.serve(NodeId(1), move |_src, Req(x)| {
        let sim2 = sim2.clone();
        Box::pin(async move {
            sim2.sleep(SimDuration::from_secs(10)).await; // too slow
            Resp(x)
        })
    });
    let client = net.client(NodeId(0));
    let sim3 = sim.clone();
    let h = sim.spawn(async move {
        // First call times out…
        let timed_out = sim3
            .timeout(SimDuration::from_secs(1), client.call(NodeId(1), Req(1)))
            .await
            .is_none();
        // …and the fabric keeps working for later calls (the stale reply
        // at t=10 s must not crash the router or leak into this call).
        let v = client.call(NodeId(1), Req(2)).await.unwrap().0;
        (timed_out, v)
    });
    let report = sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    assert_eq!(h.try_take(), Some((true, 2)));
    // Sanity: the run got past the slow handler's 10 s sleep.
    assert!(report.end_time >= SimTime::ZERO + SimDuration::from_secs(10));
}

#[test]
fn art_submitted_rpcs_overlap_with_user_work() {
    // The composition the PFS client uses: an asynchronous read is an RPC
    // submitted through the ART pool, overlapping the user thread.
    let sim = Sim::new(13);
    let net: RpcNet<Req, Resp> = RpcNet::new(&sim, Topology::new(2, 1), MeshParams::instant());
    let sim2 = sim.clone();
    net.serve(NodeId(1), move |_src, Req(x)| {
        let sim2 = sim2.clone();
        Box::pin(async move {
            sim2.sleep(SimDuration::from_millis(40)).await; // "the disk"
            Resp(x + 1)
        })
    });
    let client = net.client(NodeId(0));
    let pool = ArtPool::new(&sim, ArtConfig::instant());
    let sim3 = sim.clone();
    let h = sim.spawn(async move {
        let c = client.clone();
        let req = pool
            .submit(async move { c.call(NodeId(1), Req(41)).await.unwrap().0 })
            .await;
        sim3.sleep(SimDuration::from_millis(40)).await; // compute
        let v = req.join().await;
        (v, sim3.now().as_millis_round())
    });
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
    // Full overlap: 40 ms total, not 80.
    assert_eq!(h.try_take(), Some((42, 40)));
}
