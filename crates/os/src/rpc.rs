//! Typed request/reply messaging over the mesh.
//!
//! The Paragon OS server structure is client/server message passing: a
//! compute node sends a request message to an I/O or service node and the
//! reply (including any file data) comes back over the mesh. Both legs pay
//! the mesh timing model — software send/receive overheads plus wire time
//! proportional to the payload, so a 1 MB read reply really does occupy
//! the I/O node's NIC for 1 MB worth of link time.
//!
//! One [`RpcNet`] is built per machine; each node claims its single
//! mailbox either as a [`RpcClient`] (compute nodes) or by installing a
//! server handler with [`RpcNet::serve`] (I/O and service nodes).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use paragon_mesh::{Mesh, MeshParams, MeshStats, NodeId, Topology};
use paragon_sim::sync::{oneshot, OneshotSender};
use paragon_sim::{ev, EventKind, ReqId, Sim, SimDuration, Track};

/// Types that know their size on the wire. Headers are added by the RPC
/// layer; implementations report payload bytes only.
pub trait WireSize {
    /// Serialized payload size in bytes.
    fn wire_bytes(&self) -> u64;

    /// Flight-recorder request id this message belongs to (`0` =
    /// untagged). The RPC layer stamps it on the mesh's NetTx/NetRx
    /// events; a reply inherits the tag of the call it answers.
    fn trace_req(&self) -> ReqId {
        0
    }
}

/// Fixed per-message header cost (routing, request ids, lengths).
pub const RPC_HEADER_BYTES: u64 = 64;

#[derive(Clone)]
enum RpcWire<Req, Resp> {
    Call { id: u64, reply_to: NodeId, req: Req },
    Reply { id: u64, resp: Resp },
}

/// Why an RPC failed. Healthy fabrics never produce these; they exist so
/// injected faults surface as values instead of hangs or panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No reply arrived within the attempt deadline.
    Timeout,
    /// The reply path was torn down (server task gone, endpoint dropped).
    Dropped,
    /// Every attempt allowed by the retry policy failed.
    TooManyRetries {
        /// Attempts made (initial call + retries).
        attempts: u32,
    },
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Timeout => write!(f, "rpc timed out"),
            RpcError::Dropped => write!(f, "rpc reply path dropped"),
            RpcError::TooManyRetries { attempts } => {
                write!(f, "rpc failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for RpcError {}

/// Deadline and retry discipline for [`RpcClient::call_policy`].
///
/// Each attempt is given `attempt_timeout`; a failed attempt waits
/// `backoff × attempt-number` (deterministic linear backoff) before the
/// next. `retries == 0` means a single attempt whose failure is returned
/// as-is; with retries, exhaustion maps to [`RpcError::TooManyRetries`].
///
/// Only idempotent requests should be retried: a timed-out attempt may
/// still have executed on the server (the reply is discarded, the
/// side effect is not undone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcPolicy {
    /// Deadline per attempt. `None` waits forever (no retries fire).
    pub attempt_timeout: Option<SimDuration>,
    /// Extra attempts after the first failure.
    pub retries: u32,
    /// Base backoff; attempt `n`'s failure waits `backoff × n`.
    pub backoff: SimDuration,
}

impl Default for RpcPolicy {
    fn default() -> Self {
        RpcPolicy {
            attempt_timeout: None,
            retries: 0,
            backoff: SimDuration::ZERO,
        }
    }
}

impl RpcPolicy {
    /// No deadline, no retries: identical to [`RpcClient::call`].
    pub fn none() -> Self {
        Self::default()
    }

    /// `retries` extra attempts with a `timeout` deadline each and
    /// `backoff` linear backoff between them.
    pub fn with_retries(timeout: SimDuration, retries: u32, backoff: SimDuration) -> Self {
        RpcPolicy {
            attempt_timeout: Some(timeout),
            retries,
            backoff,
        }
    }
}

/// Counters for one RPC network.
#[derive(Debug, Default, Clone)]
pub struct RpcStats {
    pub calls: u64,
    pub replies: u64,
    /// Attempts abandoned on their deadline.
    pub timeouts: u64,
    /// Retries issued after a failed attempt.
    pub retries: u64,
    /// Calls that exhausted their retry policy.
    pub give_ups: u64,
    /// Frames of the wrong kind for their endpoint (a Call delivered to
    /// a client, a Reply delivered to a server); dropped on the floor.
    pub misrouted: u64,
}

/// The machine-wide RPC fabric. Clone freely.
pub struct RpcNet<Req, Resp> {
    sim: Sim,
    mesh: Mesh<RpcWire<Req, Resp>>,
    stats: Rc<RefCell<RpcStats>>,
}

impl<Req, Resp> Clone for RpcNet<Req, Resp> {
    fn clone(&self) -> Self {
        RpcNet {
            sim: self.sim.clone(),
            mesh: self.mesh.clone(),
            stats: self.stats.clone(),
        }
    }
}

impl<Req, Resp> RpcNet<Req, Resp>
where
    Req: WireSize + Clone + Send + 'static,
    Resp: WireSize + Clone + Send + 'static,
{
    /// Build the fabric over `topo`.
    pub fn new(sim: &Sim, topo: Topology, params: MeshParams) -> Self {
        RpcNet {
            sim: sim.clone(),
            mesh: Mesh::new(sim, topo, params),
            stats: Rc::new(RefCell::new(RpcStats::default())),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> RpcStats {
        self.stats.borrow().clone()
    }

    /// Transport-layer traffic counters from the underlying mesh.
    pub fn mesh_stats(&self) -> MeshStats {
        self.mesh.stats()
    }

    /// Live bytes-in-transit cell from the underlying mesh, for
    /// telemetry gauges.
    pub fn inflight_bytes_cell(&self) -> Rc<Cell<i64>> {
        self.mesh.inflight_bytes_cell()
    }

    /// Cumulative NIC-occupancy nanoseconds, indexed by node.
    pub fn nic_busy_ns(&self) -> Vec<u64> {
        self.mesh.nic_busy_ns()
    }

    /// Claim `node`'s mailbox as a client endpoint. Spawns the node's
    /// receive loop, which routes replies to their waiting callers.
    pub fn client(&self, node: NodeId) -> RpcClient<Req, Resp> {
        let mut rx = self.mesh.bind(node);
        let pending: Pending<Resp> = Rc::new(RefCell::new(BTreeMap::new()));
        let pending2 = pending.clone();
        let stats = self.stats.clone();
        self.sim.spawn_named("rpc-client-rx", async move {
            while let Some(env) = rx.recv().await {
                match env.payload {
                    RpcWire::Reply { id, resp } => {
                        if let Some(tx) = pending2.borrow_mut().remove(&id) {
                            tx.send(resp);
                        }
                        // A missing entry means the caller timed out and
                        // dropped its receiver; the reply is discarded.
                    }
                    RpcWire::Call { .. } => {
                        // A client endpoint cannot serve calls; the frame
                        // is dropped and counted, never answered.
                        stats.borrow_mut().misrouted += 1;
                    }
                }
            }
        });
        RpcClient {
            net: self.clone(),
            node,
            pending,
            next_id: Rc::new(Cell::new(0)),
        }
    }

    /// Install `handler` as `node`'s server. Each incoming call runs as its
    /// own task (the Paragon OS server was multithreaded), so one slow disk
    /// request does not head-of-line-block the rest.
    pub fn serve<H>(&self, node: NodeId, handler: H)
    where
        H: Fn(NodeId, Req) -> Pin<Box<dyn Future<Output = Resp>>> + 'static,
    {
        let mut rx = self.mesh.bind(node);
        let net = self.clone();
        self.sim.spawn_named("rpc-server", async move {
            while let Some(env) = rx.recv().await {
                match env.payload {
                    RpcWire::Call { id, reply_to, req } => {
                        // The reply rides under the request's trace tag —
                        // capture it before the request moves into the
                        // handler.
                        let tag = req.trace_req();
                        let fut = handler(env.src, req);
                        let net2 = net.clone();
                        net.sim.spawn_named("rpc-handler", async move {
                            let resp = fut.await;
                            net2.stats.borrow_mut().replies += 1;
                            let bytes = resp.wire_bytes() + RPC_HEADER_BYTES;
                            net2.mesh
                                .send_tagged(
                                    node,
                                    reply_to,
                                    bytes,
                                    RpcWire::Reply { id, resp },
                                    tag,
                                )
                                .await;
                        });
                    }
                    RpcWire::Reply { .. } => {
                        // A server endpoint never issued a call; the stray
                        // reply is dropped and counted.
                        net.stats.borrow_mut().misrouted += 1;
                    }
                }
            }
        });
    }
}

type Pending<Resp> = Rc<RefCell<BTreeMap<u64, OneshotSender<Resp>>>>;

/// A node's client endpoint; issue calls with [`RpcClient::call`].
pub struct RpcClient<Req, Resp> {
    net: RpcNet<Req, Resp>,
    node: NodeId,
    pending: Pending<Resp>,
    next_id: Rc<Cell<u64>>,
}

impl<Req, Resp> Clone for RpcClient<Req, Resp> {
    fn clone(&self) -> Self {
        RpcClient {
            net: self.net.clone(),
            node: self.node,
            pending: self.pending.clone(),
            next_id: self.next_id.clone(),
        }
    }
}

impl<Req, Resp> RpcClient<Req, Resp>
where
    Req: WireSize + Clone + Send + 'static,
    Resp: WireSize + Clone + Send + 'static,
{
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Send `req` to `dst` and wait for its reply. No deadline: if the
    /// fabric loses the call or the reply, this waits forever (the run
    /// report will show the unfinished task). `Err(Dropped)` means the
    /// reply path was torn down, e.g. the client endpoint shut down.
    pub async fn call(&self, dst: NodeId, req: Req) -> Result<Resp, RpcError> {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        let (tx, rx) = oneshot();
        self.pending.borrow_mut().insert(id, tx);
        self.net.stats.borrow_mut().calls += 1;
        let bytes = req.wire_bytes() + RPC_HEADER_BYTES;
        let tag = req.trace_req();
        self.net
            .mesh
            .send_tagged(
                self.node,
                dst,
                bytes,
                RpcWire::Call {
                    id,
                    reply_to: self.node,
                    req,
                },
                tag,
            )
            .await;
        rx.await.map_err(|_| RpcError::Dropped)
    }

    /// [`RpcClient::call`] under a deadline/retry `policy`. Each failed
    /// attempt emits an [`EventKind::RpcRetry`] flight-recorder event;
    /// exhausting the policy emits [`EventKind::RpcGiveUp`]. Only use
    /// with idempotent requests — see [`RpcPolicy`].
    pub async fn call_policy(
        &self,
        dst: NodeId,
        req: Req,
        policy: RpcPolicy,
    ) -> Result<Resp, RpcError> {
        let sim = self.net.sim.clone();
        let tag = req.trace_req();
        let track = Track::Node(self.node.0 as u16);
        let max_attempts = policy.retries + 1;
        let mut last = RpcError::Timeout;
        for attempt in 1..=max_attempts {
            let one = self.call(dst, req.clone());
            let outcome = match policy.attempt_timeout {
                Some(d) => sim.timeout(d, one).await.unwrap_or(Err(RpcError::Timeout)),
                None => one.await,
            };
            match outcome {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    if e == RpcError::Timeout {
                        self.net.stats.borrow_mut().timeouts += 1;
                    }
                    last = e;
                }
            }
            if attempt < max_attempts {
                self.net.stats.borrow_mut().retries += 1;
                sim.emit(|| {
                    ev(
                        track,
                        EventKind::RpcRetry,
                        tag,
                        attempt as u64,
                        dst.0 as u64,
                    )
                });
                sim.sleep(policy.backoff * attempt as u64).await;
            }
        }
        self.net.stats.borrow_mut().give_ups += 1;
        self.net.sim.emit(|| {
            ev(
                track,
                EventKind::RpcGiveUp,
                tag,
                max_attempts as u64,
                dst.0 as u64,
            )
        });
        if max_attempts > 1 {
            Err(RpcError::TooManyRetries {
                attempts: max_attempts,
            })
        } else {
            Err(last)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_sim::SimDuration;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping(u64);
    #[derive(Debug, Clone, PartialEq)]
    struct Pong(u64, Vec<u8>);

    impl WireSize for Ping {
        fn wire_bytes(&self) -> u64 {
            8
        }
    }
    impl WireSize for Pong {
        fn wire_bytes(&self) -> u64 {
            8 + self.1.len() as u64
        }
    }

    fn net(sim: &Sim, params: MeshParams) -> RpcNet<Ping, Pong> {
        RpcNet::new(sim, Topology::new(3, 1), params)
    }

    #[test]
    fn call_reply_roundtrip() {
        let sim = Sim::new(1);
        let net = net(&sim, MeshParams::instant());
        net.serve(NodeId(1), |_src, Ping(x)| {
            Box::pin(async move { Pong(x * 2, vec![0; 16]) })
        });
        let client = net.client(NodeId(0));
        let h = sim.spawn(async move { client.call(NodeId(1), Ping(21)).await.unwrap().0 });
        sim.run_until(paragon_sim::SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(h.try_take(), Some(42));
        let st = net.stats();
        assert_eq!((st.calls, st.replies), (1, 1));
    }

    #[test]
    fn reply_data_pays_wire_time() {
        let sim = Sim::new(1);
        let params = MeshParams {
            link_bw: 1e6, // 1 MB/s so a 1 MB reply costs ~1 s
            hop_latency: SimDuration::ZERO,
            send_overhead: SimDuration::ZERO,
            recv_overhead: SimDuration::ZERO,
            local_overhead: SimDuration::ZERO,
        };
        let net = net(&sim, params);
        net.serve(NodeId(1), |_src, Ping(x)| {
            Box::pin(async move { Pong(x, vec![7; 1_000_000]) })
        });
        let client = net.client(NodeId(0));
        let s = sim.clone();
        let h = sim.spawn(async move {
            client.call(NodeId(1), Ping(0)).await.unwrap();
            s.now().as_millis_round()
        });
        sim.run_until(paragon_sim::SimTime::ZERO + SimDuration::from_secs(10));
        let ms = h.try_take().unwrap();
        assert!((1000..1100).contains(&ms), "reply took {ms} ms");
    }

    #[test]
    fn concurrent_calls_are_demultiplexed() {
        let sim = Sim::new(1);
        let net = net(&sim, MeshParams::instant());
        let s = sim.clone();
        // Handler finishes in *reverse* arrival order to stress the
        // pending-map routing.
        net.serve(NodeId(1), move |_src, Ping(x)| {
            let s = s.clone();
            Box::pin(async move {
                s.sleep(SimDuration::from_millis(100 - x * 10)).await;
                Pong(x + 100, Vec::new())
            })
        });
        let client = net.client(NodeId(0));
        let mut handles = Vec::new();
        for x in 0..5u64 {
            let c = client.clone();
            handles.push(sim.spawn(async move { c.call(NodeId(1), Ping(x)).await.unwrap().0 }));
        }
        sim.run_until(paragon_sim::SimTime::ZERO + SimDuration::from_secs(1));
        let got: Vec<u64> = handles.iter().map(|h| h.try_take().unwrap()).collect();
        assert_eq!(got, vec![100, 101, 102, 103, 104]);
    }

    #[test]
    fn two_servers_one_client() {
        let sim = Sim::new(1);
        let net = net(&sim, MeshParams::instant());
        net.serve(NodeId(1), |_s, Ping(x)| {
            Box::pin(async move { Pong(x + 1, Vec::new()) })
        });
        net.serve(NodeId(2), |_s, Ping(x)| {
            Box::pin(async move { Pong(x + 2, Vec::new()) })
        });
        let client = net.client(NodeId(0));
        let h = sim.spawn(async move {
            let a = client.call(NodeId(1), Ping(0)).await.unwrap().0;
            let b = client.call(NodeId(2), Ping(0)).await.unwrap().0;
            (a, b)
        });
        sim.run_until(paragon_sim::SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(h.try_take(), Some((1, 2)));
    }

    #[test]
    fn retry_policy_rides_out_a_crash_window() {
        let sim = Sim::new(1);
        let t0 = paragon_sim::SimTime::ZERO;
        // Node 1 is down for the first 60 ms: calls sent in the window
        // vanish. The third attempt (t = 70 ms) lands after the restart.
        let faults = sim.faults();
        faults.crash_node(1, t0, t0 + SimDuration::from_millis(60));
        faults.arm();
        let net = net(&sim, MeshParams::instant());
        net.serve(NodeId(1), |_src, Ping(x)| {
            Box::pin(async move { Pong(x * 2, Vec::new()) })
        });
        let client = net.client(NodeId(0));
        let policy = RpcPolicy::with_retries(
            SimDuration::from_millis(20),
            5,
            SimDuration::from_millis(10),
        );
        let h = sim.spawn(async move {
            client
                .call_policy(NodeId(1), Ping(21), policy)
                .await
                .map(|p| p.0)
        });
        sim.run_until(t0 + SimDuration::from_secs(2));
        assert_eq!(h.try_take(), Some(Ok(42)));
        let st = net.stats();
        assert_eq!(st.timeouts, 2, "two attempts died in the window");
        assert_eq!(st.retries, 2);
        assert_eq!(st.give_ups, 0);
    }

    #[test]
    fn exhausted_policy_gives_up_with_too_many_retries() {
        let sim = Sim::new(1);
        let t0 = paragon_sim::SimTime::ZERO;
        let faults = sim.faults();
        faults.crash_node(1, t0, t0 + SimDuration::from_secs(100));
        faults.arm();
        let net = net(&sim, MeshParams::instant());
        net.serve(NodeId(1), |_src, Ping(x)| {
            Box::pin(async move { Pong(x, Vec::new()) })
        });
        let client = net.client(NodeId(0));
        let policy =
            RpcPolicy::with_retries(SimDuration::from_millis(5), 2, SimDuration::from_millis(1));
        let h = sim.spawn(async move { client.call_policy(NodeId(1), Ping(0), policy).await });
        sim.run_until(t0 + SimDuration::from_secs(1));
        assert_eq!(
            h.try_take(),
            Some(Err(RpcError::TooManyRetries { attempts: 3 }))
        );
        assert_eq!(net.stats().give_ups, 1);
    }

    #[test]
    fn single_attempt_timeout_reports_timeout_not_retries() {
        let sim = Sim::new(1);
        let t0 = paragon_sim::SimTime::ZERO;
        let faults = sim.faults();
        faults.crash_node(1, t0, t0 + SimDuration::from_secs(100));
        faults.arm();
        let net = net(&sim, MeshParams::instant());
        net.serve(NodeId(1), |_src, Ping(x)| {
            Box::pin(async move { Pong(x, Vec::new()) })
        });
        let client = net.client(NodeId(0));
        let policy = RpcPolicy {
            attempt_timeout: Some(SimDuration::from_millis(5)),
            retries: 0,
            backoff: SimDuration::ZERO,
        };
        let h = sim.spawn(async move { client.call_policy(NodeId(1), Ping(0), policy).await });
        sim.run_until(t0 + SimDuration::from_secs(1));
        assert_eq!(h.try_take(), Some(Err(RpcError::Timeout)));
    }
}
