//! # paragon-os — operating-system services of the simulated Paragon
//!
//! Two OSF/1-flavoured facilities the PFS is built on:
//!
//! * [`rpc`] — typed request/reply messaging over the mesh, with both legs
//!   paying the mesh timing model (per-message software overhead + wire
//!   time). Compute nodes are [`RpcClient`]s; I/O and service nodes install
//!   handlers via [`RpcNet::serve`].
//! * [`art`] — the Asynchronous Request Thread machinery: request setup
//!   paid by the user thread, FIFO active list, concurrent posting. The
//!   paper's prefetching prototype issues its prefetches as ordinary
//!   asynchronous reads through exactly this path.

//! ```
//! use paragon_os::{ArtConfig, ArtPool};
//! use paragon_sim::{Sim, SimDuration};
//!
//! // An asynchronous request overlaps the user thread, like the ARTs
//! // the prefetch prototype is built on.
//! let sim = Sim::new(1);
//! let pool = ArtPool::new(&sim, ArtConfig::instant());
//! let s = sim.clone();
//! let h = sim.spawn(async move {
//!     let io = s.sleep(SimDuration::from_millis(40));
//!     let req = pool.submit(io).await;          // returns immediately
//!     s.sleep(SimDuration::from_millis(40)).await; // compute meanwhile
//!     req.wait().await;                         // iowait
//!     s.now().as_millis_round()
//! });
//! sim.run();
//! assert_eq!(h.try_take(), Some(40)); // full overlap: 40 ms, not 80
//! ```

// Robustness: an injected fault must surface as an `Err`, never a panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod art;
pub mod rpc;

pub use art::{ArtConfig, ArtPool, ArtStats, AsyncHandle};
pub use rpc::{RpcClient, RpcError, RpcNet, RpcPolicy, RpcStats, WireSize, RPC_HEADER_BYTES};
