//! Asynchronous Request Threads (ART).
//!
//! Every asynchronous PFS request in the Paragon OS goes through two
//! phases: **setup** (allocate an internal request structure, link it on
//! the caller's active list — paid by the user thread) and **posting** (an
//! asynchronous request thread dequeues the structure FIFO from the active
//! list and performs the I/O concurrently with the user thread). The
//! prefetch prototype is built *on* this machinery: every prefetch is an
//! ordinary asynchronous read submitted right after the user's read.
//!
//! [`ArtPool::submit`] models both phases; the returned [`AsyncHandle`]
//! is the user-visible request structure (`iowait` = [`AsyncHandle::wait`]).

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::rc::Rc;

use paragon_sim::sync::{Semaphore, Signal};
use paragon_sim::{ev, EventKind, ReqId, Sim, SimDuration, SimTime, Track};

/// ART timing and concurrency configuration.
#[derive(Debug, Clone)]
pub struct ArtConfig {
    /// User-thread cost of the request setup phase.
    pub setup: SimDuration,
    /// ART-side cost of dequeuing and beginning to post a request.
    pub dispatch: SimDuration,
    /// Maximum requests being posted concurrently per node. Further
    /// submissions queue FIFO on the active list.
    pub max_arts: usize,
}

impl ArtConfig {
    /// Zero-cost configuration for logic tests.
    pub fn instant() -> Self {
        ArtConfig {
            setup: SimDuration::ZERO,
            dispatch: SimDuration::ZERO,
            max_arts: usize::MAX >> 1,
        }
    }
}

/// Counters for one node's ART subsystem.
#[derive(Debug, Default, Clone)]
pub struct ArtStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests fully completed.
    pub completed: u64,
    /// Longest active list observed.
    pub max_active: usize,
}

/// One compute node's asynchronous-request machinery.
#[derive(Clone)]
pub struct ArtPool {
    sim: Sim,
    cfg: Rc<ArtConfig>,
    /// FIFO gate: permits = max concurrently-posting ARTs; waiters are the
    /// active list, granted strictly in submission order.
    gate: Semaphore,
    active: Rc<Cell<usize>>,
    stats: Rc<RefCell<ArtStats>>,
}

impl ArtPool {
    /// Create a pool on `sim`.
    pub fn new(sim: &Sim, cfg: ArtConfig) -> Self {
        assert!(cfg.max_arts > 0, "need at least one ART");
        ArtPool {
            sim: sim.clone(),
            gate: Semaphore::new(cfg.max_arts),
            cfg: Rc::new(cfg),
            active: Rc::new(Cell::new(0)),
            stats: Rc::new(RefCell::new(ArtStats::default())),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ArtStats {
        self.stats.borrow().clone()
    }

    /// Requests currently on the active list (queued or posting).
    pub fn active(&self) -> usize {
        self.active.get()
    }

    /// Submit an asynchronous request. The caller (user thread) pays the
    /// setup cost inline; the operation itself runs on an ART, FIFO behind
    /// earlier submissions when all ARTs are busy. Returns immediately
    /// after setup with the request handle.
    pub async fn submit<T, F>(&self, op: F) -> AsyncHandle<T>
    where
        T: 'static,
        F: Future<Output = T> + 'static,
    {
        self.submit_tagged(0, Track::Sys, op).await
    }

    /// [`ArtPool::submit`] with a trace context: `req` and `track` stamp
    /// the ArtSubmit (queued on the active list), ArtStart (an ART began
    /// posting it) and ArtDone flight-recorder events.
    pub async fn submit_tagged<T, F>(&self, req: ReqId, track: Track, op: F) -> AsyncHandle<T>
    where
        T: 'static,
        F: Future<Output = T> + 'static,
    {
        self.sim.sleep(self.cfg.setup).await;
        let handle = AsyncHandle::new(self.sim.now());
        let queue_pos;
        {
            let mut st = self.stats.borrow_mut();
            st.submitted += 1;
            let now_active = self.active.get() + 1;
            queue_pos = now_active;
            self.active.set(now_active);
            st.max_active = st.max_active.max(now_active);
        }
        self.sim
            .emit(|| ev(track, EventKind::ArtSubmit, req, queue_pos as u64, 0));
        let pool = self.clone();
        let h = handle.clone();
        self.sim.spawn_named("art", async move {
            // FIFO admission: tasks call acquire in spawn order, and the
            // semaphore grants in arrival order.
            let _g = pool.gate.acquire().await;
            h.started.set(Some(pool.sim.now()));
            pool.sim.emit(|| ev(track, EventKind::ArtStart, req, 0, 0));
            pool.sim.sleep(pool.cfg.dispatch).await;
            let value = op.await;
            *h.slot.borrow_mut() = Some(value);
            h.completed.set(Some(pool.sim.now()));
            pool.active.set(pool.active.get() - 1);
            pool.stats.borrow_mut().completed += 1;
            pool.sim.emit(|| ev(track, EventKind::ArtDone, req, 0, 0));
            h.done.set();
        });
        handle
    }

    /// [`ArtPool::submit_tagged`] with a posting deadline: if `op` has not
    /// completed within `deadline` of the ART starting to post it, the
    /// request resolves to `fallback` instead (the abandoned operation's
    /// result is discarded when it eventually finishes). Queue time on the
    /// active list does not count against the deadline.
    pub async fn submit_deadline<T, F>(
        &self,
        req: ReqId,
        track: Track,
        deadline: SimDuration,
        fallback: T,
        op: F,
    ) -> AsyncHandle<T>
    where
        T: 'static,
        F: Future<Output = T> + 'static,
    {
        let sim = self.sim.clone();
        self.submit_tagged(req, track, async move {
            sim.timeout(deadline, op).await.unwrap_or(fallback)
        })
        .await
    }
}

/// The user-visible asynchronous request structure. Clone freely; all
/// clones observe the same request.
pub struct AsyncHandle<T> {
    done: Signal,
    slot: Rc<RefCell<Option<T>>>,
    submitted_at: SimTime,
    started: Rc<Cell<Option<SimTime>>>,
    completed: Rc<Cell<Option<SimTime>>>,
}

impl<T> Clone for AsyncHandle<T> {
    fn clone(&self) -> Self {
        AsyncHandle {
            done: self.done.clone(),
            slot: self.slot.clone(),
            submitted_at: self.submitted_at,
            started: self.started.clone(),
            completed: self.completed.clone(),
        }
    }
}

impl<T> AsyncHandle<T> {
    fn new(now: SimTime) -> Self {
        AsyncHandle {
            done: Signal::new(),
            slot: Rc::new(RefCell::new(None)),
            submitted_at: now,
            started: Rc::new(Cell::new(None)),
            completed: Rc::new(Cell::new(None)),
        }
    }

    /// True once the operation finished (`iodone` in Paragon terms).
    pub fn is_done(&self) -> bool {
        self.done.is_set()
    }

    /// Wait for completion (`iowait`).
    pub async fn wait(&self) {
        self.done.wait().await;
    }

    /// Wait for completion and take the result. Panics if another clone
    /// already took it — one request has one consumer.
    pub async fn join(&self) -> T {
        self.done.wait().await;
        match self.slot.borrow_mut().take() {
            Some(v) => v,
            // paragon-lint: allow(P1) — double-take of a oneshot result is
            // a caller programming error, not an injectable fault; the
            // documented contract is one request, one consumer
            None => panic!("async request result taken twice"),
        }
    }

    /// Take the result without waiting, if complete and untaken.
    pub fn try_take(&self) -> Option<T> {
        if self.done.is_set() {
            self.slot.borrow_mut().take()
        } else {
            None
        }
    }

    /// When the request was submitted.
    pub fn submitted_at(&self) -> SimTime {
        self.submitted_at
    }

    /// When an ART began posting it (None while queued).
    pub fn started_at(&self) -> Option<SimTime> {
        self.started.get()
    }

    /// When it completed (None while in flight).
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_runs_concurrently_with_user_thread() {
        let sim = Sim::new(1);
        let pool = ArtPool::new(&sim, ArtConfig::instant());
        let s = sim.clone();
        let h = sim.spawn(async move {
            let io = s.sleep(SimDuration::from_millis(50));
            let req = pool.submit(io).await;
            // User thread "computes" 50 ms while the I/O proceeds.
            s.sleep(SimDuration::from_millis(50)).await;
            req.wait().await;
            s.now().as_millis_round()
        });
        sim.run();
        // Full overlap: 50 ms total, not 100.
        assert_eq!(h.try_take(), Some(50));
    }

    #[test]
    fn setup_cost_is_paid_by_the_user_thread() {
        let sim = Sim::new(1);
        let cfg = ArtConfig {
            setup: SimDuration::from_millis(3),
            dispatch: SimDuration::ZERO,
            max_arts: 4,
        };
        let pool = ArtPool::new(&sim, cfg);
        let s = sim.clone();
        let h = sim.spawn(async move {
            let _req = pool.submit(async {}).await;
            s.now().as_millis_round()
        });
        sim.run();
        assert_eq!(h.try_take(), Some(3));
    }

    #[test]
    fn active_list_is_fifo_when_arts_saturated() {
        let sim = Sim::new(1);
        let cfg = ArtConfig {
            setup: SimDuration::ZERO,
            dispatch: SimDuration::ZERO,
            max_arts: 1,
        };
        let pool = ArtPool::new(&sim, cfg);
        let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let s = sim.clone();
        let o = order.clone();
        sim.spawn(async move {
            let mut reqs = Vec::new();
            for i in 0..4u32 {
                let s2 = s.clone();
                let o2 = o.clone();
                reqs.push(
                    pool.submit(async move {
                        s2.sleep(SimDuration::from_millis(10)).await;
                        o2.borrow_mut().push(i);
                    })
                    .await,
                );
            }
            for r in &reqs {
                r.wait().await;
            }
        });
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn max_arts_bounds_concurrency() {
        let sim = Sim::new(1);
        let cfg = ArtConfig {
            setup: SimDuration::ZERO,
            dispatch: SimDuration::ZERO,
            max_arts: 2,
        };
        let pool = ArtPool::new(&sim, cfg);
        let in_flight: Rc<RefCell<(u32, u32)>> = Rc::new(RefCell::new((0, 0)));
        let s = sim.clone();
        let p2 = pool.clone();
        sim.spawn(async move {
            let mut reqs = Vec::new();
            for _ in 0..6 {
                let s2 = s.clone();
                let fl = in_flight.clone();
                reqs.push(
                    p2.submit(async move {
                        {
                            let mut f = fl.borrow_mut();
                            f.0 += 1;
                            f.1 = f.1.max(f.0);
                        }
                        s2.sleep(SimDuration::from_millis(1)).await;
                        fl.borrow_mut().0 -= 1;
                        fl.borrow().1
                    })
                    .await,
                );
            }
            let mut peak = 0;
            for r in &reqs {
                peak = peak.max(r.join().await);
            }
            assert_eq!(peak, 2);
        });
        let report = sim.run();
        assert_eq!(report.unfinished_tasks, 0);
        assert_eq!(pool.stats().completed, 6);
        assert_eq!(pool.active(), 0);
    }

    #[test]
    fn handle_reports_timestamps() {
        let sim = Sim::new(1);
        let cfg = ArtConfig {
            setup: SimDuration::from_millis(1),
            dispatch: SimDuration::from_millis(2),
            max_arts: 1,
        };
        let pool = ArtPool::new(&sim, cfg);
        let s = sim.clone();
        let h = sim.spawn(async move {
            let s2 = s.clone();
            let req = pool
                .submit(async move { s2.sleep(SimDuration::from_millis(10)).await })
                .await;
            req.wait().await;
            (
                req.submitted_at().as_millis_round(),
                req.started_at().unwrap().as_millis_round(),
                req.completed_at().unwrap().as_millis_round(),
            )
        });
        sim.run();
        // Submitted after 1 ms setup; started immediately; completed after
        // 2 ms dispatch + 10 ms I/O.
        assert_eq!(h.try_take(), Some((1, 1, 13)));
    }

    #[test]
    fn deadline_abandons_a_stuck_request() {
        let sim = Sim::new(1);
        let pool = ArtPool::new(&sim, ArtConfig::instant());
        let s = sim.clone();
        let h = sim.spawn(async move {
            let s2 = s.clone();
            let slow = async move {
                s2.sleep(SimDuration::from_secs(10)).await;
                Ok(7u32)
            };
            let req = pool
                .submit_deadline(
                    0,
                    Track::Sys,
                    SimDuration::from_millis(5),
                    Err("late"),
                    slow,
                )
                .await;
            let v = req.join().await;
            (v, s.now().as_millis_round())
        });
        sim.run();
        // Resolves with the fallback at the 5 ms deadline, not at 10 s.
        assert_eq!(h.try_take(), Some((Err("late"), 5)));
    }

    #[test]
    fn join_returns_value_and_is_single_consumer() {
        let sim = Sim::new(1);
        let pool = ArtPool::new(&sim, ArtConfig::instant());
        let h = sim.spawn(async move {
            let req = pool.submit(async { 99u32 }).await;
            let v = req.join().await;
            (v, req.try_take())
        });
        sim.run();
        assert_eq!(h.try_take(), Some((99, None)));
    }
}
