//! The prefetch buffer list.
//!
//! Prefetched data lands in per-file buffers in **compute-node memory**
//! (not the I/O nodes): a list of `(offset, size, data)` entries hanging
//! off the open file, initialized at open, freed at close — exactly the
//! structure §3 of the paper describes. An entry holds the ART handle of
//! its asynchronous read, so a demand read that arrives early can wait on
//! the in-flight request instead of reissuing it.

use std::cell::Cell;
use std::collections::VecDeque;
use std::rc::Rc;

use bytes::Bytes;
use paragon_os::AsyncHandle;
use paragon_pfs::PfsError;
use paragon_sim::ReqId;

/// Live occupancy cells shared between prefetch lists and the telemetry
/// registry: every insert/hit/eviction/drain updates them, so at any
/// simulated instant they read the buffers held and the compute-node
/// bytes they pin. Cloning shares the cells; wire one instance to every
/// list whose occupancy should aggregate.
#[derive(Clone, Default)]
pub struct PrefetchGauges {
    /// Buffers currently held across all wired lists.
    pub entries: Rc<Cell<i64>>,
    /// Compute-node bytes those buffers pin.
    pub bytes: Rc<Cell<i64>>,
}

impl PrefetchGauges {
    fn add(&self, entries: i64, bytes: i64) {
        self.entries.set(self.entries.get() + entries);
        self.bytes.set(self.bytes.get() + bytes);
    }
}

/// One prefetch buffer: the anticipated request and its asynchronous read.
pub struct PrefetchEntry {
    /// Anticipated request offset.
    pub offset: u64,
    /// Anticipated request length.
    pub len: u32,
    /// Flight-recorder request id minted at issue (`0` in tests).
    pub req: ReqId,
    /// The asynchronous read filling this buffer.
    pub handle: AsyncHandle<Result<Bytes, PfsError>>,
}

impl PrefetchEntry {
    /// True once the data has arrived.
    pub fn is_ready(&self) -> bool {
        self.handle.is_done()
    }
}

/// FIFO-bounded list of prefetch buffers for one open file.
pub struct PrefetchList {
    entries: VecDeque<PrefetchEntry>,
    max_entries: usize,
    /// Byte budget for pinned compute-node memory (the paper's buffers
    /// live in the compute node's 16–32 MB).
    max_bytes: u64,
    /// Occupancy gauges; private unshared cells until [`set_gauges`]
    /// wires the list to the telemetry registry's.
    ///
    /// [`set_gauges`]: PrefetchList::set_gauges
    gauges: PrefetchGauges,
}

impl PrefetchList {
    /// A list holding at most `max_entries` buffers (compute-node memory
    /// is finite; the prototype's depth-1 engine needs only one). No
    /// byte cap.
    pub fn new(max_entries: usize) -> Self {
        Self::with_byte_cap(max_entries, u64::MAX)
    }

    /// A list bounded both by entry count and by pinned bytes.
    pub fn with_byte_cap(max_entries: usize, max_bytes: u64) -> Self {
        assert!(max_entries > 0, "prefetch list needs at least one slot");
        assert!(max_bytes > 0, "prefetch list needs a nonzero byte budget");
        PrefetchList {
            entries: VecDeque::with_capacity(max_entries.min(64)),
            max_entries,
            max_bytes,
            gauges: PrefetchGauges::default(),
        }
    }

    /// Wire this list to shared occupancy `gauges`; its current
    /// occupancy moves from the old cells onto the new ones.
    pub fn set_gauges(&mut self, gauges: PrefetchGauges) {
        let (n, b) = (self.len() as i64, self.pinned_bytes() as i64);
        self.gauges.add(-n, -b);
        gauges.add(n, b);
        self.gauges = gauges;
    }

    /// Live buffers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no buffers are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of compute-node memory the list pins (anticipated sizes; an
    /// in-flight buffer's memory is already allocated).
    pub fn pinned_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len as u64).sum()
    }

    /// True if some buffer already covers a request at `offset`.
    pub fn covers(&self, offset: u64, len: u32) -> bool {
        self.entries
            .iter()
            .any(|e| e.offset == offset && e.len >= len)
    }

    /// Insert a new buffer; if the list is over its entry or byte limit,
    /// the oldest entries are evicted and returned (the caller counts
    /// them wasted). An entry bigger than the whole byte budget still
    /// occupies the list alone — refusing it would silently disable
    /// prefetching.
    pub fn insert(&mut self, entry: PrefetchEntry) -> Vec<PrefetchEntry> {
        let mut evicted = Vec::new();
        self.gauges.add(1, entry.len as i64);
        self.entries.push_back(entry);
        while self.entries.len() > self.max_entries
            || (self.pinned_bytes() > self.max_bytes && self.entries.len() > 1)
        {
            // The loop condition implies the list is nonempty.
            let Some(old) = self.entries.pop_front() else {
                break;
            };
            self.gauges.add(-1, -(old.len as i64));
            evicted.push(old);
        }
        evicted
    }

    /// Remove and return the buffer answering a demand read at `offset`
    /// of `len` bytes, if one exists.
    pub fn take_match(&mut self, offset: u64, len: u32) -> Option<PrefetchEntry> {
        let idx = self
            .entries
            .iter()
            .position(|e| e.offset == offset && e.len >= len)?;
        let e = self.entries.remove(idx)?;
        self.gauges.add(-1, -(e.len as i64));
        Some(e)
    }

    /// Drain every remaining buffer (file close frees the list).
    pub fn drain(&mut self) -> Vec<PrefetchEntry> {
        let drained: Vec<PrefetchEntry> = self.entries.drain(..).collect();
        for e in &drained {
            self.gauges.add(-1, -(e.len as i64));
        }
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_os::{ArtConfig, ArtPool};
    use paragon_sim::Sim;

    fn entry(sim: &Sim, pool: &ArtPool, offset: u64, len: u32) -> PrefetchEntry {
        let pool = pool.clone();
        let sim2 = sim.clone();
        let h = sim.spawn(async move {
            pool.submit(async move { Ok(Bytes::from(vec![0u8; 4])) })
                .await
        });
        sim2.run();
        PrefetchEntry {
            offset,
            len,
            req: 0,
            handle: h.try_take().unwrap(),
        }
    }

    fn fixture() -> (Sim, ArtPool) {
        let sim = Sim::new(1);
        let pool = ArtPool::new(&sim, ArtConfig::instant());
        (sim, pool)
    }

    #[test]
    fn exact_match_is_taken_once() {
        let (sim, pool) = fixture();
        let mut list = PrefetchList::new(4);
        list.insert(entry(&sim, &pool, 1000, 64));
        assert!(list.covers(1000, 64));
        assert!(!list.covers(1000, 128)); // longer than buffered
        assert!(!list.covers(999, 64));
        let e = list.take_match(1000, 64).unwrap();
        assert_eq!(e.offset, 1000);
        assert!(list.take_match(1000, 64).is_none());
        assert!(list.is_empty());
    }

    #[test]
    fn shorter_demand_reads_match_longer_buffers() {
        let (sim, pool) = fixture();
        let mut list = PrefetchList::new(4);
        list.insert(entry(&sim, &pool, 0, 128));
        assert!(list.take_match(0, 64).is_some());
    }

    #[test]
    fn full_list_evicts_fifo() {
        let (sim, pool) = fixture();
        let mut list = PrefetchList::new(2);
        assert!(list.insert(entry(&sim, &pool, 0, 10)).is_empty());
        assert!(list.insert(entry(&sim, &pool, 10, 10)).is_empty());
        let evicted = list.insert(entry(&sim, &pool, 20, 10));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].offset, 0);
        assert_eq!(list.len(), 2);
        assert_eq!(list.pinned_bytes(), 20);
    }

    #[test]
    fn byte_cap_evicts_several_small_for_one_large() {
        let (sim, pool) = fixture();
        let mut list = PrefetchList::with_byte_cap(16, 100);
        for i in 0..4u64 {
            assert!(list.insert(entry(&sim, &pool, i * 25, 25)).is_empty());
        }
        // An 80-byte entry forces all four 25-byte evictions: even
        // 80 + 25 = 105 still exceeds the 100-byte budget.
        let evicted = list.insert(entry(&sim, &pool, 1000, 80));
        assert_eq!(evicted.len(), 4);
        assert_eq!(list.pinned_bytes(), 80);
    }

    #[test]
    fn oversized_entry_occupies_the_list_alone() {
        let (sim, pool) = fixture();
        let mut list = PrefetchList::with_byte_cap(16, 100);
        list.insert(entry(&sim, &pool, 0, 50));
        let evicted = list.insert(entry(&sim, &pool, 100, 500));
        assert_eq!(evicted.len(), 1); // the small one goes
        assert_eq!(list.len(), 1); // the big one stays, alone
    }

    #[test]
    fn byte_budget_evictions_come_oldest_first() {
        let (sim, pool) = fixture();
        let mut list = PrefetchList::with_byte_cap(16, 100);
        for (i, len) in [40u32, 30, 20].into_iter().enumerate() {
            assert!(list
                .insert(entry(&sim, &pool, i as u64 * 1000, len))
                .is_empty());
        }
        // 90 pinned; adding 55 makes 145. Eviction must walk the FIFO
        // from the oldest end: the 40 at offset 0 (145 → 105, still
        // over), then the 30 at offset 1000 (105 → 75, under budget) —
        // and must stop there.
        let evicted = list.insert(entry(&sim, &pool, 9000, 55));
        let order: Vec<u64> = evicted.iter().map(|e| e.offset).collect();
        assert_eq!(order, vec![0, 1000]);
        assert_eq!(list.pinned_bytes(), 75);
        assert!(list.covers(2000, 20), "newest survivors stay");
        assert!(list.covers(9000, 55));
    }

    #[test]
    fn entry_cap_and_byte_cap_each_bind_when_tighter() {
        let (sim, pool) = fixture();
        // Byte budget is loose: the 2-entry cap binds.
        let mut list = PrefetchList::with_byte_cap(2, 1_000_000);
        list.insert(entry(&sim, &pool, 0, 10));
        list.insert(entry(&sim, &pool, 10, 10));
        let evicted = list.insert(entry(&sim, &pool, 20, 10));
        assert_eq!(evicted.len(), 1);
        assert_eq!(list.pinned_bytes(), 20);
        // Entry cap is loose: the byte budget binds, and one insert can
        // evict more entries than the count cap alone ever would.
        let mut list = PrefetchList::with_byte_cap(100, 25);
        list.insert(entry(&sim, &pool, 0, 10));
        list.insert(entry(&sim, &pool, 10, 10));
        let evicted = list.insert(entry(&sim, &pool, 20, 20));
        assert_eq!(evicted.len(), 2, "byte cap evicted past the entry slack");
        assert_eq!(list.len(), 1);
        assert_eq!(list.pinned_bytes(), 20);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_entry_capacity_is_rejected() {
        PrefetchList::new(0);
    }

    #[test]
    #[should_panic(expected = "nonzero byte budget")]
    fn zero_byte_budget_is_rejected() {
        PrefetchList::with_byte_cap(4, 0);
    }

    #[test]
    fn drain_empties_the_list() {
        let (sim, pool) = fixture();
        let mut list = PrefetchList::new(4);
        list.insert(entry(&sim, &pool, 0, 10));
        list.insert(entry(&sim, &pool, 10, 10));
        let drained = list.drain();
        assert_eq!(drained.len(), 2);
        assert!(list.is_empty());
        assert_eq!(list.pinned_bytes(), 0);
    }
}
