//! Write-behind — the write-side dual of the prefetch prototype.
//!
//! Where prefetching moves a *read* off the critical path by issuing it
//! before the application asks, write-behind moves a *write* off the
//! critical path by letting the application continue as soon as the data
//! is captured in a compute-node buffer; the transfer proceeds on an ART
//! exactly like a prefetch does. The same trade-off applies in mirror
//! image: I/O-bound writers gain nothing (the disks are saturated either
//! way, and each write pays an extra buffer copy), while balanced
//! writers hide up to one transfer time per compute phase.
//!
//! The engine bounds its dirty window (`max_outstanding` buffered
//! writes); `write` stalls once the window is full — compute-node memory
//! is finite, and an unbounded window would just move the wait to
//! close-time. [`WriteBehindFile::flush`] drains everything, and close
//! without flush is a bug we make loud.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use bytes::Bytes;
use paragon_os::AsyncHandle;
use paragon_pfs::{PfsError, PfsFile};
use paragon_sim::{Sim, SimDuration};

/// Write-behind configuration.
#[derive(Debug, Clone)]
pub struct WriteBehindConfig {
    /// Maximum writes buffered/in-flight before `write` stalls.
    pub max_outstanding: usize,
    /// Compute-node memory bandwidth for the user → buffer copy, bytes/s.
    pub copy_bw: f64,
}

impl WriteBehindConfig {
    /// Mirror of the prefetch prototype: a small window, i860-class copy.
    pub fn prototype() -> Self {
        WriteBehindConfig {
            max_outstanding: 4,
            copy_bw: 45e6,
        }
    }
}

/// Write-behind counters.
#[derive(Debug, Default, Clone)]
pub struct WriteBehindStats {
    /// Writes accepted.
    pub writes: u64,
    /// Bytes accepted.
    pub bytes: u64,
    /// Bytes copied user buffer → write-behind buffer.
    pub bytes_copied: u64,
    /// Writes that stalled on a full window.
    pub stalls: u64,
    /// Total time spent stalled.
    pub stall_time: SimDuration,
    /// Transfer latency hidden from the application (time each transfer
    /// ran after `write` had already returned).
    pub overlap_saved: SimDuration,
}

/// A PFS file handle with system-level write-behind enabled.
pub struct WriteBehindFile {
    file: PfsFile,
    sim: Sim,
    cfg: WriteBehindConfig,
    window: RefCell<VecDeque<AsyncHandle<Result<u32, PfsError>>>>,
    stats: Rc<RefCell<WriteBehindStats>>,
    flushed: std::cell::Cell<bool>,
}

impl WriteBehindFile {
    /// Wrap `file`. Like the prefetcher, write-behind needs a locally
    /// computable pointer, so shared-pointer modes are rejected.
    pub fn new(file: PfsFile, cfg: WriteBehindConfig) -> Self {
        assert!(
            !file.mode().shared_pointer(),
            "write-behind is not supported for shared-pointer mode {}",
            file.mode()
        );
        assert!(cfg.max_outstanding > 0, "zero write window");
        let sim = file.sim().clone();
        WriteBehindFile {
            file,
            sim,
            cfg,
            window: RefCell::new(VecDeque::new()),
            stats: Rc::new(RefCell::new(WriteBehindStats::default())),
            flushed: std::cell::Cell::new(true),
        }
    }

    /// The wrapped file.
    pub fn inner(&self) -> &PfsFile {
        &self.file
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WriteBehindStats {
        self.stats.borrow().clone()
    }

    /// Writes currently buffered or in flight.
    pub fn outstanding(&self) -> usize {
        let mut w = self.window.borrow_mut();
        w.retain(|h| !h.is_done());
        w.len()
    }

    /// Write the next `data.len()` bytes under the open mode's pointer
    /// semantics; returns once the data is captured (copy charged) and a
    /// window slot was available — the transfer itself proceeds on an ART.
    pub async fn write(&self, data: Bytes) -> Result<(), PfsError> {
        self.flushed.set(false);
        self.file.syscall().await;
        let len = data.len() as u32;
        let offset = self.file.advance_pointer(len).await;
        // Capture the user's buffer (the copy Fast Path would have
        // avoided — write-behind's intrinsic overhead, like the
        // prefetch-hit copy on the read side).
        self.sim
            .sleep(SimDuration::for_bytes(len as u64, self.cfg.copy_bw))
            .await;
        {
            let mut st = self.stats.borrow_mut();
            st.writes += 1;
            st.bytes += len as u64;
            st.bytes_copied += len as u64;
        }
        // Respect the window: wait for the oldest transfer if full.
        loop {
            let oldest = {
                let mut w = self.window.borrow_mut();
                w.retain(|h| !h.is_done());
                if w.len() < self.cfg.max_outstanding {
                    break;
                }
                // A full window is necessarily nonempty.
                match w.front().cloned() {
                    Some(h) => h,
                    None => break,
                }
            };
            let stall_from = self.sim.now();
            self.stats.borrow_mut().stalls += 1;
            oldest.wait().await;
            self.stats.borrow_mut().stall_time += self.sim.now().saturating_since(stall_from);
        }
        let file = self.file.clone();
        let handle = self
            .file
            .art_pool()
            .submit(async move {
                file.transfer_write(offset, data).await?;
                Ok(len)
            })
            .await;
        self.window.borrow_mut().push_back(handle);
        Ok(())
    }

    /// Wait for every outstanding transfer and surface the first error.
    pub async fn flush(&self) -> Result<(), PfsError> {
        let handles: Vec<_> = self.window.borrow_mut().drain(..).collect();
        let mut first_err = None;
        for h in handles {
            let done_at_call = h.is_done();
            // Whatever ran before we had to wait was hidden latency.
            let wait_from = self.sim.now();
            let result = h.join().await;
            // Joined implies complete; fall back to "now" defensively.
            let finished = h.completed_at().unwrap_or_else(|| self.sim.now());
            let hidden = if done_at_call {
                finished.saturating_since(h.submitted_at())
            } else {
                wait_from.saturating_since(h.submitted_at())
            };
            self.stats.borrow_mut().overlap_saved += hidden;
            if let Err(e) = result {
                first_err.get_or_insert(e);
            }
        }
        self.flushed.set(true);
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// True when no writes are pending.
    pub fn is_flushed(&self) -> bool {
        self.flushed.get() || self.outstanding() == 0
    }
}

impl Drop for WriteBehindFile {
    fn drop(&mut self) {
        // Dropping with unflushed writes silently loses the durability
        // guarantee the caller thinks it has; fail loudly in tests.
        debug_assert!(
            self.is_flushed(),
            "WriteBehindFile dropped with unflushed writes — call flush()"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_machine::{Machine, MachineConfig};
    use paragon_pfs::{pattern_slice, IoMode, OpenOptions, ParallelFs, StripeAttrs};

    const KB: u64 = 1024;

    fn with_writer<F, T>(cfg: WriteBehindConfig, body: F) -> T
    where
        F: FnOnce(WriteBehindFile) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>>
            + 'static,
        T: 'static,
    {
        let sim = Sim::new(21);
        let machine = Rc::new(Machine::new(&sim, MachineConfig::tiny_instant(1, 2)));
        let pfs = ParallelFs::new(machine);
        let h = sim.spawn(async move {
            let id = pfs
                .create("/pfs/wb", StripeAttrs::across(2, 16 * KB))
                .await
                .unwrap();
            let f = pfs
                .open(0, 1, id, IoMode::MAsync, OpenOptions::default())
                .unwrap();
            body(WriteBehindFile::new(f, cfg)).await
        });
        sim.run();
        h.try_take().expect("body completed")
    }

    #[test]
    fn data_lands_after_flush() {
        let ok = with_writer(WriteBehindConfig::prototype(), |wb| {
            Box::pin(async move {
                for i in 0..8u64 {
                    wb.write(pattern_slice(5, i * 32 * KB, 32 * 1024))
                        .await
                        .unwrap();
                }
                wb.flush().await.unwrap();
                let back = wb.inner().transfer_read(0, 256 * 1024).await.unwrap();
                back == pattern_slice(5, 0, 256 * 1024)
            })
        });
        assert!(ok);
    }

    #[test]
    fn window_bounds_outstanding_writes() {
        let stats = with_writer(
            WriteBehindConfig {
                max_outstanding: 2,
                copy_bw: 1e12,
            },
            |wb| {
                Box::pin(async move {
                    for i in 0..6u64 {
                        wb.write(pattern_slice(5, i * 16 * KB, 16 * 1024))
                            .await
                            .unwrap();
                        assert!(wb.outstanding() <= 2);
                    }
                    wb.flush().await.unwrap();
                    wb.stats()
                })
            },
        );
        assert_eq!(stats.writes, 6);
        assert_eq!(stats.bytes, 6 * 16 * KB);
    }

    #[test]
    fn flush_is_idempotent_and_required() {
        let ok = with_writer(WriteBehindConfig::prototype(), |wb| {
            Box::pin(async move {
                wb.write(Bytes::from(vec![7u8; 1024])).await.unwrap();
                assert!(!wb.is_flushed());
                wb.flush().await.unwrap();
                assert!(wb.is_flushed());
                wb.flush().await.unwrap(); // idempotent
                true
            })
        });
        assert!(ok);
    }

    #[test]
    fn overlap_is_accounted() {
        let stats = with_writer(WriteBehindConfig::prototype(), |wb| {
            Box::pin(async move {
                let sim = wb.inner().sim().clone();
                for i in 0..4u64 {
                    wb.write(pattern_slice(5, i * 16 * KB, 16 * 1024))
                        .await
                        .unwrap();
                    // Compute while the transfer runs.
                    sim.sleep(SimDuration::from_millis(5)).await;
                }
                wb.flush().await.unwrap();
                wb.stats()
            })
        });
        assert!(stats.overlap_saved > SimDuration::ZERO);
        assert_eq!(stats.stalls, 0);
    }
}
