//! # paragon-core — client-side prefetching for the Paragon PFS
//!
//! **The paper's contribution.** A [`PrefetchingFile`] wraps an open PFS
//! file: after every demand read the user thread issues one (or, with the
//! depth extension, several) asynchronous reads through the ART machinery
//! for the requests it anticipates next; prefetched data lands in a
//! per-file buffer list in compute-node memory; a matching demand read is
//! a hit that pays only the buffer → user-buffer memory copy (or, when
//! the prefetch is still in flight, the remaining I/O time). The file
//! pointer is never moved by a prefetch.
//!
//! Predictors cover the paper's M_RECORD prototype plus the future-work
//! modes (M_ASYNC/M_GLOBAL sequential streams, general stride detection).
//!
//! The accounting ([`PrefetchStats`]) mirrors the paper's discussion:
//! hits split into *ready* and *in-flight*, the extra copy traffic, and
//! the overlap (latency hidden) each hit bought.
//!
//! ```
//! use std::rc::Rc;
//! use paragon_sim::Sim;
//! use paragon_machine::{Machine, MachineConfig};
//! use paragon_pfs::{pattern_byte, IoMode, OpenOptions, ParallelFs, StripeAttrs};
//! use paragon_core::{PrefetchConfig, PrefetchingFile};
//!
//! let sim = Sim::new(1);
//! let machine = Rc::new(Machine::new(&sim, MachineConfig::tiny_instant(1, 2)));
//! let pfs = ParallelFs::new(machine);
//! let h = sim.spawn(async move {
//!     let file = pfs.create("/pfs/doc", StripeAttrs::across(2, 16 * 1024)).await.unwrap();
//!     pfs.populate_with(file, 1 << 20, |i| pattern_byte(1, i)).await.unwrap();
//!     let f = pfs.open(0, 1, file, IoMode::MAsync, OpenOptions::default()).unwrap();
//!     let pf = PrefetchingFile::new(f, PrefetchConfig::paper_prototype());
//!     for _ in 0..8 {
//!         pf.read(64 * 1024).await.unwrap();
//!     }
//!     pf.close().await
//! });
//! sim.run();
//! let stats = h.try_take().unwrap();
//! assert!(stats.hits() >= 6); // the stride locks on after two reads
//! ```

// Robustness: a failed prefetch must quarantine and fall back to demand
// reads (the engine's whole fault story), never panic the client.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod buffer;
mod engine;
mod predictor;
mod stats;
mod writeback;

pub use buffer::{PrefetchEntry, PrefetchGauges, PrefetchList};
pub use engine::{PredictorKind, PrefetchConfig, PrefetchingFile};
pub use predictor::{for_mode, Predictor, RecordPredictor, SequentialPredictor, StridedPredictor};
pub use stats::PrefetchStats;
pub use writeback::{WriteBehindConfig, WriteBehindFile, WriteBehindStats};
