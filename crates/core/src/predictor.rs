//! Access predictors: where will this node's next read land?
//!
//! The prototype's prediction is "totally driven by the application's
//! access requests": under M_RECORD, node `i`'s requests walk the file in
//! strides of `N × size`, so the next request is fully determined by the
//! current one. The trait also covers the paper's future-work directions:
//! per-node sequential streams (M_ASYNC), broadcast reuse (M_GLOBAL), and
//! a general stride detector for strided workloads.

use paragon_pfs::IoMode;

/// Predicts future request offsets from the observed request stream.
pub trait Predictor {
    /// Record an actual demand request.
    fn observe(&mut self, offset: u64, len: u32);

    /// Offset of the `k`-th next request (`k ≥ 1`) of size `len`, based on
    /// everything observed so far. `None` = no confident prediction.
    fn predict(&self, k: u32, len: u32) -> Option<u64>;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// M_RECORD: node `rank` of `nprocs` reads records `rank`, `rank + N`,
/// `rank + 2N`, … — the next request is `offset + N·len`.
#[derive(Debug)]
pub struct RecordPredictor {
    nprocs: u64,
    last: Option<(u64, u32)>,
}

impl RecordPredictor {
    /// Predictor for an `nprocs`-process M_RECORD open.
    pub fn new(nprocs: usize) -> Self {
        assert!(nprocs > 0);
        RecordPredictor {
            nprocs: nprocs as u64,
            last: None,
        }
    }
}

impl Predictor for RecordPredictor {
    fn observe(&mut self, offset: u64, len: u32) {
        self.last = Some((offset, len));
    }

    fn predict(&self, k: u32, len: u32) -> Option<u64> {
        let (offset, last_len) = self.last?;
        // M_RECORD requires equal sizes; a size change resets confidence.
        if last_len != len {
            return None;
        }
        Some(offset + self.nprocs * len as u64 * k as u64)
    }

    fn name(&self) -> &'static str {
        "record"
    }
}

/// Sequential stream: next request is `offset + len` (M_ASYNC and
/// M_GLOBAL round streams, and any single-node sequential reader).
#[derive(Debug, Default)]
pub struct SequentialPredictor {
    last: Option<(u64, u32)>,
}

impl SequentialPredictor {
    /// Fresh sequential predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Predictor for SequentialPredictor {
    fn observe(&mut self, offset: u64, len: u32) {
        self.last = Some((offset, len));
    }

    fn predict(&self, k: u32, len: u32) -> Option<u64> {
        let (offset, last_len) = self.last?;
        Some(offset + last_len as u64 + (k as u64 - 1) * len as u64)
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

/// General stride detector: after two consecutive requests with the same
/// inter-request stride, predicts the stride continues. Covers strided
/// numerical workloads; goes silent (predicts nothing) on random access,
/// which is exactly the safe behaviour.
#[derive(Debug, Default)]
pub struct StridedPredictor {
    prev: Option<u64>,
    last: Option<u64>,
    confirmed_stride: Option<i64>,
}

impl StridedPredictor {
    /// Fresh stride detector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Predictor for StridedPredictor {
    fn observe(&mut self, offset: u64, _len: u32) {
        if let Some(last) = self.last {
            let stride = offset as i64 - last as i64;
            let candidate = match self.prev {
                Some(prev) if last as i64 - prev as i64 == stride => Some(stride),
                // First pair: tentatively adopt the stride.
                None => Some(stride),
                _ => None,
            };
            self.confirmed_stride = candidate;
        }
        self.prev = self.last;
        self.last = Some(offset);
    }

    fn predict(&self, k: u32, _len: u32) -> Option<u64> {
        let stride = self.confirmed_stride?;
        let last = self.last? as i64;
        let target = last + stride * k as i64;
        u64::try_from(target).ok()
    }

    fn name(&self) -> &'static str {
        "strided"
    }
}

/// The predictor the prototype installs for a given open mode. M_RECORD
/// is the paper's implementation; M_ASYNC and M_GLOBAL are the
/// future-work extensions — M_GLOBAL rounds walk the file sequentially,
/// while M_ASYNC promises *no* structure, so the engine installs the
/// adaptive stride detector (it locks onto sequential, record-interleaved,
/// or any other constant-stride stream after two requests). `None` for
/// shared-pointer modes: the next offset depends on other nodes' arrival
/// order, which the client cannot anticipate — prefetching there is out
/// of scope, as in the paper.
pub fn for_mode(mode: IoMode, nprocs: usize) -> Option<Box<dyn Predictor>> {
    match mode {
        IoMode::MRecord => Some(Box::new(RecordPredictor::new(nprocs))),
        IoMode::MGlobal => Some(Box::new(SequentialPredictor::new())),
        IoMode::MAsync => Some(Box::new(StridedPredictor::new())),
        IoMode::MUnix | IoMode::MLog | IoMode::MSync => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_predicts_node_strides() {
        let mut p = RecordPredictor::new(8);
        assert_eq!(p.predict(1, 1024), None); // nothing observed yet
        p.observe(2 * 1024, 1024); // rank 2's first record
        assert_eq!(p.predict(1, 1024), Some(2 * 1024 + 8 * 1024));
        assert_eq!(p.predict(3, 1024), Some(2 * 1024 + 24 * 1024));
        // A size change under M_RECORD invalidates the prediction.
        assert_eq!(p.predict(1, 2048), None);
    }

    #[test]
    fn sequential_predicts_next_byte() {
        let mut p = SequentialPredictor::new();
        p.observe(1000, 500);
        assert_eq!(p.predict(1, 500), Some(1500));
        assert_eq!(p.predict(2, 500), Some(2000));
        // Mixed sizes chain correctly: next starts after the last request.
        assert_eq!(p.predict(1, 100), Some(1500));
        assert_eq!(p.predict(2, 100), Some(1600));
    }

    #[test]
    fn strided_locks_on_and_drops_off() {
        let mut p = StridedPredictor::new();
        p.observe(0, 64);
        assert_eq!(p.predict(1, 64), None);
        p.observe(4096, 64);
        // One pair: tentative stride.
        assert_eq!(p.predict(1, 64), Some(8192));
        p.observe(8192, 64);
        assert_eq!(p.predict(1, 64), Some(12288));
        assert_eq!(p.predict(2, 64), Some(16384));
        // Break the pattern: predictor must go silent.
        p.observe(100, 64);
        assert_eq!(p.predict(1, 64), None);
    }

    #[test]
    fn strided_handles_negative_strides() {
        let mut p = StridedPredictor::new();
        p.observe(10_000, 64);
        p.observe(8_000, 64);
        p.observe(6_000, 64);
        assert_eq!(p.predict(1, 64), Some(4_000));
        // Predicting past zero yields nothing rather than wrapping.
        assert_eq!(p.predict(4, 64), None);
    }

    #[test]
    fn for_mode_covers_the_taxonomy() {
        assert_eq!(for_mode(IoMode::MRecord, 8).unwrap().name(), "record");
        assert_eq!(for_mode(IoMode::MAsync, 8).unwrap().name(), "strided");
        assert_eq!(for_mode(IoMode::MGlobal, 8).unwrap().name(), "sequential");
        assert!(for_mode(IoMode::MUnix, 8).is_none());
        assert!(for_mode(IoMode::MLog, 8).is_none());
        assert!(for_mode(IoMode::MSync, 8).is_none());
    }
}
