//! Prefetch accounting.
//!
//! The paper argues hit ratio alone is the wrong metric for a parallel
//! file system — observed collective read bandwidth and the amount of
//! I/O/compute overlap matter more — so the engine tracks all three
//! ingredients: hit kinds (ready vs still-in-flight), copy traffic, and
//! the latency each hit actually hid.

use paragon_sim::SimDuration;

/// Cumulative counters of one prefetching file handle.
#[derive(Debug, Default, Clone)]
pub struct PrefetchStats {
    /// Prefetch requests issued.
    pub issued: u64,
    /// Prefetches suppressed (would run past EOF or duplicate an entry).
    pub suppressed: u64,
    /// Demand reads answered by a completed prefetch buffer.
    pub hits_ready: u64,
    /// Demand reads that found their prefetch still in flight and waited
    /// for the remainder.
    pub hits_inflight: u64,
    /// Demand reads with no matching prefetch buffer.
    pub misses: u64,
    /// Demand reads whose prefetch buffer joined with an error but whose
    /// retried fallback — riding the client's retry policy and, on a
    /// replicated mount, replica failover — served the bytes anyway. The
    /// speculation *did* cover the access, so these count as hits, not
    /// misses; only a fallback that also fails is a miss.
    pub recovered: u64,
    /// Prefetched buffers evicted or discarded unused.
    pub wasted: u64,
    /// Prefetches abandoned while still in flight at close (a subset of
    /// `wasted`): the transfer keeps running on its ART, the data is
    /// dropped on arrival.
    pub cancelled: u64,
    /// Prefetches that completed with an error (injected fault, device
    /// failure); each is also `wasted`, and each triggered a demand-read
    /// fallback.
    pub faults: u64,
    /// Times the engine quarantined itself after a run of failed
    /// prefetches.
    pub throttles: u64,
    /// Times the engine resumed speculation after a throttle.
    pub resumes: u64,
    /// Prefetch slots skipped while throttled.
    pub throttled_skips: u64,
    /// Bytes copied prefetch buffer → user buffer (the extra copy Fast
    /// Path would have avoided).
    pub bytes_copied: u64,
    /// Total I/O latency hidden from the application: for a ready hit the
    /// buffer's whole service time, for an in-flight hit the portion that
    /// ran before the demand read arrived.
    pub overlap_saved: SimDuration,
    /// Time demand reads spent waiting on in-flight prefetches.
    pub inflight_wait: SimDuration,
}

impl PrefetchStats {
    /// Demand reads the speculation covered, any kind: served straight
    /// from a prefetch buffer, or recovered by the retried fallback
    /// after the buffer joined with an error.
    pub fn hits(&self) -> u64 {
        self.hits_ready + self.hits_inflight + self.recovered
    }

    /// Demand reads observed.
    pub fn demand_reads(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Hit ratio in [0, 1]; zero before any read.
    pub fn hit_ratio(&self) -> f64 {
        let n = self.demand_reads();
        if n == 0 {
            0.0
        } else {
            self.hits() as f64 / n as f64
        }
    }

    /// Fraction of issued prefetches that were never used.
    pub fn waste_ratio(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.wasted as f64 / self.issued as f64
        }
    }

    /// Merge another handle's counters into this one (per-node → per-run
    /// aggregation).
    pub fn merge(&mut self, other: &PrefetchStats) {
        self.issued += other.issued;
        self.suppressed += other.suppressed;
        self.hits_ready += other.hits_ready;
        self.hits_inflight += other.hits_inflight;
        self.misses += other.misses;
        self.recovered += other.recovered;
        self.wasted += other.wasted;
        self.cancelled += other.cancelled;
        self.faults += other.faults;
        self.throttles += other.throttles;
        self.resumes += other.resumes;
        self.throttled_skips += other.throttled_skips;
        self.bytes_copied += other.bytes_copied;
        self.overlap_saved += other.overlap_saved;
        self.inflight_wait += other.inflight_wait;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_and_full() {
        let mut s = PrefetchStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.waste_ratio(), 0.0);
        s.hits_ready = 3;
        s.hits_inflight = 1;
        s.misses = 4;
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        s.issued = 8;
        s.wasted = 2;
        assert!((s.waste_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = PrefetchStats {
            issued: 1,
            suppressed: 2,
            hits_ready: 3,
            hits_inflight: 4,
            misses: 5,
            recovered: 1,
            wasted: 6,
            cancelled: 1,
            faults: 2,
            throttles: 1,
            resumes: 1,
            throttled_skips: 3,
            bytes_copied: 7,
            overlap_saved: SimDuration::from_millis(8),
            inflight_wait: SimDuration::from_millis(9),
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.issued, 2);
        assert_eq!(a.misses, 10);
        assert_eq!(a.faults, 4);
        assert_eq!(a.throttles, 2);
        assert_eq!(a.resumes, 2);
        assert_eq!(a.throttled_skips, 6);
        assert_eq!(a.overlap_saved, SimDuration::from_millis(16));
        assert_eq!(a.recovered, 2);
        assert_eq!(a.demand_reads(), 26);
    }
}
