//! The prefetch engine — the paper's contribution.
//!
//! [`PrefetchingFile`] wraps an open [`PfsFile`] and reproduces §3 of the
//! paper:
//!
//! * After **every** demand read, the user thread issues one asynchronous
//!   read (through the ordinary ART machinery) for the block it
//!   anticipates this node will want next — derived from the current
//!   request under the open mode's semantics. The file pointer is **not**
//!   moved by the prefetch.
//! * Prefetched data lands in a per-file buffer list in compute-node
//!   memory. A later demand read that matches a buffer is a **hit**: if
//!   the data already arrived it pays only the prefetch-buffer → user
//!   buffer copy (the copy Fast Path would have avoided — the paper's
//!   overhead); if the prefetch is still in flight the read waits for the
//!   remainder, so even a "miss when presented" can hide most of the I/O.
//! * Buffers are freed at [`PrefetchingFile::close`].
//!
//! Knobs beyond the paper's prototype (which fixes depth = 1) are in
//! [`PrefetchConfig`] and exercised by the ablation benches.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use paragon_pfs::{PfsError, PfsFile};
use paragon_sim::{ev, EventKind, Sim, SimDuration, Track};

use crate::buffer::{PrefetchEntry, PrefetchList};
use crate::predictor::{for_mode, Predictor};
use crate::stats::PrefetchStats;

/// Which predictor the engine installs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictorKind {
    /// The open mode's natural predictor (M_RECORD stride, sequential
    /// streams for M_ASYNC/M_GLOBAL) — the paper's behaviour.
    #[default]
    ModeDefault,
    /// The general stride detector (extension for strided workloads).
    Strided,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct PrefetchConfig {
    /// Anticipated requests to keep in flight (paper prototype: 1).
    pub depth: u32,
    /// Prefetch-buffer list capacity, entries.
    pub max_buffers: usize,
    /// Compute-node memory budget for prefetch buffers, bytes.
    pub max_buffer_bytes: u64,
    /// Compute-node memory bandwidth for the buffer → user copy, bytes/s.
    pub copy_bw: f64,
    /// Predictor selection.
    pub predictor: PredictorKind,
    /// Consecutive failed prefetches before the engine throttles itself
    /// (stops issuing speculation and serves demand reads only); the same
    /// count of consecutive good demand reads re-enables it.
    pub fault_threshold: u32,
}

impl PrefetchConfig {
    /// The paper's prototype: one block ahead, i860-class copy bandwidth.
    pub fn paper_prototype() -> Self {
        PrefetchConfig {
            depth: 1,
            max_buffers: 8,
            // A slice of the compute node's 16 MB, as in the paper.
            max_buffer_bytes: 4 << 20,
            copy_bw: 45e6,
            predictor: PredictorKind::ModeDefault,
            fault_threshold: 3,
        }
    }

    /// Same, with an explicit depth (the depth-ablation extension).
    pub fn with_depth(depth: u32) -> Self {
        assert!(depth >= 1);
        PrefetchConfig {
            depth,
            max_buffers: (depth as usize * 2).max(8),
            ..Self::paper_prototype()
        }
    }
}

/// A PFS file handle with system-level prefetching enabled.
pub struct PrefetchingFile {
    file: PfsFile,
    sim: Sim,
    cfg: PrefetchConfig,
    predictor: RefCell<Box<dyn Predictor>>,
    list: RefCell<PrefetchList>,
    stats: Rc<RefCell<PrefetchStats>>,
    closed: std::cell::Cell<bool>,
    /// Consecutive prefetches that came back failed (resets on any good
    /// prefetch or, while throttled, counts good demand reads instead).
    fault_streak: std::cell::Cell<u32>,
    /// Quarantine flag: while set, no new speculation is issued.
    throttled: std::cell::Cell<bool>,
}

impl PrefetchingFile {
    /// Wrap `file`. Panics for shared-pointer modes (M_UNIX/M_LOG/M_SYNC):
    /// their next offset depends on other nodes' arrival order, which the
    /// client cannot anticipate — the same scoping the paper's prototype
    /// makes (it targets M_RECORD).
    pub fn new(file: PfsFile, cfg: PrefetchConfig) -> Self {
        let predictor: Box<dyn Predictor> = match cfg.predictor {
            PredictorKind::ModeDefault => for_mode(file.mode(), file.nprocs() as usize)
                .unwrap_or_else(|| {
                    panic!(
                        "prefetching is not supported for shared-pointer mode {}",
                        file.mode()
                    )
                }),
            PredictorKind::Strided => Box::new(crate::predictor::StridedPredictor::new()),
        };
        let sim = file.sim().clone();
        PrefetchingFile {
            file,
            sim,
            list: RefCell::new(PrefetchList::with_byte_cap(
                cfg.max_buffers,
                cfg.max_buffer_bytes,
            )),
            cfg,
            predictor: RefCell::new(predictor),
            stats: Rc::new(RefCell::new(PrefetchStats::default())),
            closed: std::cell::Cell::new(false),
            fault_streak: std::cell::Cell::new(0),
            throttled: std::cell::Cell::new(false),
        }
    }

    /// The wrapped file.
    pub fn inner(&self) -> &PfsFile {
        &self.file
    }

    /// Wire the buffer list to shared occupancy `gauges` (telemetry);
    /// any current occupancy transfers onto them.
    pub fn set_gauges(&self, gauges: crate::buffer::PrefetchGauges) {
        self.list.borrow_mut().set_gauges(gauges);
    }

    /// Engine counters.
    pub fn stats(&self) -> PrefetchStats {
        self.stats.borrow().clone()
    }

    /// Read the next `len` bytes under the open mode, serving from the
    /// prefetch buffer list when possible and issuing the next
    /// anticipated prefetches before returning.
    pub async fn read(&self, len: u32) -> Result<Bytes, PfsError> {
        assert!(!self.closed.get(), "read on a closed PrefetchingFile");
        self.file.syscall().await;
        let offset = self.file.advance_pointer(len).await;
        self.read_common(offset, len).await
    }

    /// Positioned read through the engine: serves from (and trains) the
    /// prefetch machinery exactly like [`PrefetchingFile::read`], but at a
    /// caller-chosen offset. Used by strided/random workloads.
    pub async fn read_at(&self, offset: u64, len: u32) -> Result<Bytes, PfsError> {
        assert!(!self.closed.get(), "read on a closed PrefetchingFile");
        self.file.syscall().await;
        self.read_common(offset, len).await
    }

    async fn read_common(&self, offset: u64, len: u32) -> Result<Bytes, PfsError> {
        let matched = self.list.borrow_mut().take_match(offset, len);
        let cn = Track::Cn(self.file.rank());
        let data = match matched {
            Some(entry) => {
                let ready = entry.is_ready();
                let kind = if ready {
                    EventKind::PrefetchHitReady
                } else {
                    EventKind::PrefetchHitInflight
                };
                let ereq = entry.req;
                self.sim.emit(|| ev(cn, kind, ereq, offset, len as u64));
                self.consume_hit(entry, offset, len).await?
            }
            None => {
                let req = self.sim.mint_req();
                self.sim
                    .emit(|| ev(cn, EventKind::PrefetchMiss, req, offset, len as u64));
                self.stats.borrow_mut().misses += 1;
                let data = self.file.transfer_read_tagged(offset, len, req).await?;
                self.note_good_read();
                data
            }
        };
        self.predictor.borrow_mut().observe(offset, len);
        self.issue_prefetches(len).await;
        Ok(data)
    }

    async fn consume_hit(
        &self,
        entry: PrefetchEntry,
        offset: u64,
        len: u32,
    ) -> Result<Bytes, PfsError> {
        let arrived_at = self.sim.now();
        let ready = entry.is_ready();
        let result = entry.handle.join().await;
        if !ready {
            self.stats.borrow_mut().inflight_wait += self.sim.now().saturating_since(arrived_at);
        }
        match result {
            Ok(data) => {
                // Count the hit only now that the buffer proved good: a
                // failed prefetch is accounted a miss (the demand
                // fallback is what actually serves the read).
                {
                    let mut st = self.stats.borrow_mut();
                    if ready {
                        st.hits_ready += 1;
                        if let Some(done) = entry.handle.completed_at() {
                            st.overlap_saved += done.saturating_since(entry.handle.submitted_at());
                        }
                    } else {
                        st.hits_inflight += 1;
                        st.overlap_saved +=
                            arrived_at.saturating_since(entry.handle.submitted_at());
                    }
                }
                // The hit pays the prefetch-buffer → user-buffer copy.
                self.sim
                    .sleep(SimDuration::for_bytes(len as u64, self.cfg.copy_bw))
                    .await;
                self.stats.borrow_mut().bytes_copied += len as u64;
                let ereq = entry.req;
                self.sim.emit(|| {
                    ev(
                        Track::Cn(self.file.rank()),
                        EventKind::Copy,
                        ereq,
                        offset,
                        len as u64,
                    )
                });
                self.note_good_read();
                Ok(data.slice(0..len as usize))
            }
            Err(_) => {
                // The speculation failed (injected fault, raced a
                // truncate, …): quarantine the buffer and fall back to a
                // demand read rather than surfacing a phantom error — the
                // demand path carries its own retry policy and, on a
                // replicated mount, replica failover.
                self.stats.borrow_mut().wasted += 1;
                self.note_prefetch_fault(entry.req, offset, len);
                match self.file.transfer_read(offset, len).await {
                    Ok(data) => {
                        // Retried and served: the speculation covered
                        // the access after all, so this is a recovered
                        // hit, not a miss.
                        self.stats.borrow_mut().recovered += 1;
                        self.note_good_read();
                        Ok(data)
                    }
                    Err(e) => {
                        self.stats.borrow_mut().misses += 1;
                        Err(e)
                    }
                }
            }
        }
    }

    /// A prefetched buffer joined with an error: count it, trace it, and
    /// — after `fault_threshold` consecutive failures — throttle all
    /// further speculation so a sick I/O path is not hammered with
    /// requests nobody is waiting on.
    fn note_prefetch_fault(&self, req: paragon_sim::ReqId, offset: u64, len: u32) {
        let cn = Track::Cn(self.file.rank());
        self.stats.borrow_mut().faults += 1;
        self.sim
            .emit(|| ev(cn, EventKind::PrefetchFault, req, offset, len as u64));
        if !self.throttled.get() {
            let streak = self.fault_streak.get() + 1;
            self.fault_streak.set(streak);
            if streak >= self.cfg.fault_threshold {
                self.throttled.set(true);
                self.fault_streak.set(0);
                self.stats.borrow_mut().throttles += 1;
                self.sim
                    .emit(|| ev(cn, EventKind::PrefetchThrottle, req, streak as u64, 0));
            }
        }
    }

    /// A read (hit consumption, fallback, or demand miss) completed
    /// cleanly. Healthy engine: clear the fault streak. Throttled engine:
    /// count it toward recovery, and after `fault_threshold` consecutive
    /// good reads resume speculation.
    fn note_good_read(&self) {
        if !self.throttled.get() {
            self.fault_streak.set(0);
            return;
        }
        let good = self.fault_streak.get() + 1;
        self.fault_streak.set(good);
        if good >= self.cfg.fault_threshold {
            self.throttled.set(false);
            self.fault_streak.set(0);
            self.stats.borrow_mut().resumes += 1;
            let cn = Track::Cn(self.file.rank());
            self.sim
                .emit(|| ev(cn, EventKind::PrefetchResume, 0, good as u64, 0));
        }
    }

    /// Is speculation currently quarantined by the fault throttle?
    pub fn is_throttled(&self) -> bool {
        self.throttled.get()
    }

    /// Issue asynchronous reads for the next `depth` anticipated requests
    /// that are not already buffered and do not run past EOF.
    async fn issue_prefetches(&self, len: u32) {
        if self.throttled.get() {
            // Quarantined: the I/O path is failing prefetches; issue no
            // speculation until demand reads prove it healthy again.
            self.stats.borrow_mut().throttled_skips += self.cfg.depth as u64;
            return;
        }
        let size = self.file.size();
        for k in 1..=self.cfg.depth {
            let target = {
                let p = self.predictor.borrow();
                p.predict(k, len)
            };
            let Some(target) = target else {
                self.stats.borrow_mut().suppressed += 1;
                continue;
            };
            if target + len as u64 > size || self.list.borrow().covers(target, len) {
                self.stats.borrow_mut().suppressed += 1;
                continue;
            }
            let cn = Track::Cn(self.file.rank());
            let req = self.sim.mint_req();
            self.sim
                .emit(|| ev(cn, EventKind::PrefetchIssue, req, target, len as u64));
            let file = self.file.clone();
            let handle = self
                .file
                .art_pool()
                .submit_tagged(req, cn, async move {
                    file.transfer_read_tagged(target, len, req).await
                })
                .await;
            let mut st = self.stats.borrow_mut();
            st.issued += 1;
            drop(st);
            let evicted = self.list.borrow_mut().insert(PrefetchEntry {
                offset: target,
                len,
                req,
                handle,
            });
            for e in &evicted {
                self.sim
                    .emit(|| ev(cn, EventKind::PrefetchEvict, e.req, e.offset, e.len as u64));
            }
            self.stats.borrow_mut().wasted += evicted.len() as u64;
        }
    }

    /// Close the handle: free every prefetch buffer (unconsumed buffers
    /// count as wasted prefetches) and return the final counters.
    pub async fn close(&self) -> PrefetchStats {
        if !self.closed.replace(true) {
            let leftovers = self.list.borrow_mut().drain();
            let cn = Track::Cn(self.file.rank());
            let mut cancelled = 0u64;
            for e in &leftovers {
                if !e.is_ready() {
                    // Still in flight: the OS does not cancel posted ART
                    // requests — the transfer keeps running and its data
                    // is dropped — but record the abandonment.
                    cancelled += 1;
                    self.sim
                        .emit(|| ev(cn, EventKind::PrefetchCancel, e.req, e.offset, e.len as u64));
                }
            }
            let mut st = self.stats.borrow_mut();
            st.cancelled += cancelled;
            st.wasted += leftovers.len() as u64;
        }
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_machine::{Machine, MachineConfig};
    use paragon_pfs::{pattern_byte, pattern_slice, IoMode, OpenOptions, ParallelFs, StripeAttrs};
    use paragon_sim::Sim;

    const KB: u64 = 1024;

    /// Mount a tiny instant machine with a populated M_RECORD file and
    /// run `body(prefetching_file)` to completion.
    fn with_file<F, T>(mode: IoMode, nprocs: usize, rank: usize, cfg: PrefetchConfig, body: F) -> T
    where
        F: FnOnce(PrefetchingFile) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>>
            + 'static,
        T: 'static,
    {
        let sim = Sim::new(11);
        let machine = Rc::new(Machine::new(
            &sim,
            MachineConfig::tiny_instant(nprocs.max(1), 2),
        ));
        let pfs = ParallelFs::new(machine);
        let p2 = pfs.clone();
        let h = sim.spawn(async move {
            let id = p2
                .create("/pfs/t", StripeAttrs::across(2, 16 * KB))
                .await
                .unwrap();
            p2.populate_with(id, 1024 * KB, |i| pattern_byte(13, i))
                .await
                .unwrap();
            let f = p2
                .open(rank, nprocs, id, mode, OpenOptions::default())
                .unwrap();
            body(PrefetchingFile::new(f, cfg)).await
        });
        sim.run();
        h.try_take().expect("body did not complete")
    }

    #[test]
    fn sequential_reads_return_correct_data_and_hit() {
        let stats = with_file(
            IoMode::MAsync,
            1,
            0,
            PrefetchConfig::paper_prototype(),
            |pf| {
                Box::pin(async move {
                    for i in 0..8u64 {
                        let data = pf.read(32 * 1024).await.unwrap();
                        assert_eq!(&data[..], &pattern_slice(13, i * 32 * KB, 32 * 1024)[..]);
                    }
                    pf.close().await
                })
            },
        );
        // M_ASYNC uses the stride detector: two observations to lock on,
        // so the first two reads miss and every later read hits.
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits(), 6);
        assert_eq!(stats.issued, 6 + 1); // one still unconsumed at close
        assert_eq!(stats.wasted, 1);
        assert!(stats.hit_ratio() >= 0.75);
    }

    #[test]
    fn m_record_rank_stride_is_prefetched() {
        let stats = with_file(
            IoMode::MRecord,
            4,
            2,
            PrefetchConfig::paper_prototype(),
            |pf| {
                Box::pin(async move {
                    // Rank 2 of 4: records 2, 6, 10, … of 64 KB.
                    for round in 0..4u64 {
                        let data = pf.read(64 * 1024).await.unwrap();
                        let at = (round * 4 + 2) * 64 * KB;
                        assert_eq!(&data[..], &pattern_slice(13, at, 64 * 1024)[..]);
                    }
                    pf.close().await
                })
            },
        );
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits(), 3);
    }

    #[test]
    fn prefetch_never_runs_past_eof() {
        let stats = with_file(
            IoMode::MAsync,
            1,
            0,
            PrefetchConfig::paper_prototype(),
            |pf| {
                Box::pin(async move {
                    // The file is 1024 KB; read it fully in 256 KB requests.
                    for _ in 0..4 {
                        pf.read(256 * 1024).await.unwrap();
                    }
                    pf.close().await
                })
            },
        );
        // The first read has no stride yet and the prefetch after the
        // last read would cross EOF: both suppressed.
        assert_eq!(stats.issued, 2);
        assert!(stats.suppressed >= 2);
        assert_eq!(stats.wasted, 0);
    }

    #[test]
    fn depth_widens_the_pipeline() {
        let stats = with_file(IoMode::MAsync, 1, 0, PrefetchConfig::with_depth(3), |pf| {
            Box::pin(async move {
                for _ in 0..8 {
                    pf.read(64 * 1024).await.unwrap();
                }
                pf.close().await
            })
        });
        // With depth 3 every read past the two-read warmup finds a buffer.
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits(), 6);
        assert!(stats.issued > 6, "deeper pipeline issues more prefetches");
    }

    #[test]
    fn random_reads_under_strided_workload_all_miss() {
        // M_ASYNC sequential predictor with a non-sequential access
        // pattern: every prediction is wrong, every read misses, and the
        // wrong-guess buffers are wasted — the engine must stay correct.
        let stats = with_file(
            IoMode::MAsync,
            1,
            0,
            PrefetchConfig::paper_prototype(),
            |pf| {
                Box::pin(async move {
                    // Jump around via read_at-style pointer manipulation:
                    // M_ASYNC reads are sequential, so emulate jumps by
                    // varying the request size (predictor chains on last
                    // request end, which we always skip past).
                    let inner = pf.inner().clone();
                    for i in 0..5u64 {
                        // Demand-read directly at scattered offsets.
                        let at = (i * 197) % 900 * KB;
                        let data = inner.transfer_read(at, 16 * 1024).await.unwrap();
                        assert_eq!(&data[..], &pattern_slice(13, at, 16 * 1024)[..]);
                    }
                    // Now do normal engine reads to exercise the miss path.
                    let a = pf.read(16 * 1024).await.unwrap();
                    assert_eq!(&a[..], &pattern_slice(13, 0, 16 * 1024)[..]);
                    pf.close().await
                })
            },
        );
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn close_frees_buffers_and_counts_waste() {
        let stats = with_file(IoMode::MAsync, 1, 0, PrefetchConfig::with_depth(4), |pf| {
            Box::pin(async move {
                // Two reads lock the stride detector; the second read
                // then pipelines four prefetches that nobody consumes.
                pf.read(64 * 1024).await.unwrap();
                pf.read(64 * 1024).await.unwrap();
                pf.close().await
            })
        });
        assert_eq!(stats.issued, 4);
        assert_eq!(stats.wasted, 4); // none consumed
        assert!(
            stats.cancelled <= stats.wasted,
            "cancelled is the in-flight subset of wasted"
        );
    }

    #[test]
    fn close_frees_every_gauged_buffer_byte() {
        // Satellite check on the occupancy gauges: buffers pin bytes
        // while the pipeline runs, and close must return both gauges to
        // exactly zero — a leak here means some removal path skipped
        // its gauge update.
        let gauges = crate::PrefetchGauges::default();
        let g = gauges.clone();
        let peak = with_file(
            IoMode::MAsync,
            1,
            0,
            PrefetchConfig::with_depth(4),
            move |pf| {
                Box::pin(async move {
                    pf.set_gauges(g.clone());
                    let mut peak_bytes = 0i64;
                    for _ in 0..4 {
                        pf.read(64 * 1024).await.unwrap();
                        peak_bytes = peak_bytes.max(g.bytes.get());
                        assert_eq!(
                            g.bytes.get() % (64 * 1024),
                            0,
                            "gauge moves in whole buffers"
                        );
                    }
                    pf.close().await;
                    peak_bytes
                })
            },
        );
        assert!(peak > 0, "prefetch buffers pinned bytes mid-run");
        assert_eq!(gauges.entries.get(), 0, "every buffer freed at close");
        assert_eq!(gauges.bytes.get(), 0, "every pinned byte freed at close");
    }

    #[test]
    fn close_cancels_prefetches_still_in_flight() {
        // On a machine with real 1995 disk latency, the four prefetches
        // pipelined by the second read are still on the wire when close
        // runs: every one must be counted cancelled (and wasted).
        let sim = Sim::new(11);
        let machine = Rc::new(Machine::new(
            &sim,
            MachineConfig {
                compute_nodes: 1,
                io_nodes: 2,
                calib: paragon_machine::Calibration::paragon_1995(),
            },
        ));
        let pfs = ParallelFs::new(machine);
        let h = sim.spawn(async move {
            let id = pfs
                .create("/pfs/t", StripeAttrs::across(2, 16 * KB))
                .await
                .unwrap();
            pfs.populate_with(id, 1024 * KB, |i| pattern_byte(13, i))
                .await
                .unwrap();
            let f = pfs
                .open(0, 1, id, IoMode::MAsync, OpenOptions::default())
                .unwrap();
            let pf = PrefetchingFile::new(f, PrefetchConfig::with_depth(4));
            pf.read(64 * 1024).await.unwrap();
            pf.read(64 * 1024).await.unwrap();
            pf.close().await
        });
        sim.run();
        let stats = h.try_take().expect("body did not complete");
        assert_eq!(stats.issued, 4);
        assert_eq!(stats.wasted, 4);
        assert_eq!(stats.cancelled, 4, "all were abandoned mid-flight");
    }

    #[test]
    fn strided_predictor_serves_positioned_reads() {
        // Engine read_at with the stride detector: a 3-stride walk locks
        // on after two reads and hits from the third onward.
        let mut cfg = PrefetchConfig::paper_prototype();
        cfg.predictor = crate::engine::PredictorKind::Strided;
        let stats = with_file(IoMode::MAsync, 1, 0, cfg, |pf| {
            Box::pin(async move {
                for k in 0..6u64 {
                    let at = k * 3 * 32 * KB;
                    let data = pf.read_at(at, 32 * 1024).await.unwrap();
                    assert_eq!(&data[..], &pattern_slice(13, at, 32 * 1024)[..]);
                }
                pf.close().await
            })
        });
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits(), 4);
    }

    #[test]
    fn broken_stride_goes_quiet_instead_of_spraying() {
        let mut cfg = PrefetchConfig::paper_prototype();
        cfg.predictor = crate::engine::PredictorKind::Strided;
        let stats = with_file(IoMode::MAsync, 1, 0, cfg, |pf| {
            Box::pin(async move {
                // No two consecutive strides match: the detector must stay
                // silent rather than waste prefetches.
                for at in [0u64, 64, 192, 448, 960] {
                    pf.read_at(at * KB / 64, 16 * 1024).await.unwrap();
                }
                pf.close().await
            })
        });
        assert_eq!(stats.hits(), 0);
        assert_eq!(stats.issued, stats.wasted); // anything issued was wrong
        assert!(stats.suppressed >= 1);
    }

    #[test]
    fn failed_prefetches_throttle_then_resume() {
        // Real 1995 latencies so the prefetch pipelined by the second
        // read is guaranteed still short of the disks when the fault
        // plan arms; its member-0 read then fails, the engine
        // quarantines itself (threshold 1), and the demand fallback —
        // served after the scheduled transient is exhausted — both
        // returns correct data and re-enables speculation.
        let sim = Sim::new(11);
        let machine = Rc::new(Machine::new(
            &sim,
            MachineConfig {
                compute_nodes: 1,
                io_nodes: 2,
                calib: paragon_machine::Calibration::paragon_1995(),
            },
        ));
        let pfs = ParallelFs::new(machine);
        let faults = sim.faults();
        let h = sim.spawn(async move {
            let id = pfs
                .create("/pfs/t", StripeAttrs::across(2, 16 * KB))
                .await
                .unwrap();
            pfs.populate_with(id, 1024 * KB, |i| pattern_byte(13, i))
                .await
                .unwrap();
            let f = pfs
                .open(0, 1, id, IoMode::MAsync, OpenOptions::default())
                .unwrap();
            let mut cfg = PrefetchConfig::paper_prototype();
            cfg.fault_threshold = 1;
            let pf = PrefetchingFile::new(f, cfg);
            for i in 0..2u64 {
                let data = pf.read(32 * 1024).await.unwrap();
                assert_eq!(&data[..], &pattern_slice(13, i * 32 * KB, 32 * 1024)[..]);
            }
            faults.schedule_disk_transients(0, 1);
            faults.arm();
            for i in 2..5u64 {
                let data = pf.read(32 * 1024).await.unwrap();
                assert_eq!(&data[..], &pattern_slice(13, i * 32 * KB, 32 * 1024)[..]);
            }
            assert!(!pf.is_throttled(), "engine must have resumed");
            pf.close().await
        });
        sim.run();
        let stats = h.try_take().expect("body did not complete");
        assert_eq!(stats.faults, 1, "exactly the one injected fault");
        assert_eq!(stats.throttles, 1);
        assert_eq!(stats.resumes, 1);
        assert!(stats.hits() >= 1, "post-resume prefetches hit again");
    }

    #[test]
    #[should_panic(expected = "not supported for shared-pointer mode")]
    fn shared_pointer_modes_are_rejected() {
        with_file(
            IoMode::MUnix,
            2,
            0,
            PrefetchConfig::paper_prototype(),
            |pf| Box::pin(async move { pf.close().await }),
        );
    }
}
