//! Per-request critical-path analysis.
//!
//! [`read_spans`](https://docs.rs) in `paragon-workload` decomposes a
//! read into four coarse phases; this module sharpens that into the full
//! component chain a demand read's critical path actually walks:
//!
//! ```text
//! client → art-queue → mesh-request → server-queue → service → disk
//!        → server-reply → mesh-reply → client-finish
//! ```
//!
//! Each component's blame is the distance between two *milestones* —
//! trace instants chain-clamped to be monotone inside the span — so the
//! nine legs always sum **exactly** (integer nanoseconds, no float
//! drift) to the end-to-end latency. A missing milestone (a cache hit
//! never touches a disk; a replicated read may skip the ART) collapses
//! its leg to zero rather than orphaning the DAG, which is also what
//! makes retried and failed-over requests well-formed: the *last*
//! arrival/completion wins, earlier dead legs are absorbed into the
//! component that covered them in wall-clock terms.
//!
//! Overlap accounting: the `disk` leg is the wall-clock envelope from
//! the first member command start to the last completion. Striped and
//! mirrored reads keep several spindles busy inside that envelope; the
//! *hidden* time — summed member busy minus the envelope — is reported
//! separately and deliberately kept out of the blame sum, because it
//! was bought, not waited for.

use std::collections::BTreeMap;

use paragon_sim::{EventKind, ReqId, SimTime, TraceEvent, Track};

/// Component labels, in pipeline order; index-aligned with
/// [`CriticalPath::legs`].
pub const COMPONENTS: [&str; 9] = [
    "client",
    "art-queue",
    "mesh-request",
    "server-queue",
    "service",
    "disk",
    "server-reply",
    "mesh-reply",
    "client-finish",
];

/// One request's critical path: its end-to-end interval charged, to the
/// nanosecond, across the nine pipeline components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Request id (correlates with the raw trace).
    pub req: ReqId,
    /// File offset requested.
    pub offset: u64,
    /// Bytes requested.
    pub len: u64,
    /// Time the read entered the client.
    pub start: SimTime,
    /// Time the read returned to the caller.
    pub end: SimTime,
    /// Nanoseconds charged to each component (see [`COMPONENTS`]);
    /// sums exactly to `end - start`.
    pub legs: [u64; 9],
    /// Disk member busy time hidden inside the `disk` envelope by RAID
    /// parallelism. Reported, never added to the sum.
    pub overlap_hidden_ns: u64,
    /// Fault-recovery events (retries, failovers, reconstructions)
    /// observed under this request id.
    pub faults: u32,
}

impl CriticalPath {
    /// End-to-end latency in nanoseconds; equals the sum of `legs`.
    pub fn total_ns(&self) -> u64 {
        self.end.since(self.start).as_nanos()
    }
}

/// Did this kind mark fault recovery work on the request's path?
fn is_fault_recovery(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::FaultDiskError
            | EventKind::MeshDrop
            | EventKind::MeshDup
            | EventKind::MeshDelay
            | EventKind::RpcRetry
            | EventKind::RpcGiveUp
            | EventKind::RaidReconstruct
            | EventKind::ReplicaFailover
    )
}

/// Reconstruct the critical path of every completed read in `events`.
///
/// A request needs a `read-start` and a matching `read-done`; transfers
/// cut off by the trace cap are skipped. Returned in request-id order.
pub fn critical_paths(events: &[TraceEvent]) -> Vec<CriticalPath> {
    let mut by_req: BTreeMap<ReqId, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        if e.req != 0 {
            by_req.entry(e.req).or_default().push(e);
        }
    }
    let mut out = Vec::new();
    for (req, evs) in by_req {
        let Some(start_ev) = evs.iter().find(|e| e.kind == EventKind::ReadStart) else {
            continue;
        };
        let Some(end_ev) = evs.iter().rev().find(|e| e.kind == EventKind::ReadDone) else {
            continue;
        };
        let (start, end) = (start_ev.time, end_ev.time);
        // The client's mesh node id: source of the first request NetTx.
        let client_node = evs.iter().find_map(|e| match (e.kind, e.track) {
            (EventKind::NetTx, Track::Node(n)) if e.time >= start => Some(n),
            _ => None,
        });
        let at_client = |e: &TraceEvent| match (e.track, client_node) {
            (Track::Node(n), Some(c)) => n == c,
            _ => false,
        };
        let first = |pred: &dyn Fn(&TraceEvent) -> bool| {
            evs.iter().filter(|e| pred(e)).map(|e| e.time).min()
        };
        let last = |pred: &dyn Fn(&TraceEvent) -> bool| {
            evs.iter().filter(|e| pred(e)).map(|e| e.time).max()
        };
        // Milestones, in pipeline order. Raw trace instants; the clamp
        // chain below makes them monotone and confines them to the span.
        let raw: [Option<SimTime>; 8] = [
            first(&|e| e.kind == EventKind::ArtSubmit),
            first(&|e| e.kind == EventKind::ArtStart),
            last(&|e| e.kind == EventKind::NetRx && !at_client(e)),
            first(&|e| e.kind == EventKind::ServeStart),
            first(&|e| e.kind == EventKind::DiskStart),
            last(&|e| e.kind == EventKind::DiskDone),
            last(&|e| e.kind == EventKind::ServeDone),
            last(&|e| e.kind == EventKind::NetRx && at_client(e)),
        ];
        let mut legs = [0u64; 9];
        let mut prev = start;
        for (i, r) in raw.iter().enumerate() {
            // Missing milestone → stay at `prev`: a zero leg, never a
            // negative one, never an orphaned chain.
            let m = r.map(|t| t.max(start).min(end)).unwrap_or(prev).max(prev);
            legs[i] = m.since(prev).as_nanos();
            prev = m;
        }
        legs[8] = end.since(prev).as_nanos();

        // Overlap accounting: FIFO-pair each spindle's start/done
        // commands, sum the member busy time, subtract the wall-clock
        // envelope the `disk` leg already charged.
        let mut open: BTreeMap<Track, Vec<SimTime>> = BTreeMap::new();
        let mut member_busy = 0u64;
        let (mut first_disk, mut last_disk) = (None::<SimTime>, None::<SimTime>);
        for e in &evs {
            match e.kind {
                EventKind::DiskStart => {
                    open.entry(e.track).or_default().push(e.time);
                    first_disk = Some(first_disk.map_or(e.time, |t: SimTime| t.min(e.time)));
                }
                EventKind::DiskDone => {
                    if let Some(s) = open.get_mut(&e.track).and_then(|v| {
                        if v.is_empty() {
                            None
                        } else {
                            Some(v.remove(0))
                        }
                    }) {
                        member_busy += e.time.since(s).as_nanos();
                    }
                    last_disk = Some(last_disk.map_or(e.time, |t: SimTime| t.max(e.time)));
                }
                _ => {}
            }
        }
        let envelope = match (first_disk, last_disk) {
            (Some(f), Some(l)) if l > f => l.since(f).as_nanos(),
            _ => 0,
        };
        let overlap_hidden_ns = member_busy.saturating_sub(envelope);
        let faults = evs.iter().filter(|e| is_fault_recovery(e.kind)).count() as u32;
        out.push(CriticalPath {
            req,
            offset: start_ev.a,
            len: start_ev.b,
            start,
            end,
            legs,
            overlap_hidden_ns,
            faults,
        });
    }
    out
}

/// Nearest-rank percentile of an ascending `sorted` sample, `q` in
/// percent. Pure integer rank selection — no interpolation, no floats.
fn pct(sorted: &[u64], q: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as u64).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

fn ms(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000_000, (ns % 1_000_000) / 1_000)
}

/// Render the blame breakdown: per-component p50/p95/p99/max plus share
/// of total charged time, then the `top` slowest requests with their
/// full paths. Deterministic and byte-stable: every figure is integer
/// nanoseconds formatted as fixed-point milliseconds.
pub fn render_critical_path(events: &[TraceEvent], top: usize) -> String {
    let paths = critical_paths(events);
    let mut out = String::new();
    out.push_str(&format!(
        "critical-path blame over {} completed reads\n\n",
        paths.len()
    ));
    if paths.is_empty() {
        return out;
    }

    let mut grand_total = 0u64;
    let mut per_comp: Vec<Vec<u64>> = vec![Vec::with_capacity(paths.len()); COMPONENTS.len()];
    let mut comp_sum = [0u64; 9];
    let mut hidden: Vec<u64> = Vec::with_capacity(paths.len());
    let mut totals: Vec<u64> = Vec::with_capacity(paths.len());
    for p in &paths {
        grand_total += p.total_ns();
        for (i, &ns) in p.legs.iter().enumerate() {
            per_comp[i].push(ns);
            comp_sum[i] += ns;
        }
        hidden.push(p.overlap_hidden_ns);
        totals.push(p.total_ns());
    }
    for v in per_comp.iter_mut() {
        v.sort_unstable();
    }
    hidden.sort_unstable();
    totals.sort_unstable();

    out.push_str(&format!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>8}\n",
        "component", "p50 ms", "p95 ms", "p99 ms", "max ms", "share %"
    ));
    for (i, name) in COMPONENTS.iter().enumerate() {
        let v = &per_comp[i];
        // Tenths of a percent in integer arithmetic: byte-stable.
        let share = (comp_sum[i] * 1000).checked_div(grand_total).unwrap_or(0);
        out.push_str(&format!(
            "{:<14} {:>10} {:>10} {:>10} {:>10} {:>7}.{}\n",
            name,
            ms(pct(v, 50)),
            ms(pct(v, 95)),
            ms(pct(v, 99)),
            ms(*v.last().unwrap_or(&0)),
            share / 10,
            share % 10,
        ));
    }
    out.push_str(&format!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>8}\n",
        "total",
        ms(pct(&totals, 50)),
        ms(pct(&totals, 95)),
        ms(pct(&totals, 99)),
        ms(*totals.last().unwrap_or(&0)),
        "100.0",
    ));
    out.push_str(&format!(
        "\noverlap-hidden disk time (bought by RAID parallelism, not in the sum): p50 {} ms  max {} ms\n",
        ms(pct(&hidden, 50)),
        ms(*hidden.last().unwrap_or(&0)),
    ));

    // Top-K exemplars: slowest first, request id breaking ties so the
    // listing is a total order.
    let mut slowest: Vec<&CriticalPath> = paths.iter().collect();
    slowest.sort_by_key(|p| (std::cmp::Reverse(p.total_ns()), p.req));
    out.push_str(&format!(
        "\ntop {} slowest requests:\n",
        top.min(slowest.len())
    ));
    for p in slowest.iter().take(top) {
        out.push_str(&format!(
            "req {:<6} total {} ms  offset={} len={} faults={} hidden={} ms\n",
            p.req,
            ms(p.total_ns()),
            p.offset,
            p.len,
            p.faults,
            ms(p.overlap_hidden_ns),
        ));
        let path: Vec<String> = COMPONENTS
            .iter()
            .zip(p.legs.iter())
            .map(|(name, &ns)| format!("{name} {}", ms(ns)))
            .collect();
        out.push_str(&format!("  {}\n", path.join(" | ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_sim::{ev, EventBody, SimDuration};

    fn mk(t_us: u64, body: EventBody) -> TraceEvent {
        TraceEvent {
            time: SimTime::ZERO + SimDuration::from_micros(t_us),
            track: body.track,
            kind: body.kind,
            req: body.req,
            a: body.a,
            b: body.b,
        }
    }

    /// A full demand-read event chain for `req`, offset 0, 64 KiB.
    fn demand_read(req: ReqId, base_us: u64) -> Vec<TraceEvent> {
        vec![
            mk(
                base_us,
                ev(Track::Cn(0), EventKind::ReadStart, req, 0, 65536),
            ),
            mk(
                base_us + 1,
                ev(Track::Cn(0), EventKind::ArtSubmit, req, 0, 0),
            ),
            mk(
                base_us + 3,
                ev(Track::Cn(0), EventKind::ArtStart, req, 0, 0),
            ),
            mk(
                base_us + 4,
                ev(Track::Node(0), EventKind::NetTx, req, 100, 4),
            ),
            mk(
                base_us + 10,
                ev(Track::Node(4), EventKind::NetRx, req, 100, 0),
            ),
            mk(
                base_us + 12,
                ev(Track::Ion(0), EventKind::ServeStart, req, 0, 65536),
            ),
            mk(
                base_us + 15,
                ev(Track::Disk(0), EventKind::DiskStart, req, 0, 32768),
            ),
            mk(
                base_us + 16,
                ev(Track::Disk(1), EventKind::DiskStart, req, 32768, 32768),
            ),
            mk(
                base_us + 40,
                ev(Track::Disk(0), EventKind::DiskDone, req, 0, 32768),
            ),
            mk(
                base_us + 45,
                ev(Track::Disk(1), EventKind::DiskDone, req, 32768, 32768),
            ),
            mk(
                base_us + 47,
                ev(Track::Ion(0), EventKind::ServeDone, req, 0, 65536),
            ),
            mk(
                base_us + 48,
                ev(Track::Node(4), EventKind::NetTx, req, 65636, 0),
            ),
            mk(
                base_us + 60,
                ev(Track::Node(0), EventKind::NetRx, req, 65636, 4),
            ),
            mk(
                base_us + 62,
                ev(Track::Cn(0), EventKind::ReadDone, req, 0, 65536),
            ),
        ]
    }

    #[test]
    fn legs_sum_exactly_to_total() {
        let evs = demand_read(1, 100);
        let paths = critical_paths(&evs);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.legs.iter().sum::<u64>(), p.total_ns());
        assert_eq!(p.total_ns(), 62_000);
        // Spot-check the chain: client 1 µs, art-queue 2 µs, mesh 7 µs.
        assert_eq!(p.legs[0], 1_000);
        assert_eq!(p.legs[1], 2_000);
        assert_eq!(p.legs[2], 7_000);
    }

    #[test]
    fn overlap_hidden_counts_member_parallelism() {
        let paths = critical_paths(&demand_read(1, 0));
        // Envelope 15→45 µs = 30 µs; member busy 25 + 29 = 54 µs.
        assert_eq!(paths[0].overlap_hidden_ns, 54_000 - 30_000);
    }

    #[test]
    fn missing_milestones_collapse_to_zero_legs() {
        // A cache-hit read that never leaves the client.
        let evs = vec![
            mk(0, ev(Track::Cn(0), EventKind::ReadStart, 9, 0, 4096)),
            mk(5, ev(Track::Cn(0), EventKind::ReadDone, 9, 0, 4096)),
        ];
        let paths = critical_paths(&evs);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.legs.iter().sum::<u64>(), 5_000);
        // Everything lands on client-finish; interior legs are zero.
        assert_eq!(p.legs[8], 5_000);
        assert_eq!(p.legs[..8].iter().sum::<u64>(), 0);
    }

    #[test]
    fn retried_request_yields_one_well_formed_path() {
        // A failover mid-read: a first server leg dies, a retry lands on
        // a second I/O node. The path must stay monotone and exact.
        let mut evs = vec![
            mk(0, ev(Track::Cn(0), EventKind::ReadStart, 5, 0, 65536)),
            mk(1, ev(Track::Cn(0), EventKind::ArtSubmit, 5, 0, 0)),
            mk(2, ev(Track::Cn(0), EventKind::ArtStart, 5, 0, 0)),
            mk(3, ev(Track::Node(0), EventKind::NetTx, 5, 100, 4)),
            mk(9, ev(Track::Node(4), EventKind::NetRx, 5, 100, 0)),
            // First attempt dies; a retry goes out.
            mk(200, ev(Track::Cn(0), EventKind::RpcRetry, 5, 1, 4)),
            mk(201, ev(Track::Sys, EventKind::ReplicaFailover, 5, 0, 1)),
            mk(202, ev(Track::Node(0), EventKind::NetTx, 5, 100, 5)),
            mk(210, ev(Track::Node(5), EventKind::NetRx, 5, 100, 0)),
            mk(212, ev(Track::Ion(1), EventKind::ServeStart, 5, 0, 65536)),
            mk(215, ev(Track::Disk(4), EventKind::DiskStart, 5, 0, 65536)),
            mk(240, ev(Track::Disk(4), EventKind::DiskDone, 5, 0, 65536)),
            mk(242, ev(Track::Ion(1), EventKind::ServeDone, 5, 0, 65536)),
            mk(243, ev(Track::Node(5), EventKind::NetTx, 5, 65636, 0)),
            mk(250, ev(Track::Node(0), EventKind::NetRx, 5, 65636, 5)),
            mk(252, ev(Track::Cn(0), EventKind::ReadDone, 5, 0, 65536)),
        ];
        evs.sort_by_key(|e| e.time);
        let paths = critical_paths(&evs);
        assert_eq!(paths.len(), 1, "retried request must yield one path");
        let p = &paths[0];
        assert_eq!(p.legs.iter().sum::<u64>(), p.total_ns());
        assert_eq!(p.faults, 2, "retry + failover must be counted");
        // The *last* request-leg arrival (the retry's) bounds the
        // mesh-request leg: dead first legs are absorbed, not orphaned.
        assert_eq!(p.legs[..3].iter().sum::<u64>(), 210_000);
    }

    #[test]
    fn render_is_deterministic() {
        let mut evs = demand_read(1, 0);
        evs.extend(demand_read(2, 500));
        evs.extend(demand_read(3, 900));
        let a = render_critical_path(&evs, 2);
        let b = render_critical_path(&evs, 2);
        assert_eq!(a, b);
        assert!(a.contains("critical-path blame over 3 completed reads"));
        assert!(a.contains("top 2 slowest requests:"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(pct(&v, 50), 50);
        assert_eq!(pct(&v, 95), 95);
        assert_eq!(pct(&v, 99), 99);
        assert_eq!(pct(&[7], 99), 7);
        assert_eq!(pct(&[], 50), 0);
    }
}
