//! Rendering and scalar export of the parallel kernel's self-profile.
//!
//! The numbers come from `paragon_sim::run_sharded_profiled` — host-side
//! wall-clock counters the kernel collects about *itself* (never about
//! the simulation, whose bytes stay worker-count-independent). They are
//! the observability ROADMAP item 1's scaling work needs: where epochs
//! go, how much of each worker's time is parked at barriers, how much
//! frame traffic the shard cut generates, and how often the calendar
//! queue re-buckets.
//!
//! `barrier_stall_frac`, `epochs`, `cross_shard_frames`, and
//! `calendar_rebuilds` are exported as `bench.kernel.*` scalars into
//! `BENCH_metrics.json`; the stall fraction is regression-gated with a
//! one-sided ceiling in `metrics_check`.

use paragon_metrics::Table;
use paragon_sim::KernelProfile;

use crate::names;

/// The profile's `bench.kernel.*` scalar exports, in declaration order.
pub fn kernel_scalars(p: &KernelProfile) -> Vec<(&'static str, f64)> {
    vec![
        (names::KERNEL_BARRIER_STALL_FRAC, p.barrier_stall_frac()),
        (names::KERNEL_EPOCHS, p.epochs() as f64),
        (
            names::KERNEL_EVENTS_PER_HOST_SEC,
            p.events_per_host_second(),
        ),
        (
            names::KERNEL_CROSS_SHARD_FRAMES,
            p.cross_shard_frames() as f64,
        ),
        (
            names::KERNEL_CALENDAR_REBUILDS,
            p.calendar_rebuilds() as f64,
        ),
    ]
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Human-readable kernel self-profile: a per-shard table, a per-worker
/// table, and the machine-level summary line.
pub fn render_kernel_profile(p: &KernelProfile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "kernel self-profile: {} shard(s) on {} worker(s), {} epochs, {:.0} events/s host, wall {} ms\n",
        p.shards,
        p.workers,
        p.epochs(),
        p.events_per_host_second(),
        ms(p.wall_ns),
    ));
    out.push_str(&format!(
        "barrier stall: {} ms total ({:.1}% of worker time); cross-shard frames: {}; calendar rebuilds: {}\n\n",
        ms(p.barrier_stall_ns()),
        p.barrier_stall_frac() * 100.0,
        p.cross_shard_frames(),
        p.calendar_rebuilds(),
    ));

    let mut shards = Table::new(
        "per-shard",
        &[
            "shard",
            "worker",
            "epochs",
            "events",
            "frames out",
            "frames in",
            "run ms",
            "cal rebuilds",
        ],
    );
    for s in &p.per_shard {
        shards.row(&[
            s.shard.to_string(),
            s.worker.to_string(),
            s.epochs.to_string(),
            s.events_processed.to_string(),
            s.frames_out.to_string(),
            s.frames_in.to_string(),
            ms(s.run_ns),
            s.calendar_rebuilds.to_string(),
        ]);
    }
    out.push_str(&shards.render());

    let mut workers = Table::new(
        "per-worker",
        &["worker", "events", "events/s", "stall ms", "busy ms"],
    );
    for w in &p.per_worker {
        let total = w.barrier_stall_ns + w.busy_ns;
        let evps = if total == 0 {
            0.0
        } else {
            w.events_processed as f64 * 1e9 / total as f64
        };
        workers.row(&[
            w.worker.to_string(),
            w.events_processed.to_string(),
            format!("{evps:.0}"),
            ms(w.barrier_stall_ns),
            ms(w.busy_ns),
        ]);
    }
    out.push('\n');
    out.push_str(&workers.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_sim::{ShardKernelProfile, WorkerKernelProfile};

    fn sample() -> KernelProfile {
        KernelProfile {
            shards: 2,
            workers: 2,
            wall_ns: 4_000_000,
            per_shard: vec![
                ShardKernelProfile {
                    shard: 0,
                    worker: 0,
                    epochs: 10,
                    events_processed: 1_000,
                    frames_out: 40,
                    frames_in: 38,
                    run_ns: 2_000_000,
                    calendar_rebuilds: 3,
                },
                ShardKernelProfile {
                    shard: 1,
                    worker: 1,
                    epochs: 10,
                    events_processed: 800,
                    frames_out: 38,
                    frames_in: 40,
                    run_ns: 1_500_000,
                    calendar_rebuilds: 2,
                },
            ],
            per_worker: vec![
                WorkerKernelProfile {
                    worker: 0,
                    barrier_stall_ns: 1_000_000,
                    busy_ns: 3_000_000,
                    events_processed: 1_000,
                },
                WorkerKernelProfile {
                    worker: 1,
                    barrier_stall_ns: 2_000_000,
                    busy_ns: 2_000_000,
                    events_processed: 800,
                },
            ],
        }
    }

    #[test]
    fn scalars_cover_every_names_constant() {
        let scalars = kernel_scalars(&sample());
        let keys: Vec<&str> = scalars.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            keys,
            vec![
                names::KERNEL_BARRIER_STALL_FRAC,
                names::KERNEL_EPOCHS,
                names::KERNEL_EVENTS_PER_HOST_SEC,
                names::KERNEL_CROSS_SHARD_FRAMES,
                names::KERNEL_CALENDAR_REBUILDS,
            ]
        );
        for (name, _) in &scalars {
            assert!(name.starts_with("bench.kernel."), "off-vocabulary {name}");
        }
    }

    #[test]
    fn stall_frac_and_rates_aggregate_correctly() {
        let p = sample();
        // 3 ms stall over 8 ms of summed worker time.
        assert!((p.barrier_stall_frac() - 0.375).abs() < 1e-12);
        assert_eq!(p.epochs(), 10);
        assert_eq!(p.cross_shard_frames(), 78);
        assert_eq!(p.calendar_rebuilds(), 5);
        // 1800 events over 4 ms of wall time.
        assert!((p.events_per_host_second() - 450_000.0).abs() < 1e-6);
    }

    #[test]
    fn render_mentions_every_section() {
        let out = render_kernel_profile(&sample());
        assert!(out.contains("kernel self-profile: 2 shard(s) on 2 worker(s)"));
        assert!(out.contains("per-shard"));
        assert!(out.contains("per-worker"));
        assert!(out.contains("calendar rebuilds: 5"));
    }
}
