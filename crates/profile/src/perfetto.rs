//! Chrome-trace / Perfetto JSON export of a flight recording.
//!
//! The output is the venerable Chrome "JSON trace event" format, which
//! ui.perfetto.dev (and `chrome://tracing`) opens directly: one process,
//! one named thread lane per trace [`Track`] (compute nodes, I/O nodes,
//! spindles, mesh nodes, the service node), duration slices (`"ph":"X"`)
//! for paired start/done events, instants for everything else, flow
//! arrows stitching a request's legs across lanes, and counter tracks
//! (`"ph":"C"`) from the telemetry sampler's series.
//!
//! Hand-rolled like every other serializer in the workspace (hermetic —
//! no serde), and deliberately byte-stable: lanes are sorted by the
//! `Track` ordering, events are emitted in trace order, floats never
//! enter timestamps (`ts`/`dur` are integer-nanosecond values printed as
//! fixed-point microseconds), so equal recordings yield equal files.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use paragon_metrics::MetricsSnapshot;
use paragon_sim::{EventKind, ReqId, TraceEvent, Track};

/// Slice name for a paired start kind, or `None` if `kind` is an
/// instant. Done kinds map to the same name as their start.
fn pair_name(kind: EventKind) -> Option<(&'static str, bool)> {
    // (name, is_start)
    match kind {
        EventKind::ReadStart => Some(("read", true)),
        EventKind::ReadDone => Some(("read", false)),
        EventKind::WriteStart => Some(("write", true)),
        EventKind::WriteDone => Some(("write", false)),
        EventKind::ArtStart => Some(("art", true)),
        EventKind::ArtDone => Some(("art", false)),
        EventKind::ServeStart => Some(("serve", true)),
        EventKind::ServeDone => Some(("serve", false)),
        EventKind::DiskStart => Some(("disk", true)),
        EventKind::DiskDone => Some(("disk", false)),
        _ => None,
    }
}

/// Integer nanoseconds as fixed-point microseconds (the format's `ts`
/// unit), e.g. `1234567 → "1234.567"`. Exact; no float ever rounds.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Export `events` (plus optional telemetry `counters`) as Chrome-trace
/// JSON. The result opens directly in ui.perfetto.dev.
pub fn export_perfetto(events: &[TraceEvent], counters: Option<&MetricsSnapshot>) -> String {
    let mut lanes: Vec<Track> = Vec::new();
    for e in events {
        if let Err(i) = lanes.binary_search(&e.track) {
            lanes.insert(i, e.track);
        }
    }
    let tid = |t: Track| lanes.binary_search(&t).map(|i| i + 1).unwrap_or(0);

    let mut body: Vec<String> = Vec::new();
    body.push(
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"paragon\"}}"
            .to_string(),
    );
    for (i, lane) in lanes.iter().enumerate() {
        body.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{lane}\"}}}}",
            i + 1
        ));
        body.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{0},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{0}}}}}",
            i + 1
        ));
    }

    // FIFO-pair start/done events per (track, request, slice name); a
    // done without an open start (trace-cap truncation) degrades to an
    // instant rather than being dropped.
    let mut open: BTreeMap<(Track, ReqId, &'static str), Vec<u64>> = BTreeMap::new();
    // Flow stitching: how many net legs each request has in total, and
    // how many we have emitted so far — the first is a flow start, the
    // last a flow end, the rest steps.
    let mut net_total: BTreeMap<ReqId, u32> = BTreeMap::new();
    for e in events {
        if e.req != 0 && matches!(e.kind, EventKind::NetTx | EventKind::NetRx) {
            *net_total.entry(e.req).or_insert(0) += 1;
        }
    }
    let mut net_seen: BTreeMap<ReqId, u32> = BTreeMap::new();

    for e in events {
        let t = tid(e.track);
        let ns = e.time.as_nanos();
        match pair_name(e.kind) {
            Some((name, true)) => {
                open.entry((e.track, e.req, name)).or_default().push(ns);
            }
            Some((name, false)) => {
                let started = open
                    .get_mut(&(e.track, e.req, name))
                    .and_then(|v| if v.is_empty() { None } else { Some(v.remove(0)) });
                match started {
                    Some(s) => body.push(format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{t},\"ts\":{},\"dur\":{},\"name\":\"{name}\",\"cat\":\"pfs\",\"args\":{{\"req\":{},\"a\":{},\"b\":{}}}}}",
                        us(s),
                        us(ns - s),
                        e.req,
                        e.a,
                        e.b
                    )),
                    None => body.push(format!(
                        "{{\"ph\":\"i\",\"pid\":1,\"tid\":{t},\"ts\":{},\"name\":\"{}\",\"cat\":\"pfs\",\"s\":\"t\",\"args\":{{\"req\":{},\"a\":{},\"b\":{}}}}}",
                        us(ns),
                        e.kind.as_str(),
                        e.req,
                        e.a,
                        e.b
                    )),
                }
            }
            None => body.push(format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{t},\"ts\":{},\"name\":\"{}\",\"cat\":\"pfs\",\"s\":\"t\",\"args\":{{\"req\":{},\"a\":{},\"b\":{}}}}}",
                us(ns),
                e.kind.as_str(),
                e.req,
                e.a,
                e.b
            )),
        }
        // One flow arrow per request, threaded through its mesh legs.
        if e.req != 0 && matches!(e.kind, EventKind::NetTx | EventKind::NetRx) {
            let total = net_total.get(&e.req).copied().unwrap_or(0);
            let seen = net_seen.entry(e.req).or_insert(0);
            *seen += 1;
            let ph = if *seen == 1 {
                "s"
            } else if *seen == total {
                "f"
            } else {
                "t"
            };
            let bp = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
            body.push(format!(
                "{{\"ph\":\"{ph}\",\"pid\":1,\"tid\":{t},\"ts\":{},\"id\":{},\"name\":\"req\",\"cat\":\"flow\"{bp}}}",
                us(ns),
                e.req
            ));
        }
    }

    // Counter tracks from the telemetry sampler, one per gauge series,
    // in BTreeMap (name) order.
    if let Some(snap) = counters {
        for (name, vals) in &snap.series {
            for (i, &v) in vals.iter().enumerate() {
                let Some(&ts) = snap.times_ns.get(i) else {
                    break;
                };
                body.push(format!(
                    "{{\"ph\":\"C\",\"pid\":1,\"ts\":{},\"name\":\"{name}\",\"args\":{{\"value\":{v}}}}}",
                    us(ts)
                ));
            }
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, line) in body.iter().enumerate() {
        out.push_str(line);
        if i + 1 < body.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let _ = writeln!(out, "]}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_sim::{ev, EventBody, SimDuration, SimTime};

    fn mk(t_us: u64, body: EventBody) -> TraceEvent {
        TraceEvent {
            time: SimTime::ZERO + SimDuration::from_micros(t_us),
            track: body.track,
            kind: body.kind,
            req: body.req,
            a: body.a,
            b: body.b,
        }
    }

    fn sample() -> Vec<TraceEvent> {
        vec![
            mk(1, ev(Track::Cn(0), EventKind::ReadStart, 1, 0, 4096)),
            mk(2, ev(Track::Node(0), EventKind::NetTx, 1, 100, 4)),
            mk(9, ev(Track::Node(4), EventKind::NetRx, 1, 100, 0)),
            mk(10, ev(Track::Ion(0), EventKind::ServeStart, 1, 0, 4096)),
            mk(12, ev(Track::Disk(0), EventKind::DiskStart, 1, 0, 4096)),
            mk(30, ev(Track::Disk(0), EventKind::DiskDone, 1, 0, 4096)),
            mk(31, ev(Track::Ion(0), EventKind::ServeDone, 1, 0, 4096)),
            mk(40, ev(Track::Cn(0), EventKind::ReadDone, 1, 0, 4096)),
        ]
    }

    #[test]
    fn export_is_valid_json_and_byte_stable() {
        let evs = sample();
        let a = export_perfetto(&evs, None);
        let b = export_perfetto(&evs, None);
        assert_eq!(a, b);
        paragon_metrics::Json::parse(&a).expect("export must be valid JSON");
    }

    #[test]
    fn paired_events_become_duration_slices() {
        let out = export_perfetto(&sample(), None);
        assert!(out.contains("\"ph\":\"X\""), "no duration slices: {out}");
        assert!(out.contains("\"name\":\"disk\""));
        // The disk slice: 12 µs start, 18 µs duration.
        assert!(out.contains("\"ts\":12.000,\"dur\":18.000"), "{out}");
    }

    #[test]
    fn flows_stitch_request_legs() {
        let out = export_perfetto(&sample(), None);
        assert!(out.contains("\"ph\":\"s\""), "missing flow start");
        assert!(out.contains("\"ph\":\"f\""), "missing flow end");
    }

    #[test]
    fn every_lane_gets_a_thread_name() {
        let out = export_perfetto(&sample(), None);
        for lane in ["cn0", "node0", "node4", "ion0", "disk0"] {
            assert!(
                out.contains(&format!("\"args\":{{\"name\":\"{lane}\"}}")),
                "missing lane {lane}"
            );
        }
    }

    #[test]
    fn counter_series_become_counter_events() {
        let mut snap = MetricsSnapshot {
            phase_start_ns: 0,
            phase_end_ns: 2_000,
            times_ns: vec![1_000, 2_000],
            series: Default::default(),
            counters: Default::default(),
            hists: Default::default(),
        };
        snap.series.insert("disk.queue".to_string(), vec![1.0, 2.5]);
        let out = export_perfetto(&sample(), Some(&snap));
        assert!(out.contains("\"ph\":\"C\""));
        assert!(out.contains("\"name\":\"disk.queue\",\"args\":{\"value\":2.5}"));
    }

    #[test]
    fn unpaired_done_degrades_to_instant() {
        // Trace-cap truncation: a done with no recorded start.
        let evs = vec![mk(5, ev(Track::Disk(0), EventKind::DiskDone, 3, 0, 512))];
        let out = export_perfetto(&evs, None);
        assert!(!out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"name\":\"disk-done\""));
    }
}
