//! # paragon-profile — critical paths, timelines, and kernel self-profiling
//!
//! Three observability layers over the reproduction, all derived from
//! artifacts the rest of the workspace already produces:
//!
//! * [`critical`] reconstructs each request's span DAG from the flight
//!   recorder and charges every nanosecond of its end-to-end latency to
//!   exactly one pipeline component — integer-exact blame, so the
//!   per-component sums reproduce the total with no float drift.
//! * [`perfetto`] renders a recording (plus optional telemetry counter
//!   series) as Chrome-trace JSON: one thread lane per CN/ION/spindle,
//!   duration slices for paired start/done events, flow arrows stitching
//!   a request's legs across lanes. Open the file in ui.perfetto.dev.
//! * [`kernel`] reports what the sharded parallel kernel measured about
//!   itself (see `paragon_sim::KernelProfile`): epochs, barrier stall,
//!   cross-shard frame volume, events per host second, calendar churn.
//!
//! Everything here is read-only over deterministic inputs, so the
//! critical-path and timeline outputs are byte-identical across
//! `--workers` counts. Only the kernel self-profile contains host time,
//! and it is collected exclusively by the `run_sharded_profiled` entry
//! point — plain runs never read the host clock.

pub mod critical;
pub mod kernel;
pub mod perfetto;

/// Names of the `bench.kernel.*` scalars the self-profiler exports into
/// `BENCH_metrics.json`. Declared once so the bench harness, the
/// regression gate, and the renderer cannot drift apart; `paragon-lint`
/// (rule X1) checks that every constant here is actually exported and
/// gated somewhere in the workspace.
pub mod names {
    /// Fraction of summed worker host time parked at epoch barriers.
    pub const KERNEL_BARRIER_STALL_FRAC: &str = "bench.kernel.barrier_stall_frac";
    /// Conservative-lookahead epochs driven to quiescence.
    pub const KERNEL_EPOCHS: &str = "bench.kernel.epochs";
    /// Virtual events fired per host second, machine-wide.
    pub const KERNEL_EVENTS_PER_HOST_SEC: &str = "bench.kernel.events_per_host_second";
    /// Cross-shard frames handed over at epoch barriers.
    pub const KERNEL_CROSS_SHARD_FRAMES: &str = "bench.kernel.cross_shard_frames";
    /// Calendar-queue rebuilds summed over every shard world.
    pub const KERNEL_CALENDAR_REBUILDS: &str = "bench.kernel.calendar_rebuilds";
}

pub use critical::{critical_paths, render_critical_path, CriticalPath, COMPONENTS};
pub use kernel::{kernel_scalars, render_kernel_profile};
pub use perfetto::export_perfetto;
