//! The experiment driver: build a machine, lay the file(s) out, run one
//! synthetic SPMD program per compute node, and measure what the paper
//! measures.
//!
//! Timeline of a run: **setup** (create + populate files — simulated disk
//! time passes but is not measured, exactly like preparing a testbed
//! before starting the clock), then the **measured phase** (all node
//! programs start together; the collective is complete when the slowest
//! node finishes its last read).

use std::cell::RefCell;
use std::rc::Rc;

use std::cell::Cell;

use paragon_core::{PrefetchGauges, PrefetchStats, PrefetchingFile};
use paragon_machine::{Machine, MachineConfig};
use paragon_pfs::{
    pattern_byte, pattern_slice, rebuild_after_crash, IoMode, OpenOptions, ParallelFs, PfsFile,
    PfsFileId, RebuildConfig, RebuildStats, Redundancy,
};
use paragon_sim::{
    ev, run_sharded, run_sharded_profiled, EventKind, KernelProfile, ShardPlan, Sim, SimDuration,
    SimTime, Track,
};

use crate::config::{AccessPattern, ExperimentConfig, FaultSpec};
use crate::result::{NodeResult, RunResult};
use crate::telemetry::{names, Telemetry};

/// Where the driver task deposits its measurements for the host caller.
pub(crate) type DriverOutput = Rc<RefCell<Option<(Vec<NodeResult>, SimDuration)>>>;

/// Run one experiment to completion and return its measurements.
///
/// Configs that resolve to more than one shard world (full-machine
/// EXT-SCALING shapes, or an explicit `shards` override) run on the
/// parallel kernel; everything else runs the classic single-world path
/// through [`ShardPlan::serial`], byte-for-byte what a bare `Sim::run`
/// would produce.
pub fn run(cfg: &ExperimentConfig) -> RunResult {
    cfg.validate();
    if cfg.resolved_shards() > 1 {
        return crate::shard::run_sharded_experiment(cfg);
    }
    let mut out = run_sharded(
        &ShardPlan::serial(cfg.seed),
        |_, sim| build_serial(cfg, sim),
        |_, sim, w| finish_serial(cfg, sim, w),
    );
    out.pop().expect("serial plan yields exactly one world")
}

/// [`run`], plus the parallel kernel's self-profile: host-side counters
/// (epochs, barrier stall, cross-shard frame volume, events per host
/// second, calendar churn) the kernel collects about itself.
///
/// The simulation's bytes are identical to an unprofiled [`run`] —
/// profiling is write-only from the simulation's point of view — but the
/// profile's `_ns` fields are wall-clock and vary host to host, which is
/// why this is a separate entry point rather than an
/// [`ExperimentConfig`] field: a config describes a deterministic
/// experiment, and no setting of it may imply host-clock reads.
pub fn run_profiled(cfg: &ExperimentConfig) -> (RunResult, KernelProfile) {
    cfg.validate();
    if cfg.resolved_shards() > 1 {
        return crate::shard::run_sharded_experiment_profiled(cfg);
    }
    let (mut out, prof) = run_sharded_profiled(
        &ShardPlan::serial(cfg.seed),
        |_, sim| build_serial(cfg, sim),
        |_, sim, w| finish_serial(cfg, sim, w),
    );
    (
        out.pop().expect("serial plan yields exactly one world"),
        prof,
    )
}

/// The serial world's live state between build and harvest — the
/// single-shard analogue of `shard::World`.
struct SerialWorld {
    machine: Rc<Machine>,
    telemetry: Option<Rc<Telemetry>>,
    out: DriverOutput,
    rebuild_out: Rc<RefCell<Option<RebuildStats>>>,
    rebuild_pending: Rc<Cell<u64>>,
    replica_failovers: Rc<Cell<u64>>,
    replica_reads: Rc<Cell<u64>>,
    verify_failures: Rc<Cell<u64>>,
}

fn build_serial(cfg: &ExperimentConfig, sim: &Sim) -> SerialWorld {
    if cfg.trace_cap > 0 {
        sim.tracer().arm(cfg.trace_cap);
    }
    let mut calib = cfg.calib.clone();
    if cfg.redundancy == Redundancy::ParityRaid {
        // Parity redundancy is a per-I/O-node RAID property; selecting it
        // at the mount level forces the calibration's parity member on.
        calib.raid_parity = true;
    }
    let machine = Rc::new(Machine::new(
        sim,
        MachineConfig {
            compute_nodes: cfg.compute_nodes,
            io_nodes: cfg.io_nodes,
            calib,
        },
    ));
    let pfs = ParallelFs::new_with_redundancy(machine.clone(), cfg.redundancy);
    let telemetry = cfg
        .metrics_cadence
        .map(|cadence| Telemetry::new(sim, &machine, &pfs, cadence));
    // Node programs always get cells to poke; without telemetry they are
    // private dummies and the pokes are inert (no events, no RNG).
    let (in_io, prefetch_gauges) = match &telemetry {
        Some(t) => (t.in_io.clone(), t.prefetch.clone()),
        None => (Rc::new(Cell::new(0)), PrefetchGauges::default()),
    };
    let verify_cell: Rc<Cell<u64>> = Rc::new(Cell::new(0));
    let verify_cell2 = verify_cell.clone();

    let out: DriverOutput = Rc::new(RefCell::new(None));
    let out2 = out.clone();
    let rebuild_out: Rc<RefCell<Option<RebuildStats>>> = Rc::new(RefCell::new(None));
    let rebuild_out2 = rebuild_out.clone();
    let cfg2 = cfg.clone();
    let sim2 = sim.clone();
    let machine2 = machine.clone();
    let telemetry2 = telemetry.clone();
    let replica_failovers = pfs.replica_failovers_cell();
    let replica_reads = pfs.replica_reads_cell();
    let rebuild_pending = pfs.rebuild_pending_cell();
    sim.spawn_named("experiment-driver", async move {
        let files = setup_files(&pfs, &cfg2).await;
        // Setup never draws a fault: the plan is configured and armed
        // only once the files exist, right at the measured phase's start.
        arm_faults(&sim2, &machine2, &cfg2.faults);
        if let (Redundancy::Replicated { .. }, Some((ion, from, _))) =
            (cfg2.redundancy, cfg2.faults.ion_crash)
        {
            // Recovery coordinator: wakes when the node drops and
            // re-replicates every slot that lost a copy, token-bucket
            // throttled, through the normal RPC path — while the
            // foreground programs keep reading.
            let sim3 = sim2.clone();
            let pfs3 = pfs.clone();
            let deposit = rebuild_out2.clone();
            sim2.spawn_named("rebuild-coordinator", async move {
                sim3.sleep(from).await;
                let stats = rebuild_after_crash(&pfs3, ion, RebuildConfig::default())
                    .await
                    .expect("online re-replication failed");
                *deposit.borrow_mut() = Some(stats);
            });
        }
        let t0 = sim2.now();
        // Timeline marker: the measured phase starts here; everything
        // before it is testbed setup the paper's clock never sees.
        sim2.emit(|| {
            ev(
                Track::Sys,
                EventKind::Mark,
                0,
                cfg2.compute_nodes as u64,
                cfg2.io_nodes as u64,
            )
        });
        if let Some(t) = &telemetry2 {
            t.begin();
        }
        let mut handles = Vec::with_capacity(cfg2.compute_nodes);
        for rank in 0..cfg2.compute_nodes {
            let file = files[rank.min(files.len() - 1)];
            let ctx = NodeCtx {
                sim: sim2.clone(),
                pfs: pfs.clone(),
                cfg: cfg2.clone(),
                rank,
                file,
                t0,
                in_io: in_io.clone(),
                prefetch_gauges: prefetch_gauges.clone(),
                verify_failures: verify_cell2.clone(),
            };
            handles.push(sim2.spawn_named("node-program", node_program(ctx)));
        }
        let mut per_node = Vec::with_capacity(handles.len());
        for h in handles {
            per_node.push(h.await);
        }
        if let Some(t) = &telemetry2 {
            t.end();
        }
        let elapsed = sim2.now().since(t0);
        *out2.borrow_mut() = Some((per_node, elapsed));
    });
    SerialWorld {
        machine,
        telemetry,
        out,
        rebuild_out,
        rebuild_pending,
        replica_failovers,
        replica_reads,
        verify_failures: verify_cell,
    }
}

fn finish_serial(cfg: &ExperimentConfig, sim: &Sim, w: SerialWorld) -> RunResult {
    let report = sim.report();
    let trace = sim.tracer().events();
    // Free the world: parked server loops otherwise keep the whole
    // machine (including megabytes of simulated disk contents) alive via
    // an Rc cycle — fatal when a bench harness runs thousands of worlds.
    sim.shutdown();
    let (per_node, elapsed) = w.out.borrow_mut().take().unwrap_or_else(|| {
        panic!(
            "experiment deadlocked; pending: {:?}",
            sim.pending_task_labels()
        )
    });

    let total_bytes = per_node.iter().map(|n| n.bytes).sum();
    let mut prefetch = PrefetchStats::default();
    for n in &per_node {
        if let Some(p) = &n.prefetch {
            prefetch.merge(p);
        }
    }
    let mut verify_failures = w.verify_failures.get();
    if cfg.verify_data {
        // Also fsck every I/O node's file system after the run.
        for i in 0..cfg.io_nodes {
            let problems = w.machine.ufs(i).check();
            if !problems.is_empty() {
                eprintln!("fsck failures on I/O node {i}: {problems:?}");
                verify_failures += problems.len() as u64;
            }
        }
    }
    let mut disk = paragon_disk::DiskStats::default();
    let mut raid = paragon_disk::RaidStats::default();
    for i in 0..cfg.io_nodes {
        let s = w.machine.raid(i).stats();
        disk.requests += s.requests;
        disk.bytes_read += s.bytes_read;
        disk.bytes_written += s.bytes_written;
        disk.busy += s.busy;
        disk.sequential_hits += s.sequential_hits;
        disk.near_seeks += s.near_seeks;
        disk.far_seeks += s.far_seeks;
        disk.max_queue_depth = disk.max_queue_depth.max(s.max_queue_depth);
        let r = w.machine.raid(i).raid_stats();
        raid.reconstructed_reads += r.reconstructed_reads;
        raid.reconstructed_bytes += r.reconstructed_bytes;
        raid.parity_rmws += r.parity_rmws;
    }
    let metrics = w.telemetry.map(|t| {
        // Distributions are recorded post-run from the per-request
        // timers the node programs already keep.
        for n in &per_node {
            for &dt in &n.read_times {
                t.record(names::READ_TIME_S, dt.as_secs_f64());
            }
        }
        t.snapshot()
    });
    let rebuild = w.rebuild_out.borrow_mut().take();
    RunResult {
        read_errors: per_node.iter().map(|n| n.read_errors).sum(),
        per_node,
        elapsed,
        total_bytes,
        prefetch,
        prefetch_enabled: cfg.prefetch.is_some(),
        trace_hash: report.trace_hash,
        verify_failures,
        fault: sim.faults().stats(),
        raid,
        disk,
        rebuild,
        rebuild_pending: w.rebuild_pending.get(),
        replica_failovers: w.replica_failovers.get(),
        replica_reads: w.replica_reads.get(),
        trace,
        metrics,
    }
}

/// Configure and arm the simulation's fault plan from `spec`. The service
/// node is always exempted: shared-pointer operations are not idempotent,
/// so the client never retries them and a lost one would wedge the run.
pub(crate) fn arm_faults(sim: &Sim, machine: &Machine, spec: &FaultSpec) {
    if spec.is_noop() {
        return;
    }
    let faults = sim.faults();
    faults.protect_node(machine.service_node().0 as u16);
    if spec.disk_error_pm > 0 {
        faults.set_disk_error_rate(spec.disk_error_pm);
    }
    if let Some((ion, member)) = spec.dead_member {
        let track = machine
            .raid(ion)
            .member_track_index(member)
            .unwrap_or_else(|| panic!("I/O node {ion} has no flight-recorder tracks"));
        faults.kill_disk(track);
    }
    if spec.mesh_drop_pm + spec.mesh_dup_pm + spec.mesh_delay_pm > 0 {
        faults.set_mesh_faults(
            spec.mesh_drop_pm,
            spec.mesh_dup_pm,
            spec.mesh_delay_pm,
            spec.mesh_delay,
        );
    }
    if let Some((ion, from, until)) = spec.ion_crash {
        assert!(from < until, "empty I/O-node crash window");
        let node = machine.io_node(ion).0 as u16;
        let now = sim.now();
        faults.crash_node(node, now + from, now + until);
        // Timeline markers so trace analysis can see the window edges.
        // The node's return is an *explicit* state change: the marker
        // task removes the crash window from the plan and records the
        // degraded duration it measured, rather than letting the window
        // silently age out at its configured bound.
        let marker_sim = sim.clone();
        let marker_faults = faults.clone();
        sim.spawn_named("fault-window-marker", async move {
            marker_sim.sleep(from).await;
            marker_sim.emit(|| ev(Track::Sys, EventKind::FaultNodeDown, 0, node as u64, 0));
            marker_sim.sleep(until - from).await;
            marker_sim.emit(|| ev(Track::Sys, EventKind::FaultNodeUp, 0, node as u64, 0));
            let degraded = marker_faults
                .recover_node(node, marker_sim.now())
                .unwrap_or(SimDuration::ZERO);
            marker_sim.emit(|| {
                ev(
                    Track::Sys,
                    EventKind::FaultNodeRecovered,
                    0,
                    node as u64,
                    degraded.as_nanos(),
                )
            });
        });
    }
    faults.arm();
}

/// Create and populate the run's file(s); returns one id per node for
/// separate-files runs, else a single shared id.
pub(crate) async fn setup_files(pfs: &Rc<ParallelFs>, cfg: &ExperimentConfig) -> Vec<PfsFileId> {
    let attrs = cfg.layout.attrs(cfg.stripe_unit);
    if cfg.separate_files {
        let mut files = Vec::with_capacity(cfg.compute_nodes);
        for rank in 0..cfg.compute_nodes {
            // PFS allocates each file's first stripe unit round-robin
            // over the group, so private files do not all start on the
            // same I/O node: rotate the group by rank.
            let mut file_attrs = attrs.clone();
            let rot = rank % file_attrs.group.len();
            file_attrs.group.rotate_left(rot);
            let id = pfs
                .create(&format!("/pfs/data.{rank}"), file_attrs)
                .await
                .expect("create failed");
            let seed = cfg.seed ^ (rank as u64).wrapping_mul(0x9e37);
            pfs.populate_with(id, cfg.file_size, |i| pattern_byte(seed, i))
                .await
                .expect("populate failed");
            files.push(id);
        }
        files
    } else {
        let id = pfs.create("/pfs/data", attrs).await.expect("create failed");
        let seed = cfg.seed;
        pfs.populate_with(id, cfg.file_size, |i| pattern_byte(seed, i))
            .await
            .expect("populate failed");
        vec![id]
    }
}

pub(crate) struct NodeCtx {
    pub(crate) sim: Sim,
    pub(crate) pfs: Rc<ParallelFs>,
    pub(crate) cfg: ExperimentConfig,
    pub(crate) rank: usize,
    pub(crate) file: PfsFileId,
    pub(crate) t0: SimTime,
    /// Telemetry gauge: nodes currently inside a read call.
    pub(crate) in_io: Rc<Cell<i64>>,
    /// Telemetry gauges shared by every prefetch buffer list.
    pub(crate) prefetch_gauges: PrefetchGauges,
    /// Data-verification failures observed by this world's node
    /// programs. World-local: serial runs own the only world; sharded
    /// runs harvest each world's counter once in `finish_world`, and
    /// each failure is observed by exactly one world, so the sum is
    /// exact either way.
    pub(crate) verify_failures: Rc<Cell<u64>>,
}

/// The demand-read side of one node's program: either a plain PFS handle
/// or the prefetching prototype wrapped around it.
// Both variants boxed: the handles carry whole stripe maps, so inline
// they would make every future that holds a `Reader` hundreds of bytes.
enum Reader {
    Plain(Box<PfsFile>),
    Prefetching(Box<PrefetchingFile>),
}

impl Reader {
    async fn read(&self, len: u32) -> Result<bytes::Bytes, paragon_pfs::PfsError> {
        match self {
            Reader::Plain(f) => f.read(len).await,
            Reader::Prefetching(pf) => pf.read(len).await,
        }
    }

    async fn read_at(&self, offset: u64, len: u32) -> Result<bytes::Bytes, paragon_pfs::PfsError> {
        match self {
            Reader::Plain(f) => {
                f.syscall().await;
                f.transfer_read(offset, len).await
            }
            Reader::Prefetching(pf) => pf.read_at(offset, len).await,
        }
    }

    async fn close(self) -> Option<PrefetchStats> {
        match self {
            Reader::Plain(_) => None,
            Reader::Prefetching(pf) => Some(pf.close().await),
        }
    }
}

pub(crate) async fn node_program(ctx: NodeCtx) -> NodeResult {
    let cfg = &ctx.cfg;
    let sz = cfg.request_size;
    let rounds = cfg.rounds_per_node();
    let (mode_rank, nprocs) = if cfg.separate_files {
        (0, 1)
    } else {
        (ctx.rank, cfg.compute_nodes)
    };
    let file = ctx
        .pfs
        .open_on(
            ctx.rank,
            mode_rank,
            nprocs,
            ctx.file,
            cfg.mode,
            OpenOptions {
                fast_path: cfg.fast_path,
            },
        )
        .expect("open failed");

    // Explicit-pattern reads partition the file by rank.
    let partition = cfg.file_size / nprocs as u64;
    let base = mode_rank as u64 * partition;
    let pattern_seed = if cfg.separate_files {
        cfg.seed ^ (ctx.rank as u64).wrapping_mul(0x9e37)
    } else {
        cfg.seed
    };

    let reader = match &cfg.prefetch {
        Some(pc) => {
            let pf = PrefetchingFile::new(file, pc.clone());
            pf.set_gauges(ctx.prefetch_gauges.clone());
            Reader::Prefetching(Box::new(pf))
        }
        None => Reader::Plain(Box::new(file)),
    };

    let mut rng = ctx.sim.rng(&format!("workload.rank{}", ctx.rank));
    let mut reads = 0u64;
    let mut read_errors = 0u64;
    let mut bytes = 0u64;
    let mut total = SimDuration::ZERO;
    let mut tmax = SimDuration::ZERO;
    let mut tmin = SimDuration::MAX;
    let mut read_times = Vec::new();

    // The per-read offsets the pattern dictates; `None` = mode-driven
    // (offset determined by the pointer machinery, possibly unknowable).
    let total_reads = match cfg.access {
        AccessPattern::Reread { passes } => rounds * passes as u64,
        _ => rounds,
    };
    for k in 0..total_reads {
        let planned: Option<u64> = match cfg.access {
            // The M_ASYNC benchmark reads the shared file as interleaved
            // records — the same disjoint pattern as M_RECORD, but with
            // no coordination or record bookkeeping at all (the mode
            // guarantees nothing, so the benchmark positions each read
            // itself). All other modes follow their pointer machinery.
            AccessPattern::ModeDriven if cfg.mode == IoMode::MAsync => {
                Some((k * nprocs as u64 + mode_rank as u64) * sz as u64)
            }
            AccessPattern::ModeDriven => None,
            AccessPattern::Strided { stride } => {
                Some(base + (k * stride) % partition.saturating_sub(sz as u64 - 1).max(1))
            }
            AccessPattern::Random => {
                let slots = (partition / sz as u64).max(1);
                Some(base + rng.range_u64(0..slots) * sz as u64)
            }
            AccessPattern::Reread { .. } => Some(base + (k % rounds) * sz as u64),
        };
        let before = ctx.sim.now();
        ctx.in_io.set(ctx.in_io.get() + 1);
        let result = match planned {
            None => reader.read(sz).await,
            Some(off) => reader.read_at(off, sz).await,
        };
        ctx.in_io.set(ctx.in_io.get() - 1);
        let dt = ctx.sim.now().since(before);
        let data = match result {
            Ok(data) => data,
            Err(e) => {
                // Under an injected fault a read can fail even after the
                // client's retries (e.g. a dead member without parity
                // cover). A real program would see EIO; the run records
                // the error and keeps going — never panics.
                if ctx.cfg.faults.is_noop() {
                    panic!("read failed with no faults injected: {e}");
                }
                read_errors += 1;
                if !cfg.delay.is_zero() && k + 1 < total_reads {
                    ctx.sim.sleep(cfg.delay).await;
                }
                continue;
            }
        };
        reads += 1;
        bytes += data.len() as u64;
        total += dt;
        tmax = tmax.max(dt);
        tmin = tmin.min(dt);
        read_times.push(dt);

        if cfg.verify_data {
            // Offsets are knowable for every pattern except the
            // arrival-ordered shared-pointer modes.
            let expect = match (planned, cfg.mode) {
                (Some(off), _) => Some(off),
                (None, IoMode::MRecord) | (None, IoMode::MSync) => {
                    Some((k * nprocs as u64 + mode_rank as u64) * sz as u64)
                }
                (None, IoMode::MGlobal) => Some(k * sz as u64),
                // M_ASYNC is always planned; arrival-ordered shared-
                // pointer modes have unknowable offsets.
                (None, _) => None,
            };
            if let Some(off) = expect {
                if data[..] != pattern_slice(pattern_seed, off, sz as usize)[..] {
                    ctx.verify_failures.set(ctx.verify_failures.get() + 1);
                }
            }
        }

        if !cfg.delay.is_zero() && k + 1 < total_reads {
            ctx.sim.sleep(cfg.delay).await;
        }
    }

    let prefetch = reader.close().await;
    NodeResult {
        rank: ctx.rank,
        reads,
        read_errors,
        bytes,
        elapsed: ctx.sim.now().since(ctx.t0),
        read_time_total: total,
        read_time_max: tmax,
        read_time_min: if reads == 0 { SimDuration::ZERO } else { tmin },
        read_times,
        prefetch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StripeLayout;
    use paragon_machine::Calibration;

    /// A small instant-calibration config for fast logic tests.
    fn tiny(mode: IoMode) -> ExperimentConfig {
        ExperimentConfig {
            seed: 7,
            compute_nodes: 4,
            io_nodes: 2,
            calib: Calibration::instant(),
            mode,
            fast_path: true,
            stripe_unit: 16 * 1024,
            layout: StripeLayout::Across { factor: 2 },
            request_size: 16 * 1024,
            file_size: 1 << 20,
            delay: SimDuration::ZERO,
            prefetch: None,
            access: AccessPattern::ModeDriven,
            separate_files: false,
            verify_data: true,
            trace_cap: 0,
            faults: FaultSpec::default(),
            redundancy: paragon_pfs::Redundancy::None,
            metrics_cadence: None,
            shards: None,
            workers: 1,
        }
    }

    #[test]
    fn m_record_run_reads_the_whole_file_correctly() {
        let r = run(&tiny(IoMode::MRecord));
        assert_eq!(r.total_bytes, 1 << 20);
        assert_eq!(r.verify_failures, 0);
        assert_eq!(r.per_node.len(), 4);
        for n in &r.per_node {
            assert_eq!(n.reads, 16);
        }
    }

    #[test]
    fn every_mode_runs_clean() {
        for mode in IoMode::all() {
            let r = run(&tiny(mode));
            assert_eq!(r.verify_failures, 0, "corruption under {mode}");
            assert!(r.total_bytes > 0);
        }
    }

    #[test]
    fn prefetch_run_is_correct_and_hits() {
        let cfg = tiny(IoMode::MRecord).with_prefetch();
        let r = run(&cfg);
        assert_eq!(r.verify_failures, 0);
        assert!(r.prefetch_enabled);
        assert!(
            r.prefetch.hits() > 0,
            "prefetch never hit: {:?}",
            r.prefetch
        );
    }

    #[test]
    fn identical_seeds_produce_identical_runs() {
        let a = run(&tiny(IoMode::MRecord));
        let b = run(&tiny(IoMode::MRecord));
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.elapsed, b.elapsed);
        // A structurally different run must hash differently. (A seed
        // change alone does not perturb the instant calibration: every
        // service time is zero regardless of RNG draws.)
        let c = run(&{
            let mut c = tiny(IoMode::MRecord);
            c.request_size /= 2;
            c
        });
        assert_ne!(a.trace_hash, c.trace_hash);
    }

    #[test]
    fn separate_files_partition_cleanly() {
        let mut cfg = tiny(IoMode::MAsync);
        cfg.separate_files = true;
        cfg.file_size = 256 * 1024; // per node
        let r = run(&cfg);
        assert_eq!(r.total_bytes, 4 * 256 * 1024);
        assert_eq!(r.verify_failures, 0);
    }

    #[test]
    fn random_access_pattern_is_deterministic_and_correct() {
        let mut cfg = tiny(IoMode::MAsync);
        cfg.access = AccessPattern::Random;
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.verify_failures, 0);
        assert_eq!(a.trace_hash, b.trace_hash);
    }

    #[test]
    fn reread_multiplies_delivered_bytes() {
        let mut cfg = tiny(IoMode::MAsync);
        cfg.access = AccessPattern::Reread { passes: 3 };
        let r = run(&cfg);
        assert_eq!(r.total_bytes, 3 << 20);
        assert_eq!(r.verify_failures, 0);
    }

    #[test]
    fn dead_member_with_parity_and_mesh_drops_stays_correct() {
        // The acceptance scenario: one dead RAID member (parity covers
        // it) plus 1% mesh message drops. Every read must still return
        // pattern-correct data — reconstruction serves the dead member,
        // the retry policy rides out the drops — with zero panics.
        let mut cfg = tiny(IoMode::MRecord);
        cfg.calib.raid_parity = true;
        cfg.faults.dead_member = Some((0, 0));
        cfg.faults.mesh_drop_pm = 10;
        cfg.trace_cap = 200_000;
        let r = run(&cfg);
        assert_eq!(r.verify_failures, 0, "corrupt data under faults");
        assert_eq!(r.read_errors, 0, "parity + retries must cover these faults");
        assert_eq!(r.total_bytes, 1 << 20);
        assert!(
            r.raid.reconstructed_reads > 0,
            "the dead member was never reconstructed: {:?}",
            r.raid
        );
        assert!(r.fault.disk_dead_hits > 0);
        assert!(r.fault.mesh_dropped > 0, "1% of many messages must drop");
        assert!(
            !crate::spans::fault_events(&r.trace).is_empty(),
            "fault events must reach the flight recorder"
        );
    }

    #[test]
    fn same_seed_fault_runs_are_byte_identical() {
        let mut cfg = tiny(IoMode::MRecord);
        cfg.calib.raid_parity = true;
        cfg.faults.dead_member = Some((1, 0));
        cfg.faults.mesh_drop_pm = 10;
        cfg.faults.mesh_dup_pm = 10;
        cfg.faults.disk_error_pm = 20;
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(
            a.trace_hash, b.trace_hash,
            "fault runs must be deterministic"
        );
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.fault.mesh_dropped, b.fault.mesh_dropped);
        assert_eq!(a.fault.disk_transients, b.fault.disk_transients);
    }

    #[test]
    fn prefetch_degrades_but_completes_under_disk_errors() {
        let clean = run(&tiny(IoMode::MRecord).with_prefetch());
        let mut cfg = tiny(IoMode::MRecord).with_prefetch();
        cfg.faults.disk_error_pm = 100; // 10% of disk reads fail
        let faulty = run(&cfg);
        // The run completes and surviving reads are pattern-correct.
        assert_eq!(faulty.verify_failures, 0);
        assert!(faulty.prefetch.faults > 0, "no prefetch ever hit a fault");
        // A faulted prefetch wastes its buffer; the demand read that
        // retries and serves the bytes anyway is credited as a
        // *recovered* hit, so the hit ratio holds while the waste and
        // recovery counters record the damage.
        assert!(
            faulty.prefetch.recovered > 0,
            "no faulted prefetch recovered"
        );
        assert!(
            faulty.prefetch.wasted > clean.prefetch.wasted,
            "faults must waste prefetch buffers: clean {} vs faulty {}",
            clean.prefetch.wasted,
            faulty.prefetch.wasted
        );
        assert!(
            faulty.prefetch.hit_ratio() <= clean.prefetch.hit_ratio(),
            "recovered hits must not inflate the ratio past clean: clean {:.2} vs faulty {:.2}",
            clean.prefetch.hit_ratio(),
            faulty.prefetch.hit_ratio()
        );
    }

    #[test]
    fn ion_crash_window_recovers_via_retries() {
        // Crash one I/O node for a slice of the measured phase. The
        // instant calibration's 60 s attempt timeout outlasts the window,
        // so every read eventually lands: the first attempt's request or
        // reply is dropped, a retry after the window succeeds.
        let mut cfg = tiny(IoMode::MRecord);
        cfg.faults.ion_crash = Some((0, SimDuration::ZERO, SimDuration::from_secs(30)));
        cfg.trace_cap = 200_000;
        let r = run(&cfg);
        assert_eq!(r.verify_failures, 0);
        assert_eq!(r.read_errors, 0, "retries must ride out the window");
        assert_eq!(r.total_bytes, 1 << 20);
        assert!(
            r.fault.node_down_drops > 0,
            "the window never dropped anything"
        );
        let evs = crate::spans::fault_events(&r.trace);
        assert!(
            evs.iter()
                .any(|e| e.kind == paragon_sim::EventKind::FaultNodeDown),
            "missing node-down marker"
        );
        assert!(
            evs.iter()
                .any(|e| e.kind == paragon_sim::EventKind::RpcRetry),
            "missing rpc-retry event"
        );
    }

    #[test]
    fn delays_extend_elapsed_time() {
        let mut cfg = tiny(IoMode::MRecord);
        cfg.delay = SimDuration::from_millis(10);
        let with_delay = run(&cfg);
        let without = run(&tiny(IoMode::MRecord));
        assert!(with_delay.elapsed > without.elapsed);
        // 16 reads → 15 delays of 10 ms each, minimum.
        assert!(with_delay.elapsed >= SimDuration::from_millis(150));
    }
}
