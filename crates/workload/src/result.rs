//! Run results.
//!
//! The paper's primary metric is the **read bandwidth seen by the
//! application**: total bytes read by all nodes, divided by the time a
//! compute node takes to complete all its read calls (the collective is
//! complete when the slowest node finishes). Per-request access times
//! (Table 2) and per-node fairness (the "benefits should be equally
//! distributed" check) are tracked alongside.

use paragon_core::PrefetchStats;
use paragon_disk::{DiskStats, RaidStats};
use paragon_metrics::MetricsSnapshot;
use paragon_sim::{FaultStats, SimDuration, TraceEvent};

/// What one compute node measured.
#[derive(Debug, Clone)]
pub struct NodeResult {
    /// Node rank.
    pub rank: usize,
    /// Reads performed successfully.
    pub reads: u64,
    /// Reads that failed even after the client's retry policy (possible
    /// only under injected faults; a fault-free run never errors).
    pub read_errors: u64,
    /// Bytes delivered to the application.
    pub bytes: u64,
    /// Wall time from the measured phase's start to this node's last
    /// completion.
    pub elapsed: SimDuration,
    /// Sum of per-request access times.
    pub read_time_total: SimDuration,
    /// Slowest single request.
    pub read_time_max: SimDuration,
    /// Fastest single request.
    pub read_time_min: SimDuration,
    /// Every request's access time, issue order (percentile analysis).
    pub read_times: Vec<SimDuration>,
    /// Prefetch counters (when the prototype was enabled).
    pub prefetch: Option<PrefetchStats>,
}

impl NodeResult {
    /// Mean per-request access time.
    pub fn read_time_mean(&self) -> SimDuration {
        if self.reads == 0 {
            SimDuration::ZERO
        } else {
            self.read_time_total / self.reads
        }
    }

    /// This node's observed bandwidth, bytes/second.
    pub fn bandwidth(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.bytes as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// What one experiment run measured.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-node measurements, rank order.
    pub per_node: Vec<NodeResult>,
    /// Collective elapsed time (start of measured phase → last node done).
    pub elapsed: SimDuration,
    /// Bytes delivered across all nodes.
    pub total_bytes: u64,
    /// Aggregated prefetch counters (zeroed when disabled).
    pub prefetch: PrefetchStats,
    /// Whether the prototype prefetcher was on.
    pub prefetch_enabled: bool,
    /// Event-trace hash of the whole simulation (determinism checks).
    pub trace_hash: u64,
    /// Number of data-verification mismatches (0 unless `verify_data`
    /// caught corruption — always a bug).
    pub verify_failures: u64,
    /// Reads that failed across all nodes (under injected faults only).
    pub read_errors: u64,
    /// Fault-plan counters: what the plan actually injected.
    pub fault: FaultStats,
    /// Aggregate RAID counters across every I/O node's array; nonzero
    /// `reconstructed_reads` means degraded-mode reads happened.
    pub raid: RaidStats,
    /// Aggregate disk counters across every I/O node's array (includes
    /// the setup phase's populate writes).
    pub disk: DiskStats,
    /// Recovery-coordinator counters (`None` unless a replicated run's
    /// I/O-node crash triggered online re-replication).
    pub rebuild: Option<paragon_pfs::RebuildStats>,
    /// Stripe slots still awaiting re-replication when the simulation
    /// drained — must be 0 whenever a rebuild ran to completion.
    pub rebuild_pending: u64,
    /// Reads that failed over from one replica to another.
    pub replica_failovers: u64,
    /// Reads served by a non-primary replica.
    pub replica_reads: u64,
    /// Trace events (empty unless `trace_cap` was set in the config).
    pub trace: Vec<TraceEvent>,
    /// Telemetry snapshot (`None` unless `metrics_cadence` was set).
    pub metrics: Option<MetricsSnapshot>,
}

impl RunResult {
    /// The paper's headline metric: aggregate application read bandwidth
    /// in MB/s (1 MB = 2^20 bytes).
    pub fn bandwidth_mb_s(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.total_bytes as f64 / (1 << 20) as f64 / self.elapsed.as_secs_f64()
    }

    /// Mean per-request read access time across all nodes (Table 2).
    pub fn read_time_mean(&self) -> SimDuration {
        let reads: u64 = self.per_node.iter().map(|n| n.reads).sum();
        if reads == 0 {
            return SimDuration::ZERO;
        }
        let total = self
            .per_node
            .iter()
            .fold(SimDuration::ZERO, |acc, n| acc + n.read_time_total);
        total / reads
    }

    /// Per-node bandwidths, rank order (fairness analysis).
    pub fn per_node_bandwidths(&self) -> Vec<f64> {
        self.per_node.iter().map(|n| n.bandwidth()).collect()
    }

    /// Every request's access time across all nodes, as seconds, in an
    /// exact-quantile histogram.
    pub fn access_time_histogram(&self) -> paragon_metrics::Histogram {
        let mut h = paragon_metrics::Histogram::new();
        for n in &self.per_node {
            for &t in &n.read_times {
                h.record(t.as_secs_f64());
            }
        }
        h
    }

    /// Relative spread of per-node bandwidths: `(max−min)/mean`.
    pub fn node_imbalance(&self) -> f64 {
        let bws = self.per_node_bandwidths();
        let mean = bws.iter().sum::<f64>() / bws.len().max(1) as f64;
        if bws.is_empty() || mean == 0.0 {
            return 0.0;
        }
        let max = bws.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = bws.iter().cloned().fold(f64::INFINITY, f64::min);
        (max - min) / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(rank: usize, bytes: u64, ms: u64) -> NodeResult {
        NodeResult {
            rank,
            reads: 4,
            read_errors: 0,
            bytes,
            elapsed: SimDuration::from_millis(ms),
            read_time_total: SimDuration::from_millis(ms),
            read_time_max: SimDuration::from_millis(ms / 2),
            read_time_min: SimDuration::from_millis(1),
            read_times: Vec::new(),
            prefetch: None,
        }
    }

    #[test]
    fn bandwidth_uses_collective_time() {
        let r = RunResult {
            per_node: vec![node(0, 1 << 20, 500), node(1, 1 << 20, 1000)],
            elapsed: SimDuration::from_millis(1000),
            total_bytes: 2 << 20,
            prefetch: PrefetchStats::default(),
            prefetch_enabled: false,
            trace_hash: 0,
            verify_failures: 0,
            read_errors: 0,
            fault: FaultStats::default(),
            raid: RaidStats::default(),
            disk: DiskStats::default(),
            rebuild: None,
            rebuild_pending: 0,
            replica_failovers: 0,
            replica_reads: 0,
            trace: Vec::new(),
            metrics: None,
        };
        assert!((r.bandwidth_mb_s() - 2.0).abs() < 1e-9);
        // Mean access time over 8 reads = (500+1000)/8 ms.
        assert_eq!(r.read_time_mean(), SimDuration::from_micros(187_500));
    }

    #[test]
    fn imbalance_is_zero_for_equal_nodes() {
        let r = RunResult {
            per_node: vec![node(0, 100, 10), node(1, 100, 10)],
            elapsed: SimDuration::from_millis(10),
            total_bytes: 200,
            prefetch: PrefetchStats::default(),
            prefetch_enabled: false,
            trace_hash: 0,
            verify_failures: 0,
            read_errors: 0,
            fault: FaultStats::default(),
            raid: RaidStats::default(),
            disk: DiskStats::default(),
            rebuild: None,
            rebuild_pending: 0,
            replica_failovers: 0,
            replica_reads: 0,
            trace: Vec::new(),
            metrics: None,
        };
        assert_eq!(r.node_imbalance(), 0.0);
    }

    #[test]
    fn node_mean_handles_zero_reads() {
        let mut n = node(0, 0, 0);
        n.reads = 0;
        assert_eq!(n.read_time_mean(), SimDuration::ZERO);
        assert_eq!(n.bandwidth(), 0.0);
    }
}
