//! Sharded (parallel-kernel) execution of one experiment.
//!
//! A config that resolves to `S > 1` shards runs as `S` *replicated
//! worlds* on [`paragon_sim::run_sharded`]: every world builds the whole
//! machine and performs the whole setup phase (file creation and
//! population are direct UFS operations — no mesh traffic — so the
//! worlds are bit-identical up to the measured phase's start), but each
//! world *owns* a contiguous slice of compute-node ranks and I/O nodes
//! and only its owned components generate activity:
//!
//! * node programs run in the owning world of their rank; their reads
//!   reach remote I/O-node servers through the mesh's cross-shard cut;
//! * the service node (shared pointers), the recovery coordinator, and
//!   the `Sys` timeline markers belong to shard 0;
//! * each world's flight recorder keeps only owned tracks (replicated
//!   emits elsewhere are filtered before they charge the cap), and mints
//!   request ids on a stride-`S` lattice so ids never collide;
//! * metrics, disk counters, and per-node results are harvested per
//!   world and merged deterministically in shard order.
//!
//! The merge is a pure function of the per-world results, and each
//! world's bytes are a pure function of `(config, shard count)` — so the
//! merged `RunResult` cannot depend on the `workers` thread count.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

use paragon_core::{PrefetchGauges, PrefetchStats};
use paragon_machine::{Machine, MachineConfig};
use paragon_metrics::{HistSummary, Histogram, MetricsSnapshot};
use paragon_pfs::{rebuild_after_crash, ParallelFs, RebuildConfig, RebuildStats, Redundancy};
use paragon_sim::{
    ev, merge_reports, merge_shard_events, run_sharded, run_sharded_profiled, EventKind, RunReport,
    ShardPlan, Sim, SimDuration, TraceEvent, Track,
};

use crate::config::ExperimentConfig;
use crate::driver::{arm_faults, node_program, setup_files, DriverOutput, NodeCtx};
use crate::result::{NodeResult, RunResult};
use crate::telemetry::{names, Telemetry};

/// Cut `cfg`'s machine into shard worlds: contiguous balanced slices of
/// ranks and I/O nodes, service node on shard 0.
fn plan(cfg: &ExperimentConfig) -> ShardPlan {
    let shards = cfg.resolved_shards();
    let cn = cfg.compute_nodes;
    let io = cfg.io_nodes;
    let mut owner = Vec::with_capacity(cn + io + 1);
    for r in 0..cn {
        owner.push((r * shards / cn) as u32);
    }
    for i in 0..io {
        owner.push((i * shards / io) as u32);
    }
    owner.push(0); // service node
    ShardPlan {
        shards,
        workers: cfg.workers,
        lookahead_ns: cfg.shard_lookahead().as_nanos(),
        owner: Arc::new(owner),
        seed: cfg.seed,
    }
}

/// One world's view of the partition, for gating and trace filtering.
#[derive(Clone)]
struct Ownership {
    owner: Arc<Vec<u32>>,
    shard: u32,
    cn: usize,
    /// Spindles per I/O node, to map `Track::Disk` lanes to their array.
    spindles: usize,
}

impl Ownership {
    fn owns_rank(&self, rank: usize) -> bool {
        self.owner.get(rank).copied().unwrap_or(0) == self.shard
    }

    fn owns_ion(&self, ion: usize) -> bool {
        self.owner.get(self.cn + ion).copied().unwrap_or(0) == self.shard
    }

    /// Does this world's flight recorder keep events on `track`? Every
    /// lane has exactly one owner, so the merged trace has no duplicates.
    fn keeps(&self, track: Track) -> bool {
        let of = |node: usize| self.owner.get(node).copied().unwrap_or(0);
        match track {
            Track::Cn(r) => of(r as usize) == self.shard,
            Track::Ion(i) => of(self.cn + i as usize) == self.shard,
            Track::Node(n) => of(n as usize) == self.shard,
            Track::Disk(d) => of(self.cn + d as usize / self.spindles.max(1)) == self.shard,
            Track::Svc | Track::Sys => self.shard == 0,
        }
    }
}

/// Per-world live state between build and harvest.
struct World {
    machine: Rc<Machine>,
    telemetry: Option<Rc<Telemetry>>,
    out: DriverOutput,
    rebuild_out: Rc<RefCell<Option<RebuildStats>>>,
    rebuild_pending: Rc<Cell<u64>>,
    replica_failovers: Rc<Cell<u64>>,
    replica_reads: Rc<Cell<u64>>,
    verify_failures: Rc<Cell<u64>>,
    own: Ownership,
}

/// What one world measured, shipped back to the merge step.
struct WorldOutcome {
    report: RunReport,
    per_node: Vec<NodeResult>,
    elapsed: SimDuration,
    trace: Vec<TraceEvent>,
    verify_failures: u64,
    fault: paragon_sim::FaultStats,
    disk: paragon_disk::DiskStats,
    raid: paragon_disk::RaidStats,
    rebuild: Option<RebuildStats>,
    rebuild_pending: u64,
    replica_failovers: u64,
    replica_reads: u64,
    metrics: Option<MetricsSnapshot>,
}

/// Run `cfg` on the parallel kernel and merge the worlds' measurements.
pub(crate) fn run_sharded_experiment(cfg: &ExperimentConfig) -> RunResult {
    let plan = plan(cfg);
    let outcomes = run_sharded(
        &plan,
        |k, sim| build_world(cfg, &plan, k, sim),
        |k, sim, world| finish_world(cfg, k, sim, world),
    );
    merge_outcomes(cfg, outcomes)
}

/// [`run_sharded_experiment`] under kernel self-profiling: identical
/// merged bytes, plus the host-side counters every shard and worker
/// collected about the kernel itself.
pub(crate) fn run_sharded_experiment_profiled(
    cfg: &ExperimentConfig,
) -> (RunResult, paragon_sim::KernelProfile) {
    let plan = plan(cfg);
    let (outcomes, prof) = run_sharded_profiled(
        &plan,
        |k, sim| build_world(cfg, &plan, k, sim),
        |k, sim, world| finish_world(cfg, k, sim, world),
    );
    (merge_outcomes(cfg, outcomes), prof)
}

fn build_world(cfg: &ExperimentConfig, plan: &ShardPlan, k: usize, sim: &Sim) -> World {
    let own = Ownership {
        owner: plan.owner.clone(),
        shard: k as u32,
        cn: cfg.compute_nodes,
        spindles: cfg.calib.raid_members + usize::from(cfg.calib.raid_parity),
    };
    if cfg.trace_cap > 0 {
        sim.tracer().arm(cfg.trace_cap);
    }
    // Request ids on a stride-S lattice (world k mints k+1, k+1+S, …) so
    // ids are globally unique; the recorder keeps only owned lanes.
    sim.tracer().shard_req_ids(k as u64, plan.shards as u64);
    let filter_own = own.clone();
    sim.tracer().set_track_filter(move |t| filter_own.keeps(t));

    let mut calib = cfg.calib.clone();
    if cfg.redundancy == Redundancy::ParityRaid {
        calib.raid_parity = true;
    }
    let machine = Rc::new(Machine::new(
        sim,
        MachineConfig {
            compute_nodes: cfg.compute_nodes,
            io_nodes: cfg.io_nodes,
            calib,
        },
    ));
    let pfs = ParallelFs::new_with_redundancy(machine.clone(), cfg.redundancy);
    let telemetry = cfg
        .metrics_cadence
        .map(|cadence| Telemetry::new(sim, &machine, &pfs, cadence));
    let (in_io, prefetch_gauges) = match &telemetry {
        Some(t) => (t.in_io.clone(), t.prefetch.clone()),
        None => (Rc::new(Cell::new(0)), PrefetchGauges::default()),
    };
    let verify_cell: Rc<Cell<u64>> = Rc::new(Cell::new(0));
    let verify_cell2 = verify_cell.clone();

    let out: DriverOutput = Rc::new(RefCell::new(None));
    let out2 = out.clone();
    let rebuild_out: Rc<RefCell<Option<RebuildStats>>> = Rc::new(RefCell::new(None));
    let rebuild_out2 = rebuild_out.clone();
    let rebuild_pending = pfs.rebuild_pending_cell();
    let replica_failovers = pfs.replica_failovers_cell();
    let replica_reads = pfs.replica_reads_cell();
    let cfg2 = cfg.clone();
    let sim2 = sim.clone();
    let machine2 = machine.clone();
    let telemetry2 = telemetry.clone();
    let own2 = own.clone();
    sim.spawn_named("experiment-driver", async move {
        // Every world performs the full setup: population is direct UFS
        // work (no mesh), so all worlds reach the same t0 with identical
        // file systems — remote reads later find the right bytes.
        let files = setup_files(&pfs, &cfg2).await;
        // Every world arms the same fault plan: mesh verdicts draw in
        // the world that performs the send/delivery, disk faults in the
        // disk's owner world, and crash windows are absolute times.
        arm_faults(&sim2, &machine2, &cfg2.faults);
        if let (Redundancy::Replicated { .. }, Some((ion, from, _))) =
            (cfg2.redundancy, cfg2.faults.ion_crash)
        {
            // The recovery coordinator drives through compute node 0's
            // endpoint, so it belongs to rank 0's owner: shard 0.
            if own2.shard == 0 {
                let sim3 = sim2.clone();
                let pfs3 = pfs.clone();
                let deposit = rebuild_out2.clone();
                sim2.spawn_named("rebuild-coordinator", async move {
                    sim3.sleep(from).await;
                    let stats = rebuild_after_crash(&pfs3, ion, RebuildConfig::default())
                        .await
                        .expect("online re-replication failed");
                    *deposit.borrow_mut() = Some(stats);
                });
            }
        }
        let t0 = sim2.now();
        // Replicated emit: the Sys lane belongs to shard 0, so the
        // filter keeps exactly one copy of the marker.
        sim2.emit(|| {
            ev(
                Track::Sys,
                EventKind::Mark,
                0,
                cfg2.compute_nodes as u64,
                cfg2.io_nodes as u64,
            )
        });
        if let Some(t) = &telemetry2 {
            t.begin();
        }
        let mut handles = Vec::new();
        for rank in 0..cfg2.compute_nodes {
            if !own2.owns_rank(rank) {
                continue;
            }
            let file = files[rank.min(files.len() - 1)];
            let ctx = NodeCtx {
                sim: sim2.clone(),
                pfs: pfs.clone(),
                cfg: cfg2.clone(),
                rank,
                file,
                t0,
                in_io: in_io.clone(),
                prefetch_gauges: prefetch_gauges.clone(),
                verify_failures: verify_cell2.clone(),
            };
            handles.push(sim2.spawn_named("node-program", node_program(ctx)));
        }
        let mut per_node = Vec::with_capacity(handles.len());
        for h in handles {
            per_node.push(h.await);
        }
        if let Some(t) = &telemetry2 {
            t.end();
        }
        let elapsed = sim2.now().since(t0);
        *out2.borrow_mut() = Some((per_node, elapsed));
    });

    World {
        machine,
        telemetry,
        out,
        rebuild_out,
        rebuild_pending,
        replica_failovers,
        replica_reads,
        verify_failures: verify_cell,
        own,
    }
}

fn finish_world(cfg: &ExperimentConfig, k: usize, sim: &Sim, world: World) -> WorldOutcome {
    let report = sim.report();
    let trace = sim.tracer().events();
    let fault = sim.faults().stats();
    let (per_node, elapsed) = world.out.borrow_mut().take().unwrap_or_else(|| {
        panic!(
            "shard {k} deadlocked; pending: {:?}",
            sim.pending_task_labels()
        )
    });
    let mut verify_failures = world.verify_failures.get();
    if cfg.verify_data {
        // fsck only owned I/O nodes: a non-owner world's replica of a
        // file system never saw the measured phase's writes.
        for i in 0..cfg.io_nodes {
            if !world.own.owns_ion(i) {
                continue;
            }
            let problems = world.machine.ufs(i).check();
            if !problems.is_empty() {
                eprintln!("fsck failures on I/O node {i}: {problems:?}");
                verify_failures += problems.len() as u64;
            }
        }
    }
    // Disk counters from owned arrays only. The owner world replicated
    // the setup phase *and* received all measured traffic for its nodes,
    // so its counters equal what a serial run would have recorded.
    let mut disk = paragon_disk::DiskStats::default();
    let mut raid = paragon_disk::RaidStats::default();
    for i in 0..cfg.io_nodes {
        if !world.own.owns_ion(i) {
            continue;
        }
        let s = world.machine.raid(i).stats();
        disk.requests += s.requests;
        disk.bytes_read += s.bytes_read;
        disk.bytes_written += s.bytes_written;
        disk.busy += s.busy;
        disk.sequential_hits += s.sequential_hits;
        disk.near_seeks += s.near_seeks;
        disk.far_seeks += s.far_seeks;
        disk.max_queue_depth = disk.max_queue_depth.max(s.max_queue_depth);
        let r = world.machine.raid(i).raid_stats();
        raid.reconstructed_reads += r.reconstructed_reads;
        raid.reconstructed_bytes += r.reconstructed_bytes;
        raid.parity_rmws += r.parity_rmws;
    }
    // The read-time histogram is *not* recorded per world — the merge
    // rebuilds it exactly from the merged per-node timers.
    let metrics = world.telemetry.as_ref().map(|t| t.snapshot());
    let rebuild = world.rebuild_out.borrow_mut().take();
    let outcome = WorldOutcome {
        report,
        per_node,
        elapsed,
        trace,
        verify_failures,
        fault,
        disk,
        raid,
        rebuild,
        rebuild_pending: world.rebuild_pending.get(),
        replica_failovers: world.replica_failovers.get(),
        replica_reads: world.replica_reads.get(),
        metrics,
    };
    // Free the world (server loops otherwise pin the machine via Rc
    // cycles) before the worker thread moves on.
    sim.shutdown();
    outcome
}

fn merge_outcomes(cfg: &ExperimentConfig, outcomes: Vec<WorldOutcome>) -> RunResult {
    let reports: Vec<RunReport> = outcomes.iter().map(|o| o.report.clone()).collect();
    let merged_report = merge_reports(&reports);

    let mut per_node = Vec::with_capacity(cfg.compute_nodes);
    let mut fault = paragon_sim::FaultStats::default();
    let mut disk = paragon_disk::DiskStats::default();
    let mut raid = paragon_disk::RaidStats::default();
    let mut verify_failures = 0;
    let mut rebuild = None;
    let mut rebuild_pending = 0;
    let mut replica_failovers = 0;
    let mut replica_reads = 0;
    let mut traces = Vec::with_capacity(outcomes.len());
    let mut snaps = Vec::new();
    let mut elapsed = SimDuration::ZERO;
    for o in outcomes {
        per_node.extend(o.per_node);
        elapsed = elapsed.max(o.elapsed);
        verify_failures += o.verify_failures;
        fault.disk_transients += o.fault.disk_transients;
        fault.disk_dead_hits += o.fault.disk_dead_hits;
        fault.mesh_dropped += o.fault.mesh_dropped;
        fault.mesh_duplicated += o.fault.mesh_duplicated;
        fault.mesh_delayed += o.fault.mesh_delayed;
        fault.node_down_drops += o.fault.node_down_drops;
        disk.requests += o.disk.requests;
        disk.bytes_read += o.disk.bytes_read;
        disk.bytes_written += o.disk.bytes_written;
        disk.busy += o.disk.busy;
        disk.sequential_hits += o.disk.sequential_hits;
        disk.near_seeks += o.disk.near_seeks;
        disk.far_seeks += o.disk.far_seeks;
        disk.max_queue_depth = disk.max_queue_depth.max(o.disk.max_queue_depth);
        raid.reconstructed_reads += o.raid.reconstructed_reads;
        raid.reconstructed_bytes += o.raid.reconstructed_bytes;
        raid.parity_rmws += o.raid.parity_rmws;
        rebuild = rebuild.or(o.rebuild);
        rebuild_pending += o.rebuild_pending;
        replica_failovers += o.replica_failovers;
        replica_reads += o.replica_reads;
        traces.push(o.trace);
        if let Some(s) = o.metrics {
            snaps.push(s);
        }
    }
    per_node.sort_by_key(|n| n.rank);
    let trace = merge_shard_events(traces);

    let total_bytes = per_node.iter().map(|n| n.bytes).sum();
    let mut prefetch = PrefetchStats::default();
    for n in &per_node {
        if let Some(p) = &n.prefetch {
            prefetch.merge(p);
        }
    }
    let metrics = merge_snapshots(snaps, &per_node);
    RunResult {
        read_errors: per_node.iter().map(|n| n.read_errors).sum(),
        per_node,
        elapsed,
        total_bytes,
        prefetch,
        prefetch_enabled: cfg.prefetch.is_some(),
        trace_hash: merged_report.trace_hash,
        verify_failures,
        fault,
        raid,
        disk,
        rebuild,
        rebuild_pending,
        replica_failovers,
        replica_reads,
        trace,
        metrics,
    }
}

/// Merge per-world telemetry into one machine-level snapshot.
///
/// Worlds sample on the same cadence from the same phase start, so their
/// timelines are prefix-equal; a world whose owned programs finished
/// early just stopped sampling sooner, and its gauges hold their final
/// value for the remainder (step extension). Gauges sum pointwise (each
/// world reports only its owned components); counters are
/// measured-phase deltas and sum, except busiest-single-entity `.max`
/// names which take the max across worlds.
fn merge_snapshots(
    snaps: Vec<MetricsSnapshot>,
    per_node: &[NodeResult],
) -> Option<MetricsSnapshot> {
    let longest = snaps
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| s.times_ns.len())
        .map(|(i, _)| i)?;
    let times_ns = snaps[longest].times_ns.clone();
    let n = times_ns.len();
    let mut merged = MetricsSnapshot {
        phase_start_ns: snaps.iter().map(|s| s.phase_start_ns).min().unwrap_or(0),
        phase_end_ns: snaps.iter().map(|s| s.phase_end_ns).max().unwrap_or(0),
        times_ns,
        series: Default::default(),
        counters: Default::default(),
        hists: Default::default(),
    };
    for s in &snaps {
        for (name, vals) in &s.series {
            let acc = merged
                .series
                .entry(name.clone())
                .or_insert_with(|| vec![0.0; n]);
            for (i, slot) in acc.iter_mut().enumerate() {
                *slot += vals.get(i).or(vals.last()).copied().unwrap_or(0.0);
            }
        }
        for (name, v) in &s.counters {
            let slot = merged.counters.entry(name.clone()).or_insert(0.0);
            if name.ends_with(".max") {
                *slot = slot.max(*v);
            } else {
                *slot += v;
            }
        }
    }
    // Distributions come from the merged per-request timers, exactly as
    // the serial driver records them.
    let mut h = Histogram::new();
    for node in per_node {
        for &dt in &node.read_times {
            h.record(dt.as_secs_f64());
        }
    }
    merged
        .hists
        .insert(names::READ_TIME_S.to_string(), HistSummary::of(&mut h));
    Some(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AccessPattern, FaultSpec, StripeLayout};
    use paragon_machine::Calibration;
    use paragon_pfs::IoMode;

    /// A paper-calibrated 4×2 shape, small enough to shard-test quickly.
    fn small(mode: IoMode) -> ExperimentConfig {
        ExperimentConfig {
            seed: 21,
            compute_nodes: 4,
            io_nodes: 2,
            calib: Calibration::paragon_1995(),
            mode,
            fast_path: true,
            stripe_unit: 64 * 1024,
            layout: StripeLayout::Across { factor: 2 },
            request_size: 64 * 1024,
            file_size: 2 << 20,
            delay: SimDuration::ZERO,
            prefetch: None,
            access: AccessPattern::ModeDriven,
            separate_files: false,
            verify_data: true,
            trace_cap: 1 << 18,
            faults: FaultSpec::default(),
            redundancy: Redundancy::None,
            metrics_cadence: None,
            shards: None,
            workers: 1,
        }
    }

    #[test]
    fn plan_partitions_contiguously_and_covers_every_node() {
        let mut cfg = small(IoMode::MRecord);
        cfg.compute_nodes = 8;
        cfg.io_nodes = 4;
        cfg.shards = Some(4);
        let p = plan(&cfg);
        assert_eq!(p.shards, 4);
        // Ranks 0..8 split two per shard, IONs one per shard, service on 0.
        assert_eq!(&p.owner[0..8], &[0, 0, 1, 1, 2, 2, 3, 3]);
        assert_eq!(&p.owner[8..12], &[0, 1, 2, 3]);
        assert_eq!(p.owner[12], 0);
        assert_eq!(p.lookahead_ns, cfg.shard_lookahead().as_nanos());
    }

    #[test]
    fn instant_calibration_forces_the_serial_kernel() {
        let mut cfg = small(IoMode::MRecord);
        cfg.calib = Calibration::instant();
        cfg.shards = Some(4);
        assert_eq!(cfg.resolved_shards(), 1, "no lookahead, no epochs");
    }

    #[test]
    fn auto_sharding_starts_at_full_machine_scale() {
        let mut cfg = small(IoMode::MRecord);
        assert_eq!(cfg.resolved_shards(), 1);
        cfg.compute_nodes = 1024;
        assert_eq!(cfg.resolved_shards(), 4);
        cfg.compute_nodes = 4096;
        assert_eq!(cfg.resolved_shards(), 8);
    }

    #[test]
    fn sharded_run_delivers_correct_bytes_and_full_coverage() {
        let mut cfg = small(IoMode::MRecord);
        cfg.shards = Some(2);
        let r = crate::run(&cfg);
        assert_eq!(r.total_bytes, 2 << 20);
        assert_eq!(r.verify_failures, 0, "corruption across the shard cut");
        assert_eq!(r.per_node.len(), 4);
        for (rank, n) in r.per_node.iter().enumerate() {
            assert_eq!(n.rank, rank, "merged per-node results in rank order");
            assert_eq!(n.reads, 8);
        }
        assert!(!r.trace.is_empty(), "merged trace lost its events");
        // Exactly one world keeps the Sys phase marker.
        let marks = r
            .trace
            .iter()
            .filter(|e| e.kind == EventKind::Mark && e.track == Track::Sys)
            .count();
        assert_eq!(marks, 1, "replicated Sys emits must merge to one");
    }

    #[test]
    fn worker_count_cannot_change_the_merged_bytes() {
        let mut cfg = small(IoMode::MRecord);
        cfg.shards = Some(2);
        cfg.workers = 1;
        let one = crate::run(&cfg);
        cfg.workers = 2;
        let two = crate::run(&cfg);
        assert_eq!(one.trace_hash, two.trace_hash);
        assert_eq!(one.elapsed, two.elapsed);
        assert_eq!(one.total_bytes, two.total_bytes);
    }

    #[test]
    fn every_mode_survives_the_shard_cut() {
        // Shared-pointer modes route every rank through shard 0's
        // service node; M_GLOBAL coalesces parties across worlds.
        for mode in IoMode::all() {
            let mut cfg = small(mode);
            cfg.shards = Some(2);
            let r = crate::run(&cfg);
            assert_eq!(r.verify_failures, 0, "corruption under {mode}");
            assert!(r.total_bytes > 0);
        }
    }
}
